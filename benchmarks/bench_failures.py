"""E15 (extension) — failure injection: availability and the checkpoint gap.

Paper source: the replication motivation (§4's Data Grid simulators exist
because data and resources fail or saturate) plus §5's generality trend —
a generic simulator must express node failures to evaluate fault-tolerant
middleware at all.

Rows regenerated: batch makespan on a machine cycling through exponential
crash/repair at several MTBF values, under the two eviction policies.
Shape targets: makespan grows as MTBF shrinks; checkpointing beats
restart-from-scratch, and the gap *widens* as failures become frequent
(the textbook argument for checkpointing, quantified).
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.hosts import MachineFailureInjector, SpaceSharedMachine

N_JOBS = 20
JOB_MI = 600.0
MTTR = 15.0


def run(mtbf: float | None, policy: str, seed: int = 11) -> tuple[float, float]:
    """Returns (makespan, availability)."""
    sim = Simulator(seed=seed)
    m = SpaceSharedMachine(sim, pes=2, rating=100.0, restart_policy=policy)
    inj = None
    if mtbf is not None:
        inj = MachineFailureInjector(sim, m, sim.stream("fail"),
                                     mtbf=mtbf, mttr=MTTR, horizon=100_000.0)
    runs = [m.submit(JOB_MI) for _ in range(N_JOBS)]
    sim.run()
    assert all(r.finished is not None for r in runs)
    makespan = max(r.finished for r in runs)
    return makespan, (inj.availability if inj else 1.0)


@pytest.mark.parametrize("policy", ["checkpoint", "restart"])
@pytest.mark.parametrize("mtbf", [200.0, 50.0])
def test_e15_failure_runs(benchmark, mtbf, policy):
    benchmark.group = f"failures mtbf={mtbf}"
    makespan, availability = once(benchmark, run, mtbf, policy)
    assert makespan > 0 and 0 < availability <= 1


def test_e15_shape_claims(benchmark):
    def run_all():
        seeds = (11, 23, 59)
        out = {}
        for mtbf in (None, 200.0, 50.0, 20.0):
            for policy in ("checkpoint", "restart"):
                ms = [run(mtbf, policy, seed=s)[0] for s in seeds]
                out[(mtbf, policy)] = sum(ms) / len(ms)
        return out

    results = once(benchmark, run_all)
    rows = []
    for mtbf in (None, 200.0, 50.0, 20.0):
        ck = results[(mtbf, "checkpoint")]
        rs = results[(mtbf, "restart")]
        rows.append(("no failures" if mtbf is None else f"MTBF {mtbf:g}",
                     f"{ck:.0f}s", f"{rs:.0f}s", f"{rs / ck:.2f}x"))
    print_table("E15: batch makespan under crash/repair "
                "(mean of 3 seeds, MTTR 15)",
                ["failure regime", "checkpoint", "restart", "restart penalty"],
                rows)

    base = results[(None, "checkpoint")]
    # failures only ever hurt, monotonically with frequency
    assert results[(200.0, "checkpoint")] >= base
    assert results[(20.0, "checkpoint")] > results[(200.0, "checkpoint")]
    # checkpointing beats restart wherever failures occur...
    for mtbf in (200.0, 50.0, 20.0):
        assert results[(mtbf, "checkpoint")] <= results[(mtbf, "restart")] + 1e-9
    # ...and the restart penalty widens as failures become frequent.
    pen_rare = results[(200.0, "restart")] / results[(200.0, "checkpoint")]
    pen_freq = results[(20.0, "restart")] / results[(20.0, "checkpoint")]
    assert pen_freq >= pen_rare
    # without failures the two policies are identical
    assert results[(None, "checkpoint")] == pytest.approx(
        results[(None, "restart")])