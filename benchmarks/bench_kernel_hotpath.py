"""Kernel hot-path benchmark — fused single-call dispatch vs. peek+pop.

The engine's dispatch loop fires events via one
:meth:`~repro.core.queues.base.EventQueue.pop_if_le` call per iteration.
Before this protocol existed, every firing paid for a ``peek()`` *and* a
``pop()`` — two find-min operations, which for sweep-based structures
(calendar, ladder) meant two full bucket sweeps per event.  This module
measures both protocols on identical workloads and seeds, per queue
structure, and is the source of the repo's tracked perf baseline
``BENCH_kernel.json`` (refresh it with ``benchmarks/run_kernel_baseline.py``).

Scenarios
---------
``drain``
    Pre-schedule N exponential-gap events, then time ``run()`` alone: the
    purest dispatch-protocol measurement (no scheduling cost inside the
    timed region).
``hold``
    Classic hold model — every firing schedules one successor — timed over
    a fixed horizon; dispatch + scheduling mixed, the realistic hot loop.
``cancel``
    Hold model where each firing also schedules a far-future timer and
    cancels an older one, leaving ~half the queue dead: exercises the
    cancelled-record purge policy.

Because the two protocols are timed on separate simulator instances with
the same seed, event order is identical — asserted by the trace-equivalence
test in ``tests/test_hotpath_equivalence.py``.
"""

from __future__ import annotations

import math
import time
from collections import deque

from repro.core.engine import Simulator
from repro.core.errors import SchedulingError, StopSimulation
from repro.core.events import Event

KINDS = ["linear", "heap", "splay", "calendar", "ladder"]

#: scenario sizes for a full baseline refresh (the smoke path divides these)
DRAIN_EVENTS = 50_000
HOLD_POPULATION = 5_000
HOLD_HORIZON = 10.0
CANCEL_POPULATION = 2_000
CANCEL_HORIZON = 10.0


class LegacyPeekPopSimulator(Simulator):
    """The pre-change engine loop: one ``peek()`` plus one ``pop()`` per
    firing.  Kept verbatim as the measurement baseline so future PRs can
    still quantify the protocol gap on current queue structures.

    The pop is replicated inline exactly as the seed's ``EventQueue.pop``
    did it — ``_pop_any()`` in a loop with an ``event.cancelled`` *property*
    check per record — because that queue-layer cost was part of the
    pre-change protocol too (today's ``pop`` reads the slot directly).  The
    only addition is the ``_dead`` bookkeeping the new exact counters
    require, which runs solely on cancelled records.
    """

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        budget = math.inf if max_events is None else int(max_events)
        queue = self._queue
        try:
            while not self._stopped:
                ev = queue.peek()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    break
                while True:  # seed-faithful EventQueue.pop()
                    popped = queue._pop_any()
                    if popped is None or not popped.cancelled:
                        break
                    queue._dead -= 1  # keep the new exact counters honest
                assert popped is ev
                popped._on_cancel = None
                self._now = ev.time
                self._events_executed += 1
                if self.pre_event_hooks:
                    for hook in self.pre_event_hooks:
                        hook(ev)
                try:
                    ev.fire()
                except StopSimulation as sig:
                    self._stopped = True
                    self._stop_reason = sig.reason or "StopSimulation"
                if self._events_executed >= budget:
                    raise SchedulingError(
                        f"max_events budget of {max_events} exhausted at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False


class PreObsSimulator(Simulator):
    """The engine exactly as it was before the obs subsystem landed: no
    ``_obs`` null-object checks in ``schedule_at`` or at ``run()`` entry.
    Kept verbatim as the baseline that quantifies the *disabled-path*
    observability cost (the ``obs_overhead`` scenario's yardstick)."""

    def schedule_at(self, time, fn, *args, priority=20, label="", **kwargs):
        if math.isnan(time):
            raise SchedulingError("cannot schedule event at NaN time")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event in the past (t={time} < now={self._now})"
            )
        ev = Event(time, self._next_seq(), fn, args, kwargs,
                   priority=priority, label=label)
        self._queue.push(ev)
        return ev

    def run(self, until=None, max_events=None):
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else int(max_events)
        pop_if_le = self._queue.pop_if_le
        hooks = self.pre_event_hooks
        fired = 0
        try:
            while not self._stopped:
                ev = pop_if_le(horizon)
                if ev is None:
                    break
                self._now = ev.time
                fired += 1
                if hooks:
                    for hook in hooks:
                        hook(ev)
                try:
                    ev.fn(*ev.args, **ev.kwargs)
                except StopSimulation as sig:
                    self._stopped = True
                    self._stop_reason = sig.reason or "StopSimulation"
                if fired >= budget:
                    raise SchedulingError(
                        f"max_events budget of {max_events} exhausted at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._events_executed += fired
            self._running = False


def _noop() -> None:
    pass


# -- timed scenarios: build outside the timer, time run() only ---------------

def drain_scenario(sim_cls, kind: str, events: int) -> tuple[float, int]:
    sim = sim_cls(queue=kind, seed=11)
    stream = sim.stream("drain")
    for _ in range(events):
        sim.schedule(stream.exponential(1.0), _noop)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.events_executed


def hold_scenario(sim_cls, kind: str, population: int,
                  horizon: float) -> tuple[float, int]:
    sim = sim_cls(queue=kind, seed=11)
    stream = sim.stream("hold")

    def fire() -> None:
        sim.schedule(stream.exponential(1.0), fire)

    for _ in range(population):
        sim.schedule(stream.exponential(1.0), fire)
    t0 = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - t0, sim.events_executed


def cancel_scenario(sim_cls, kind: str, population: int,
                    horizon: float) -> tuple[float, int]:
    sim = sim_cls(queue=kind, seed=11)
    stream = sim.stream("cancel")
    timers: deque = deque()

    def fire() -> None:
        sim.schedule(stream.exponential(1.0), fire)
        # Timer churn: park a far-future timeout, tear down an older one —
        # the classic pattern that litters the queue with dead records.
        timers.append(sim.schedule(100.0 + stream.exponential(10.0), _noop))
        if len(timers) > 4:
            timers.popleft().cancel()

    for _ in range(population):
        sim.schedule(stream.exponential(1.0), fire)
    t0 = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - t0, sim.events_executed


def obs_drain_scenario(kind: str, events: int, mode: str) -> tuple[float, int]:
    """Heap-drain loop under one observability mode.

    ``pre_obs``
        :class:`PreObsSimulator` — the engine with no ``_obs`` plumbing at
        all; the yardstick the disabled-path overhead is measured against.
    ``disabled``
        Today's engine, nothing attached: the null-object fast path every
        unobserved run takes.
    ``enabled``
        Full tracing + profiling + telemetry via ``Observation.attach``.
    """
    from repro.obs import Observation

    if mode == "pre_obs":
        sim = PreObsSimulator(queue=kind, seed=11)
    else:
        sim = Simulator(queue=kind, seed=11)
        if mode == "enabled":
            Observation(trace=True, profile=True, telemetry=True).attach(
                sim, track="bench")
    stream = sim.stream("drain")
    for _ in range(events):
        sim.schedule(stream.exponential(1.0), _noop)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.events_executed


OBS_MODES = ("pre_obs", "disabled", "enabled")


def measure_obs_overhead(kind: str = "heap", repeats: int = 3,
                         scale: float = 1.0) -> dict:
    """Best-of-*repeats* ev/s per obs mode on the drain loop, interleaved.

    The contract (ISSUE 2 / BENCH_kernel.json): ``disabled`` must stay
    within 2% of ``pre_obs`` — observability that nobody turned on may not
    tax the kernel's hot path.
    """
    events = max(1, int(DRAIN_EVENTS * scale))
    best = {mode: 0.0 for mode in OBS_MODES}
    for _ in range(repeats):
        for mode in OBS_MODES:
            dt, n = obs_drain_scenario(kind, events, mode)
            best[mode] = max(best[mode], n / dt)
    return {
        "scenario": "drain",
        "structure": kind,
        "events": events,
        "pre_obs_eps": round(best["pre_obs"], 1),
        "disabled_eps": round(best["disabled"], 1),
        "enabled_eps": round(best["enabled"], 1),
        # overhead vs the pre-obs engine; negatives mean "within noise"
        "disabled_overhead_pct": round(
            (best["pre_obs"] / best["disabled"] - 1.0) * 100, 2),
        "enabled_overhead_pct": round(
            (best["pre_obs"] / best["enabled"] - 1.0) * 100, 2),
        "disabled_budget_pct": 2.0,
    }


SCENARIOS = {
    "drain": lambda cls, kind, scale: drain_scenario(
        cls, kind, max(1, int(DRAIN_EVENTS * scale))),
    "hold": lambda cls, kind, scale: hold_scenario(
        cls, kind, max(1, int(HOLD_POPULATION * scale)), HOLD_HORIZON),
    "cancel": lambda cls, kind, scale: cancel_scenario(
        cls, kind, max(1, int(CANCEL_POPULATION * scale)), CANCEL_HORIZON),
}


def measure(kind: str, scenario: str, repeats: int = 3,
            scale: float = 1.0) -> dict:
    """Best-of-*repeats* events/sec for both protocols, interleaved.

    Interleaving fused/legacy runs (rather than timing all of one then all
    of the other) keeps slow drift on a shared machine from biasing the
    ratio; best-of-N discards transient stalls.
    """
    run = SCENARIOS[scenario]
    fused_best = legacy_best = 0.0
    fused_events = legacy_events = 0
    for _ in range(repeats):
        dt, n = run(Simulator, kind, scale)
        fused_best = max(fused_best, n / dt)
        fused_events = n
        dt, n = run(LegacyPeekPopSimulator, kind, scale)
        legacy_best = max(legacy_best, n / dt)
        legacy_events = n
    assert fused_events == legacy_events, (
        f"{kind}/{scenario}: protocols fired different event counts "
        f"({fused_events} vs {legacy_events}) — determinism broken")
    return {
        "events": fused_events,
        "fused_eps": round(fused_best, 1),
        "legacy_eps": round(legacy_best, 1),
        "speedup": round(fused_best / legacy_best, 3),
    }


def collect_baseline(repeats: int = 3, scale: float = 1.0,
                     kinds: list[str] | None = None,
                     scenarios: list[str] | None = None) -> dict:
    """Full fused-vs-legacy sweep; the payload of ``BENCH_kernel.json``."""
    results: dict[str, dict] = {}
    for kind in kinds or KINDS:
        results[kind] = {
            scenario: measure(kind, scenario, repeats=repeats, scale=scale)
            for scenario in (scenarios or list(SCENARIOS))
        }
    return {
        "benchmark": "kernel_hotpath",
        "protocol": "pop_if_le (fused) vs peek+pop (legacy)",
        "params": {"repeats": repeats, "scale": scale,
                   "drain_events": int(DRAIN_EVENTS * scale),
                   "hold_population": int(HOLD_POPULATION * scale),
                   "cancel_population": int(CANCEL_POPULATION * scale)},
        "results": results,
        # headline metric: dispatch-protocol speedup on the pure drain loop
        "headline_speedup": {
            kind: results[kind]["drain"]["speedup"] for kind in results
        },
        # observability tax: tracer off vs on, against the pre-obs engine
        "obs_overhead": measure_obs_overhead(repeats=repeats, scale=scale),
    }


# -- pytest smoke: the harness itself must not rot ---------------------------

def test_hotpath_harness_smoke():
    """Tiny-scale sweep: every scenario runs, fires identically under both
    protocols, and produces sane numbers.  (Speedup magnitudes are asserted
    only in the full baseline refresh, not here — CI boxes are too noisy.)"""
    baseline = collect_baseline(repeats=1, scale=0.02,
                                kinds=["heap", "calendar"])
    for kind, scenarios in baseline["results"].items():
        for scenario, row in scenarios.items():
            assert row["events"] > 0, (kind, scenario)
            assert row["fused_eps"] > 0 and row["legacy_eps"] > 0
    assert set(baseline["headline_speedup"]) == {"heap", "calendar"}
    obs = baseline["obs_overhead"]
    assert obs["events"] > 0
    for key in ("pre_obs_eps", "disabled_eps", "enabled_eps"):
        assert obs[key] > 0, key
    # The budget itself (≤ 2% disabled overhead) is asserted only on full
    # baseline refreshes — tiny smoke workloads are pure timer noise.


def test_obs_modes_fire_identically():
    """All three obs modes execute the same event count on the same seed."""
    counts = {mode: obs_drain_scenario("heap", 500, mode)[1]
              for mode in OBS_MODES}
    assert len(set(counts.values())) == 1, counts
