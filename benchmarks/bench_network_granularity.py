"""Ablation — network granularity: flow-level vs packet-level (§3's axis).

Paper source (§3): "The simulation of the network can model in detail the
flow of each packet through the network, a time consuming operation that
leads to better output results, or it can model only the flows of packets
going from one end to another in the network."

Workload: the same bag of transfers over the same dumbbell topology, run
through the flow model and the packet model (with and without MTU
refinement).  Shape targets: both granularities agree on aggregate
transfer time within a modest band on an uncongested path; the packet
model's cost scales with bytes/MTU while the flow model's cost scales with
the number of *transfers* — orders of magnitude apart.
"""

import time

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.network import FlowNetwork, PacketNetwork, Topology

N_TRANSFERS = 30
SIZE = 300_000.0  # 300 kB each


def topo():
    t = Topology()
    t.add_link("a", "b", 1e6, 0.005)  # 1 MB/s, 5 ms
    return t


def run_flow() -> tuple[float, int]:
    sim = Simulator(seed=3)
    net = FlowNetwork(sim, topo(), efficiency=1.0)
    handles = []
    stream = sim.stream("arr")
    t = 0.0
    for _ in range(N_TRANSFERS):
        sim.schedule_at(t, lambda: handles.append(net.transfer("a", "b", SIZE)))
        t += stream.exponential(5.0)
    sim.run()
    mean = sum(h.duration for h in handles) / len(handles)
    return mean, sim.events_executed


def run_packet(mtu: float) -> tuple[float, int]:
    sim = Simulator(seed=3)
    net = PacketNetwork(sim, topo(), mtu=mtu, queue_packets=100_000)
    handles = []
    stream = sim.stream("arr")
    t = 0.0
    for _ in range(N_TRANSFERS):
        sim.schedule_at(t, lambda: handles.append(net.transfer("a", "b", SIZE)))
        t += stream.exponential(5.0)
    sim.run()
    assert all(h.success for h in handles)
    mean = sum(h.duration for h in handles) / len(handles)
    return mean, sim.events_executed


def test_granularity_flow(benchmark):
    benchmark.group = "network granularity"
    mean, _ = once(benchmark, run_flow)
    assert mean > 0


@pytest.mark.parametrize("mtu", [9000.0, 1500.0])
def test_granularity_packet(benchmark, mtu):
    benchmark.group = "network granularity"
    mean, _ = once(benchmark, run_packet, mtu)
    assert mean > 0


def test_granularity_shape_claims(benchmark):
    def run_all():
        t0 = time.perf_counter()
        flow_mean, flow_events = run_flow()
        t_flow = time.perf_counter() - t0
        t0 = time.perf_counter()
        pkt_mean, pkt_events = run_packet(1500.0)
        t_pkt = time.perf_counter() - t0
        return flow_mean, flow_events, t_flow, pkt_mean, pkt_events, t_pkt

    flow_mean, flow_events, t_flow, pkt_mean, pkt_events, t_pkt = \
        once(benchmark, run_all)
    print_table(
        "Network granularity: same workload, two models",
        ["model", "mean transfer time", "kernel events", "wall seconds"],
        [("flow-level", f"{flow_mean:.2f}s", flow_events, f"{t_flow:.3f}"),
         ("packet-level (MTU 1500)", f"{pkt_mean:.2f}s", pkt_events,
          f"{t_pkt:.3f}")])

    # Accuracy: the cheap model tracks the detailed one on this path.
    assert flow_mean == pytest.approx(pkt_mean, rel=0.25)
    # Cost: the packet model pays per-packet — orders of magnitude more
    # kernel events (SIZE/MTU = 200 packets x 2 hops per transfer).
    assert pkt_events > 20 * flow_events
