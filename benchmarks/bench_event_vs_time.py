"""E3 — event-driven vs time-driven advancement efficiency.

Paper source (§3): "An event-driven DES is more efficient than a
time-driven DES since it does not step through regular time intervals when
no event occurs."

Workload: an identical M/M/1 model run on both engines across event
densities (arrival rates) spanning four orders of magnitude, with a fixed
tick.  Shape targets: the event-driven engine's cost tracks the *event*
count; the time-driven engine's cost tracks the *horizon/tick* count, so
event-driven wins by orders of magnitude at low density and the gap closes
as density approaches the tick rate.
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator, TimeDrivenSimulator

HORIZON = 2_000.0
TICK = 0.1


def mm1_model(sim, rate: float, horizon: float) -> list[int]:
    """Shared M/M/1 body; returns a one-cell list counting completions."""
    arr = sim.stream("arr")
    svc = sim.stream("svc")
    waiting: list[float] = []
    busy = [False]
    done = [0]

    def depart() -> None:
        done[0] += 1
        busy[0] = False
        if waiting:
            start(waiting.pop(0))

    def start(_arrived: float) -> None:
        busy[0] = True
        sim.schedule(svc.exponential(0.3 / rate), depart)

    def arrive() -> None:
        if busy[0]:
            waiting.append(sim.now)
        else:
            start(sim.now)
        nxt = arr.exponential(1.0 / rate)
        if sim.now + nxt < horizon:
            sim.schedule(nxt, arrive)

    sim.schedule(0.0, arrive)
    return done


def run_event_driven(rate: float) -> tuple[int, int]:
    sim = Simulator(seed=3)
    done = mm1_model(sim, rate, HORIZON)
    sim.run()
    return done[0], sim.events_executed


def run_time_driven(rate: float) -> tuple[int, int]:
    sim = TimeDrivenSimulator(tick=TICK, seed=3)
    done = mm1_model(sim, rate, HORIZON)
    sim.run()
    return done[0], sim.ticks_stepped


@pytest.mark.parametrize("rate", [0.01, 0.1, 1.0, 10.0])
def test_e3_event_driven(benchmark, rate):
    benchmark.group = f"mm1 rate={rate}"
    done, _ = benchmark(run_event_driven, rate)
    assert done > 0


@pytest.mark.parametrize("rate", [0.01, 0.1, 1.0, 10.0])
def test_e3_time_driven(benchmark, rate):
    benchmark.group = f"mm1 rate={rate}"
    done, _ = benchmark(run_time_driven, rate)
    assert done > 0


def test_e3_shape_claims(benchmark):
    import time

    def run_all():
        rows = []
        for rate in (0.01, 0.1, 1.0, 10.0):
            t0 = time.perf_counter()
            done_e, events = run_event_driven(rate)
            te = time.perf_counter() - t0
            t0 = time.perf_counter()
            done_t, ticks = run_time_driven(rate)
            tt = time.perf_counter() - t0
            rows.append((rate, done_e, events, f"{te:.4f}", ticks,
                         f"{tt:.4f}", f"{tt / te:.1f}x"))
            # Same model, but quantization rounds every inter-arrival gap
            # up by ~tick/2 on average, so the time-driven run admits a
            # predictable ~rate*tick/2 fewer jobs — that deficit IS the
            # accuracy cost §3 attributes to time stepping; assert the
            # drift stays within that analytic envelope.
            envelope = max(3, 1.2 * (rate * TICK / 2.0) * done_e + 0.01 * done_e)
            assert abs(done_e - done_t) <= envelope
        return rows

    rows = once(benchmark, run_all)
    print_table(
        "E3: event-driven vs time-driven (tick=0.1, horizon=2000)",
        ["rate", "jobs", "events", "ED secs", "ticks", "TD secs", "TD/ED"],
        rows)
    # At the lowest density the time-driven engine steps through ~20k empty
    # ticks for a few dozen events: it must be clearly slower.
    sparse = rows[0]
    assert float(sparse[5]) > float(sparse[3])
    # The cost ratio shrinks monotonically-ish as density rises.
    assert float(rows[-1][6][:-1]) < float(rows[0][6][:-1])
