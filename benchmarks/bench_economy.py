"""E10 — GridSim's deadline x budget cost-time optimization sweep.

Paper source (§4): GridSim "is mainly used to study cost-time optimization
algorithms for scheduling task farming applications on heterogeneous
Grids, considering economy based distributed resource management, dealing
with deadline and budget constraints."

Rows regenerated: completion rate, spend, and makespan per (deadline,
budget) corner for the time- and cost-optimization strategies — the
Nimrod-G/GridSim DBC matrix.  Shape targets: time-opt never slower,
cost-opt never dearer; tight budgets starve the time-optimizer; the
infeasible corner fails under both.
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.simulators import GridSimModel

N = 40
CORNERS = {
    "loose-D/big-B": (2000.0, 1e6),
    "tight-D/big-B": (120.0, 1e6),
    "loose-D/small-B": (2000.0, 6e4),
    # cheapest offer is 1 G$/MI and the shortest gridlet is ~100 MI, so a
    # 50 G$ budget can never admit anything: truly infeasible
    "infeasible": (4.0, 50.0),
}


def run_corner(corner: str, strategy: str) -> dict:
    deadline, budget = CORNERS[corner]
    sim = Simulator(seed=21)
    return GridSimModel(sim).run_dbc(n_gridlets=N, deadline=deadline,
                                     budget=budget, strategy=strategy)


@pytest.mark.parametrize("strategy", ["time", "cost"])
@pytest.mark.parametrize("corner", sorted(CORNERS))
def test_e10_dbc_corner(benchmark, corner, strategy):
    benchmark.group = f"dbc {corner}"
    summary = once(benchmark, run_corner, corner, strategy)
    assert summary["completed"] + summary["failed"] == N
    assert summary["spent"] <= CORNERS[corner][1] + 1e-6


def test_e10_shape_claims(benchmark):
    def run_all():
        return {(c, s): run_corner(c, s)
                for c in CORNERS for s in ("time", "cost")}

    results = once(benchmark, run_all)
    print_table(
        "E10: DBC sweep (40 gridlets, 4 priced resources)",
        ["corner", "strategy", "completed", "spent", "makespan", "misses"],
        [(c, s, f"{r['completed']}/{N}", f"{r['spent']:.0f}",
          f"{r['makespan']:.1f}", r["deadline_misses"])
         for (c, s), r in sorted(results.items())])

    base_t = results[("loose-D/big-B", "time")]
    base_c = results[("loose-D/big-B", "cost")]
    # The defining trade-off: time-opt no later, cost-opt no dearer.
    assert base_t["makespan"] <= base_c["makespan"] + 1e-9
    assert base_c["spent"] <= base_t["spent"] + 1e-9
    # Everything completes when constraints are loose.
    assert base_t["completed"] == N and base_c["completed"] == N
    # A small budget forces failures for the spend-hungry time optimizer.
    small_b = results[("loose-D/small-B", "time")]
    assert small_b["failed"] > 0
    # The cost optimizer stretches the small budget at least as far.
    assert results[("loose-D/small-B", "cost")]["completed"] \
        >= small_b["completed"]
    # Nobody completes anything in the infeasible corner.
    assert results[("infeasible", "time")]["completed"] == 0
    assert results[("infeasible", "cost")]["completed"] == 0
    # No deadline misses among accepted jobs (admission keeps its promise).
    for r in results.values():
        assert r["deadline_misses"] == 0
