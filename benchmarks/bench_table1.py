"""E1 / Table 1 — regenerate the design-comparison table.

Paper source: Table 1, "Design comparison of surveyed Grid simulation
projects", plus every Section-4 prose claim encoded as an assertion.
The benchmark times full regeneration (registry → consistency rules →
all three renderings), demonstrating the classification framework is
cheap enough to run in CI on every change.
"""

from conftest import once, print_table

from repro.taxonomy import (
    SURVEYED,
    Component,
    InputKind,
    Motivation,
    SpecMode,
    ValidationKind,
    all_records,
    record,
    render_ascii,
    render_csv,
    render_markdown,
    table1_rows,
    validate_registry,
)


def regenerate_table1() -> dict[str, str]:
    violations = validate_registry(all_records())
    assert violations == [], violations
    return {
        "ascii": render_ascii(),
        "markdown": render_markdown(),
        "csv": render_csv(),
    }


def test_e1_table1_regeneration(benchmark):
    outputs = once(benchmark, regenerate_table1)
    rows = table1_rows()
    print_table("Table 1 (first axes)", rows[0], rows[1:6])
    print(f"  ... full table: {len(rows) - 1} axes x {len(SURVEYED)} simulators "
          f"({len(outputs['ascii'])} chars ascii, "
          f"{len(outputs['csv'])} chars csv)")

    # -- the paper's Section-4 claims, asserted against the regenerated rows --
    # Bricks is the exception lacking runtime-defined components.
    assert not record("Bricks").runtime_components
    # SimGrid provides no middleware-layer support facilities.
    assert Component.MIDDLEWARE not in record("SimGrid").components
    # Validation studies exist only for Bricks, MONARC and SimGrid.
    assert {r.name for r in SURVEYED if r.validation is not ValidationKind.NONE} \
        == {"Bricks", "SimGrid", "MONARC 2"}
    # Visual design interfaces: GridSim and MONARC 2.
    assert {r.name for r in SURVEYED if SpecMode.VISUAL in r.spec_modes} \
        == {"GridSim", "MONARC 2"}
    # ChicagoSim accepts only input data generators; MONARC 2 accepts both.
    assert record("ChicagoSim").input_kinds == frozenset({InputKind.GENERATOR})
    assert record("MONARC 2").input_kinds == frozenset(
        {InputKind.GENERATOR, InputKind.MONITORED})
    # GridSim's defining motivation is the computational economy.
    assert Motivation.ECONOMY in record("GridSim").motivations
