"""E9 — compile-time vs runtime scheduling (SimGrid's two categories).

Paper source (§4): "SimGrid can be used to simulate compile time and
running scheduling algorithms.  In the first category, all scheduling
decisions are taken before the execution.  In the second category some
decision are taken during the execution."

Rows regenerated: DAG makespans for static HEFT vs dynamic
predictive-dispatch on a quiet platform and under background-load churn;
plus the independent-task batch heuristics (min-min / max-min / sufferage
vs the work-queue runtime baseline).  Shape targets: static wins when its
cost model stays true (quiet platform); churn erodes the static plan's
advantage; max-min beats min-min when a few monster tasks dominate.
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.hosts import Grid, Site, SpaceSharedMachine
from repro.middleware import (
    GridRunner,
    Job,
    MaxMinScheduler,
    MinMinScheduler,
    SufferageScheduler,
    WorkQueueRunner,
)
from repro.network import Topology
from repro.simulators import SimGridModel
from repro.workloads import layered_dag, task_farm

HOSTS = {"h0": 1500.0, "h1": 900.0, "h2": 500.0, "h3": 300.0}


def dag_makespan(mode: str, churn: bool, seed: int = 13) -> float:
    dag = layered_dag(Simulator(seed=seed).stream("dag"), layers=5, width=4,
                      mean_edge_bytes=2e5)
    sim = Simulator(seed=seed)
    model = SimGridModel(sim, HOSTS,
                         background_peak=0.8 if churn else None,
                         background_horizon=5_000.0)
    if mode == "static":
        return model.run_compile_time(dag)
    return model.run_runtime(dag)


def farm_makespan(policy: str, seed: int = 17) -> float:
    sim = Simulator(seed=seed)
    topo = Topology()
    names = sorted(HOSTS)
    topo.add_node("hub")
    for n in names:
        topo.add_link(n, "hub", 1e8, 0.002)
    sites = [Site(sim, n, machines=[SpaceSharedMachine(
        sim, pes=2, rating=HOSTS[n], name=f"{n}-m")]) for n in names]
    grid = Grid(sim, topo, sites)
    # heavy-tailed farm: a few monsters among many small tasks
    jobs = task_farm(sim.stream("farm"), 60, mean_length=3000.0,
                     length_model="heavy")
    if policy == "workqueue":
        runner = WorkQueueRunner(sim, grid)
    else:
        batch = {"min-min": MinMinScheduler(), "max-min": MaxMinScheduler(),
                 "sufferage": SufferageScheduler()}[policy]
        runner = GridRunner(sim, grid, batch=batch)
    runner.submit_all(jobs)
    sim.run()
    assert len(runner.completed) == 60
    return runner.makespan


@pytest.mark.parametrize("mode", ["static", "runtime"])
@pytest.mark.parametrize("churn", [False, True], ids=["quiet", "churn"])
def test_e9_dag_scheduling(benchmark, mode, churn):
    benchmark.group = f"dag {'churn' if churn else 'quiet'}"
    makespan = once(benchmark, dag_makespan, mode, churn)
    assert makespan > 0


@pytest.mark.parametrize("policy", ["min-min", "max-min", "sufferage",
                                    "workqueue"])
def test_e9_batch_heuristics(benchmark, policy):
    benchmark.group = "task farm heuristics"
    makespan = once(benchmark, farm_makespan, policy)
    assert makespan > 0


def test_e9_shape_claims(benchmark):
    def run_all():
        seeds = (13, 29, 47)
        dag = {(m, c): [dag_makespan(m, c, seed=s) for s in seeds]
               for m in ("static", "runtime") for c in (False, True)}
        farm = {p: farm_makespan(p) for p in
                ("min-min", "max-min", "sufferage", "workqueue")}
        return dag, farm

    dag, farm = once(benchmark, run_all)

    def mean(xs):
        return sum(xs) / len(xs)

    print_table("E9: DAG makespan, compile-time (HEFT) vs runtime "
                "(mean of 3 DAGs)",
                ["platform", "static", "runtime", "static advantage"],
                [("quiet", f"{mean(dag[('static', False)]):.1f}s",
                  f"{mean(dag[('runtime', False)]):.1f}s",
                  f"{mean(dag[('runtime', False)]) / mean(dag[('static', False)]):.2f}x"),
                 ("churn", f"{mean(dag[('static', True)]):.1f}s",
                  f"{mean(dag[('runtime', True)]):.1f}s",
                  f"{mean(dag[('runtime', True)]) / mean(dag[('static', True)]):.2f}x")])
    print_table("E9b: heavy-tailed task farm makespans",
                ["policy", "makespan"],
                [(p, f"{m:.1f}s") for p, m in sorted(farm.items())])

    quiet_adv = mean(dag[("runtime", False)]) / mean(dag[("static", False)])
    churn_adv = mean(dag[("runtime", True)]) / mean(dag[("static", True)])
    # On a quiet platform the compile-time plan is at least competitive.
    assert quiet_adv > 0.9
    # Load churn erodes the static plan's edge (the crossover direction).
    assert churn_adv < quiet_adv * 1.2
    # Monster tasks: max-min must not lose to min-min by scheduling the
    # monsters last (the textbook contrast).
    assert farm["max-min"] <= farm["min-min"] * 1.05
