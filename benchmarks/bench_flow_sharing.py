"""E8 baseline collector — incremental vs full max-min bandwidth sharing.

Runs the deterministic flow-churn workload (``repro.workloads.flowchurn``:
many disjoint site pairs chaining transfers, plus a handful of long-lived
flows on one shared backbone) under both sharing engines of
``repro.network.flow.FlowNetwork``:

* ``incremental=True`` — component-scoped recompute, coalesced flushes,
  epsilon-preserved completion events;
* ``incremental=False`` — the retained full progressive-filling reference
  that recomputes every flow and cancels+reschedules every completion
  event on each admit/finish (the churn baseline).

Completion times are cross-checked between the two engines while
collecting — a baseline refresh that silently recorded a divergent
allocator would poison every later comparison.  The headline ratios are
the completion-event churn saved (``reschedule_ratio``) and the wall-clock
speedup; ``run_kernel_baseline.py --section e8`` merges the section into
``BENCH_kernel.json`` as ``e8_flow_sharing``.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent / "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.workloads.flowchurn import build_flow_churn  # noqa: E402

#: relative tolerance for the incremental-vs-reference completion-time
#: cross-check: covers epsilon-preserved stale rates (RESCHEDULE_EPS) and
#: float tie-break noise between component-local and global filling.
EQUIV_REL_TOL = 1e-9


def _run_mode(incremental: bool, repeats: int, **params):
    """Best-of-*repeats* run of one engine; returns (stats, completions)."""
    best = None
    completions = None
    for _ in range(max(1, repeats)):
        model = build_flow_churn(incremental=incremental, **params).run()
        stats = model.stats()
        if best is None or stats["wall_seconds"] < best["wall_seconds"]:
            best = stats
            completions = model.completion_times()
    return best, completions


def collect_e8(pairs: int = 60, transfers_per_pair: int = 12,
               backbone_flows: int = 4, repeats: int = 3) -> dict:
    """Best-of-*repeats* churn/wall numbers for both sharing engines, plus
    the saved-work ratios, as the ``e8_flow_sharing`` baseline section."""
    params = {"pairs": pairs, "transfers_per_pair": transfers_per_pair,
              "backbone_flows": backbone_flows}
    section: dict = {"params": {**params, "repeats": repeats}, "results": {}}

    inc, inc_times = _run_mode(True, repeats, **params)
    full, full_times = _run_mode(False, repeats, **params)

    worst = 0.0
    for got, want in zip(inc_times, full_times):
        worst = max(worst, abs(got - want) / max(abs(want), 1e-30))
        if not math.isclose(got, want, rel_tol=EQUIV_REL_TOL, abs_tol=1e-12):
            raise AssertionError(
                f"E8 baseline: incremental completion time {got!r} diverged "
                f"from full reference {want!r} — refusing to record a broken "
                f"allocator")

    section["results"]["incremental"] = inc
    section["results"]["full"] = full
    section["worst_completion_rel_diff"] = worst
    section["ratios"] = {
        "reschedule_ratio": (full["rescheduled"] / inc["rescheduled"]
                             if inc["rescheduled"] else math.inf),
        "flows_touched_ratio": (full["flows_touched"] / inc["flows_touched"]
                                if inc["flows_touched"] else math.inf),
        "wall_speedup": (full["wall_seconds"] / inc["wall_seconds"]
                         if inc["wall_seconds"] > 0 else math.inf),
    }
    return section


if __name__ == "__main__":  # pragma: no cover - ad-hoc inspection
    import json

    print(json.dumps(collect_e8(repeats=1), indent=2, sort_keys=True))
