"""E5 — the MONARC T0/T1 replication study (Legrand et al. 2005).

Paper source (§5): MONARC 2's LHC study "indicated the role of using a
data replication agent for the intelligent transferring of the produced
data" and "showed that the existing capacity of 2.5 Gbps was not
sufficient and, in fact, not far afterwards the link was upgraded to a
current 30 Gbps."

Rows regenerated: per uplink capacity {0.622, 1.25, 2.5, 10, 30} Gbps —
files produced/replicated, peak and final backlog, mean transfer time;
plus agent-vs-pull at 10 Gbps.  Shape targets: divergence at <= 2.5 Gbps
for full CMS+ATLAS three-T1 replication, steady state at 10/30; the agent
bounds the transfer burstiness that on-demand pull suffers.
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.simulators import MonarcModel
from repro.workloads import ATLAS_2005, CMS_2005

HORIZON = 1_200.0
CAPACITIES = [0.622, 1.25, 2.5, 10.0, 30.0]


def study(uplink_gbps: float, agent: bool = True):
    sim = Simulator(seed=7)
    model = MonarcModel(sim, n_tier1=3, uplink_gbps=uplink_gbps,
                        agent_enabled=agent)
    return model.run_t0_t1_study(horizon=HORIZON,
                                 experiments=[CMS_2005, ATLAS_2005])


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_e5_capacity_sweep(benchmark, capacity):
    benchmark.group = "t0-t1 study"
    result = once(benchmark, study, capacity)
    assert result.produced_files > 0


def test_e5_shape_claims(benchmark):
    results = once(benchmark, lambda: {c: study(c) for c in CAPACITIES})
    rows = []
    for cap, r in results.items():
        rows.append((f"{cap:g} Gbps", r.produced_files, r.replicated_files,
                     r.peak_backlog_files, r.final_backlog_files,
                     f"{r.mean_transfer_time:.1f}s",
                     "DIVERGES" if r.diverged else "keeps up"))
    print_table("E5: T0->T1 replication vs uplink capacity "
                "(CMS+ATLAS, 3 T1 replicas, agent on)",
                ["uplink", "produced", "replicated", "peak backlog",
                 "final backlog", "mean xfer", "verdict"], rows)

    # The study's headline: 2.5 Gbps is not sufficient...
    assert results[2.5].diverged
    assert results[1.25].diverged and results[0.622].diverged
    # ...and the upgrade target keeps up.
    assert not results[30.0].diverged
    assert not results[10.0].diverged
    assert results[30.0].final_backlog_files == 0
    # Monotone relief: more capacity, never a worse peak backlog.
    peaks = [results[c].peak_backlog_files for c in CAPACITIES]
    assert all(a >= b for a, b in zip(peaks, peaks[1:]))


def test_e5_agent_vs_pull(benchmark):
    def both():
        return study(10.0, agent=True), study(10.0, agent=False)

    agent_r, pull_r = once(benchmark, both)
    print_table("E5b: replication agent vs on-demand pull at 10 Gbps",
                ["mode", "replicated", "peak backlog", "mean xfer"],
                [("agent", agent_r.replicated_files,
                  agent_r.peak_backlog_files, f"{agent_r.mean_transfer_time:.1f}s"),
                 ("pull", pull_r.replicated_files,
                  pull_r.peak_backlog_files, f"{pull_r.mean_transfer_time:.1f}s")])
    # Both deliver everything at ample capacity...
    assert agent_r.final_backlog_files == 0
    assert pull_r.final_backlog_files == 0
    # ...but the agent's bounded in-flight window keeps individual
    # transfers fast where pull's all-at-once fan-out stretches them.
    assert agent_r.mean_transfer_time <= pull_r.mean_transfer_time * 1.05
