"""E14 (extension) — simplification mechanisms: coarsened vs detailed models.

Paper source (§5): the engine "can be optimized ... by using various
simplifications mechanisms" — the third scale remedy next to better queues
and better entity scheduling.

Rows regenerated: detailed N-site grid vs the same system coarsened into
K super-sites, at several coarsening ratios, on the same scheduling
workload.  Shape targets: kernel-event count (and wall time) drops with
the coarsening ratio while the makespan estimate stays within a modest
error band — the accuracy/cost frontier a practitioner actually navigates.
"""

import time

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.hosts import Disk, Grid, Site, SpaceSharedMachine, coarsen_grid
from repro.middleware import GridRunner, Job, LeastLoadedScheduler, ReplicaCatalog
from repro.network import FileSpec, Topology

N_SITES = 24
N_JOBS = 300


def detailed_grid(sim) -> Grid:
    """24 sites, one dataset scattered per site (data-grid workload)."""
    topo = Topology()
    topo.add_node("WAN")
    sites = []
    for i in range(N_SITES):
        name = f"s{i:02d}"
        topo.add_link(name, "WAN", 1e8, 0.01)
        site = Site(sim, name,
                    machines=[SpaceSharedMachine(
                        sim, pes=2, rating=400.0 + 50.0 * (i % 4),
                        name=f"{name}-m")],
                    disk=Disk(sim, 1e12, name=f"{name}-d"))
        site.store_file(FileSpec(f"dataset-{i:02d}", 2e7))
        sites.append(site)
    return Grid(sim, topo, sites)


def run_model(groups: int | None):
    """groups=None: detailed; groups=K: coarsened into K super-sites.

    Jobs each read one scattered dataset, so the detailed model pays WAN
    staging that the coarse model partly internalizes (intra-group data
    becomes local) — the fidelity the simplification trades away.
    """
    sim = Simulator(seed=5)
    if groups is None:
        grid = detailed_grid(sim)
    else:
        ref = detailed_grid(Simulator())
        per = N_SITES // groups
        grid = coarsen_grid(sim, ref, {
            f"g{k}": [f"s{i:02d}" for i in range(k * per, (k + 1) * per)]
            for k in range(groups)})
    catalog = ReplicaCatalog(grid)
    for site in grid.sites.values():
        catalog.ingest_site(site)
    runner = GridRunner(sim, grid, scheduler=LeastLoadedScheduler(),
                        catalog=catalog)
    jobs = [Job(id=i, length=2000.0, submitted=0.25 * i,
                input_files=(FileSpec(f"dataset-{(i * 7) % N_SITES:02d}", 2e7),))
            for i in range(N_JOBS)]
    runner.submit_all(jobs)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    assert len(runner.completed) == N_JOBS
    return runner.makespan, sim.events_executed, wall


@pytest.mark.parametrize("groups", [None, 6, 2],
                         ids=["detailed-24", "coarse-6", "coarse-2"])
def test_e14_models(benchmark, groups):
    benchmark.group = "simplification"
    makespan, _, _ = once(benchmark, run_model, groups)
    assert makespan > 0


def test_e14_shape_claims(benchmark):
    def run_all():
        return {label: run_model(g)
                for label, g in (("detailed (24 sites)", None),
                                 ("coarse (6 super-sites)", 6),
                                 ("coarse (2 super-sites)", 2))}

    results = once(benchmark, run_all)
    exact_ms, exact_events, _ = results["detailed (24 sites)"]
    print_table(
        "E14: coarsening accuracy vs cost (300 jobs, least-loaded)",
        ["model", "makespan", "error", "kernel events", "event savings"],
        [(label, f"{ms:.1f}s", f"{abs(ms - exact_ms) / exact_ms:.1%}",
          ev, f"{1 - ev / exact_events:.0%}")
         for label, (ms, ev, _) in results.items()])

    for label, (ms, ev, _) in results.items():
        if label.startswith("coarse"):
            # accuracy: within a modest band of the detailed model
            assert abs(ms - exact_ms) / exact_ms < 0.25, label
            # cost: strictly fewer kernel events than the detailed model
            assert ev <= exact_events, label
    # pooling bias is one-directional: the coarse models are optimistic
    # (shared queues drain no later than split queues)
    assert results["coarse (2 super-sites)"][0] <= exact_ms * 1.05
