#!/usr/bin/env python
"""Refresh the kernel hot-path perf baseline (``BENCH_kernel.json``).

Usage::

    PYTHONPATH=src python benchmarks/run_kernel_baseline.py            # full
    python benchmarks/run_kernel_baseline.py --smoke                   # CI
    python benchmarks/run_kernel_baseline.py --repeats 5 --out /tmp/b.json
    python benchmarks/run_kernel_baseline.py --section e7              # E7 only

The full run measures every queue structure under the fused single-call
dispatch protocol and the legacy peek+pop protocol (see
``bench_kernel_hotpath.py``) and writes the JSON baseline at the repo root.
``--smoke`` shrinks the workloads ~50x and skips the speedup floor check so
the harness can run on noisy CI machines without flaking.

``--section`` selects what to refresh: ``kernel`` (the hot-path sweep),
``e7`` (the executor comparison from ``bench_e7_committed.py``, merged as
the ``e7_executors`` key), ``e8`` (the incremental bandwidth-sharing
comparison from ``bench_flow_sharing.py``, merged as ``e8_flow_sharing``),
``e9`` (the million-entity adaptive-queue scenario from
``bench_e9_million.py``, merged as ``e9_million_entity``), ``e10`` (the
campaign process-pool fan-out from ``bench_e10_campaign.py``, merged as
``e10_campaign``), ``e11`` (the fleet-observability overhead sweep from
``bench_e11_obs_fleet.py``, merged as ``e11_obs_fleet``), ``e12`` (the
correlated-fault dependability gates from ``bench_e12_dependability.py``,
merged as ``e12_dependability``), or ``all``.  A partial refresh merges
into the existing baseline file instead of overwriting the other sections.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent
# Make the script runnable without an installed package or PYTHONPATH.
for p in (str(_HERE), str(_ROOT / "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from bench_e7_committed import collect_e7  # noqa: E402
from bench_e9_million import collect_e9  # noqa: E402
from bench_e10_campaign import collect_e10  # noqa: E402
from bench_e11_obs_fleet import E11_BUDGETS_PCT, collect_e11  # noqa: E402
from bench_e12_dependability import collect_e12  # noqa: E402
from bench_flow_sharing import collect_e8  # noqa: E402
from bench_kernel_hotpath import collect_baseline  # noqa: E402

#: acceptance floor for the structures the engine actually defaults to /
#: the paper singles out; checked only on full (non-smoke) refreshes
SPEEDUP_FLOOR = 1.25
FLOOR_KINDS = ("heap", "calendar")

#: E8 acceptance floor: the incremental sharing engine must cut
#: completion-event cancel+reschedule churn at least this much versus the
#: full progressive-filling reference (checked only on non-smoke refreshes)
E8_RESCHEDULE_FLOOR = 3.0

#: E9 acceptance floor: at million-entity scale the self-tuning queue must
#: beat the hand-picked heap's events/sec by at least this much (it
#: currently lands 1.5-2x; the floor catches a broken migration policy,
#: not machine-to-machine eps variance).
E9_ADAPTIVE_FLOOR = 1.1

#: E10 acceptance floor: the process-pool campaign runner must cut
#: wall-clock at least this much at 4 workers vs serial on a 100-run
#: M/M/1 campaign.  Run-level parallelism is CPU-bound, so the floor is
#: only checked on machines with >= 4 cores (byte-identical per-seed
#: records are checked everywhere, including smoke).
E10_SPEEDUP_FLOOR = 3.0
E10_MIN_CPUS = 4


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repeats", type=int, default=5,
                    help="best-of-N repeats per (structure, scenario)")
    ap.add_argument("--scale", type=float, default=1.0,
                    help="workload size multiplier")
    ap.add_argument("--out", type=Path, default=_ROOT / "BENCH_kernel.json",
                    help="output JSON path")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny workloads, no speedup floor (CI smoke)")
    ap.add_argument("--section",
                    choices=("all", "kernel", "e7", "e8", "e9", "e10",
                             "e11", "e12"),
                    default="all",
                    help="which baseline section(s) to refresh; partial "
                         "refreshes merge into the existing file")
    args = ap.parse_args(argv)

    repeats = 1 if args.smoke else args.repeats
    scale = 0.02 if args.smoke else args.scale

    t0 = time.time()
    if args.section in ("e7", "e8", "e9", "e10", "e11",
                        "e12") and args.out.exists():
        baseline = json.loads(args.out.read_text())
    elif args.section in ("all", "kernel"):
        kernel = collect_baseline(repeats=repeats, scale=scale)
        if args.section == "kernel" and args.out.exists():
            baseline = json.loads(args.out.read_text())
            baseline.update(kernel)
        else:
            baseline = kernel
    else:
        baseline = {}

    if args.section in ("all", "e7"):
        e7_scale = 0.2 if args.smoke else 1.0
        baseline["e7_executors"] = collect_e7(
            jobs_per_site=max(20, int(150 * e7_scale)),
            horizon=max(50.0, 400.0 * e7_scale),
            repeats=repeats)

    if args.section in ("all", "e8"):
        e8_scale = 0.25 if args.smoke else 1.0
        baseline["e8_flow_sharing"] = collect_e8(
            pairs=max(8, int(60 * e8_scale)),
            transfers_per_pair=max(4, int(12 * e8_scale)),
            repeats=repeats)

    if args.section in ("all", "e9"):
        entities = max(20_000, int(1_000_000 * scale))
        baseline["e9_million_entity"] = collect_e9(
            entities=entities, repeats=repeats)

    if args.section in ("all", "e10"):
        e10_scale = 0.1 if args.smoke else 1.0
        baseline["e10_campaign"] = collect_e10(
            runs=max(10, int(100 * e10_scale)),
            jobs=max(500, int(3_000 * e10_scale)),
            repeats=repeats)

    if args.section in ("all", "e11"):
        baseline["e11_obs_fleet"] = collect_e11(repeats=repeats, scale=scale)

    if args.section in ("all", "e12"):
        # Kept full-size under --smoke: the 30-replication floor is part
        # of the acceptance criteria and the whole section runs in seconds.
        baseline["e12_dependability"] = collect_e12()

    baseline["created"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    baseline["python"] = platform.python_version()
    baseline["platform"] = platform.platform()
    baseline["smoke"] = args.smoke
    baseline["wall_seconds"] = round(time.time() - t0, 1)

    args.out.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.out} ({baseline['wall_seconds']}s)")
    if args.section in ("all", "kernel") and "results" in baseline:
        header = f"{'structure':<10} {'scenario':<8} {'fused ev/s':>12} {'legacy ev/s':>12} {'speedup':>8}"
        print(header)
        print("-" * len(header))
        for kind, scenarios in baseline["results"].items():
            for scenario, row in scenarios.items():
                print(f"{kind:<10} {scenario:<8} {row['fused_eps']:>12,.0f} "
                      f"{row['legacy_eps']:>12,.0f} {row['speedup']:>7.2f}x")

        obs = baseline["obs_overhead"]
        print(f"obs overhead ({obs['structure']} {obs['scenario']}): "
              f"pre-obs {obs['pre_obs_eps']:,.0f} ev/s, "
              f"disabled {obs['disabled_eps']:,.0f} ev/s "
              f"({obs['disabled_overhead_pct']:+.2f}%), "
              f"enabled {obs['enabled_eps']:,.0f} ev/s "
              f"({obs['enabled_overhead_pct']:+.2f}%)")

    if "e7_executors" in baseline:
        e7 = baseline["e7_executors"]
        hdr = (f"{'executor':<16} {'cmt ev/s':>10} {'eff':>6} {'rollb':>6} "
               f"{'antis':>6} {'nulls':>6}")
        print(hdr)
        print("-" * len(hdr))
        for name, row in e7["results"].items():
            print(f"{name:<16} {row['committed_eps']:>10,.0f} "
                  f"{row['efficiency']:>6.3f} {row['rollbacks']:>6} "
                  f"{row['anti_messages']:>6} {row['null_messages']:>6}")

    if "e8_flow_sharing" in baseline:
        e8 = baseline["e8_flow_sharing"]
        hdr = (f"{'sharing engine':<14} {'wall s':>8} {'recomp':>8} "
               f"{'touched':>9} {'resched':>9} {'preserv':>8}")
        print(hdr)
        print("-" * len(hdr))
        for name, row in e8["results"].items():
            print(f"{name:<14} {row['wall_seconds']:>8.3f} "
                  f"{row['recomputes']:>8,} {row['flows_touched']:>9,} "
                  f"{row['rescheduled']:>9,} {row['preserved']:>8,}")
        r = e8["ratios"]
        print(f"reschedule churn cut {r['reschedule_ratio']:.1f}x, "
              f"flows touched cut {r['flows_touched_ratio']:.1f}x, "
              f"wall speedup {r['wall_speedup']:.2f}x "
              f"(worst completion diff {e8['worst_completion_rel_diff']:.2e})")

    if "e9_million_entity" in baseline:
        e9 = baseline["e9_million_entity"]
        hdr = (f"{'structure':<10} {'sched ev/s':>11} {'run ev/s':>10} "
               f"{'events':>10} {'migrations':>10}")
        print(hdr)
        print("-" * len(hdr))
        for name, row in e9["results"].items():
            print(f"{name:<10} {row['schedule_eps']:>11,.0f} "
                  f"{row['run_eps']:>10,.0f} {row['events']:>10,} "
                  f"{row.get('migrations', '-'):>10}")
        if "adaptive_vs_heap" in e9:
            path = e9["results"]["adaptive"].get("migration_path", [])
            print(f"adaptive vs heap at {e9['entities']:,} entities: "
                  f"{e9['adaptive_vs_heap']:.2f}x "
                  f"(migrations: {' '.join(path) or 'none'}; "
                  f"target {e9['target_eps']:,} ev/s)")

    if "e10_campaign" in baseline:
        e10 = baseline["e10_campaign"]
        hdr = (f"{'config':<8} {'workers':>7} {'wall s':>8} {'speedup':>8} "
               f"{'identical':>10}")
        print(hdr)
        print("-" * len(hdr))
        for name, row in e10["results"].items():
            print(f"{name:<8} {row['workers']:>7} "
                  f"{row['wall_seconds']:>8.3f} {row['speedup']:>7.2f}x "
                  f"{str(row['identical']):>10}")
        print(f"campaign: {e10['runs']} x M/M/1({e10['rho']}) "
              f"{e10['jobs_per_run']} jobs, {e10['cpu_count']} cpu(s); "
              f"byte-identical records: {e10['all_identical']}")

    if "e12_dependability" in baseline:
        e12 = baseline["e12_dependability"]
        avail = e12["availability"]
        churn = e12["fault_churn"]
        print(f"e12: {e12['runs']} x dependability "
              f"(sites={e12['sites']}, mtbf={e12['mtbf']}, "
              f"mttr={e12['mttr']}) — serial "
              f"{e12['serial_wall_seconds']:.2f}s, "
              f"{e12['pool_workers']}w {e12['pooled_wall_seconds']:.2f}s, "
              f"identical: {e12['identical']}")
        print(f"     availability CI [{avail['ci_lo']:.5f}, "
              f"{avail['ci_hi']:.5f}] vs theory {avail['theory']:.5f} "
              f"-> contains: {avail['ci_contains_theory']}; churn gap "
              f"{churn['differential_gap']:.3f} <= "
              f"{churn['differential_bound']:.3f}: "
              f"{churn['differential_ok']}")

    if "e11_obs_fleet" in baseline:
        e11 = baseline["e11_obs_fleet"]
        hdr = f"{'mode':<10} {'ev/s':>12} {'overhead':>9} {'budget':>8}"
        print(hdr)
        print("-" * len(hdr))
        for mode, row in e11["results"].items():
            over = e11["overhead_pct"].get(mode)
            budget = e11["budgets_pct"].get(mode)
            print(f"{mode:<10} {row['eps']:>12,.0f} "
                  f"{'-' if over is None else f'{over:+.2f}%':>9} "
                  f"{'-' if budget is None else f'<={budget:.0f}%':>8}")
        print(f"metric counters consistent: {e11['counters_consistent']}")

    if args.section in ("all", "e11") and "e11_obs_fleet" in baseline:
        e11 = baseline["e11_obs_fleet"]
        if not e11["counters_consistent"]:
            print("FAIL: metric instruments disagree with the engine's "
                  "fired-event count — the fleet rates are fiction",
                  file=sys.stderr)
            return 1
        if not args.smoke:
            for mode, budget in E11_BUDGETS_PCT.items():
                if budget is None:
                    continue
                over = e11["overhead_pct"][mode]
                if over > budget:
                    print(f"FAIL: e11 {mode} observability overhead "
                          f"{over:+.2f}% exceeds the {budget}% budget — "
                          f"the metrics hot path regressed", file=sys.stderr)
                    return 1

    if args.section in ("all", "e12") and "e12_dependability" in baseline:
        e12 = baseline["e12_dependability"]
        if not e12["identical"]:
            print("FAIL: dependability campaign records diverged between "
                  "serial and parallel execution — fault injection broke "
                  "run determinism", file=sys.stderr)
            return 1
        if not e12["availability"]["ci_contains_theory"]:
            print("FAIL: measured availability CI excludes the analytic "
                  "mtbf/(mtbf+mttr) — the fault clocks or injector "
                  "regressed", file=sys.stderr)
            return 1
        if not e12["fault_churn"]["differential_ok"]:
            print("FAIL: fault-churn workload disagrees with its static "
                  "analytic twin beyond the phase bound — the failure "
                  "path (eviction/checkpoint/retry) regressed",
                  file=sys.stderr)
            return 1

    if args.section in ("all", "e10") and "e10_campaign" in baseline:
        e10 = baseline["e10_campaign"]
        if not e10["all_identical"]:
            print("FAIL: campaign per-seed metric records diverged between "
                  "serial and parallel execution — the runner lost "
                  "determinism", file=sys.stderr)
            return 1
        if not args.smoke and e10["cpu_count"] >= E10_MIN_CPUS:
            if e10["speedup_at_max_workers"] < E10_SPEEDUP_FLOOR:
                print(f"FAIL: campaign speedup "
                      f"{e10['speedup_at_max_workers']:.2f}x at 4 workers "
                      f"below the {E10_SPEEDUP_FLOOR}x floor — the "
                      f"process-pool runner regressed", file=sys.stderr)
                return 1
        elif not args.smoke:
            print(f"note: e10 speedup floor skipped "
                  f"({e10['cpu_count']} cpu(s) < {E10_MIN_CPUS}); "
                  f"determinism gate still enforced")

    if not args.smoke and args.section in ("all", "e9") \
            and "e9_million_entity" in baseline:
        ratio = baseline["e9_million_entity"].get("adaptive_vs_heap", 0.0)
        if ratio < E9_ADAPTIVE_FLOOR:
            print(f"FAIL: adaptive queue at {ratio:.2f}x of heap at "
                  f"million-entity scale, below the {E9_ADAPTIVE_FLOOR}x "
                  f"floor — the migration policy regressed", file=sys.stderr)
            return 1

    if not args.smoke and args.section in ("all", "e8") \
            and "e8_flow_sharing" in baseline:
        ratio = baseline["e8_flow_sharing"]["ratios"]["reschedule_ratio"]
        if ratio < E8_RESCHEDULE_FLOOR:
            print(f"FAIL: E8 reschedule churn reduction {ratio:.2f}x below "
                  f"the {E8_RESCHEDULE_FLOOR}x floor — the incremental "
                  f"sharing engine regressed", file=sys.stderr)
            return 1

    if not args.smoke and args.section in ("all", "kernel"):
        failures = [k for k in FLOOR_KINDS
                    if baseline["headline_speedup"][k] < SPEEDUP_FLOOR]
        if failures:
            print(f"FAIL: headline speedup below {SPEEDUP_FLOOR}x for: "
                  f"{', '.join(failures)} — rerun on a quiet machine or "
                  f"investigate a hot-path regression", file=sys.stderr)
            return 1
        if obs["disabled_overhead_pct"] > obs["disabled_budget_pct"]:
            print(f"FAIL: disabled-path obs overhead "
                  f"{obs['disabled_overhead_pct']:.2f}% exceeds the "
                  f"{obs['disabled_budget_pct']}% budget — the null-object "
                  f"fast path regressed", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
