"""E6 — engine scalability: simulating many resources on one workstation.

Paper source (§5): "Many of today's simulators lack the capability to
simulate large distributed systems because their simulation engines are
limited to the physical resources of the workstations ...  The simulation
engine can be optimized ... by using advanced priority queuing structures
for the simulation events, by optimizing the way in which simulated
entities are being scheduled in simulation for execution ..."

Workload: a grid of N independent M/M/1 resources, each fed at fixed
per-resource rate, N swept over two orders of magnitude; crossed with the
engine's two §5 optimization axes — event-list structure and
entity-to-context mapping.  Shape targets: runtime grows ~linearly in N
(events dominate) for sublinear queues; the pure-callback (shared-context)
mapping beats one-process-per-job by a constant factor; event counts per
policy quantify the abstraction overhead.
"""

import time

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.core.mapping import MAPPING_POLICIES, JobSpec

JOBS_PER_RESOURCE = 20


def run_grid(n_resources: int, queue: str) -> int:
    """N independent single-server stations, pure event callbacks.

    All arrivals are pre-scheduled (the event list holds ~N x jobs events
    at once) — the "great number of resources" regime §5 worries about,
    where the event-list structure's asymptotics actually matter.
    """
    sim = Simulator(queue=queue, seed=1)
    done = [0]

    def make_station(i: int):
        arr = sim.stream(f"arr-{i}")
        svc = sim.stream(f"svc-{i}")
        waiting: list[float] = []
        busy = [False]

        def depart() -> None:
            done[0] += 1
            busy[0] = False
            if waiting:
                waiting.pop(0)
                start()

        def start() -> None:
            busy[0] = True
            sim.schedule(svc.exponential(0.5), depart)

        def arrive() -> None:
            if busy[0]:
                waiting.append(sim.now)
            else:
                start()

        t = 0.0
        for _ in range(JOBS_PER_RESOURCE):
            t += arr.exponential(1.0)
            sim.schedule_at(t, arrive)

    for i in range(n_resources):
        make_station(i)
    sim.run()
    return done[0]


@pytest.mark.parametrize("queue", ["linear", "heap", "calendar"])
@pytest.mark.parametrize("n", [100, 1_000, 5_000])
def test_e6_resource_scaling(benchmark, queue, n):
    benchmark.group = f"grid N={n}"
    done = once(benchmark, run_grid, n, queue)
    assert done == n * JOBS_PER_RESOURCE


@pytest.mark.parametrize("policy", sorted(MAPPING_POLICIES))
def test_e6_mapping_overhead(benchmark, policy):
    """§5's 'optimizing the way simulated entities are scheduled'."""
    benchmark.group = "mapping 3000 jobs"
    stream = Simulator(seed=2).stream("w")
    jobs = [JobSpec(arrival=stream.exponential(0.5) * i, duration=stream.exponential(2.0), id=i)
            for i in range(3_000)]
    result = once(benchmark, MAPPING_POLICIES[policy]().run, jobs, 8)
    assert len(result.completions) == 3_000


def test_e6_shape_claims(benchmark):
    def run_all():
        times: dict[tuple[str, int], float] = {}
        for queue in ("linear", "heap", "calendar"):
            for n in (100, 1_000, 5_000):
                best = float("inf")  # best-of-2: survive noisy machines
                for _ in range(2):
                    t0 = time.perf_counter()
                    run_grid(n, queue)
                    best = min(best, time.perf_counter() - t0)
                times[(queue, n)] = best
        stream = Simulator(seed=2).stream("w")
        jobs = [JobSpec(arrival=0.5 * i, duration=2.0, id=i)
                for i in range(3_000)]
        events = {}
        for name, cls in MAPPING_POLICIES.items():
            events[name] = cls().run(jobs, 8).kernel_events
        return times, events

    times, events = once(benchmark, run_all)
    print_table("E6: runtime (s) vs resource count per event-list structure",
                ["structure", "N=100", "N=1000", "N=5000", "growth 100->5000"],
                [(q, f"{times[(q, 100)]:.3f}", f"{times[(q, 1000)]:.3f}",
                  f"{times[(q, 5000)]:.3f}",
                  f"{times[(q, 5000)] / times[(q, 100)]:.0f}x")
                 for q in ("linear", "heap", "calendar")])
    print_table("E6b: kernel events per mapping policy (3000 jobs)",
                ["policy", "kernel events", "events/job"],
                [(n, e, f"{e / 3000:.2f}") for n, e in sorted(events.items())])

    # The O(n) list pays a substantial penalty at scale (its ~100k-entry
    # pending population makes every insert shift memory); the trend across
    # sizes is printed rather than asserted — at the N=100 end the absolute
    # times are ~25 ms, where machine noise swamps the ratio.
    handicap_small = times[("linear", 100)] / times[("heap", 100)]
    handicap_large = times[("linear", 5000)] / times[("heap", 5000)]
    print(f"  linear-vs-heap handicap: {handicap_small:.2f}x at N=100 -> "
          f"{handicap_large:.2f}x at N=5000")
    assert handicap_large > 1.8
    # Abstraction overhead: shared-context callbacks need the fewest kernel
    # events; one-process-per-job needs the most.
    assert events["shared"] < events["pooled"] < events["dedicated"]
