#!/usr/bin/env python
"""E11 — fleet observability overhead: metrics registry + flight recorder.

PR 9 adds two always-available hot-path hooks to the engine: pre-resolved
metric instrument handles (``Counter.value += 1`` / ``Histogram.observe``)
and the flight-recorder ring append.  This benchmark prices them on the
same drain loop the kernel baseline uses, across four modes:

``pre_obs``
    The pre-observability engine (no ``_obs`` attribute checks at all) —
    the absolute yardstick.
``disabled``
    Today's engine with nothing attached: the null-object fast path.
    Budget: **≤ 2%** overhead vs ``pre_obs`` (same contract as the
    kernel baseline's ``obs_overhead`` gate).
``metrics``
    A metrics-only Observation attached (no trace/profile/telemetry):
    every firing bumps two counters and folds one histogram observation.
    Budget: **≤ 10%** overhead vs ``pre_obs``.
``full``
    Metrics + telemetry + a 256-event flight-recorder ring — what a
    campaign run ships by default.

Usage::

    PYTHONPATH=src python benchmarks/bench_e11_obs_fleet.py
    python benchmarks/run_kernel_baseline.py --section e11
"""

from __future__ import annotations

import gc
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent / "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from bench_kernel_hotpath import (DRAIN_EVENTS, PreObsSimulator,  # noqa: E402
                                  _noop)
from repro.core import Simulator  # noqa: E402

E11_MODES = ("pre_obs", "disabled", "metrics", "full")

#: overhead budgets vs the pre-obs engine, per mode (None = unbudgeted)
E11_BUDGETS_PCT = {"disabled": 2.0, "metrics": 10.0, "full": None}


def e11_drain_scenario(kind: str, events: int, mode: str) -> tuple[float, int]:
    """One timed drain under an E11 observability mode; build untimed."""
    from repro.obs import Observation

    if mode == "pre_obs":
        sim = PreObsSimulator(queue=kind, seed=11)
    else:
        sim = Simulator(queue=kind, seed=11)
        if mode == "metrics":
            Observation(trace=False, profile=False, telemetry=False,
                        metrics=True).attach(sim, track="bench")
        elif mode == "full":
            Observation(trace=False, profile=False, telemetry=True,
                        metrics=True, recorder=256).attach(sim, track="bench")
    stream = sim.stream("drain")
    for _ in range(events):
        sim.schedule(stream.exponential(1.0), _noop)
    # Pause the cyclic GC for the timed region: the float boxing the metric
    # instruments do is enough allocation to trip random full-heap scans,
    # which would attribute multi-ms GC pauses to whichever mode crossed
    # the generation threshold rather than to the hot path under test.
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim.run()
        dt = time.perf_counter() - t0
    finally:
        gc.enable()
    return dt, sim.events_executed


def collect_e11(kind: str = "heap", repeats: int = 5,
                scale: float = 1.0) -> dict:
    """Measure ev/s per mode over interleaved rounds; returns the
    ``e11_obs_fleet`` section.

    The disabled mode differs from ``pre_obs`` by a single ``is not None``
    check, so its true overhead is far below the measurement noise of a
    busy machine.  Two defences: the mode order rotates every round (no
    position systematically inherits a warm cache or a quiet scheduler),
    and the gated overhead is the *minimum across rounds* of the
    same-round ratio — a regression tripwire reads the least
    noise-contaminated round, not a cross-round best-vs-best ratio that
    one lucky ``pre_obs`` sample can poison.
    """
    events = max(1, int(DRAIN_EVENTS * scale))
    rates: dict[str, list[float]] = {mode: [] for mode in E11_MODES}
    for rnd in range(max(1, repeats)):
        order = E11_MODES[rnd % len(E11_MODES):] + \
            E11_MODES[:rnd % len(E11_MODES)]
        for mode in order:
            dt, n = e11_drain_scenario(kind, events, mode)
            if n != events:
                raise RuntimeError(
                    f"mode {mode!r} fired {n} events, expected {events}")
            rates[mode].append(n / dt)
    best = {mode: max(rates[mode]) for mode in E11_MODES}

    # Correctness rider: the metric instruments must count exactly what the
    # engine fired, or the rates the fleet view reports are fiction.
    from repro.obs import Observation
    sim = Simulator(queue=kind, seed=11)
    obs = Observation(trace=False, profile=False, telemetry=True,
                      metrics=True, recorder=64).attach(sim, track="bench")
    stream = sim.stream("drain")
    check_events = min(events, 5_000)
    for _ in range(check_events):
        sim.schedule(stream.exponential(1.0), _noop)
    sim.run()
    fired = obs.metrics.value("repro_events_fired_total", track="bench")
    counters_consistent = (
        fired == float(check_events)
        and obs.metrics.value("repro_events_scheduled_total",
                              track="bench") == float(check_events)
        and len(obs.recorder) == min(check_events, 64))

    def pct(mode: str) -> float:
        """Least noise-contaminated same-round overhead vs pre_obs."""
        return round(min((pre / r - 1.0) * 100
                         for pre, r in zip(rates["pre_obs"], rates[mode])),
                     2)

    return {
        "scenario": "drain",
        "structure": kind,
        "events": events,
        "results": {mode: {"eps": round(best[mode], 1)}
                    for mode in E11_MODES},
        "overhead_pct": {mode: pct(mode) for mode in E11_MODES
                         if mode != "pre_obs"},
        "budgets_pct": dict(E11_BUDGETS_PCT),
        "counters_consistent": counters_consistent,
    }


def main() -> int:
    section = collect_e11()
    hdr = f"{'mode':<10} {'ev/s':>12} {'overhead':>9} {'budget':>8}"
    print(hdr)
    print("-" * len(hdr))
    for mode in E11_MODES:
        over = section["overhead_pct"].get(mode)
        budget = E11_BUDGETS_PCT.get(mode)
        print(f"{mode:<10} {section['results'][mode]['eps']:>12,.0f} "
              f"{'-' if over is None else f'{over:+.2f}%':>9} "
              f"{'-' if budget is None else f'<={budget:.0f}%':>8}")
    print(f"counters consistent: {section['counters_consistent']}")
    ok = section["counters_consistent"] and all(
        section["overhead_pct"][m] <= b
        for m, b in E11_BUDGETS_PCT.items() if b is not None)
    return 0 if ok else 1


# -- pytest entry points (benchmarks/ is not in tier-1 testpaths) ------------

def test_e11_harness_smoke():
    section = collect_e11(repeats=1, scale=0.02)
    assert set(section["results"]) == set(E11_MODES)
    assert all(row["eps"] > 0 for row in section["results"].values())
    assert section["counters_consistent"]
    # Budgets are asserted only on full (non-smoke) baseline refreshes.


def test_e11_modes_fire_identically():
    walls = {mode: e11_drain_scenario("heap", 2_000, mode)[1]
             for mode in E11_MODES}
    assert len(set(walls.values())) == 1


if __name__ == "__main__":
    raise SystemExit(main())
