#!/usr/bin/env python
"""E12 — dependability campaign: correlated faults, availability vs theory.

Three gates, all correctness (no perf floor — fault handling is not a hot
path):

1. **Determinism** — a 30-replication ``dependability`` campaign (star
   grid, per-site Exp(mtbf)/Exp(mttr) outage cycles taking down machine +
   access link together, abort→backoff→retry on every in-flight transfer)
   must produce **byte-identical** per-seed metric records serially and
   under the 4-worker process pool.
2. **Availability vs theory** — the campaign's t-CI over measured
   availability must contain the renewal-theory steady state
   ``mtbf / (mtbf + mttr)``.
3. **Differential cross-check** — the deterministic fault-churn workload
   (scripted square-wave outages at full rating) must agree with its
   analytically-equivalent static twin (no outages, duty-derated rating)
   within the phase bound, and the static twin must match the arithmetic
   exactly.

Usage::

    PYTHONPATH=src python benchmarks/bench_e12_dependability.py
    python benchmarks/run_kernel_baseline.py --section e12
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from time import perf_counter

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent / "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.campaign import CampaignSpec, run_campaign  # noqa: E402
from repro.campaign.scenarios import theory_for  # noqa: E402
from repro.workloads.faultchurn import FaultChurnModel  # noqa: E402

#: worker count for the parallel half of the determinism gate
E12_WORKERS = 4


def collect_e12(runs: int = 30, sites: int = 4, mtbf: float = 50.0,
                mttr: float = 10.0, horizon: float = 2000.0,
                root_seed: int = 0) -> dict:
    """Run the dependability gates; returns the ``e12_dependability``
    section.  The workload is small enough that smoke keeps full size —
    the 30-replication floor is part of the acceptance criteria."""
    base = {"sites": sites, "mtbf": mtbf, "mttr": mttr, "horizon": horizon}
    spec = CampaignSpec("dependability", base=base, replications=runs,
                        root_seed=root_seed)

    t0 = perf_counter()
    serial = run_campaign(spec, workers=1)
    serial_wall = perf_counter() - t0
    if serial.n_ok != len(serial.records):
        raise RuntimeError(
            f"{len(serial.failures)} dependability runs failed serially")
    t0 = perf_counter()
    pooled = run_campaign(spec, workers=E12_WORKERS)
    pooled_wall = perf_counter() - t0
    identical = serial.metrics_bytes() == pooled.metrics_bytes()

    summ = serial.summaries(["availability"])["availability"]
    theory = theory_for("dependability", base)["availability"]
    ci_contains = summ.contains(theory)

    churn = FaultChurnModel(inject=True).run()
    static = FaultChurnModel(inject=False).run()
    cstats = churn.stats()
    static_gap = abs(max(static.makespans()) - static.analytic_makespan())
    differential_ok = (cstats["differential_gap"]
                       <= cstats["differential_bound"]
                       and static_gap < 1e-9)

    return {
        "scenario": "dependability",
        "runs": runs,
        "sites": sites,
        "mtbf": mtbf,
        "mttr": mttr,
        "horizon": horizon,
        "root_seed": root_seed,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_seconds": round(serial_wall, 3),
        "pooled_wall_seconds": round(pooled_wall, 3),
        "pool_workers": E12_WORKERS,
        "identical": identical,
        "availability": {
            "mean": round(summ.mean, 6),
            "ci_lo": round(summ.lo, 6),
            "ci_hi": round(summ.hi, 6),
            "n": summ.n,
            "theory": round(theory, 6),
            "ci_contains_theory": ci_contains,
        },
        "fault_churn": {
            "differential_gap": round(cstats["differential_gap"], 6),
            "differential_bound": round(cstats["differential_bound"], 6),
            "static_gap": round(static_gap, 9),
            "evictions": cstats["evictions"],
            "completed_jobs": cstats["completed_jobs"],
            "transfer_retries": cstats["transfer_retries"],
            "flow_aborts": cstats["flow_aborts"],
            "differential_ok": differential_ok,
        },
        "all_ok": identical and ci_contains and differential_ok,
    }


def main() -> int:
    section = collect_e12()
    avail = section["availability"]
    churn = section["fault_churn"]
    print(f"campaign: {section['runs']} x dependability "
          f"(sites={section['sites']}, mtbf={section['mtbf']}, "
          f"mttr={section['mttr']}, horizon={section['horizon']})")
    print(f"  serial {section['serial_wall_seconds']:.3f}s, "
          f"{section['pool_workers']} workers "
          f"{section['pooled_wall_seconds']:.3f}s, "
          f"byte-identical: {section['identical']}")
    print(f"  availability CI [{avail['ci_lo']:.5f}, {avail['ci_hi']:.5f}] "
          f"mean {avail['mean']:.5f} vs theory {avail['theory']:.5f} "
          f"-> contains: {avail['ci_contains_theory']}")
    print(f"  fault churn gap {churn['differential_gap']:.3f} <= "
          f"bound {churn['differential_bound']:.3f}, static gap "
          f"{churn['static_gap']:.1e} -> ok: {churn['differential_ok']} "
          f"(evictions={churn['evictions']}, "
          f"retries={churn['transfer_retries']})")
    print(f"all gates: {section['all_ok']}")
    return 0 if section["all_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
