#!/usr/bin/env python
"""E10 — campaign ensemble engine: process-pool fan-out vs serial.

Measures a ≥100-run M/M/1 Monte Carlo campaign executed serially and under
the process-pool runner at 2 and 4 workers, recording wall-clock speedup
and — the correctness half of the gate — whether the per-seed metric
records are **byte-identical** between serial and every parallel
execution (they must be: each run's RNG seed is fixed in its RunSpec
before dispatch, and records are reassembled in matrix order).

The ≥3× speedup floor at 4 workers is only meaningful on a ≥4-core
machine; ``collect_e10`` records ``cpu_count`` so the baseline runner can
gate the floor the way ``--smoke`` gates the kernel floors.

Usage::

    PYTHONPATH=src python benchmarks/bench_e10_campaign.py
    python benchmarks/run_kernel_baseline.py --section e10
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from time import perf_counter

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent / "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.campaign import CampaignSpec, run_campaign  # noqa: E402

#: worker counts measured against the serial baseline
WORKER_STEPS = (2, 4)


def collect_e10(runs: int = 100, jobs: int = 3_000, rho: float = 0.6,
                repeats: int = 1, root_seed: int = 0) -> dict:
    """Measure the campaign fan-out; returns the ``e10_campaign`` section."""
    spec = CampaignSpec("mm1", base={"rho": rho, "jobs": jobs},
                        replications=runs, root_seed=root_seed)

    # Warm the parent interpreter (lazy scipy import, bytecode, allocator)
    # before timing anything: forked workers inherit the warm state, so
    # without this the serial baseline alone pays first-run costs and the
    # measured "speedup" flatters the pool.
    run_campaign(CampaignSpec("mm1", base={"rho": rho, "jobs": 200},
                              replications=2, root_seed=root_seed),
                 workers=1)

    def best_of(workers: int) -> tuple[float, object]:
        best_wall, best_result = float("inf"), None
        for _ in range(max(1, repeats)):
            t0 = perf_counter()
            result = run_campaign(spec, workers=workers)
            wall = perf_counter() - t0
            if result.n_ok != len(result.records):
                raise RuntimeError(
                    f"{len(result.failures)} campaign runs failed at "
                    f"workers={workers}")
            if wall < best_wall:
                best_wall, best_result = wall, result
        return best_wall, best_result

    serial_wall, serial = best_of(1)
    reference = serial.metrics_bytes()
    results = {"serial": {"workers": 1, "wall_seconds": round(serial_wall, 3),
                          "speedup": 1.0, "identical": True}}
    for w in WORKER_STEPS:
        wall, result = best_of(w)
        results[f"w{w}"] = {
            "workers": w,
            "wall_seconds": round(wall, 3),
            "speedup": round(serial_wall / wall, 3) if wall > 0 else 0.0,
            "identical": result.metrics_bytes() == reference,
        }
    w_max = max(WORKER_STEPS)
    return {
        "scenario": "mm1",
        "runs": runs,
        "jobs_per_run": jobs,
        "rho": rho,
        "root_seed": root_seed,
        "cpu_count": os.cpu_count() or 1,
        "results": results,
        "speedup_at_max_workers": results[f"w{w_max}"]["speedup"],
        "all_identical": all(r["identical"] for r in results.values()),
    }


def main() -> int:
    section = collect_e10()
    hdr = f"{'config':<8} {'workers':>7} {'wall s':>8} {'speedup':>8} {'identical':>10}"
    print(hdr)
    print("-" * len(hdr))
    for name, row in section["results"].items():
        print(f"{name:<8} {row['workers']:>7} {row['wall_seconds']:>8.3f} "
              f"{row['speedup']:>7.2f}x {str(row['identical']):>10}")
    print(f"cpus={section['cpu_count']}  "
          f"all records byte-identical: {section['all_identical']}")
    return 0 if section["all_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
