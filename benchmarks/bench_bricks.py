"""E11 — Bricks: scheduling with monitoring and prediction in the central model.

Paper source (§4): "Bricks was among the first simulation projects
developed to investigate different resource scheduling issues ...
resource scheduling algorithms, programming modules for scheduling,
network topology of clients and servers in global computing systems, and
processing schemes for networks and servers."

Rows regenerated: mean job response time per scheduling unit (random /
round-robin / load-aware / predictive) under bursty background server
load.  Shape target: predictive <= load-aware < round-robin ~ random —
the monotone payoff of better monitoring that motivated Bricks' NWS-style
prediction modules.
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.simulators import BRICKS_SCHEDULERS, BricksModel

HORIZON = 600.0


def run_bricks(scheduler: str, seed: int = 7) -> float:
    sim = Simulator(seed=seed)
    model = BricksModel(sim, n_clients=6, n_servers=4, scheduler=scheduler,
                        job_rate=0.35, background=0.6)
    model.run(horizon=HORIZON)
    assert len(model.completed) > 50
    return model.mean_response_time


@pytest.mark.parametrize("scheduler", BRICKS_SCHEDULERS)
def test_e11_schedulers(benchmark, scheduler):
    benchmark.group = "bricks central model"
    rt = once(benchmark, run_bricks, scheduler)
    assert rt > 0


def test_e11_shape_claims(benchmark):
    def run_all():
        seeds = (7, 19, 43)
        return {s: sum(run_bricks(s, seed) for seed in seeds) / len(seeds)
                for s in BRICKS_SCHEDULERS}

    rts = once(benchmark, run_all)
    print_table("E11: mean response time per scheduling unit "
                "(bursty background, mean of 3 seeds)",
                ["scheduler", "mean response time"],
                [(s, f"{rt:.2f}s") for s, rt in sorted(rts.items(),
                                                       key=lambda kv: kv[1])])
    # Better information monotonically helps:
    # prediction beats blind placement...
    assert rts["predictive"] < rts["random"]
    assert rts["predictive"] < rts["round-robin"]
    # ...and at least matches plain load-awareness (it subsumes it).
    assert rts["predictive"] <= rts["load-aware"] * 1.1
    # Load-awareness alone already beats random placement.
    assert rts["load-aware"] < rts["random"]
