"""E7 — centralized vs distributed execution (the Misra/Fujimoto axis).

Paper source (§3): the centralized/distributed classification, plus the
verdict that "despite over two decades of research, the technology of
distributed simulations has not significantly impressed the general
simulation community.  Considerable efforts and expertise are still
required to develop efficient simulation programs."

Workload: the shared partitioned ring from ``repro.workloads.partitioned``
(one LP per site, local Poisson job streams, a fraction of completions
forwarded to the neighbour).  Swept: executor x partition count x
lookahead, now covering both halves of the synchronization axis —
conservative (CMB, windows) *and* optimistic (Time Warp).  Shape targets:
all executors commit identical results; CMB's null-message count scales
~1/lookahead; threaded windows buy no wall-clock in CPython (the GIL is
this decade's version of the paper's verdict); Time Warp really rolls back
and still commits the sequential stream.
"""

import time

import pytest

from conftest import once, print_table

from repro.core.optimistic import OptimisticExecutor
from repro.core.parallel import (
    CMBExecutor,
    SequentialExecutor,
    WindowExecutor,
)
from repro.workloads.partitioned import build_partitioned_ring

HORIZON = 400.0
JOBS_PER_SITE = 150


def build(k: int, lookahead: float, seed: int = 0):
    return build_partitioned_ring(k=k, lookahead=lookahead, seed=seed,
                                  jobs_per_site=JOBS_PER_SITE,
                                  horizon=HORIZON)


EXECUTORS = {
    "sequential": lambda: SequentialExecutor(),
    "cmb": lambda: CMBExecutor(),
    "window": lambda: WindowExecutor(),
    "window-4threads": lambda: WindowExecutor(threads=4),
    "optimistic": lambda: OptimisticExecutor(),
}


@pytest.mark.parametrize("name", sorted(EXECUTORS))
@pytest.mark.parametrize("k", [2, 8])
def test_e7_executors(benchmark, name, k):
    benchmark.group = f"partitioned grid K={k}"

    def run():
        model = build(k, lookahead=1.0)
        stats = EXECUTORS[name]().run(model.lps, until=HORIZON)
        return stats, model.results()

    stats, results = once(benchmark, run)
    assert stats.events > 0 and len(results) >= k * JOBS_PER_SITE


def test_e7_shape_claims(benchmark):
    def run_all():
        # 1) equivalence at fixed config — now including Time Warp
        logs = {}
        rollbacks = {}
        for name, make in EXECUTORS.items():
            model = build(4, lookahead=1.0)
            stats = make().run(model.lps, until=HORIZON)
            logs[name] = model.results()
            rollbacks[name] = stats.rollbacks
        # 2) null-message sensitivity to lookahead
        nulls = {}
        for la in (2.0, 0.5, 0.125):
            model = build(4, lookahead=la)
            nulls[la] = CMBExecutor().run(model.lps,
                                          until=HORIZON).null_messages
        # 3) wall-clock: windowed threads vs sequential
        walls = {}
        for name in ("sequential", "window", "window-4threads"):
            t0 = time.perf_counter()
            model = build(8, lookahead=1.0)
            EXECUTORS[name]().run(model.lps, until=HORIZON)
            walls[name] = time.perf_counter() - t0
        return logs, rollbacks, nulls, walls

    logs, rollbacks, nulls, walls = once(benchmark, run_all)
    print_table("E7: CMB null messages vs lookahead (K=4)",
                ["lookahead", "null messages"],
                [(la, n) for la, n in sorted(nulls.items(), reverse=True)])
    print_table("E7b: wall seconds, K=8 partitioned grid",
                ["executor", "seconds"],
                [(n, f"{s:.3f}") for n, s in sorted(walls.items())])
    print_table("E7c: Time Warp rollbacks (K=4)",
                ["executor", "rollbacks"],
                sorted(rollbacks.items()))

    # Every protocol is *correct*: identical committed logs everywhere.
    ref = logs["sequential"]
    for name, log in logs.items():
        assert log == ref, f"{name} diverged from sequential execution"
    # Conservative protocols never mis-speculate; Time Warp genuinely does
    # (and the assertion above shows it still commits the same stream).
    assert all(rollbacks[n] == 0 for n in rollbacks if n != "optimistic")
    assert rollbacks["optimistic"] >= 1
    # The null-message curse: overhead grows as lookahead shrinks.
    assert nulls[0.125] > nulls[2.0]
    # The paper's verdict, CPython edition: real threads buy nothing here.
    assert walls["window-4threads"] > 0.5 * walls["window"]
