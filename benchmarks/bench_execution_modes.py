"""E7 — centralized vs distributed execution (the Misra/Fujimoto axis).

Paper source (§3): the centralized/distributed classification, plus the
verdict that "despite over two decades of research, the technology of
distributed simulations has not significantly impressed the general
simulation community.  Considerable efforts and expertise are still
required to develop efficient simulation programs."

Workload: a K-site grid partitioned one-LP-per-site; sites run local
Poisson job streams and forward a fraction of completions to neighbours
(cross-LP traffic).  Swept: executor x partition count x lookahead.
Shape targets: all executors agree on results; CMB's null-message count
scales ~1/lookahead; threaded windows buy no wall-clock in CPython (the
GIL is this decade's version of the paper's verdict).
"""

import time

import pytest

from conftest import once, print_table

from repro.core.parallel import (
    CMBExecutor,
    LogicalProcess,
    SequentialExecutor,
    WindowExecutor,
)

HORIZON = 400.0
JOBS_PER_SITE = 150


def build_partitioned_grid(k: int, lookahead: float):
    """K LPs in a ring; each runs local jobs and forwards 20% onward."""
    lps = [LogicalProcess(f"site-{i}", seed=i) for i in range(k)]
    for i, lp in enumerate(lps):
        lp.connect(lps[(i + 1) % k], lookahead)
    results = []

    def wire(lp: LogicalProcess, idx: int):
        arr = lp.sim.stream("arr")
        svc = lp.sim.stream("svc")

        def complete(jid: int) -> None:
            results.append((round(lp.sim.now, 9), lp.name, jid))
            if jid % 5 == 0:  # forward every fifth job to the neighbour
                lp.send(f"site-{(idx + 1) % k}", "job", jid * 1000)

        def arrive(n: int) -> None:
            lp.sim.schedule(svc.exponential(0.4), complete, n)
            if n < JOBS_PER_SITE:
                lp.sim.schedule(arr.exponential(HORIZON / JOBS_PER_SITE / 2),
                                arrive, n + 1)

        lp.on_message("job", lambda lp_, msg: lp_.sim.schedule(
            svc.exponential(0.4), complete, msg.payload))
        lp.sim.schedule(0.0, arrive, 1)

    for i, lp in enumerate(lps):
        wire(lp, i)
    return lps, results


EXECUTORS = {
    "sequential": lambda: SequentialExecutor(),
    "cmb": lambda: CMBExecutor(),
    "window": lambda: WindowExecutor(),
    "window-4threads": lambda: WindowExecutor(threads=4),
}


@pytest.mark.parametrize("name", sorted(EXECUTORS))
@pytest.mark.parametrize("k", [2, 8])
def test_e7_executors(benchmark, name, k):
    benchmark.group = f"partitioned grid K={k}"

    def run():
        lps, results = build_partitioned_grid(k, lookahead=1.0)
        stats = EXECUTORS[name]().run(lps, until=HORIZON)
        return stats, results

    stats, results = once(benchmark, run)
    assert stats.events > 0 and len(results) >= k * JOBS_PER_SITE


def test_e7_shape_claims(benchmark):
    def run_all():
        # 1) equivalence at fixed config
        logs = {}
        for name, make in EXECUTORS.items():
            lps, results = build_partitioned_grid(4, lookahead=1.0)
            make().run(lps, until=HORIZON)
            logs[name] = sorted(results)
        # 2) null-message sensitivity to lookahead
        nulls = {}
        for la in (2.0, 0.5, 0.125):
            lps, _ = build_partitioned_grid(4, lookahead=la)
            nulls[la] = CMBExecutor().run(lps, until=HORIZON).null_messages
        # 3) wall-clock: windowed threads vs sequential
        walls = {}
        for name in ("sequential", "window", "window-4threads"):
            t0 = time.perf_counter()
            lps, _ = build_partitioned_grid(8, lookahead=1.0)
            EXECUTORS[name]().run(lps, until=HORIZON)
            walls[name] = time.perf_counter() - t0
        return logs, nulls, walls

    logs, nulls, walls = once(benchmark, run_all)
    print_table("E7: CMB null messages vs lookahead (K=4)",
                ["lookahead", "null messages"],
                [(la, n) for la, n in sorted(nulls.items(), reverse=True)])
    print_table("E7b: wall seconds, K=8 partitioned grid",
                ["executor", "seconds"],
                [(n, f"{s:.3f}") for n, s in sorted(walls.items())])

    # Conservative protocols are *correct*: identical event logs everywhere.
    ref = logs["sequential"]
    for name, log in logs.items():
        assert log == ref, f"{name} diverged from sequential execution"
    # The null-message curse: overhead grows as lookahead shrinks.
    assert nulls[0.125] > nulls[2.0]
    # The paper's verdict, CPython edition: real threads buy nothing here.
    assert walls["window-4threads"] > 0.5 * walls["window"]
