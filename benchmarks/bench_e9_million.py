"""E9 — million-entity runs: the self-tuning queue at the ROADMAP scale.

Paper source (§5): the simulation engine "can be optimized ... by using
advanced priority queuing structures for the simulation events"; the paper
also notes no single structure wins everywhere.  E6 swept the structures at
moderate scale — E9 pushes one scenario to the ROADMAP target (≥1M
scheduled entities) and asks whether the :class:`AdaptiveQueue` earns its
keep: it must *discover* at runtime that the workload left heap territory,
migrate, and end up at least on par with the best hand-picked structure,
without the user choosing anything.

Scenario: N entities pre-scheduled with uniform arrivals over one simulated
hour (the event list really holds all N at once — ``peak_pending`` proves
it), each firing entity rescheduling itself with probability
``RESCHEDULE_P`` so the drain is a push/pop mix rather than a pure pop
stream.  Identical seeds give identical event totals for every structure
(the kernel's determinism guarantee), so events/sec is directly comparable.
"""

from __future__ import annotations

import random
import sys
import time

from repro.core import Simulator
from repro.core.queues import AdaptiveQueue

#: ROADMAP-scale default; ``collect_e9(entities=...)`` shrinks it for smoke.
ENTITIES = 1_000_000

#: Probability a fired entity reschedules itself once more.
RESCHEDULE_P = 0.2

#: The ROADMAP throughput goal this scenario tracks (recorded, not gated:
#: absolute eps is machine-bound; the gate compares adaptive to heap).
TARGET_EPS = 500_000

ARRIVAL_SPAN = 3600.0

KINDS = ("adaptive", "heap")


def run_million(kind: str, entities: int, seed: int = 2009) -> dict:
    """One full scenario run on structure *kind*; returns measurements."""
    sim = Simulator(queue=kind, seed=seed)
    queue = sim._queue
    switches: list[tuple[str, str, int]] = []
    if isinstance(queue, AdaptiveQueue):
        queue.on_migrate = lambda src, dst, moved: switches.append(
            (src, dst, moved))

    rng = random.Random(seed)
    fired = [0]

    def fire() -> None:
        fired[0] += 1
        if rng.random() < RESCHEDULE_P:
            sim.schedule(rng.uniform(0.0, ARRIVAL_SPAN / 10.0), fire)

    t0 = time.perf_counter()
    for _ in range(entities):
        sim.schedule_at(rng.uniform(0.0, ARRIVAL_SPAN), fire)
    schedule_wall = time.perf_counter() - t0
    peak_pending = sim.pending

    t0 = time.perf_counter()
    sim.run()
    run_wall = time.perf_counter() - t0

    if fired[0] < entities:  # every scheduled entity must actually fire
        raise RuntimeError(
            f"{kind}: only {fired[0]:,} of {entities:,} entities fired")
    out = {
        "entities": entities,
        "peak_pending": peak_pending,
        "events": fired[0],
        "schedule_wall_seconds": round(schedule_wall, 3),
        "schedule_eps": round(entities / schedule_wall, 1),
        "run_wall_seconds": round(run_wall, 3),
        "run_eps": round(fired[0] / run_wall, 1),
    }
    if isinstance(queue, AdaptiveQueue):
        out["migrations"] = queue.migrations
        out["migrated_events"] = queue.migrated_events
        out["migration_path"] = [f"{src}->{dst}" for src, dst, _ in switches]
        out["final_backend"] = queue.backend_kind
    return out


def collect_e9(entities: int = ENTITIES, repeats: int = 1,
               kinds: tuple[str, ...] = KINDS) -> dict:
    """The ``e9_million_entity`` baseline section (best-of-*repeats*)."""
    results: dict[str, dict] = {}
    for kind in kinds:
        best: dict | None = None
        for _ in range(max(1, repeats)):
            row = run_million(kind, entities)
            if best is None or row["run_eps"] > best["run_eps"]:
                best = row
        results[kind] = best
    section = {
        "entities": entities,
        "reschedule_prob": RESCHEDULE_P,
        "target_eps": TARGET_EPS,
        "results": results,
    }
    if "adaptive" in results and "heap" in results:
        section["adaptive_vs_heap"] = round(
            results["adaptive"]["run_eps"] / results["heap"]["run_eps"], 3)
    return section


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else ENTITIES
    section = collect_e9(entities=n)
    for kind, row in section["results"].items():
        print(f"{kind:<9} schedule {row['schedule_eps']:>10,.0f} ev/s  "
              f"run {row['run_eps']:>10,.0f} ev/s  "
              f"({row['events']:,} events, peak {row['peak_pending']:,})")
    if "adaptive_vs_heap" in section:
        print(f"adaptive vs heap: {section['adaptive_vs_heap']:.2f}x")
