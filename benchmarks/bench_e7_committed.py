"""E7 baseline collector — committed-events/sec for every executor.

Runs the shared partitioned-ring model (``repro.workloads.partitioned``)
under all five executors and records the protocol-level accounting that
belongs in ``BENCH_kernel.json``: committed events per wall second, the
optimism waste (rollbacks, anti-messages, efficiency), and CMB's
null-message overhead.  ``run_kernel_baseline.py --section e7`` merges the
result into the baseline file without disturbing the kernel hot-path
numbers.

The committed streams are cross-checked against sequential execution while
collecting — a baseline refresh that silently recorded a divergent
executor would poison every later comparison.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent / "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.core.optimistic import OptimisticExecutor  # noqa: E402
from repro.core.parallel import (CMBExecutor, SequentialExecutor,  # noqa: E402
                                 WindowExecutor)
from repro.workloads.partitioned import build_partitioned_ring  # noqa: E402

EXECUTORS = {
    "sequential": SequentialExecutor,
    "cmb": CMBExecutor,
    "window": WindowExecutor,
    "window-4threads": lambda: WindowExecutor(threads=4),
    "optimistic": OptimisticExecutor,
}


def collect_e7(k: int = 4, jobs_per_site: int = 150, horizon: float = 400.0,
               lookahead: float = 1.0, seed: int = 0,
               repeats: int = 3) -> dict:
    """Best-of-*repeats* committed throughput per executor, plus protocol
    accounting, as the ``e7_executors`` baseline section."""
    section: dict = {
        "params": {"k": k, "jobs_per_site": jobs_per_site,
                   "horizon": horizon, "lookahead": lookahead, "seed": seed,
                   "repeats": repeats},
        "results": {},
    }
    reference = None
    for name, make in EXECUTORS.items():
        best = None
        for _ in range(max(1, repeats)):
            model = build_partitioned_ring(
                k=k, lookahead=lookahead, seed=seed,
                jobs_per_site=jobs_per_site, horizon=horizon)
            stats = make().run(model.lps, until=horizon)
            stream = repr((model.results(), model.monitor_stats()))
            if reference is None:
                reference = stream
            elif stream != reference:
                raise AssertionError(
                    f"E7 baseline: {name} committed stream diverged from "
                    f"sequential — refusing to record a broken executor")
            if best is None or stats.wall_seconds < best.wall_seconds:
                best = stats
        wall = best.wall_seconds
        section["results"][name] = {
            "events": best.events,
            "committed_events": best.committed_events,
            "committed_eps": (best.committed_events / wall
                              if wall > 0 else 0.0),
            "wall_seconds": wall,
            "rollbacks": best.rollbacks,
            "rolled_back_events": best.rolled_back_events,
            "anti_messages": best.anti_messages,
            "null_messages": best.null_messages,
            "efficiency": best.efficiency,
            "epochs": best.epochs,
        }
    return section


if __name__ == "__main__":  # pragma: no cover - ad-hoc inspection
    import json

    print(json.dumps(collect_e7(repeats=1), indent=2, sort_keys=True))
