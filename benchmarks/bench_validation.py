"""E4 — queueing-theory validation of the simulation kernel.

Paper source (§5): queueing models as "an analytical model to the problem
of testing the randomness introduced by various mathematical
distributions" — the validation mechanism a well-designed simulator must
offer.

Rows regenerated: analytic vs simulated L, Lq, W, Wq, utilization for
M/M/1 at three loads, M/M/3, M/D/1, and a Pareto-service M/G/1.  Shape
target: every relative error small (the kernel is *valid*), errors growing
with ρ (heavy traffic converges slower — the expected statistical shape).
"""

import pytest

from conftest import once, print_table

from repro.core import StreamFactory
from repro.validation import (
    MG1,
    MM1,
    MMc,
    compare,
    simulate_mg1,
    simulate_mm1,
    simulate_mmc,
)

N_JOBS = 12_000


def validate_all() -> list[tuple[str, object]]:
    out = []
    for rho in (0.3, 0.6, 0.9):
        n = N_JOBS if rho < 0.8 else 4 * N_JOBS
        rep = compare(MM1(rho, 1.0), simulate_mm1(rho, 1.0, n_jobs=n, seed=5))
        out.append((f"M/M/1 rho={rho}", rep))
    rep = compare(MMc(2.4, 1.0, 3), simulate_mmc(2.4, 1.0, 3,
                                                 n_jobs=N_JOBS, seed=6))
    out.append(("M/M/3 rho=0.8", rep))
    rep = compare(MG1(0.8, 1.0, 0.0),
                  simulate_mg1(0.8, lambda: 1.0, n_jobs=N_JOBS, seed=7))
    out.append(("M/D/1 rho=0.8", rep))
    svc = StreamFactory(8).stream("pareto-svc")
    # Pareto(3) scaled to mean 1: var = mean^2 * 1/ (alpha(alpha-2)) = 1/3
    alpha, xmin = 3.0, 2.0 / 3.0
    var = (xmin ** 2 * alpha) / ((alpha - 1) ** 2 * (alpha - 2))
    rep = compare(MG1(0.6, 1.0, var),
                  simulate_mg1(0.6, lambda: svc.pareto(alpha, xmin),
                               n_jobs=2 * N_JOBS, seed=8))
    out.append(("M/Pareto/1 rho=0.6", rep))
    return out


def test_e4_validation_suite(benchmark):
    reports = once(benchmark, validate_all)
    rows = []
    for name, rep in reports:
        for qty, analytic, measured, err in rep.to_rows():
            rows.append((name, qty, f"{analytic:.4f}", f"{measured:.4f}",
                         f"{err:.2%}"))
    print_table("E4: simulation vs queueing theory",
                ["system", "qty", "analytic", "measured", "rel err"], rows)

    by_name = dict(reports)
    # The kernel is valid: every system within 12% on every quantity
    # (moderate loads much tighter; ρ=0.9 dominates the worst case).
    for name, rep in reports:
        bound = 0.22 if "0.9" in name else 0.12
        assert rep.max_rel_error < bound, (name, rep.rel_errors)
    # Moderate-load M/M/1 is tight (the sanity anchor).
    assert by_name["M/M/1 rho=0.3"].max_rel_error < 0.05
    # Deterministic service halves Lq vs exponential at equal ρ (P-K shape).
    md1 = by_name["M/D/1 rho=0.8"]
    assert md1.analytic["Lq"] == pytest.approx(
        MM1(0.8, 1.0).Lq / 2, rel=1e-9)
