"""E2 — event-list structures: the O(1)-vs-O(log n) claim, and its caveat.

Paper source (§3/§5): "A system using an O(1) structure for the event list
will behave better than another one using an O(log n) queuing structure"
and "There is not a single unanimity accepted queuing structure that
performs best ... they all tend to behave different depending on various
parameters."

Workload: the classic hold model (pop one event, push one at now + draw),
run at several queue populations and under two increment distributions —
exponential (calendar-friendly) and a bimodal far/near mix (skew that
defeats a calendar's width estimate).  Shape targets:

* at large n, calendar/ladder beat heap beat linear;
* under skew, the calendar's advantage erodes (no universal winner).
"""

import pytest

from conftest import once

from repro.core import Event, StreamFactory
from repro.core.queues import make_queue

KINDS = ["linear", "heap", "splay", "calendar", "ladder"]
HOLD_OPS = 6_000


def hold_model(kind: str, population: int, skewed: bool = False,
               ops: int = HOLD_OPS) -> float:
    """Run the hold model; returns the final clock (sanity anchor)."""
    stream = StreamFactory(7).stream(f"hold-{kind}-{population}-{skewed}")
    q = make_queue(kind)
    seq = 0
    for _ in range(population):
        seq += 1
        q.push(Event(stream.exponential(1.0), seq, _noop))
    now = 0.0
    for _ in range(ops):
        ev = q.pop()
        now = ev.time
        if skewed:
            # bimodal: mostly tiny increments, occasional huge ones
            inc = stream.exponential(0.01) if stream.bernoulli(0.9) \
                else stream.exponential(1000.0)
        else:
            inc = stream.exponential(1.0)
        seq += 1
        q.push(Event(now + inc, seq, _noop))
    return now


def _noop() -> None:
    pass


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("population", [100, 2_000, 20_000])
def test_e2_hold_model(benchmark, kind, population):
    benchmark.group = f"hold-model n={population}"
    final = benchmark(hold_model, kind, population)
    assert final > 0.0


@pytest.mark.parametrize("kind", ["heap", "calendar", "ladder"])
def test_e2_skewed_increments(benchmark, kind):
    """The 'no universal winner' caveat: skew erodes calendar's lead."""
    benchmark.group = "hold-model skewed n=20000"
    final = benchmark(hold_model, kind, 20_000, skewed=True)
    assert final > 0.0


def test_e2_shape_claims(benchmark):
    """Timing comparisons backing the paper's claims — with one honest
    deviation, recorded in EXPERIMENTS.md.

    The paper's O(1)-beats-O(log n) statement holds at the *algorithm*
    level; in this pure-Python implementation, CPython's C-accelerated
    ``heapq`` wins at practical sizes on constant factors.  What survives
    implementation technology — and is asserted here — is:

    * the O(n) linear list loses clearly at scale, and its per-op cost
      grows much faster with n than any sublinear structure's;
    * the calendar queue's per-op cost is the *flattest* in n (amortized
      O(1)), exactly the engine-scalability property §5 recommends;
    * skewed increments erode the calendar queue ("no single structure
      performs best").
    """
    import time

    def clock(kind, population, skewed=False, reps=3):
        # best-of-N: timing assertions must survive a noisy machine
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            hold_model(kind, population, skewed)
            best = min(best, time.perf_counter() - t0)
        return best

    def run_all():
        small, large = 100, 20_000
        return ({k: clock(k, small) for k in KINDS},
                {k: clock(k, large) for k in KINDS},
                clock("calendar", large, skewed=True))

    t_small, t_large, t_cal_skew = once(benchmark, run_all)
    from conftest import print_table

    print_table(
        "E2: hold-model seconds (exponential increments)",
        ["structure", "n=100", "n=20000", "growth"],
        [(k, f"{t_small[k]:.4f}", f"{t_large[k]:.4f}",
          f"{t_large[k] / t_small[k]:.1f}x")
         for k in sorted(KINDS, key=lambda k: t_large[k])])
    print(f"  calendar skewed n=20000: {t_cal_skew:.4f}s "
          f"(vs {t_large['calendar']:.4f}s exponential)")

    # O(n) insert is visible: linear loses to heap and calendar at 20k.
    assert t_large["linear"] > 2.0 * t_large["heap"]
    assert t_large["linear"] > 1.05 * t_large["calendar"]
    # Amortized O(1): calendar's growth factor stays below linear's.
    growth = {k: t_large[k] / t_small[k] for k in KINDS}
    assert growth["calendar"] < growth["linear"]
    # "No single structure performs best": the ranking is not stable across
    # scales — at least one pair of structures swaps order between n=100
    # and n=20000 (e.g. linear beats splay small, loses large).
    flips = [(a, b) for a in KINDS for b in KINDS
             if t_small[a] < t_small[b] and t_large[a] > t_large[b]]
    assert flips, "expected at least one ranking flip across scales"
    print(f"  ranking flips between n=100 and n=20000: {flips}")
