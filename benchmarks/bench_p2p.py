"""E13 (extension) — P2P search disciplines under churn.

Paper source: the taxonomy's *scope* axis covers "P2P networks", and the
survey's family is "Grid and/or P2P simulation instruments" — so the
substrate must express the P2P trade-off the classic studies report:
structured overlays resolve in O(log N) hops, unstructured flooding pays
exponentially many duplicate messages for coverage, random walks trade
latency for message economy.

Rows regenerated: lookup hops vs overlay size for Chord; messages per
query for flooding vs random walks; lookup success under heavy churn.
"""

import math

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.p2p import ChordRing, ChurnProcess, UnstructuredOverlay


def chord_hops(n: int) -> float:
    sim = Simulator(seed=1)
    ring = ChordRing(sim, bits=20)
    for i in range(n):
        ring.join(f"node-{i}")
    keys = sim.stream("keys")
    lookups = [ring.lookup("node-0", keys.randint(0, ring.space - 1))
               for _ in range(40)]
    sim.run()
    assert all(r.found for r in lookups)
    return sum(r.hops for r in lookups) / len(lookups)


def unstructured_costs(n: int = 100):
    sim = Simulator(seed=2)
    ov = UnstructuredOverlay(sim, sim.stream("ov"), degree=4)
    for i in range(n):
        ov.join(f"peer-{i}")
    ov.place_item("needle", f"peer-{n // 2}")
    flood = ov.flood_search("peer-0", "needle", ttl=7)
    walk = ov.walk_search("peer-0", "needle", walkers=4, max_steps=40)
    sim.run()
    return flood, walk


def churn_success(mean_session: float) -> float:
    sim = Simulator(seed=3)
    ring = ChordRing(sim, bits=16)
    churn = ChurnProcess(sim, ring, sim.stream("churn"),
                         target_population=40, mean_session=mean_session,
                         mean_rejoin_gap=5.0, horizon=400.0)
    keys = sim.stream("keys")
    results = []

    def fire():
        if ring.size > 1:
            results.append(ring.lookup(churn.random_member(),
                                       keys.randint(0, ring.space - 1)))

    for t in range(10, 400, 5):
        sim.schedule_at(float(t), fire)
    sim.run()
    done = [r for r in results if r.done]
    return sum(r.found for r in done) / len(done)


@pytest.mark.parametrize("n", [16, 64, 256])
def test_e13_chord_scaling(benchmark, n):
    benchmark.group = "chord lookup"
    hops = once(benchmark, chord_hops, n)
    assert hops <= 2 * math.log2(n) + 1


def test_e13_flood_vs_walk(benchmark):
    flood, walk = once(benchmark, unstructured_costs)
    assert flood.found


def test_e13_shape_claims(benchmark):
    def run_all():
        hops = {n: chord_hops(n) for n in (16, 64, 256)}
        flood, walk = unstructured_costs()
        success = {s: churn_success(s) for s in (400.0, 60.0)}
        return hops, flood, walk, success

    hops, flood, walk, success = once(benchmark, run_all)
    print_table("E13: Chord mean lookup hops vs overlay size",
                ["N", "mean hops", "log2(N)"],
                [(n, f"{h:.2f}", f"{math.log2(n):.2f}")
                 for n, h in hops.items()])
    print_table("E13b: unstructured search cost (N=100, item at distance)",
                ["discipline", "messages", "found"],
                [("flooding ttl=7", flood.messages, flood.found),
                 ("4 random walks", walk.messages, walk.found)])
    print_table("E13c: Chord lookup success under churn",
                ["mean session", "success rate"],
                [(s, f"{v:.1%}") for s, v in success.items()])

    # O(log N): hops grow far slower than N (sublinear, log-like).
    assert hops[256] < hops[16] * (256 / 16) / 4
    assert hops[256] <= 2 * math.log2(256)
    # Flooding's duplicate-message cost exceeds bounded walks.
    assert flood.messages > walk.messages
    # Faster churn degrades (never improves) lookup success; even heavy
    # churn keeps the eager-repair overlay mostly functional.
    assert success[60.0] <= success[400.0] + 1e-9
    assert success[400.0] > 0.95
