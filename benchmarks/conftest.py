"""Shared helpers for the experiment benchmarks (E1–E12).

Each ``bench_*.py`` regenerates one table/figure-equivalent of the paper:
it computes the experiment's rows, *asserts the paper's shape claims*
(who wins, where things diverge), prints the rows (visible with ``-s``),
and times the run through the ``benchmark`` fixture so
``pytest benchmarks/ --benchmark-only`` produces a timing table too.
"""

from __future__ import annotations

from typing import Sequence


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Fixed-width experiment table, echoed into the pytest -s output."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(header)]
    print(f"\n== {title} ==")
    print("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in cells:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer, return its result.

    Experiment regenerations are deterministic end-to-end simulations;
    repeating them only to tighten timing statistics would multiply the
    suite's runtime for no informational gain.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
