"""E8 — replication strategies: OptorSim's pull optimizers vs ChicagoSim's push.

Paper sources (§4): OptorSim "investigate[s] the stability and transient
behavior of replication optimization methods" (pull); ChicagoSim uses "a
'push' model in which, when a site contains a popular data file, it will
replicate it to remote sites".

Rows regenerated: mean job time and remote-read fraction per pull optimizer
(none / lru / lfu / economic) on the Zipf workload under storage pressure;
access-pattern sensitivity for LRU; and pull-vs-push on the ChicagoSim
model.  Shape targets: any replication >> none; the economic optimizer's
eviction veto keeps it ahead of LRU under churn; push helps data-blind
placement.
"""

import pytest

from conftest import once, print_table

from repro.core import Simulator
from repro.simulators import ChicagoSimModel, OptorSimModel
from repro.simulators.optorsim import OPTIMIZERS

N_JOBS = 90


def run_optor(optimizer: str, pattern: str = "zipf") -> OptorSimModel:
    sim = Simulator(seed=11)
    model = OptorSimModel(sim, optimizer=optimizer, access_pattern=pattern,
                          n_sites=5, n_files=30, files_per_job=6,
                          se_capacity=8e9)
    return model.run(n_jobs=N_JOBS, inter_arrival=15.0)


def run_chicago(job_policy: str, data_policy: str) -> ChicagoSimModel:
    sim = Simulator(seed=31)
    model = ChicagoSimModel(sim, n_sites=5, n_datasets=20,
                            job_policy=job_policy, data_policy=data_policy,
                            push_threshold=3)
    return model.run(n_jobs=N_JOBS, zipf_s=1.2)


@pytest.mark.parametrize("optimizer", sorted(OPTIMIZERS))
def test_e8_pull_optimizers(benchmark, optimizer):
    benchmark.group = "optorsim optimizers"
    model = once(benchmark, run_optor, optimizer)
    assert len(model.completed) == N_JOBS


@pytest.mark.parametrize("data_policy", ["none", "push"])
def test_e8_push_model(benchmark, data_policy):
    benchmark.group = "chicagosim push"
    model = once(benchmark, run_chicago, "random", data_policy)
    assert len(model.completed) == N_JOBS


def test_e8_shape_claims(benchmark):
    def run_all():
        pull = {name: run_optor(name) for name in OPTIMIZERS}
        patterns = {p: run_optor("lru", p)
                    for p in ("sequential", "random", "zipf")}
        push = {(jp, dp): run_chicago(jp, dp)
                for jp in ("random", "data-present")
                for dp in ("none", "push")}
        return pull, patterns, push

    pull, patterns, push = once(benchmark, run_all)
    print_table(
        "E8: OptorSim pull optimizers (zipf access, tight SEs)",
        ["optimizer", "mean job time", "remote reads", "replicas", "evictions"],
        [(n, f"{m.mean_job_time:.1f}s", f"{m.remote_fraction():.1%}",
          m.strategy.replicas_created, m.strategy.replicas_evicted)
         for n, m in sorted(pull.items())])
    print_table(
        "E8b: access-pattern sensitivity (LRU)",
        ["pattern", "mean job time", "remote reads"],
        [(p, f"{m.mean_job_time:.1f}s", f"{m.remote_fraction():.1%}")
         for p, m in patterns.items()])
    print_table(
        "E8c: ChicagoSim job placement x data policy",
        ["job policy", "data policy", "mean turnaround", "remote reads"],
        [(jp, dp, f"{m.mean_turnaround:.1f}s", f"{m.remote_fraction():.1%}")
         for (jp, dp), m in sorted(push.items())])

    # Any replication beats streaming-only on popularity-skewed access.
    for name in ("lru", "lfu", "economic"):
        assert pull[name].mean_job_time < pull["none"].mean_job_time
        assert pull[name].remote_fraction() < pull["none"].remote_fraction()
    # The economic veto evicts less than LRU churns.
    assert pull["economic"].strategy.replicas_evicted \
        <= pull["lru"].strategy.replicas_evicted
    # Sequential access is the cache-friendliest pattern for LRU.
    assert patterns["sequential"].remote_fraction() \
        <= patterns["random"].remote_fraction()
    # Push replication reduces (never increases) remote reads for
    # data-blind random placement.
    assert push[("random", "push")].remote_fraction() \
        <= push[("random", "none")].remote_fraction() + 1e-9
    # Data-aware placement is the stronger lever, with or without push.
    assert push[("data-present", "none")].remote_fraction() \
        < push[("random", "none")].remote_fraction()
