"""E12 — trace-driven DES: record once, replay exactly, replay faster.

Paper source (§3): "A trace-driven DES proceeds by reading in a set of
events that are collected independently from another environment and are
suitable for modeling a system that has executed before in another
environment"; plus the input-data axis (generator vs monitored data sets).

Rows regenerated: source-run vs replay event timings (exact match) and the
replay speedup (the replay skips all model logic that produced the
events).  Shape targets: replay fidelity is exact; replay executes fewer
kernel events than the generating run.
"""

import io

import pytest

from conftest import once, print_table

from repro.core import (
    Simulator,
    TraceDrivenSimulator,
    TraceRecorder,
    read_trace,
    write_trace,
)

N_JOBS = 4_000


def generate_source_run():
    """A stochastic M/M/1-style model, recorded."""
    sim = Simulator(seed=9)
    rec = TraceRecorder("source",
                        event_filter=lambda ev: ev.label in ("arrival", "departure"))
    rec.attach(sim)
    arr = sim.stream("arr")
    svc = sim.stream("svc")
    busy = [False]
    waiting: list[float] = []

    def depart() -> None:
        busy[0] = False
        if waiting:
            waiting.pop(0)
            start()

    def start() -> None:
        busy[0] = True
        sim.schedule(svc.exponential(0.6), depart, label="departure")

    def arrive(n: int) -> None:
        if busy[0]:
            waiting.append(sim.now)
        else:
            start()
        if n < N_JOBS:
            sim.schedule(arr.exponential(1.0), arrive, n + 1, label="arrival")

    sim.schedule(0.0, arrive, 1, label="arrival")
    sim.run()
    return sim, rec


def replay(records):
    sim = TraceDrivenSimulator(records)
    counts = {"arrival": 0, "departure": 0}
    times: list[float] = []
    sim.on("arrival", lambda s, r: (counts.__setitem__("arrival", counts["arrival"] + 1),
                                    times.append(s.now)))
    sim.on("departure", lambda s, r: (counts.__setitem__("departure", counts["departure"] + 1),
                                      times.append(s.now)))
    sim.run()
    return sim, counts, times


def test_e12_record_roundtrip(benchmark):
    """Serialize -> parse -> replay == direct replay (the monitored path)."""
    def roundtrip():
        _, rec = generate_source_run()
        buf = io.StringIO()
        write_trace(rec.records, buf)
        buf.seek(0)
        return rec.records, read_trace(buf)

    original, parsed = once(benchmark, roundtrip)
    assert parsed == list(original)


def test_e12_shape_claims(benchmark):
    import time

    def run_all():
        t0 = time.perf_counter()
        src_sim, rec = generate_source_run()
        t_src = time.perf_counter() - t0
        t0 = time.perf_counter()
        rep_sim, counts, times = replay(rec.records)
        t_rep = time.perf_counter() - t0
        return src_sim, rec, rep_sim, counts, times, t_src, t_rep

    src_sim, rec, rep_sim, counts, times, t_src, t_rep = once(benchmark, run_all)
    print_table("E12: trace-driven replay",
                ["run", "kernel events", "wall seconds"],
                [("source (generating model)", src_sim.events_executed,
                  f"{t_src:.3f}"),
                 ("replay (trace-driven)", rep_sim.events_executed,
                  f"{t_rep:.3f}")])

    # Fidelity: the replay reproduces every recorded occurrence, in time.
    assert counts["arrival"] == N_JOBS
    assert counts["arrival"] + counts["departure"] == len(rec.records)
    assert times == [r.time for r in rec.records]
    assert rep_sim.unhandled == 0
    # Economy: replaying needs no more kernel events than generating, and
    # (having skipped the generating logic) is not slower by much.
    assert rep_sim.events_executed <= src_sim.events_executed
    assert t_rep < 3.0 * t_src
