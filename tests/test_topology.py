"""Tests for topology construction and routing."""

import pytest

from repro.core import ConfigurationError, RoutingError, TopologyError
from repro.network import (
    GBPS,
    Topology,
    dumbbell,
    eu_datagrid,
    ring,
    star,
    tier_tree,
)


class TestConstruction:
    def test_add_link_creates_endpoints(self):
        t = Topology()
        t.add_link("a", "b", 100.0, 0.01)
        assert set(t.nodes) == {"a", "b"}

    def test_symmetric_links_by_default(self):
        t = Topology()
        t.add_link("a", "b", 100.0)
        assert t.link("a", "b").bandwidth == 100.0
        assert t.link("b", "a").bandwidth == 100.0

    def test_asymmetric_link(self):
        t = Topology()
        t.add_link("a", "b", 100.0, symmetric=False)
        t.link("a", "b")
        with pytest.raises(TopologyError):
            t.link("b", "a")

    def test_bad_bandwidth_rejected(self):
        t = Topology()
        with pytest.raises(ConfigurationError):
            t.add_link("a", "b", 0.0)
        with pytest.raises(ConfigurationError):
            t.add_link("a", "b", 10.0, latency=-1.0)


class TestRouting:
    def topo(self):
        t = Topology()
        t.add_link("a", "b", 100.0, 0.01)
        t.add_link("b", "c", 50.0, 0.01)
        t.add_link("a", "c", 10.0, 0.1)  # direct but slow path
        return t

    def test_route_minimizes_latency(self):
        t = self.topo()
        assert t.route("a", "c") == ["a", "b", "c"]

    def test_self_route(self):
        t = self.topo()
        assert t.route("a", "a") == ["a"]
        assert t.route_links("a", "a") == []
        assert t.bottleneck_bandwidth("a", "a") == float("inf")

    def test_path_latency_sums(self):
        t = self.topo()
        assert t.path_latency("a", "c") == pytest.approx(0.02)

    def test_bottleneck_bandwidth(self):
        t = self.topo()
        assert t.bottleneck_bandwidth("a", "c") == 50.0

    def test_unknown_node_raises(self):
        t = self.topo()
        with pytest.raises(TopologyError):
            t.route("a", "zz")

    def test_no_route_raises(self):
        t = Topology()
        t.add_node("island")
        t.add_link("a", "b", 10.0)
        with pytest.raises(RoutingError):
            t.route("a", "island")

    def test_cache_invalidated_on_mutation(self):
        t = self.topo()
        assert t.route("a", "c") == ["a", "b", "c"]
        t.add_link("a", "c", 100.0, 0.001)  # new fast direct edge
        assert t.route("a", "c") == ["a", "c"]


class TestFactories:
    def test_star_routes_through_center(self):
        t = star("hub", ["s1", "s2", "s3"], 100.0)
        assert t.route("s1", "s2") == ["s1", "hub", "s2"]

    def test_star_requires_leaves(self):
        with pytest.raises(ConfigurationError):
            star("hub", [], 100.0)

    def test_ring_connectivity(self):
        t = ring(["a", "b", "c", "d"], 10.0)
        assert t.route("a", "b") == ["a", "b"]
        assert len(t.route("a", "c")) == 3  # two hops either way

    def test_ring_minimum_size(self):
        with pytest.raises(ConfigurationError):
            ring(["a", "b"], 10.0)

    def test_dumbbell_bottleneck(self):
        t = dumbbell(["l1", "l2"], ["r1"], access_bw=100.0, bottleneck_bw=10.0)
        assert t.bottleneck_bandwidth("l1", "r1") == 10.0
        assert t.route("l1", "r1") == ["l1", "Lhub", "Rhub", "r1"]

    def test_tier_tree_structure(self):
        t = tier_tree([2, 3], [10 * GBPS, 1 * GBPS])
        assert t.has_node("T0")
        assert t.has_node("T1.0") and t.has_node("T1.1")
        assert t.has_node("T2.0.0") and t.has_node("T2.1.2")
        # T2 leaves reach T0 through their T1 parent
        assert t.route("T2.1.2", "T0") == ["T2.1.2", "T1.1", "T0"]
        # 1 + 2 + 6 nodes
        assert len(t.nodes) == 9

    def test_tier_tree_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            tier_tree([2], [1.0, 2.0])

    def test_eu_datagrid_default_sites(self):
        t = eu_datagrid()
        assert t.has_node("CERN") and t.has_node("WAN")
        assert t.route("CERN", "RAL") == ["CERN", "WAN", "RAL"]

    def test_eu_datagrid_custom_sites(self):
        t = eu_datagrid(["X", "Y"])
        assert t.route("X", "Y") == ["X", "WAN", "Y"]
