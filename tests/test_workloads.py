"""Tests for workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, StreamFactory
from repro.workloads import (
    ACCESS_PATTERNS,
    ATLAS_2005,
    CMS_2005,
    ExperimentSpec,
    analysis_jobs,
    batch_arrival_farm,
    chain_dag,
    fork_join_dag,
    gaussian_walk_requests,
    heavy_tail_arrivals,
    layered_dag,
    mmpp_arrivals,
    poisson_arrivals,
    production_schedule,
    random_requests,
    sequential_requests,
    task_farm,
    unitary_walk_requests,
    zipf_requests,
)
from repro.middleware import Job
from repro.network import FileSpec
from repro.workloads import jobs_from_trace, jobs_to_trace


def stream(name="w", seed=0):
    return StreamFactory(seed).stream(name)


class TestArrivals:
    def test_poisson_rate_approximation(self):
        times = poisson_arrivals(stream(), rate=2.0, horizon=5000.0)
        assert abs(len(times) / 5000.0 - 2.0) < 0.15
        assert all(0 < t < 5000.0 for t in times)
        assert times == sorted(times)

    def test_poisson_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(stream(), rate=0.0, horizon=10.0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(stream(), rate=1.0, horizon=0.0)

    def test_mmpp_burstier_than_poisson(self):
        """MMPP inter-arrival CV must exceed Poisson's 1."""
        s = stream("mmpp")
        times = mmpp_arrivals(s, quiet_rate=0.1, burst_rate=20.0,
                              mean_quiet=50.0, mean_burst=5.0, horizon=20000.0)
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_mmpp_zero_quiet_rate(self):
        times = mmpp_arrivals(stream(), quiet_rate=0.0, burst_rate=10.0,
                              mean_quiet=10.0, mean_burst=10.0, horizon=1000.0)
        assert len(times) > 0

    def test_heavy_tail_mean_gap(self):
        times = heavy_tail_arrivals(stream(), alpha=2.5, mean_gap=2.0,
                                    horizon=20000.0)
        gaps = np.diff(times)
        assert abs(gaps.mean() - 2.0) < 0.4

    def test_heavy_tail_needs_finite_mean(self):
        with pytest.raises(ConfigurationError):
            heavy_tail_arrivals(stream(), alpha=1.0, mean_gap=1.0, horizon=10.0)


class TestTaskFarm:
    def test_farm_shape(self):
        jobs = task_farm(stream(), 50, mean_length=500.0)
        assert len(jobs) == 50
        assert all(j.length > 0 for j in jobs)
        assert [j.id for j in jobs] == list(range(50))

    def test_length_models_differ(self):
        u = task_farm(stream("u"), 500, length_model="uniform")
        h = task_farm(stream("h"), 500, length_model="heavy")
        lu = np.array([j.length for j in u])
        lh = np.array([j.length for j in h])
        assert lh.max() / np.median(lh) > lu.max() / np.median(lu)

    def test_arrival_times_attached(self):
        jobs = task_farm(stream(), 3, arrival_times=[1.0, 2.0, 3.0])
        assert [j.submitted for j in jobs] == [1.0, 2.0, 3.0]

    def test_round_robin_input_files(self):
        files = [FileSpec("a", 1.0), FileSpec("b", 1.0)]
        jobs = task_farm(stream(), 4, input_files=files)
        assert [j.input_files[0].name for j in jobs] == ["a", "b", "a", "b"]

    def test_constraints_attached(self):
        jobs = task_farm(stream(), 2, deadline=10.0, budget=5.0)
        assert all(j.deadline == 10.0 and j.budget == 5.0 for j in jobs)

    def test_first_id_offset(self):
        jobs = task_farm(stream(), 3, first_id=100)
        assert [j.id for j in jobs] == [100, 101, 102]

    def test_batch_arrivals_grouped(self):
        jobs = batch_arrival_farm(stream(), n_batches=4, batch_size=5,
                                  inter_batch=100.0)
        assert len(jobs) == 20
        times = sorted({j.submitted for j in jobs})
        assert len(times) == 4  # one distinct time per batch

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            task_farm(stream(), 0)
        with pytest.raises(ConfigurationError):
            task_farm(stream(), 5, length_model="bogus")
        with pytest.raises(ConfigurationError):
            task_farm(stream(), 5, arrival_times=[1.0])


class TestDags:
    def test_layered_every_nonroot_has_parent(self):
        dag = layered_dag(stream(), layers=4, width=5, edge_prob=0.3)
        assert len(dag) == 20
        roots = {j.id for j in dag.roots()}
        for job in dag.jobs:
            if job.id not in roots:
                assert dag.predecessors(job.id)
        assert all(r < 5 for r in roots)  # roots only in layer 0

    def test_fork_join_shape(self):
        dag = fork_join_dag(stream(), branches=3, depth=2)
        assert len(dag) == 1 + 3 * 2 + 1
        assert len(dag.roots()) == 1 and len(dag.leaves()) == 1

    def test_chain_is_linear(self):
        dag = chain_dag(stream(), length=5)
        assert len(dag.roots()) == 1 and len(dag.leaves()) == 1
        order = dag.topological_order()
        assert [j.id for j in order] == [0, 1, 2, 3, 4]

    def test_generated_dags_are_acyclic(self):
        for seed in range(5):
            dag = layered_dag(stream(f"d{seed}", seed), layers=3, width=4)
            assert len(dag.topological_order()) == len(dag)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            layered_dag(stream(), layers=0, width=1)
        with pytest.raises(ConfigurationError):
            fork_join_dag(stream(), branches=0, depth=1)
        with pytest.raises(ConfigurationError):
            chain_dag(stream(), length=0)


class TestAccessPatterns:
    def test_sequential_wraps(self):
        assert sequential_requests(stream(), 3, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_random_in_range(self):
        reqs = random_requests(stream(), 10, 200)
        assert min(reqs) >= 0 and max(reqs) < 10
        assert len(set(reqs)) > 3

    def test_unitary_walk_steps_by_one(self):
        reqs = unitary_walk_requests(stream(), 100, 500)
        steps = np.abs(np.diff(reqs))
        assert set(steps.tolist()) <= {0, 1}  # 0 only at reflections

    def test_gaussian_walk_locality(self):
        reqs = gaussian_walk_requests(stream(), 1000, 500, sigma_frac=0.01)
        steps = np.abs(np.diff(reqs))
        assert np.median(steps) < 50

    def test_zipf_concentrates_on_rank0(self):
        reqs = zipf_requests(stream(), 100, 2000, s=1.2)
        assert reqs.count(0) > reqs.count(50)

    def test_registry_complete(self):
        assert set(ACCESS_PATTERNS) == {"sequential", "random", "unitary",
                                        "gaussian", "zipf"}
        for fn in ACCESS_PATTERNS.values():
            reqs = fn(stream(), 10, 20)
            assert len(reqs) == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sequential_requests(stream(), 0, 5)
        with pytest.raises(ConfigurationError):
            random_requests(stream(), 5, -1)


class TestLhc:
    def test_production_rate_matches_spec(self):
        horizon = 3600.0
        sched = production_schedule(stream(), [CMS_2005], horizon, jitter=0.0)
        total = sum(f.size for _, f in sched)
        expected = CMS_2005.rate_bytes_per_s * horizon
        assert abs(total - expected) / expected < 0.05

    def test_two_experiments_interleave(self):
        sched = production_schedule(stream(), [CMS_2005, ATLAS_2005], 1000.0)
        names = {f.name.split("-")[0] for _, f in sched}
        assert names == {"CMS", "ATLAS"}
        times = [t for t, _ in sched]
        assert times == sorted(times)

    def test_file_names_unique(self):
        sched = production_schedule(stream(), [CMS_2005], 500.0)
        names = [f.name for _, f in sched]
        assert len(names) == len(set(names))

    def test_analysis_jobs_reference_produced_files(self):
        sched = production_schedule(stream(), [CMS_2005], 500.0)
        produced = [f for _, f in sched]
        jobs = analysis_jobs(stream("a"), produced, 50, horizon=100.0)
        assert len(jobs) == 50
        produced_names = {f.name for f in produced}
        assert all(j.input_files[0].name in produced_names for j in jobs)
        assert all(0 <= j.submitted <= 100.0 for j in jobs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("X", rate_bytes_per_s=0.0, file_size=1.0)
        with pytest.raises(ConfigurationError):
            production_schedule(stream(), [], 100.0)
        with pytest.raises(ConfigurationError):
            analysis_jobs(stream(), [], 5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_workloads_reproducible(seed):
    a = task_farm(stream("x", seed), 20)
    b = task_farm(stream("x", seed), 20)
    assert [j.length for j in a] == [j.length for j in b]


class TestMonitoredWorkloads:
    """The input-data axis end-to-end: generator -> trace -> monitored import."""

    def make_jobs(self):
        return [
            Job(id=1, length=500.0, submitted=0.0),
            Job(id=2, length=800.0, submitted=3.5,
                input_files=(FileSpec("a", 100.0), FileSpec("b", 25.5)),
                output_size=64.0),
            Job(id=3, length=120.0, submitted=7.0, deadline=100.0, budget=50.0),
        ]

    def test_roundtrip_exact(self):
        jobs = self.make_jobs()
        back = jobs_from_trace(jobs_to_trace(jobs))
        assert len(back) == 3
        for orig, restored in zip(jobs, back):
            assert restored.id == orig.id
            assert restored.length == orig.length
            assert restored.submitted == orig.submitted
            assert restored.input_files == orig.input_files
            assert restored.output_size == orig.output_size
            assert restored.deadline == orig.deadline
            assert restored.budget == orig.budget

    def test_file_format_roundtrip(self):
        import io

        from repro.core import read_trace, write_trace

        jobs = self.make_jobs()
        buf = io.StringIO()
        write_trace(jobs_to_trace(jobs), buf)
        buf.seek(0)
        back = jobs_from_trace(read_trace(buf))
        assert [j.id for j in back] == [1, 2, 3]
        assert back[1].input_files[1].size == 25.5

    def test_records_time_ordered(self):
        jobs = list(reversed(self.make_jobs()))
        recs = jobs_to_trace(jobs)
        assert [r.time for r in recs] == sorted(r.time for r in recs)

    def test_foreign_kinds_ignored(self):
        from repro.core import TraceRecord

        recs = jobs_to_trace(self.make_jobs())
        recs.append(TraceRecord(9.0, "x", "heartbeat", 1.0))
        assert len(jobs_from_trace(recs)) == 3

    def test_missing_job_id_rejected(self):
        from repro.core import TraceFormatError, TraceRecord

        bad = [TraceRecord(0.0, "w", "job_submit", 100.0, {})]
        with pytest.raises(TraceFormatError, match="job_id"):
            jobs_from_trace(bad)

    def test_bad_inputs_attribute_rejected(self):
        from repro.core import TraceFormatError, TraceRecord

        bad = [TraceRecord(0.0, "w", "job_submit", 100.0,
                           {"job_id": "1", "inputs": "broken"})]
        with pytest.raises(TraceFormatError, match="inputs"):
            jobs_from_trace(bad)

    def test_monitored_workload_drives_identical_simulation(self):
        """Generator-built vs trace-imported workloads give identical runs."""
        from repro.core import Simulator
        from repro.hosts import Grid, Site, SpaceSharedMachine
        from repro.middleware import GridRunner, RoundRobinScheduler
        from repro.network import Topology

        def run(jobs):
            sim = Simulator(seed=1)
            topo = Topology()
            topo.add_link("x", "y", 1e8, 0.001)
            grid = Grid(sim, topo, [
                Site(sim, "x", machines=[SpaceSharedMachine(sim, rating=100.0)]),
                Site(sim, "y", machines=[SpaceSharedMachine(sim, rating=100.0)]),
            ])
            runner = GridRunner(sim, grid, scheduler=RoundRobinScheduler())
            runner.submit_all(jobs)
            sim.run()
            return [(j.id, j.finished, j.site) for j in runner.completed]

        generated = task_farm(stream("mon", 9), 15, mean_length=300.0,
                              arrival_times=[float(i) for i in range(15)])
        imported = jobs_from_trace(jobs_to_trace(generated))
        assert run(generated) == run(imported)
