"""Cross-cutting integration invariants spanning kernel, substrates, models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Simulator
from repro.core.queues import QUEUE_FACTORIES
from repro.network import FlowNetwork, Topology
from repro.simulators import ChicagoSimModel, GridSimModel, OptorSimModel
from repro.taxonomy import DesKind, QueueStructure, classify_engine


class TestQueueStructureInvariance:
    """Taxonomy claim made testable: the event-list structure is an engine
    *optimization* — it must never change model-level results."""

    @pytest.mark.parametrize("kind", sorted(QUEUE_FACTORIES))
    def test_optorsim_results_identical_across_queues(self, kind):
        def run(queue):
            sim = Simulator(queue=queue, seed=13)
            model = OptorSimModel(sim, optimizer="lru", n_sites=3,
                                  n_files=8, files_per_job=3)
            model.run(n_jobs=15)
            return [(j.id, round(j.finished, 9), j.site,
                     j.remote_reads) for j in model.completed]

        assert run(kind) == run("heap")

    @pytest.mark.parametrize("kind", ["linear", "calendar", "ladder"])
    def test_gridsim_summary_identical_across_queues(self, kind):
        def run(queue):
            sim = Simulator(queue=queue, seed=17)
            return GridSimModel(sim).run_dbc(n_gridlets=15, deadline=500.0,
                                             budget=1e6, strategy="time")

        a, b = run(kind), run("heap")
        assert a["spent"] == b["spent"]
        assert a["makespan"] == pytest.approx(b["makespan"])


class TestDeterminismEndToEnd:
    def test_same_seed_same_trajectory(self):
        def run(seed):
            sim = Simulator(seed=seed)
            model = ChicagoSimModel(sim, n_sites=3, n_datasets=5,
                                    job_policy="data-present",
                                    data_policy="push")
            model.run(n_jobs=20)
            return [(j.id, j.finished, j.site) for j in model.completed]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestEngineClassificationOfModels:
    def test_model_sims_classify_as_event_driven(self):
        for queue, expect in (("heap", QueueStructure.TREE),
                              ("calendar", QueueStructure.CALENDAR),
                              ("linear", QueueStructure.LINEAR)):
            sim = Simulator(queue=queue, seed=1)
            OptorSimModel(sim, n_sites=2, n_files=4)  # builds on this engine
            info = classify_engine(sim)
            assert info["des_kind"] is DesKind.EVENT_DRIVEN
            assert info["queue_structure"] is expect


class TestCatalogDiskInvariant:
    """After any mixed run, the replica catalog and the disks must agree."""

    @pytest.mark.parametrize("data_policy", ["none", "push"])
    def test_chicagosim_catalog_matches_disks(self, data_policy):
        sim = Simulator(seed=23)
        model = ChicagoSimModel(sim, n_sites=4, n_datasets=8,
                                job_policy="random", data_policy=data_policy,
                                storage=3e9)  # tight storage: evictions happen
        model.run(n_jobs=40)
        # 1) every catalog record is physically present
        for fname in model.catalog.files:
            for loc in model.catalog.locations(fname):
                assert model.grid.site(loc).has_file(fname), (fname, loc)
        # 2) every dataset still has at least one replica (no data loss)
        for ds in model.datasets:
            assert model.catalog.replica_count(ds.name) >= 1, ds.name


@settings(max_examples=20, deadline=None)
@given(
    n_flows=st.integers(min_value=1, max_value=12),
    access_bw=st.floats(min_value=10.0, max_value=1000.0),
    bottleneck_bw=st.floats(min_value=10.0, max_value=1000.0),
    seed=st.integers(0, 50),
)
def test_property_flow_capacity_conservation(n_flows, access_bw,
                                             bottleneck_bw, seed):
    """On any dumbbell, instantaneous link usage never exceeds capacity and
    every transfer eventually completes."""
    topo = Topology()
    topo.add_link("L", "M", access_bw, 0.0)
    topo.add_link("M", "R", bottleneck_bw, 0.0)
    sim = Simulator(seed=seed)
    net = FlowNetwork(sim, topo, efficiency=1.0)
    stream = sim.stream("sizes")
    handles = [net.transfer("L", "R", stream.uniform(10.0, 1e4))
               for _ in range(n_flows)]
    # check rates right after admission
    sim.run(until=1e-6)
    for link in topo.links:
        used = sum(f.rate for f in net.flows() if link in f.links)
        assert used <= link.bandwidth * (1 + 1e-9)
    sim.run()
    assert all(h.done and h.finished is not None for h in handles)
    # aggregate throughput bounded by the bottleneck
    total = sum(h.size for h in handles)
    assert max(h.finished for h in handles) >= total / min(access_bw, bottleneck_bw) - 1e-6
