"""Smoke tests: every example must run clean (they self-assert their shapes).

Examples are documentation that executes; letting them rot defeats their
purpose, so CI runs each in a subprocess exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(ALL_EXAMPLES) >= 10
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script} printed nothing"
