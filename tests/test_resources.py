"""Tests for Resource / Store / Container primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnyOf,
    CapacityError,
    ConfigurationError,
    Container,
    Process,
    Resource,
    ResourceError,
    Simulator,
    Store,
)


def run_station(discipline, arrivals, capacity=1):
    """Run jobs (arrival, duration, priority/key) through a station.

    Returns list of (job_index, start_time, end_time).
    """
    sim = Simulator()
    res = Resource(sim, capacity=capacity, discipline=discipline)
    log = []

    def job(i, dur, prio):
        req = yield res.request(priority=prio, key=dur, owner=i)
        start = sim.now
        yield dur
        res.release(req)
        log.append((i, start, sim.now))

    for i, (at, dur, prio) in enumerate(arrivals):
        sim.schedule_at(at, Process, sim, job, i, dur, prio)
    sim.run()
    return sorted(log, key=lambda r: (r[1], r[0]))


class TestResourceBasics:
    def test_immediate_grant_when_free(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        granted = []

        def body():
            req = yield res.request()
            granted.append(sim.now)
            yield 1.0
            res.release(req)

        Process(sim, body)
        sim.run()
        assert granted == [0.0]
        assert res.available == 2

    def test_fifo_service_order(self):
        log = run_station("fifo", [(0.0, 10.0, 0), (1.0, 1.0, 0), (2.0, 1.0, 0)])
        # arrivals are served strictly in arrival order
        assert [r[0] for r in log] == [0, 1, 2]
        assert log[1][1] == 10.0 and log[2][1] == 11.0

    def test_lifo_serves_newest_first(self):
        log = run_station("lifo", [(0.0, 10.0, 0), (1.0, 1.0, 0), (2.0, 1.0, 0)])
        # job 0 occupies server; at t=10 the *newest* waiter (job 2) starts
        assert [r[0] for r in log] == [0, 2, 1]

    def test_priority_discipline(self):
        log = run_station("priority", [(0.0, 10.0, 5), (1.0, 1.0, 9), (2.0, 1.0, 1)])
        # job 2 (prio 1) beats job 1 (prio 9) despite arriving later
        assert [r[0] for r in log] == [0, 2, 1]

    def test_sjf_discipline(self):
        log = run_station("sjf", [(0.0, 10.0, 0), (1.0, 7.0, 0), (2.0, 2.0, 0)])
        assert [r[0] for r in log] == [0, 2, 1]

    def test_multi_server_parallelism(self):
        log = run_station("fifo", [(0.0, 5.0, 0), (0.0, 5.0, 0), (0.0, 5.0, 0)],
                          capacity=2)
        ends = sorted(r[2] for r in log)
        assert ends == [5.0, 5.0, 10.0]

    def test_utilization_statistic(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def body():
            req = yield res.request()
            yield 5.0
            res.release(req)

        Process(sim, body)
        sim.run(until=10.0)
        assert res.utilization(10.0) == pytest.approx(0.5)

    def test_wait_time_tally(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def body(expected_wait):
            req = yield res.request()
            assert req.waited == pytest.approx(expected_wait)
            yield 4.0
            res.release(req)

        Process(sim, body, 0.0)
        Process(sim, body, 4.0)
        sim.run()
        assert res.monitor.tally("wait_time").mean == pytest.approx(2.0)


class TestResourceErrors:
    def test_request_exceeding_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        with pytest.raises(CapacityError):
            res.request(amount=3)

    def test_double_release(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        reqs = []

        def body():
            req = yield res.request()
            reqs.append(req)
            yield 1.0
            res.release(req)

        Process(sim, body)
        sim.run()
        with pytest.raises(ResourceError, match="already released"):
            res.release(reqs[0])

    def test_release_foreign_request(self):
        sim = Simulator()
        r1 = Resource(sim, capacity=1, name="r1")
        r2 = Resource(sim, capacity=1, name="r2")
        req = r1.request()
        with pytest.raises(ResourceError, match="another resource"):
            r2.release(req)

    def test_release_ungranted(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()          # occupies the server
        queued = res.request()  # still queued
        with pytest.raises(ResourceError, match="never granted"):
            res.release(queued)

    def test_bad_configuration(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Resource(sim, capacity=0)
        with pytest.raises(ConfigurationError):
            Resource(sim, discipline="random")
        with pytest.raises(ConfigurationError):
            Resource(sim, discipline="fifo", preemptive=True)


class TestBalkingAndReneging:
    def test_queue_limit_balks(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, queue_limit=1)
        res.request()            # served
        res.request()            # queued (1/1)
        balked = res.request()   # over the limit -> balks
        assert res.balked == 1
        assert balked.done and balked.result is None

    def test_cancel_reneges_queued_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        res.cancel(second)
        res.release(first)
        assert not second.done  # never granted
        assert res.queue_length == 0


class TestPreemption:
    def test_high_priority_revokes_lowest_holder(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, discipline="priority", preemptive=True)
        log = []

        def low():
            req = yield res.request(priority=10)
            done = sim.schedule(50.0, lambda: None)  # placeholder work
            idx, _ = yield AnyOf([req.preempted])
            log.append(("low-preempted", sim.now))
            done.cancel()

        def high():
            yield 5.0
            req = yield res.request(priority=1)
            log.append(("high-granted", sim.now))
            yield 1.0
            res.release(req)

        Process(sim, low)
        Process(sim, high)
        sim.run()
        assert ("low-preempted", 5.0) in log
        assert ("high-granted", 5.0) in log

    def test_equal_priority_does_not_preempt(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, discipline="priority", preemptive=True)
        r1 = res.request(priority=5)
        r2 = res.request(priority=5)
        assert r1.done and not r2.done


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        Process(sim, consumer)
        sim.schedule(3.0, store.put, "widget")
        sim.run()
        assert got == [(3.0, "widget")]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        token = store.get()
        assert not token.done
        store.put(1)
        assert token.done and token.result == 1

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert store.get().result == "a"
        assert store.get().result == "b"

    def test_bounded_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        t1 = store.put("x")
        t2 = store.put("y")
        assert t1.done and not t2.done
        store.get()
        assert t2.done

    def test_occupancy_stat(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        assert store.items == 1
        store.get()
        assert store.items == 0


class TestContainer:
    def test_take_blocks_until_level(self):
        sim = Simulator()
        tank = Container(sim, capacity=100.0, initial=10.0)
        token = tank.take(30.0)
        assert not token.done
        tank.add(25.0)
        assert token.done
        assert tank.level == pytest.approx(5.0)

    def test_add_blocks_at_capacity(self):
        sim = Simulator()
        tank = Container(sim, capacity=10.0, initial=8.0)
        token = tank.add(5.0)
        assert not token.done
        tank.take(4.0)
        assert token.done and tank.level == pytest.approx(9.0)

    def test_fifo_no_overtake(self):
        """A large queued take blocks later small takes (no starvation)."""
        sim = Simulator()
        tank = Container(sim, capacity=100.0, initial=5.0)
        big = tank.take(50.0)
        small = tank.take(1.0)
        tank.add(10.0)  # 15 total: not enough for big; small must still wait
        assert not big.done and not small.done
        tank.add(40.0)
        assert big.done and small.done

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Container(sim, capacity=0.0)
        with pytest.raises(ConfigurationError):
            Container(sim, capacity=10.0, initial=11.0)
        tank = Container(sim, capacity=10.0)
        with pytest.raises(ConfigurationError):
            tank.take(0.0)
        with pytest.raises(CapacityError):
            tank.take(11.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.floats(min_value=0.01, max_value=10)),
                min_size=1, max_size=40),
       st.integers(min_value=1, max_value=4))
def test_property_fifo_conservation(jobs, capacity):
    """Every job is served exactly once; nobody starts before arriving."""
    arrivals = [(at, dur, 0) for at, dur in jobs]
    log = run_station("fifo", arrivals, capacity=capacity)
    assert len(log) == len(jobs)
    assert {r[0] for r in log} == set(range(len(jobs)))
    by_id = {r[0]: r for r in log}
    for i, (at, dur, _) in enumerate(arrivals):
        _, start, end = by_id[i]
        assert start >= at - 1e-9
        assert end == pytest.approx(start + dur)
