"""Tests for repro.obs.metrics — instruments, registry, exporters."""

import json
import pickle

import pytest

from repro.obs.metrics import (POW2_BUCKET_MAX_EXP, Counter, Gauge, Histogram,
                               Registry, get_registry, set_registry)


class TestInstruments:
    def test_counter_inc_and_hot_path_add(self):
        reg = Registry()
        c = reg.counter("events_total", track="a")
        c.inc()
        c.inc(2.5)
        c.value += 1.0  # the inlined hot-path form the binding uses
        assert reg.value("events_total", track="a") == 4.5

    def test_gauge_set_inc_dec(self):
        g = Registry().gauge("depth")
        g.set(10.0)
        g.inc(3.0)
        g.dec()
        assert g.value == 12.0

    def test_labels_partition_instruments(self):
        reg = Registry()
        a = reg.counter("n", track="a")
        b = reg.counter("n", track="b")
        assert a is not b
        a.inc()
        assert reg.value("n", track="a") == 1.0
        assert reg.value("n", track="b") == 0.0
        assert reg.value("n", track="missing") is None
        # same (name, labels) pair resolves to the same handle
        assert reg.counter("n", track="a") is a

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", track="other")


class TestHistogram:
    def test_pow2_bucketing_by_bit_length(self):
        h = Registry().histogram("ns")
        for v in (0, 1, 2, 3, 4, 1000):
            h.observe(v)
        # 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 (10 bits) -> 10
        assert h.counts[0] == 1 and h.counts[1] == 1
        assert h.counts[2] == 2 and h.counts[3] == 1
        assert h.counts[10] == 1
        assert h.count == 6 and h.sum == 1010.0
        assert h.mean == pytest.approx(1010.0 / 6)

    def test_pow2_overflow_bucket(self):
        h = Registry().histogram("ns")
        h.observe(float(2 ** 63))
        assert h.counts[POW2_BUCKET_MAX_EXP + 1] == 1

    def test_explicit_buckets_bisect(self):
        h = Registry().histogram("w", buckets=[1.0, 10.0, 100.0])
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # inclusive upper bounds: 0.5,1.0 -> le=1; 5 -> le=10; 50 -> le=100
        assert h.counts == [2, 1, 1, 1]
        assert h.bucket_bounds() == [1.0, 10.0, 100.0]

    def test_merge_adds_and_rejects_layout_mismatch(self):
        r1, r2 = Registry(), Registry()
        r1.histogram("h").observe(4)
        r2.histogram("h").observe(4)
        r1.merge(r2.dump())
        h = r1.histogram("h")
        assert h.count == 2 and h.counts[3] == 2
        bad = Registry()
        bad.histogram("h", buckets=[1.0]).observe(0.5)
        with pytest.raises(ValueError, match="bucket layouts differ"):
            r1.merge(bad.dump())


class TestRegistryTransport:
    def _loaded(self):
        reg = Registry()
        reg.counter("fired_total", help="events fired", track="t0").inc(10)
        reg.gauge("gvt").set(42.5)
        reg.histogram("dur_ns", track="t0").observe(1500)
        return reg

    def test_dump_is_plain_builtins(self):
        dump = self._loaded().dump()
        assert json.loads(json.dumps(dump)) == dump
        assert pickle.loads(pickle.dumps(dump)) == dump
        by_name = {e["name"]: e for e in dump}
        assert by_name["fired_total"]["value"] == 10.0
        assert by_name["fired_total"]["labels"] == {"track": "t0"}
        assert by_name["dur_ns"]["count"] == 1

    def test_merge_counters_add_gauges_take_latest(self):
        reg = Registry()
        reg.merge(self._loaded().dump()).merge(self._loaded().dump())
        assert reg.value("fired_total", track="t0") == 20.0
        assert reg.value("gvt") == 42.5
        assert reg.histogram("dur_ns", track="t0").count == 2

    def test_merge_into_empty_reproduces_dump(self):
        src = self._loaded()
        clone = Registry().merge(src.dump())
        assert clone.dump() == src.dump()
        assert clone.prometheus_text() == src.prometheus_text()

    def test_default_registry_swap(self):
        fresh = Registry()
        old = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(old)
        assert get_registry() is old


class TestExporters:
    def test_prometheus_text_format(self):
        reg = Registry()
        reg.counter("repro_events_fired_total", help="events fired",
                    track="mm1").inc(6)
        reg.gauge("repro_gvt").set(12.0)
        text = reg.prometheus_text()
        assert "# HELP repro_events_fired_total events fired" in text
        assert "# TYPE repro_events_fired_total counter" in text
        assert 'repro_events_fired_total{track="mm1"} 6' in text
        assert "\nrepro_gvt 12\n" in text

    def test_prometheus_histogram_cumulative_and_elision(self):
        reg = Registry()
        h = reg.histogram("dur", track="a")
        h.observe(2)   # bucket 2 (le=3)
        h.observe(3)   # bucket 2
        h.observe(9)   # bucket 4 (le=15)
        lines = reg.prometheus_text().splitlines()
        buckets = [ln for ln in lines if ln.startswith("dur_bucket")]
        # empty pow-2 buckets are elided but the cumulative stays correct
        assert buckets == [
            'dur_bucket{le="3",track="a"} 2',
            'dur_bucket{le="15",track="a"} 3',
            'dur_bucket{le="+Inf",track="a"} 3',
        ]
        assert 'dur_sum{track="a"} 14' in lines
        assert 'dur_count{track="a"} 3' in lines

    def test_jsonl_round_trip(self):
        reg = Registry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        lines = reg.jsonl().splitlines()
        assert len(lines) == 2
        entries = [json.loads(ln) for ln in lines]
        assert Registry().merge(entries).value("a") == 1.0

    def test_empty_registry_exports(self):
        reg = Registry()
        assert reg.prometheus_text() == ""
        assert reg.jsonl() == ""
        assert len(reg) == 0
        assert bool(reg) is True
