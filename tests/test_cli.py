"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTable1:
    def test_ascii_default(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Bricks" in out and "MONARC 2" in out
        assert "repro" not in out.split("\n")[0]

    def test_markdown(self, capsys):
        assert main(["table1", "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("| Axis |")

    def test_csv_parses(self, capsys):
        import csv
        import io

        assert main(["table1", "--format", "csv"]) == 0
        rows = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert rows[0][0] == "Axis" and len(rows) == 18

    def test_include_repro_adds_column(self, capsys):
        assert main(["table1", "--include-repro"]) == 0
        assert "repro" in capsys.readouterr().out


class TestSurveyAndCoverage:
    def test_survey_has_provenance(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Provenance notes" in out

    def test_coverage_lists_missing_cells(self, capsys):
        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        assert "joint coverage" in out
        assert "missing" in out  # the six leave cells unexplored


class TestDiff:
    def test_known_pair(self, capsys):
        assert main(["diff", "SimGrid", "GridSim"]) == 0
        out = capsys.readouterr().out
        assert "similarity" in out and "components" in out

    def test_unknown_simulator_fails(self, capsys):
        assert main(["diff", "SimGrid", "ns-3"]) == 2
        assert "error" in capsys.readouterr().err


class TestValidate:
    def test_moderate_load_passes(self, capsys):
        assert main(["validate", "--rho", "0.5", "--jobs", "4000"]) == 0
        out = capsys.readouterr().out
        assert "worst relative error" in out

    def test_bad_rho_rejected(self, capsys):
        assert main(["validate", "--rho", "1.5"]) == 2

    def test_trace_and_profile_emit_obs_artifacts(self, capsys, tmp_path):
        import json

        trace = tmp_path / "mm1.json"
        assert main(["validate", "--rho", "0.5", "--jobs", "4000",
                     "--trace", str(trace), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Handler hot spots" in out and "| handler |" in out
        assert "telemetry:" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
        assert any(e["ph"] == "s" for e in payload["traceEvents"])


class TestProfile:
    def test_mm1_prints_hot_spots(self, capsys):
        assert main(["profile", "--jobs", "4000"]) == 0
        out = capsys.readouterr().out
        assert "profiled M/M/1" in out and "| handler |" in out

    def test_hold_model_with_trace_and_csv(self, capsys, tmp_path):
        import json

        trace, csv = tmp_path / "hold.json", tmp_path / "hold.csv"
        assert main(["profile", "--model", "hold", "--jobs", "200",
                     "--horizon", "5.0", "--queue", "calendar",
                     "--trace", str(trace), "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "profiled hold model" in out and "calendar" in out
        assert json.loads(trace.read_text())["traceEvents"]
        text = csv.read_text()
        assert "metric,value" in text and "handler,firings" in text

    def test_bad_rho_rejected(self):
        assert main(["profile", "--rho", "0"]) == 2


class TestClassify:
    def test_lists_engines(self, capsys):
        assert main(["classify"]) == 0
        out = capsys.readouterr().out
        assert "event-driven + heap" in out
        assert "time-driven" in out


class TestExecutors:
    def test_all_executors_cross_checked(self, capsys):
        assert main(["executors", "--sites", "3", "--jobs", "25",
                     "--until", "60", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "optimistic" in out and "cmb" in out
        assert "committed streams identical across all 5 executors" in out

    def test_single_executor_with_knobs(self, capsys):
        assert main(["executors", "--executor", "optimistic",
                     "--sites", "3", "--jobs", "25", "--until", "60",
                     "--batch", "16", "--checkpoint-every", "4",
                     "--throttle", "10"]) == 0
        out = capsys.readouterr().out
        assert "optimistic" in out and "sequential" not in out


class TestFlows:
    def test_both_engines_cross_checked(self, capsys):
        assert main(["flows", "--pairs", "8", "--transfers", "3",
                     "--backbone", "2", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "incremental" in out and "full" in out
        assert "completion times identical across engines" in out

    def test_single_engine(self, capsys):
        assert main(["flows", "--mode", "incremental", "--pairs", "4",
                     "--transfers", "2"]) == 0
        out = capsys.readouterr().out
        assert "incremental" in out and "full" not in out


def test_module_entrypoint_runs():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table1", "--format", "csv"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert proc.stdout.startswith('"Axis"')


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
