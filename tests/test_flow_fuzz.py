"""Differential fuzzing of the incremental max-min sharing engine.

Seeded random transfer schedules — mixed disjoint-pair, dumbbell-crossing,
hub-local, rate-capped, zero-size, and same-host traffic — are driven
through the component-scoped incremental engine (with continuous
``verify=True`` cross-checking) and through the retained full
progressive-filling reference (``incremental=False``).  Both runs execute
the *identical* schedule, so flow-by-flow completion times must agree to
float noise; any starved flow (the bug class the share floor guards
against) shows up as a handle that never completes.

Seeds: a fixed set always runs in CI; set ``REPRO_FUZZ_RANDOM=1`` for a
short randomized burst (each seed is printed in the failure message, and
``REPRO_FUZZ_SEED=<n>`` replays a single one).
"""

import math
import os
import random

import pytest

from repro.core import Simulator
from repro.network import FlowNetwork, Topology

FIXED_SEEDS = [2009, 40962, 777216]

N_PAIRS = 3
N_TRANSFERS = 60


def build_topology(rng: random.Random) -> Topology:
    """Disjoint site pairs plus a two-leaf dumbbell around one bottleneck."""
    t = Topology()
    for i in range(N_PAIRS):
        t.add_link(f"s{i}", f"d{i}", rng.uniform(10.0, 1000.0),
                   rng.choice([0.0, 0.01]))
    t.add_link("l0", "hubL", rng.uniform(50.0, 500.0), 0.0)
    t.add_link("l1", "hubL", rng.uniform(50.0, 500.0), 0.01)
    t.add_link("hubL", "hubR", rng.uniform(10.0, 200.0), 0.0)
    t.add_link("hubR", "r0", rng.uniform(50.0, 500.0), 0.0)
    t.add_link("hubR", "r1", rng.uniform(50.0, 500.0), 0.01)
    return t


def build_schedule(rng: random.Random) -> list:
    """(start, src, dst, size, rate_cap) tuples, submission-ordered."""
    schedule = []
    now = 0.0
    for _ in range(N_TRANSFERS):
        now += rng.expovariate(2.0)
        kind = rng.random()
        if kind < 0.45:
            i = rng.randrange(N_PAIRS)
            src, dst = f"s{i}", f"d{i}"
        elif kind < 0.80:
            src, dst = f"l{rng.randrange(2)}", f"r{rng.randrange(2)}"
        elif kind < 0.90:
            src, dst = "l0", "l1"  # multi-hop but bottleneck-free
        elif kind < 0.95:
            src = dst = "s0"  # same host: never admitted
        else:
            src, dst = "l0", "r0"
        size = 0.0 if rng.random() < 0.08 else rng.uniform(10.0, 5000.0)
        cap = rng.uniform(5.0, 50.0) if rng.random() < 0.25 else math.inf
        schedule.append((now, src, dst, size, cap))
    return schedule


def run_engine(seed: int, incremental: bool):
    """One full run; returns (network, handles in submission order)."""
    rng = random.Random(seed)
    topo = build_topology(rng)
    schedule = build_schedule(rng)
    sim = Simulator()
    net = FlowNetwork(sim, topo, efficiency=1.0, incremental=incremental,
                      verify=incremental)
    handles = []
    for start, src, dst, size, cap in schedule:
        sim.schedule(start,
                     lambda s=src, d=dst, z=size, c=cap: handles.append(
                         net.transfer(s, d, z, rate_cap=c)),
                     label="fuzz_submit")
    sim.run()
    return net, handles


def run_differential(seed: int) -> None:
    """Drive both engines through one seeded schedule; raises on divergence.

    ``verify=True`` on the incremental side additionally cross-checks the
    stored rates against the full reference after *every* coalesced flush.
    """
    tag = f"seed={seed} (replay: REPRO_FUZZ_SEED={seed})"
    net_inc, inc = run_engine(seed, incremental=True)
    net_ref, ref = run_engine(seed, incremental=False)
    assert len(inc) == len(ref) == N_TRANSFERS, tag
    for k, (a, b) in enumerate(zip(inc, ref)):
        what = f"{tag} flow[{k}] {a.src}->{a.dst} size={a.size:.6g}"
        assert a.done and a.finished is not None, (
            f"{what}: never completed under the incremental engine "
            f"(starvation hang?)")
        assert b.done and b.finished is not None, (
            f"{what}: never completed under the full reference")
        assert math.isclose(a.finished, b.finished,
                            rel_tol=1e-9, abs_tol=1e-9), (
            f"{what}: completion {a.finished!r} (incremental) != "
            f"{b.finished!r} (reference)")
    assert net_inc.completed == net_ref.completed == N_TRANSFERS, tag
    # the whole point: strictly less completion-event churn, same answers
    assert (net_inc.sharing.rescheduled
            <= net_ref.sharing.rescheduled), tag


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_differential_fixed_seeds(seed):
    run_differential(seed)


@pytest.mark.skipif(not os.environ.get("REPRO_FUZZ_RANDOM")
                    and not os.environ.get("REPRO_FUZZ_SEED"),
                    reason="randomized burst: set REPRO_FUZZ_RANDOM=1 "
                           "(or REPRO_FUZZ_SEED=<n> to replay one seed)")
def test_differential_random_burst():
    """A short burst of fresh seeds; any failure prints the seed to replay."""
    fixed = os.environ.get("REPRO_FUZZ_SEED")
    if fixed:
        seeds = [int(fixed)]
    else:
        seeds = [random.SystemRandom().randrange(2**32) for _ in range(5)]
    for seed in seeds:
        run_differential(seed)
