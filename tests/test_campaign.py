"""Tests for the campaign subsystem: spec, runner, stats, search, CLI."""

import math
import os
import pickle
import time

import pytest

from repro.campaign import (
    Axis,
    CampaignSpec,
    RunSpec,
    coverage_verdict,
    evaluate_objective,
    evolve,
    mser5,
    parse_space,
    register_scenario,
    run_campaign,
    run_specs,
    summarize,
    t_quantile,
    theory_for,
)
from repro.core import ConfigurationError


def tiny_mm1_spec(replications=3, grid=None, seed=0):
    return CampaignSpec("mm1", base={"jobs": 300, "rho": 0.5},
                        grid=grid or {}, replications=replications,
                        root_seed=seed)


class TestSpec:
    def test_expansion_order_and_indices(self):
        spec = CampaignSpec("mm1", base={"jobs": 100},
                            grid={"rho": [0.3, 0.6], "mu": [1.0, 2.0]},
                            replications=2, root_seed=1)
        runs = spec.expand()
        assert len(runs) == len(spec) == 8
        assert [r.index for r in runs] == list(range(8))
        # axis order: rho varies slowest (first axis), mu next, rep fastest
        assert runs[0].params_dict["rho"] == 0.3
        assert runs[0].params_dict["mu"] == 1.0
        assert runs[1].replication == 1
        assert runs[2].params_dict["mu"] == 2.0

    def test_common_random_numbers_across_points(self):
        """Replication r gets the same seed at every grid point."""
        spec = CampaignSpec("mm1", grid={"rho": [0.3, 0.6, 0.9]},
                            replications=2, root_seed=5)
        runs = spec.expand()
        by_rep = {}
        for r in runs:
            by_rep.setdefault(r.replication, set()).add(r.seed)
        assert all(len(seeds) == 1 for seeds in by_rep.values())
        assert by_rep[0] != by_rep[1]

    def test_expansion_deterministic(self):
        a = tiny_mm1_spec(grid={"rho": [0.4, 0.8]}).expand()
        b = tiny_mm1_spec(grid={"rho": [0.4, 0.8]}).expand()
        assert a == b

    def test_different_root_seed_different_run_seeds(self):
        a = tiny_mm1_spec(seed=1).expand()
        b = tiny_mm1_spec(seed=2).expand()
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec("mm1", grid={"rho": []})

    def test_zero_replications_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec("mm1", replications=0)


class TestRunnerDeterminism:
    def test_serial_two_and_four_workers_identical(self):
        """The acceptance property: per-seed records are byte-identical
        under serial, 2-worker, and 4-worker execution — same ordering,
        same values, regardless of completion order."""
        spec = tiny_mm1_spec(replications=3, grid={"rho": [0.4, 0.7]})
        serial = run_campaign(spec, workers=1)
        two = run_campaign(spec, workers=2)
        four = run_campaign(spec, workers=4)
        assert serial.n_ok == len(serial.records) == 6
        assert serial.metrics_bytes() == two.metrics_bytes()
        assert serial.metrics_bytes() == four.metrics_bytes()
        assert [r.index for r in four.records] == list(range(6))

    def test_record_fields_plain_and_picklable(self):
        result = run_campaign(tiny_mm1_spec(replications=1))
        rec = result.records[0]
        clone = pickle.loads(pickle.dumps(rec))
        assert clone.metrics == rec.metrics
        assert clone.telemetry == rec.telemetry
        for v in rec.metrics.values():
            assert type(v) in (int, float)

    def test_telemetry_reported_but_not_canonical(self):
        result = run_campaign(tiny_mm1_spec(replications=1))
        rec = result.records[0]
        assert rec.telemetry.get("events", 0) > 0
        assert "telemetry" not in rec.canonical()
        assert "wall_seconds" not in rec.canonical()


class TestRunnerFailurePaths:
    def test_failed_scenario_retried_then_reported(self):
        @register_scenario("always-boom")
        def boom(params, seed):
            raise RuntimeError("boom")

        spec = CampaignSpec("always-boom", replications=2, root_seed=0)
        result = run_campaign(spec, workers=2, retries=1)
        assert [r.status for r in result.records] == ["failed", "failed"]
        assert all(r.attempts == 2 for r in result.records)
        assert result.retries_used == 2
        assert "boom" in result.records[0].error

    def test_serial_failure_keeps_other_runs(self):
        @register_scenario("fail-on-flag")
        def fail_on_flag(params, seed):
            if params.get("flag"):
                raise ValueError("flagged")
            return ({"v": float(seed % 97)}, {})

        spec = CampaignSpec("fail-on-flag", grid={"flag": [0, 1, 0]},
                            replications=1, root_seed=3)
        result = run_campaign(spec, workers=1)
        assert [r.status for r in result.records] == ["ok", "failed", "ok"]
        assert result.n_ok == 2

    def test_timeout_kills_and_records(self):
        @register_scenario("hang-on-flag")
        def hang_on_flag(params, seed):
            if params.get("flag"):
                time.sleep(60)
            return ({"v": 1.0}, {})

        spec = CampaignSpec("hang-on-flag", grid={"flag": [0, 1]},
                            replications=1, root_seed=0)
        t0 = time.perf_counter()
        result = run_campaign(spec, workers=2, timeout=0.5, retries=0)
        wall = time.perf_counter() - t0
        statuses = {r.params_dict["flag"]: r.status for r in result.records}
        assert statuses == {0: "ok", 1: "timeout"}
        assert result.timeouts == 1
        assert wall < 30.0  # killed, not joined for the full sleep

    def test_all_runs_timeout_without_retries_still_finishes(self):
        """Regression: a terminal give-up must refill the dispatch window
        exactly like a completion.  With chunksize=1 and every run
        hanging, the runner used to deadlock once the first window's
        runs were given up — no 'done' ever arrived to trigger dispatch."""
        @register_scenario("hang-always")
        def hang_always(params, seed):
            time.sleep(60)

        spec = CampaignSpec("hang-always", replications=4, root_seed=0)
        t0 = time.perf_counter()
        result = run_campaign(spec, workers=2, timeout=0.3, retries=0,
                              chunksize=1)
        wall = time.perf_counter() - t0
        assert [r.status for r in result.records] == ["timeout"] * 4
        assert result.timeouts == 4
        assert wall < 30.0

    def test_dead_worker_run_retried_then_reported(self):
        """A worker that dies mid-run (no 'done' ever sent) must not hang
        the campaign: the run is retried, then recorded as failed."""
        @register_scenario("die-on-flag")
        def die_on_flag(params, seed):
            if params.get("flag"):
                os._exit(3)
            return ({"v": 1.0}, {})

        spec = CampaignSpec("die-on-flag", grid={"flag": [0, 1, 0]},
                            replications=1, root_seed=0)
        result = run_campaign(spec, workers=2, retries=1, chunksize=1)
        assert [r.status for r in result.records] == ["ok", "failed", "ok"]
        assert result.n_ok == 2
        failed = result.records[1]
        assert failed.attempts == 2
        assert "worker died" in failed.error

    def test_progress_only_on_new_records(self):
        """Regression: the progress callback used to fire on every retried
        failure too, printing duplicate '0/N runs done' lines before any
        record existed."""
        @register_scenario("boom-fast")
        def boom_fast(params, seed):
            raise RuntimeError("boom")

        spec = CampaignSpec("boom-fast", replications=25, root_seed=0)
        messages = []
        run_campaign(spec, workers=2, retries=1, progress=messages.append)
        assert messages == ["[campaign] 25/25 runs done (0 timeouts)"]

    def test_unknown_scenario_fails_cleanly(self):
        result = run_campaign(CampaignSpec("no-such-scenario"), workers=1)
        assert result.records[0].status == "failed"
        assert "unknown scenario" in result.records[0].error

    def test_bad_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            run_specs([], retries=-1)


class TestStats:
    def test_t_interval_matches_scipy(self):
        from scipy import stats as sps

        class Rec:
            status = "ok"

            def __init__(self, v):
                self.metrics = {"m": v}

        values = [1.0, 2.0, 4.0, 3.0, 2.5]
        summ = summarize([Rec(v) for v in values], ["m"], level=0.95)["m"]
        ref_mean, ref_var = 2.5, sum((v - 2.5) ** 2 for v in values) / 4
        assert summ.n == 5
        assert summ.mean == pytest.approx(ref_mean)
        assert summ.variance == pytest.approx(ref_var)
        t = sps.t.ppf(0.975, 4)
        assert summ.halfwidth == pytest.approx(t * math.sqrt(ref_var / 5))
        assert summ.contains(2.5) and not summ.contains(100.0)

    def test_single_run_has_infinite_interval(self):
        class Rec:
            status = "ok"
            metrics = {"m": 1.0}

        summ = summarize([Rec()], ["m"])["m"]
        assert summ.n == 1 and math.isinf(summ.halfwidth)
        assert summ.contains(1e9)

    def test_failed_runs_excluded(self):
        class Rec:
            def __init__(self, status, v):
                self.status = status
                self.metrics = {"m": v}

        summ = summarize([Rec("ok", 1.0), Rec("failed", 99.0),
                          Rec("ok", 3.0)], ["m"])["m"]
        assert summ.n == 2 and summ.mean == pytest.approx(2.0)

    def test_mser5_cuts_warmup_bias(self):
        # A strong initial transient then flat steady state: the cut must
        # remove (at least most of) the transient and nothing like the
        # whole series.
        series = [100.0 - i for i in range(50)] + [50.0] * 450
        cut = mser5(series)
        assert 20 <= cut <= 60
        # An already-stationary series needs (almost) no truncation.
        flat = [10.0, 10.5] * 250
        assert mser5(flat) <= 10

    def test_mser5_short_series_uncut(self):
        assert mser5([1.0, 2.0, 3.0]) == 0

    def test_quantile_validates(self):
        with pytest.raises(ConfigurationError):
            t_quantile(0.975, 0)

    def test_coverage_verdict_mm1(self):
        spec = tiny_mm1_spec(replications=4)
        result = run_campaign(spec, workers=1)
        summaries = result.summaries(["W", "L"], level=0.99)
        theory = theory_for("mm1", {"rho": 0.5})
        verdict = coverage_verdict(summaries, theory)
        assert set(verdict) == {"W", "L"}
        assert verdict["W"]["theory"] == pytest.approx(2.0)
        assert {"lo", "hi", "contains", "mean", "n"} <= set(verdict["W"])


class TestMSER5Scenario:
    def test_mm1_mser5_warmup_mode(self):
        from repro.campaign import run_scenario

        metrics, _ = run_scenario(
            "mm1", {"rho": 0.5, "jobs": 600, "warmup": "mser5"}, seed=2)
        assert "mser5_cut" in metrics and "W_raw" in metrics
        assert metrics["mser5_cut"] % 5 == 0
        assert metrics["W"] > 0


class TestSearch:
    AXES = [Axis("x", lo=-8.0, hi=8.0)]

    def run_search(self, seed=3):
        return evolve("quadratic", self.AXES, "y", mode="min",
                      population=10, generations=6, replications=3,
                      base={"noise": 0.05, "target": 3.0}, root_seed=seed)

    def test_converges_near_optimum(self):
        res = self.run_search()
        assert abs(res.best_genome["x"] - 3.0) < 1.5
        assert res.best_fitness < 2.0

    def test_deterministic_given_seed(self):
        a, b = self.run_search(), self.run_search()
        assert a.best_genome == b.best_genome
        assert a.history == b.history
        assert a.evaluations == b.evaluations

    def test_history_monotone_best(self):
        res = self.run_search()
        bests = [h["best_fitness"] for h in res.history]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:]))

    def test_categorical_axis_and_provision(self):
        """The provisioning study: search must discover that pooling
        beats splitting (queueing theory) under a per-server cost."""
        res = evolve("provision",
                     [Axis("servers", lo=2, hi=8, integer=True),
                      Axis("policy", choices=("pooled", "split"))],
                     "W + 0.15 * servers", mode="min",
                     population=6, generations=3, replications=2,
                     base={"lam": 3.0, "jobs": 800}, root_seed=5)
        assert res.best_genome["policy"] == "pooled"
        assert 4 <= res.best_genome["servers"] <= 8

    def test_objective_expression_guarded(self):
        assert evaluate_objective("W + 0.5 * c", {"W": 2.0, "c": 4}) == 4.0
        with pytest.raises(ConfigurationError):
            evaluate_objective("__import__('os')", {"W": 1.0})
        with pytest.raises(ConfigurationError):
            evaluate_objective("missing_metric", {"W": 1.0})

    def test_parse_space(self):
        axes = parse_space(["c=1:8:int", "rho=0.1:0.9", "pol=a,b,c"])
        assert axes[0].integer and axes[0].lo == 1 and axes[0].hi == 8
        assert not axes[1].integer
        assert axes[2].choices == ("a", "b", "c")
        with pytest.raises(ConfigurationError):
            parse_space(["bogus"])

    def test_range_with_whole_number_bounds_stays_float(self):
        """Regression: '1:4' used to be silently promoted to an integer
        axis; only the explicit ':int' suffix may discretize a range."""
        ax = Axis.parse("x", "1:4")
        assert not ax.integer
        assert ax.lo == 1.0 and ax.hi == 4.0

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            evolve("quadratic", self.AXES, "y", mode="sideways")


class TestCampaignCLI:
    def test_campaign_table(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--scenario", "mm1", "--grid", "rho=0.5",
                     "--set", "jobs=400", "--runs", "3",
                     "--metrics", "W,L"]) == 0
        out = capsys.readouterr().out
        assert "point 0" in out and "theory" in out and "ok" in out

    def test_campaign_parallel_matches_serial_output(self, capsys):
        from repro.cli import main

        args = ["campaign", "--scenario", "mm1", "--grid", "rho=0.5",
                "--set", "jobs=300", "--runs", "2", "--metrics", "W"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        par_out = capsys.readouterr().out
        # Everything but the wall-clock/worker header line must agree.
        assert serial_out.splitlines()[1:] == par_out.splitlines()[1:]

    def test_campaign_evolve_cli(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--scenario", "quadratic", "--evolve",
                     "--space", "x=-5:5", "--objective", "y",
                     "--set", "noise=0.05", "--runs", "2",
                     "--population", "6", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "best fitness" in out and "x =" in out

    def test_evolve_requires_space(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--evolve"]) == 2

    def test_validate_ensemble_verdict(self, capsys):
        from repro.cli import main

        assert main(["validate", "--rho", "0.6", "--jobs", "8000",
                     "--runs", "4", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "ensemble: 4/4 runs ok" in out
        assert "CI verdict: theory inside every interval" in out


class TestCampaignObservability:
    """PR 9: metrics shipping, fleet telemetry, and flight recorder."""

    def test_obs_metrics_shipped_but_not_canonical(self):
        result = run_campaign(tiny_mm1_spec(replications=2), workers=1)
        rec = result.records[0]
        assert rec.obs_metrics, "runs must ship a metrics registry dump"
        fired = [row for row in rec.obs_metrics
                 if row["name"] == "repro_events_fired_total"]
        assert fired and fired[0]["value"] > 0
        # the dump is plain builtins and survives the pipe
        assert pickle.loads(pickle.dumps(rec.obs_metrics)) == rec.obs_metrics
        # ... but wall-clock-dependent data stays out of the determinism gate
        assert "obs_metrics" not in rec.canonical()
        assert "recorder_path" not in rec.canonical()

    def test_campaign_telemetry_rollups(self):
        result = run_campaign(
            tiny_mm1_spec(replications=2, grid={"rho": [0.4, 0.7]}),
            workers=2)
        tel = result.telemetry
        assert tel is not None
        assert sum(w["runs"] for w in tel.per_worker.values()) == 4
        assert sum(w["ok"] for w in tel.per_worker.values()) == 4
        assert set(tel.per_point) == {0, 1}
        assert "rho=0.4" in tel.per_point[0]["label"]
        assert tel.events > 0
        # the merged registry agrees with the telemetry event count
        from repro.obs import Registry
        assert isinstance(tel.metrics, Registry)
        fired = sum(row["value"] for row in tel.metrics.dump()
                    if row["name"] == "repro_events_fired_total")
        assert int(fired) == tel.events
        report = tel.report()
        assert "campaign telemetry" in report
        assert "worker" in report and "rho=0.7" in report
        assert tel.slowest and tel.slowest[0]["wall_seconds"] >= \
            tel.slowest[-1]["wall_seconds"]

    def test_serial_run_gets_telemetry_too(self):
        result = run_campaign(tiny_mm1_spec(replications=2), workers=1)
        tel = result.telemetry
        assert tel is not None
        assert set(tel.per_worker) == {-1}
        assert tel.per_worker[-1]["runs"] == 2
        assert "serial" in tel.report()

    def test_timeout_leaves_readable_flight_dump(self, tmp_path):
        @register_scenario("spin-then-hang")
        def spin_then_hang(params, seed):
            from repro.campaign import run_scenario
            metrics, tele = run_scenario(
                "mm1", {"jobs": 1500, "rho": 0.5}, seed)
            time.sleep(60)
            return metrics, tele

        spec = CampaignSpec("spin-then-hang", replications=2, root_seed=0)
        result = run_campaign(spec, workers=2, timeout=1.0, retries=0,
                              recorder_dir=str(tmp_path))
        assert result.timeouts == 2
        for rec in result.records:
            assert rec.status == "timeout"
            assert rec.recorder_path and os.path.exists(rec.recorder_path)
            import json
            with open(rec.recorder_path) as fp:
                lines = [json.loads(line) for line in fp]
            header, events = lines[0], lines[1:]
            assert header["record"] == "flight-recorder"
            assert header["reason"] == "terminated"
            assert header["run_index"] == rec.index
            # the dump names the handler the run was grinding through
            assert header["last_handler"]
            assert events and events[-1]["handler"] == header["last_handler"]
            assert all(e["queue_depth"] >= 0 for e in events)

    def test_dead_worker_partial_dump_and_no_double_count(self, tmp_path):
        """A worker that dies via os._exit can't dump its own ring: the
        parent reconstructs a partial from the last beat frame, and the
        retried run contributes exactly one record to the rollups."""
        @register_scenario("beat-then-die")
        def beat_then_die(params, seed):
            from repro.campaign import run_scenario
            metrics, tele = run_scenario(
                "mm1", {"jobs": 3000, "rho": 0.5}, seed)
            if params.get("flag"):
                os._exit(3)
            return metrics, tele

        spec = CampaignSpec("beat-then-die", grid={"flag": [0, 1, 0]},
                            replications=1, root_seed=0)
        # heartbeat=0.0 beats at every telemetry check (every 2048 events),
        # so the parent holds a fresh frame when the worker dies.
        result = run_campaign(spec, workers=2, retries=1, chunksize=1,
                              heartbeat=0.0, recorder_dir=str(tmp_path),
                              progress=lambda s: None)
        assert [r.status for r in result.records] == ["ok", "failed", "ok"]
        assert result.worker_deaths == 2  # first attempt and its retry
        failed = result.records[1]
        assert "worker died" in failed.error
        assert failed.recorder_path is not None
        assert failed.recorder_path.endswith(".partial.jsonl")
        import json
        with open(failed.recorder_path) as fp:
            lines = [json.loads(line) for line in fp]
        header, events = lines[0], lines[1:]
        assert header["partial"] is True
        assert "worker died" in header["reason"]
        assert header["last_handler"]
        assert events and events[-1]["handler"] == header["last_handler"]
        # telemetry sees the death but counts the run exactly once
        tel = result.telemetry
        assert tel.worker_deaths == 2
        assert sum(w["runs"] for w in tel.per_worker.values()) == 3
        assert sum(p["runs"] for p in tel.per_point.values()) == 3

    def test_stall_detector_flags_quiet_worker(self):
        @register_scenario("hang-quietly")
        def hang_quietly(params, seed):
            time.sleep(60)
            return ({}, {})

        messages = []
        spec = CampaignSpec("hang-quietly", replications=2, root_seed=0)
        result = run_specs(spec.expand(), workers=2, timeout=1.5, retries=0,
                           stall_after=0.4, progress=messages.append)
        assert result.stalls == 2
        assert result.timeouts == 2
        stall_lines = [m for m in messages if "stalled" in m]
        assert len(stall_lines) == 2
        assert "no progress for" in stall_lines[0]

    def test_campaign_report_and_prom_cli(self, tmp_path, capsys):
        from repro.cli import main

        prom = tmp_path / "metrics.prom"
        assert main(["campaign", "--scenario", "mm1", "--grid", "rho=0.5",
                     "--set", "jobs=300", "--runs", "2", "--metrics", "W",
                     "--report", "--prom", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "campaign telemetry" in out
        assert "worker" in out and "slowest runs:" in out
        text = prom.read_text()
        assert "# TYPE repro_events_fired_total counter" in text
        assert "repro_handler_duration_ns_bucket" in text
