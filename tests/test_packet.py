"""Tests for the packet-level network, protocols, and file transfers."""

import math

import pytest

from repro.core import ConfigurationError, Simulator
from repro.network import (
    FileSpec,
    FileTransferService,
    FlowNetwork,
    PacketNetwork,
    ReliablePacketTransport,
    TcpTransport,
    Topology,
    UdpTransport,
)


def line_topo(bw=1500.0, latency=0.1, hops=1):
    t = Topology()
    names = [f"n{i}" for i in range(hops + 1)]
    for a, b in zip(names, names[1:]):
        t.add_link(a, b, bw, latency)
    return t, names[0], names[-1]


class TestPacketNetwork:
    def test_single_packet_timing(self):
        topo, src, dst = line_topo(bw=1500.0, latency=0.1)
        sim = Simulator()
        net = PacketNetwork(sim, topo, mtu=1500)
        h = net.transfer(src, dst, 1500.0)
        sim.run()
        # tx 1500/1500 = 1s + 0.1 latency
        assert h.finished == pytest.approx(1.1)
        assert h.success and h.delivered == 1

    def test_segmentation_count(self):
        topo, src, dst = line_topo()
        sim = Simulator()
        net = PacketNetwork(sim, topo, mtu=1000)
        h = net.transfer(src, dst, 2500.0)
        sim.run()
        assert h.npackets == 3 and h.success

    def test_pipelining_across_hops(self):
        """Store-and-forward: packet k+1 transmits while k propagates."""
        topo, src, dst = line_topo(bw=1000.0, latency=0.0, hops=2)
        sim = Simulator()
        net = PacketNetwork(sim, topo, mtu=1000)
        h = net.transfer(src, dst, 3000.0)
        sim.run()
        # serialized per hop: last packet leaves hop1 at t=3, arrives hop2
        # then needs 1s on second link -> 4s total (not 6 = no pipelining)
        assert h.finished == pytest.approx(4.0)

    def test_queue_overflow_drops(self):
        topo, src, dst = line_topo(bw=10.0, latency=0.0)
        sim = Simulator()
        net = PacketNetwork(sim, topo, mtu=100, queue_packets=2)
        h = net.transfer(src, dst, 10_000.0)  # 100 packets into 2 slots
        sim.run()
        assert h.dropped > 0
        assert not h.success
        assert net.total_drops == h.dropped

    def test_local_transfer_instant(self):
        topo, src, _ = line_topo()
        sim = Simulator()
        net = PacketNetwork(sim, topo)
        h = net.transfer(src, src, 5000.0)
        sim.run()
        assert h.success and h.finished == 0.0

    def test_validation(self):
        topo, _, _ = line_topo()
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PacketNetwork(sim, topo, mtu=0)
        with pytest.raises(ConfigurationError):
            PacketNetwork(sim, topo, queue_packets=0)
        net = PacketNetwork(sim, topo)
        with pytest.raises(ConfigurationError):
            net.transfer("n0", "n1", -5.0)


class TestTcpTransport:
    def test_window_caps_throughput(self):
        t = Topology()
        t.add_link("a", "b", 1e6, latency=0.5)  # fat but long pipe
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        tcp = TcpTransport(sim, net, window=1000.0)  # cap = 1000/1.0 = 1000 B/s
        h = tcp.transfer("a", "b", 10_000.0)
        sim.run()
        assert h.finished == pytest.approx(0.5 + 10.0)  # latency + capped xfer

    def test_parallel_streams_scale_cap(self):
        t = Topology()
        t.add_link("a", "b", 1e6, latency=0.5)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        tcp = TcpTransport(sim, net, window=1000.0, parallel_streams=4)
        assert tcp.rate_cap("a", "b") == pytest.approx(4000.0)

    def test_short_rtt_uncapped(self):
        t = Topology()
        t.add_link("a", "b", 100.0, latency=0.0)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        tcp = TcpTransport(sim, net, window=8.0)
        assert math.isinf(tcp.rate_cap("a", "b"))

    def test_bad_window_rejected(self):
        sim = Simulator()
        net = FlowNetwork(sim, Topology())
        with pytest.raises(ConfigurationError):
            TcpTransport(sim, net, window=0)
        with pytest.raises(ConfigurationError):
            TcpTransport(sim, net, parallel_streams=0)


class TestUdpAndReliable:
    def congested(self):
        topo, src, dst = line_topo(bw=100.0, latency=0.01)
        sim = Simulator()
        net = PacketNetwork(sim, topo, mtu=100, queue_packets=4)
        return sim, net, src, dst

    def test_udp_reports_loss(self):
        sim, net, src, dst = self.congested()
        udp = UdpTransport(sim, net)
        h = udp.transfer(src, dst, 5000.0)
        sim.run()
        assert not h.success and h.dropped > 0

    def test_reliable_retransmits_to_success(self):
        sim, net, src, dst = self.congested()
        rel = ReliablePacketTransport(sim, net, rto=0.5)
        h = rel.transfer(src, dst, 5000.0)
        sim.run()
        assert h.success
        assert h.rounds > 1
        assert h.retransmitted_bytes > 0

    def test_reliable_gives_up_after_max_rounds(self):
        topo, src, dst = line_topo(bw=1.0, latency=0.0)
        sim = Simulator()
        net = PacketNetwork(sim, topo, mtu=10, queue_packets=1)
        rel = ReliablePacketTransport(sim, net, rto=0.01, max_rounds=2)
        h = rel.transfer(src, dst, 10_000.0)
        sim.run()
        assert h.done and not h.success


class TestFileTransferService:
    def test_local_hit_is_free(self):
        topo, src, dst = line_topo()
        sim = Simulator()
        fts = FileTransferService(sim, FlowNetwork(sim, topo))
        tk = fts.fetch(FileSpec("f", 1000.0), src, src)
        sim.run()
        assert tk.done and tk.total_time == 0.0

    def test_concurrency_limit_queues_excess(self):
        topo, src, dst = line_topo(bw=100.0, latency=0.0)
        sim = Simulator()
        net = FlowNetwork(sim, topo, efficiency=1.0)
        fts = FileTransferService(sim, net, max_concurrent_per_route=1)
        t1 = fts.fetch(FileSpec("f1", 100.0), src, dst)
        t2 = fts.fetch(FileSpec("f2", 100.0), src, dst)
        assert fts.backlog_size(src, dst) == 1
        sim.run()
        # serialized: 1s each
        assert t1.finished == pytest.approx(1.0)
        assert t2.finished == pytest.approx(2.0)
        assert t2.queue_delay == pytest.approx(1.0)

    def test_parallel_when_under_limit(self):
        topo, src, dst = line_topo(bw=100.0, latency=0.0)
        sim = Simulator()
        net = FlowNetwork(sim, topo, efficiency=1.0)
        fts = FileTransferService(sim, net, max_concurrent_per_route=2)
        t1 = fts.fetch(FileSpec("f1", 100.0), src, dst)
        t2 = fts.fetch(FileSpec("f2", 100.0), src, dst)
        sim.run()
        # fair-shared: both take 2s
        assert t1.finished == pytest.approx(2.0)
        assert t2.finished == pytest.approx(2.0)

    def test_stats_and_completed_counter(self):
        topo, src, dst = line_topo(bw=100.0, latency=0.0)
        sim = Simulator()
        fts = FileTransferService(sim, FlowNetwork(sim, topo))
        for i in range(3):
            fts.fetch(FileSpec(f"f{i}", 50.0), src, dst)
        sim.run()
        assert fts.completed == 3
        assert fts.monitor.tally("total_time").count == 3

    def test_file_validation(self):
        with pytest.raises(ConfigurationError):
            FileSpec("bad", -1.0)
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            FileTransferService(sim, None, max_concurrent_per_route=0)

    def test_local_hit_counted_in_stats(self):
        """src == dst requests count in completed, local_hits, and the
        monitor — hit ratios reflect every request, not only remote ones."""
        topo, src, dst = line_topo(bw=100.0, latency=0.0)
        sim = Simulator()
        fts = FileTransferService(sim, FlowNetwork(sim, topo, efficiency=1.0))
        local = fts.fetch(FileSpec("here", 1000.0), src, src)
        remote = fts.fetch(FileSpec("there", 100.0), src, dst)
        sim.run()
        assert local.done and remote.done
        assert fts.local_hits == 1
        assert fts.completed == 2
        assert fts.monitor.tally("total_time").count == 2
        assert fts.monitor.tally("queue_delay").mean == pytest.approx(0.0)

    def test_route_state_pruned_after_churn(self):
        """Idle routes must not leak: after a churn over many distinct
        (src, dst) pairs both per-route dicts are empty again."""
        n_routes = 250
        t = Topology()
        for i in range(n_routes):
            t.add_link(f"a{i}", f"b{i}", 1000.0, 0.0)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        fts = FileTransferService(sim, net, max_concurrent_per_route=1)
        tickets = []
        for i in range(n_routes):
            # two per route so the backlog path (deque creation) is hit too
            for k in range(2):
                sim.schedule(0.01 * i, lambda i=i: tickets.append(
                    fts.fetch(FileSpec(f"f{i}", 100.0), f"a{i}", f"b{i}")))
        sim.run()
        assert len(tickets) == 2 * n_routes
        assert all(tk.done for tk in tickets)
        assert fts.completed == 2 * n_routes
        assert fts._backlog == {}
        assert fts._in_flight == {}
