"""Tests for reproducible random streams and distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, StreamFactory


class TestReproducibility:
    def test_same_seed_same_sequence(self):
        a = StreamFactory(42).stream("svc")
        b = StreamFactory(42).stream("svc")
        assert [a.exponential(1.0) for _ in range(20)] == [b.exponential(1.0) for _ in range(20)]

    def test_streams_cached_by_name(self):
        f = StreamFactory(1)
        assert f.stream("x") is f.stream("x")

    def test_stream_independent_of_request_order(self):
        """Asking for extra streams must not perturb an existing one."""
        f1 = StreamFactory(7)
        s1 = f1.stream("jobs")
        ref = [s1.uniform() for _ in range(5)]

        f2 = StreamFactory(7)
        f2.stream("noise-a")  # extra streams requested first
        f2.stream("noise-b")
        s2 = f2.stream("jobs")
        assert [s2.uniform() for _ in range(5)] == ref

    def test_different_names_differ(self):
        f = StreamFactory(3)
        xs = [f.stream("a").uniform() for _ in range(10)]
        ys = [f.stream("b").uniform() for _ in range(10)]
        assert xs != ys

    def test_different_seeds_differ(self):
        assert StreamFactory(1).stream("s").uniform() != StreamFactory(2).stream("s").uniform()


class TestDistributionMoments:
    """Sample-mean sanity checks, generous tolerances (n=20000)."""

    N = 20_000

    def draw(self, fn):
        return np.array([fn() for _ in range(self.N)])

    def test_exponential_mean(self):
        s = StreamFactory(11).stream("d")
        x = self.draw(lambda: s.exponential(4.0))
        assert abs(x.mean() - 4.0) < 0.15
        assert (x >= 0).all()

    def test_erlang_mean_and_lower_cv(self):
        s = StreamFactory(12).stream("d")
        x = self.draw(lambda: s.erlang(4, 10.0))
        assert abs(x.mean() - 10.0) < 0.3
        # Erlang-4 CV = 1/2 < exponential's 1
        assert x.std() / x.mean() < 0.7

    def test_pareto_min_and_mean(self):
        s = StreamFactory(13).stream("d")
        x = self.draw(lambda: s.pareto(3.0, xmin=2.0))
        assert x.min() >= 2.0
        assert abs(x.mean() - 3.0) < 0.2  # alpha*xmin/(alpha-1) = 3

    def test_lognormal_mean_parameterisation(self):
        s = StreamFactory(14).stream("d")
        x = self.draw(lambda: s.lognormal(5.0, 0.5))
        assert abs(x.mean() - 5.0) < 0.25

    def test_weibull_positive(self):
        s = StreamFactory(15).stream("d")
        x = self.draw(lambda: s.weibull(1.5, 3.0))
        assert (x >= 0).all() and x.mean() > 0

    def test_hyperexponential_mixture_mean(self):
        s = StreamFactory(16).stream("d")
        x = self.draw(lambda: s.hyperexponential([1.0, 10.0], [0.9, 0.1]))
        assert abs(x.mean() - (0.9 * 1 + 0.1 * 10)) < 0.2

    def test_uniform_bounds(self):
        s = StreamFactory(17).stream("d")
        x = self.draw(lambda: s.uniform(2.0, 5.0))
        assert x.min() >= 2.0 and x.max() <= 5.0
        assert abs(x.mean() - 3.5) < 0.1

    def test_normal_floor_truncation(self):
        s = StreamFactory(18).stream("d")
        x = self.draw(lambda: s.normal(1.0, 5.0, floor=0.0))
        assert x.min() >= 0.0


class TestDiscrete:
    def test_randint_inclusive_bounds(self):
        s = StreamFactory(20).stream("d")
        vals = {s.randint(1, 3) for _ in range(500)}
        assert vals == {1, 2, 3}

    def test_choice_uniform_and_weighted(self):
        s = StreamFactory(21).stream("d")
        assert s.choice(["only"]) == "only"
        picks = [s.choice(["a", "b"], weights=[0.0, 1.0]) for _ in range(50)]
        assert set(picks) == {"b"}

    def test_zipf_rank_range_and_skew(self):
        s = StreamFactory(22).stream("d")
        ranks = [s.zipf(100, 1.2) for _ in range(3000)]
        assert min(ranks) >= 0 and max(ranks) < 100
        # rank 0 must dominate any deep rank under Zipf
        assert ranks.count(0) > ranks.count(50)

    def test_zipf_sampler_matches_support(self):
        s = StreamFactory(23).stream("d")
        sample = s.zipf_sampler(10, 1.0)
        ranks = [sample() for _ in range(1000)]
        assert min(ranks) >= 0 and max(ranks) < 10

    def test_poisson_nonnegative(self):
        s = StreamFactory(24).stream("d")
        assert all(s.poisson(3.0) >= 0 for _ in range(100))

    def test_empirical_resamples_input(self):
        s = StreamFactory(25).stream("d")
        data = [1.5, 2.5, 3.5]
        assert all(s.empirical(data) in data for _ in range(50))

    def test_bernoulli_extremes(self):
        s = StreamFactory(26).stream("d")
        assert not any(s.bernoulli(0.0) for _ in range(20))
        assert all(s.bernoulli(1.0) for _ in range(20))

    def test_shuffle_preserves_multiset(self):
        s = StreamFactory(27).stream("d")
        items = list(range(10))
        out = s.shuffle(items)
        assert sorted(out) == items
        assert items == list(range(10))  # input untouched


class TestValidation:
    @pytest.mark.parametrize("call", [
        lambda s: s.exponential(0.0),
        lambda s: s.exponential(-1.0),
        lambda s: s.erlang(0, 1.0),
        lambda s: s.pareto(0.0),
        lambda s: s.pareto(1.0, xmin=-1),
        lambda s: s.weibull(0, 1),
        lambda s: s.lognormal(-1, 0.5),
        lambda s: s.hyperexponential([1.0], [0.5]),
        lambda s: s.hyperexponential([], []),
        lambda s: s.zipf(0),
        lambda s: s.poisson(-1),
        lambda s: s.empirical([]),
        lambda s: s.bernoulli(1.5),
        lambda s: s.choice([]),
        lambda s: s.choice([1, 2], weights=[-1, 2]),
    ])
    def test_bad_parameters_rejected(self, call):
        s = StreamFactory(0).stream("v")
        with pytest.raises(ConfigurationError):
            call(s)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(min_size=1, max_size=30))
def test_property_stable_hash_reproducible(seed, name):
    """Any (seed, name) pair reproduces across factory instances."""
    a = StreamFactory(seed).stream(name).uniform()
    b = StreamFactory(seed).stream(name).uniform()
    assert a == b and 0.0 <= a < 1.0


@settings(max_examples=20, deadline=None)
@given(mean=st.floats(min_value=0.01, max_value=1e4))
def test_property_exponential_positive(mean):
    s = StreamFactory(5).stream("e")
    assert s.exponential(mean) >= 0.0


def test_exponential_is_memoryless_shape():
    """KS-style check: P(X > 2m) ≈ e^-2 for mean m."""
    s = StreamFactory(99).stream("ks")
    m = 3.0
    xs = np.array([s.exponential(m) for _ in range(20000)])
    frac = (xs > 2 * m).mean()
    assert abs(frac - math.exp(-2)) < 0.02


class TestSpawn:
    def test_spawn_deterministic(self):
        a = StreamFactory(11).spawn("rep:0").stream("arrivals")
        b = StreamFactory(11).spawn("rep:0").stream("arrivals")
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_spawn_keys_share_no_leading_values(self):
        """Children spawned under different keys must be independent:
        the leading draws of every stream are pairwise disjoint."""
        parent = StreamFactory(42)
        children = [parent.spawn(f"rep:{r}") for r in range(8)]
        leads = [
            tuple(child.stream("svc").uniform() for _ in range(32))
            for child in children
        ]
        flat = [v for lead in leads for v in lead]
        assert len(set(flat)) == len(flat), "spawned streams overlap"

    def test_child_differs_from_parent(self):
        parent = StreamFactory(7)
        child = parent.spawn("rep:0")
        px = [parent.stream("x").uniform() for _ in range(16)]
        cx = [child.stream("x").uniform() for _ in range(16)]
        assert not set(px) & set(cx)

    def test_spawn_int_and_str_keys_distinct_namespaces(self):
        parent = StreamFactory(3)
        a = parent.spawn(0).stream("s").uniform()
        b = parent.spawn("0").stream("s").uniform()
        # int keys are stringified: same key text, same child
        assert a == b

    def test_spawn_key_recorded(self):
        child = StreamFactory(1).spawn("gen:4")
        assert child.spawn_key == "gen:4"
        assert "gen:4" in repr(child)
