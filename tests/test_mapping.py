"""Tests for entity-to-context mapping policies (taxonomy: job/thread mapping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (
    MAPPING_POLICIES,
    DedicatedContextPolicy,
    JobSpec,
    PooledContextPolicy,
    SharedContextPolicy,
)

POLICIES = sorted(MAPPING_POLICIES)


def jobs_from(pairs):
    return [JobSpec(arrival=a, duration=d, id=i) for i, (a, d) in enumerate(pairs)]


@pytest.fixture(params=POLICIES)
def policy(request):
    return MAPPING_POLICIES[request.param]()


class TestSemantics:
    def test_single_job(self, policy):
        res = policy.run(jobs_from([(0.0, 5.0)]), capacity=1)
        assert res.completions == {0: 5.0}

    def test_sequential_backlog(self, policy):
        res = policy.run(jobs_from([(0.0, 5.0), (0.0, 5.0)]), capacity=1)
        assert res.completions[0] == 5.0
        assert res.completions[1] == 10.0

    def test_parallel_servers(self, policy):
        res = policy.run(jobs_from([(0.0, 5.0), (0.0, 5.0)]), capacity=2)
        assert res.completions == {0: 5.0, 1: 5.0}

    def test_idle_gap(self, policy):
        res = policy.run(jobs_from([(0.0, 1.0), (10.0, 1.0)]), capacity=1)
        assert res.completions == {0: 1.0, 1: 11.0}

    def test_makespan(self, policy):
        res = policy.run(jobs_from([(0.0, 3.0), (1.0, 3.0)]), capacity=1)
        assert res.makespan == 6.0  # job1 waits until t=3, finishes at 6


class TestEquivalence:
    def test_all_policies_identical_completions(self):
        jobs = jobs_from([(0.0, 4.0), (1.0, 2.0), (1.5, 6.0), (8.0, 1.0), (8.0, 3.0)])
        results = {name: MAPPING_POLICIES[name]().run(jobs, capacity=2).completions
                   for name in POLICIES}
        ref = results["shared"]
        for name, comp in results.items():
            assert comp == ref, f"{name} diverged from shared-context reference"

    def test_overhead_ordering(self):
        """Dedicated contexts cost strictly more kernel events than shared."""
        jobs = jobs_from([(float(i), 2.0) for i in range(100)])
        shared = SharedContextPolicy().run(jobs, capacity=4)
        dedicated = DedicatedContextPolicy().run(jobs, capacity=4)
        pooled = PooledContextPolicy().run(jobs, capacity=4)
        assert shared.kernel_events < dedicated.kernel_events
        assert shared.kernel_events < pooled.kernel_events


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(st.tuples(st.floats(min_value=0, max_value=50),
                             st.floats(min_value=0.01, max_value=10)),
                   min_size=1, max_size=25),
    capacity=st.integers(min_value=1, max_value=3),
)
def test_property_policies_agree(pairs, capacity):
    """All three mappings compute identical completion schedules."""
    jobs = jobs_from(pairs)
    ref = SharedContextPolicy().run(jobs, capacity=capacity).completions
    ded = DedicatedContextPolicy().run(jobs, capacity=capacity).completions
    poo = PooledContextPolicy().run(jobs, capacity=capacity).completions
    for comp in (ded, poo):
        assert set(comp) == set(ref)
        for k in ref:
            assert comp[k] == pytest.approx(ref[k], abs=1e-9)
