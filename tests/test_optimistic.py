"""Time Warp executor tests: determinism, rollback edge cases, protocol.

The headline acceptance test is the determinism matrix: on the shared E7
partitioned-ring model the optimistic executor must commit a byte-identical
event stream to ``SequentialExecutor`` for several seeds *while actually
rolling back* (asserted through the obs rollback counters — an optimistic
run that never mis-speculates proves nothing).

The edge cases target the classic Time Warp hazards:

* a straggler arriving exactly at a saved-state timestamp (the snapshot at
  that time is poisoned — events at the time already fired into it);
* an anti-message catching its positive while still in flight (annihilation
  without a secondary rollback);
* rollback past a cancellation (schedule *and* cancel both replay);
* GVT advance with a permanently idle LP.
"""

import math

import pytest

from repro.core import ConfigurationError
from repro.core.optimistic import OptimisticExecutor
from repro.core.parallel import LogicalProcess, SequentialExecutor
from repro.obs import Observation
from repro.workloads.partitioned import build_partitioned_ring

HORIZON = 200.0


def ring_model(seed):
    return build_partitioned_ring(k=4, seed=seed, jobs_per_site=60,
                                  horizon=HORIZON)


def make_logged_lp(name, seed=0):
    """An LP whose completion log is registered rollback-safe state."""
    lp = LogicalProcess(name, seed=seed)
    log = []
    lp.register_state(lambda: list(log), lambda blob: log.__setitem__(
        slice(None), blob))
    return lp, log


class TestAcceptance:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_byte_identical_committed_stream_with_real_rollbacks(self, seed):
        ref = ring_model(seed)
        SequentialExecutor().run(ref.lps, until=HORIZON)

        model = ring_model(seed)
        obs = Observation(trace=False, profile=False,
                          telemetry=True).attach_lps(model.lps)
        ex = OptimisticExecutor(batch=32, checkpoint_every=8)
        stats = ex.run(model.lps, until=HORIZON)

        assert repr(model.results()) == repr(ref.results())
        assert model.monitor_stats() == ref.monitor_stats()
        # The run must have genuinely mis-speculated; zero rollbacks would
        # make the determinism claim vacuous.
        assert stats.rollbacks >= 1
        assert stats.anti_messages >= 1
        snap = obs.telemetry.snapshot()
        assert snap["rollbacks"] == stats.rollbacks
        assert snap["rolled_back_events"] == stats.rolled_back_events
        assert snap["max_rollback_depth"] >= 1
        assert 0.0 < snap["commit_efficiency"] < 1.0
        assert stats.committed_events == stats.events - stats.rolled_back_events
        assert stats.efficiency == pytest.approx(
            stats.committed_events / stats.events)

    def test_optimistic_run_is_repeatable(self):
        outs = []
        for _ in range(2):
            model = ring_model(7)
            stats = OptimisticExecutor().run(model.lps, until=HORIZON)
            outs.append((repr(model.results()), stats.events,
                         stats.rollbacks, stats.anti_messages))
        assert outs[0] == outs[1]

    def test_batch_and_checkpoint_knobs_preserve_determinism(self):
        ref = ring_model(3)
        SequentialExecutor().run(ref.lps, until=HORIZON)
        want = repr(ref.results())
        for batch, ckpt in [(8, 1), (64, 4), (200, 32)]:
            model = ring_model(3)
            OptimisticExecutor(batch=batch,
                               checkpoint_every=ckpt).run(model.lps,
                                                          until=HORIZON)
            assert repr(model.results()) == want, (
                f"batch={batch} checkpoint_every={ckpt} diverged")

    def test_throttled_run_matches_and_limits_optimism(self):
        ref = ring_model(7)
        SequentialExecutor().run(ref.lps, until=HORIZON)
        model = ring_model(7)
        free = OptimisticExecutor()
        free_stats = free.run(model.lps, until=HORIZON)
        model2 = ring_model(7)
        tight = OptimisticExecutor(throttle=5.0)
        tight_stats = tight.run(model2.lps, until=HORIZON)
        assert repr(model2.results()) == repr(ref.results())
        # Bounding optimism can only reduce mis-speculated work.
        assert tight_stats.rolled_back_events <= free_stats.rolled_back_events


class TestSnapshotRestore:
    def test_roundtrip_restores_clock_rng_state_and_events(self):
        lp, log = make_logged_lp("solo", seed=9)
        lp.sim.schedule(5.0, log.append, "later")
        lp.sim.schedule(1.0, log.append, "early")
        first = lp.sim.stream("u").uniform()

        snap = lp.snapshot()
        post_snap = [lp.sim.stream("u").uniform() for _ in range(3)]
        fresh = lp.sim.stream("made-after-snapshot").uniform()
        lp.sim.run(until=2.0)
        assert log == ["early"]

        lp.restore(snap)
        assert lp.sim.now == 0.0
        assert log == []
        assert lp.sim.peek_time() == 1.0
        # RNG replay: identical draws, including a stream first created
        # after the snapshot (recreated from its deterministic seed).
        assert [lp.sim.stream("u").uniform() for _ in range(3)] == post_snap
        assert lp.sim.stream("made-after-snapshot").uniform() == fresh
        assert first != post_snap[0]

    def test_restore_is_idempotent_per_snapshot(self):
        lp, log = make_logged_lp("solo")
        lp.sim.schedule(1.0, log.append, "x")
        snap = lp.snapshot()
        for _ in range(2):
            lp.sim.run(until=10.0)
            assert log == ["x"]
            lp.restore(snap)
            assert log == [] and lp.sim.peek_time() == 1.0

    def test_snapshot_isolated_from_future_cancellation(self):
        lp, log = make_logged_lp("solo")
        ev = lp.sim.schedule(1.0, log.append, "x")
        snap = lp.snapshot()
        ev.cancel()
        lp.sim.run(until=10.0)
        assert log == []
        lp.restore(snap)
        lp.sim.run(until=10.0)
        assert log == ["x"]


def run_pair(build, until=100.0, **kw):
    """Run *build()* under sequential and optimistic; return both outputs."""
    lps_ref, logs_ref = build()
    SequentialExecutor().run(lps_ref, until=until)
    lps_opt, logs_opt = build()
    ex = OptimisticExecutor(**kw)
    stats = ex.run(lps_opt, until=until)
    return logs_ref, logs_opt, ex, stats


class TestRollbackEdgeCases:
    def test_straggler_exactly_at_saved_state_timestamp(self):
        """checkpoint_every=1 gives B a snapshot at every integer time; the
        straggler hits recv_time=3.0 — the snapshot at 3.0 must be skipped
        (its state already includes the t=3 firing) and 2.0 restored."""

        def build():
            b, blog = make_logged_lp("B")
            a, alog = make_logged_lp("A")
            a.connect(b, 2.0)
            b.connect(a, 2.0)  # cycle so CMB/validation semantics match

            def local(lp, tag):
                blog.append((lp.sim.now, tag))

            for t in (1.0, 2.0, 3.0, 4.0, 5.0):
                b.sim.schedule(t, local, b, "local")
            b.on_message("poke", lambda lp, m: blog.append((lp.sim.now,
                                                            "poke")))
            a.on_message("poke", lambda lp, m: None)
            a.sim.schedule(1.0, a.send, "B", "poke")  # recv_time = 3.0
            return [b, a], (blog, alog)  # B first: it runs ahead of A

        (ref_b, _), (opt_b, _), ex, stats = run_pair(build,
                                                     checkpoint_every=1)
        assert opt_b == ref_b
        assert (3.0, "poke") in opt_b
        rb = ex.lp_reports["B"]
        assert rb.rollbacks >= 1 and rb.stragglers >= 1
        # Depth proves the restored snapshot was 2.0, not 3.0: the t=3,4,5
        # locals plus the dispatch replay after restoration.
        assert rb.max_rollback_depth >= 3

    def test_anti_message_catches_in_flight_positive(self):
        """A rolls back after optimistically sending to B; B is still booked
        solid below the positive's receive time, so the anti annihilates it
        in B's input queue — no secondary rollback on B."""

        def build():
            b, blog = make_logged_lp("B")
            a, alog = make_logged_lp("A")
            c, clog = make_logged_lp("C")
            a.connect(b, 1.0)
            c.connect(a, 1.0)
            b.connect(c, 1.0)  # close the ring for the horizon validator

            for i in range(1, 21):  # B busy below t=5 for several rounds
                b.sim.schedule(0.25 * i, blog.append, round(0.25 * i, 9))
            for t in range(1, 11):  # A races ahead, sending at t=5
                a.sim.schedule(float(t), alog.append, float(t))
            a.sim.schedule(5.0, a.send, "B", "x")  # recv_time = 6.0
            c.sim.schedule(0.5, c.send, "A", "y")  # straggler: recv 1.5
            b.on_message("x", lambda lp, m: blog.append("x"))
            a.on_message("y", lambda lp, m: alog.append("y"))
            c.on_message("z", lambda lp, m: None)
            return [b, a, c], (blog, alog, clog)

        ref, opt, ex, stats = run_pair(build, batch=8)
        assert opt == ref
        assert ex.lp_reports["A"].rollbacks >= 1
        assert ex.lp_reports["A"].antis_sent >= 1
        assert ex.lp_reports["B"].rollbacks == 0
        assert ex.lp_reports["B"].annihilations >= 1
        assert "x" in opt[0]  # the coast-forward re-send still arrives

    def test_rollback_past_a_cancellation(self):
        """B schedules a t=10 event at t=3 and cancels it at t=4; a
        straggler at 1.5 rolls back past both.  The replay must re-create
        and re-cancel — the victim never fires, matching sequential."""

        def build():
            b, blog = make_logged_lp("B")
            a, alog = make_logged_lp("A")
            a.connect(b, 1.0)
            b.connect(a, 1.0)
            handle = {}

            def do_schedule(lp):
                blog.append((lp.sim.now, "schedule"))
                handle["ev"] = lp.sim.schedule_at(10.0, blog.append,
                                                  "victim-fired")

            def do_cancel(lp):
                blog.append((lp.sim.now, "cancel"))
                handle["ev"].cancel()

            for t in (1.0, 2.0, 5.0, 6.0):
                b.sim.schedule(t, blog.append, (t, "local"))
            b.sim.schedule(3.0, do_schedule, b)
            b.sim.schedule(4.0, do_cancel, b)
            b.on_message("poke", lambda lp, m: blog.append((lp.sim.now,
                                                            "poke")))
            a.on_message("poke", lambda lp, m: None)
            a.sim.schedule(0.5, a.send, "B", "poke")  # recv_time = 1.5
            return [b, a], (blog, alog)

        ref, opt, ex, stats = run_pair(build, until=20.0, checkpoint_every=1)
        assert opt == ref
        assert "victim-fired" not in opt[0]
        assert (1.5, "poke") in opt[0]
        assert ex.lp_reports["B"].rollbacks >= 1

    def test_gvt_advances_with_idle_lp(self):
        """A permanently idle LP contributes +inf to the GVT reduction; the
        run must terminate, commit, and fossil-collect without it ever
        executing anything."""

        def build():
            a, alog = make_logged_lp("A")
            b, blog = make_logged_lp("B")
            idle, ilog = make_logged_lp("IDLE")
            a.connect(b, 1.0)
            b.connect(a, 1.0)
            a.connect(idle, 1.0)  # channel exists; never used

            def bounce(lp, m):
                (alog if lp.name == "A" else blog).append((lp.sim.now,
                                                           m.payload))
                if m.payload < 30:
                    lp.send("B" if lp.name == "A" else "A", "ball",
                            m.payload + 1)

            a.on_message("ball", bounce)
            b.on_message("ball", bounce)
            idle.on_message("ball", lambda lp, m: None)
            a.sim.schedule(0.0, a.send, "B", "ball", 0)
            return [a, b, idle], (alog, blog, ilog)

        ref, opt, ex, stats = run_pair(build)
        assert opt == ref
        rpt = ex.lp_reports["IDLE"]
        assert rpt.rollbacks == 0 and rpt.snapshots_taken == 1
        assert stats.events > 0


class TestProtocolGuards:
    def test_stop_inside_optimistic_run_rejected(self):
        def build():
            a, alog = make_logged_lp("A")
            b, _ = make_logged_lp("B")
            a.connect(b, 1.0)
            b.connect(a, 1.0)
            a.sim.schedule(1.0, a.sim.stop, "bail")
            b.on_message("x", lambda lp, m: None)
            return [a, b]

        with pytest.raises(ConfigurationError, match="rolled back"):
            OptimisticExecutor().run(build(), until=10.0)

    def test_send_to_non_participant_rejected(self):
        a, _ = make_logged_lp("A")
        b, _ = make_logged_lp("B")
        outside = LogicalProcess("OUTSIDE")
        a.connect(b, 1.0)
        b.connect(a, 1.0)
        a.connect(outside, 1.0)
        b.on_message("x", lambda lp, m: None)
        a.sim.schedule(1.0, a.send, "OUTSIDE", "x")
        with pytest.raises(ConfigurationError, match="not part"):
            OptimisticExecutor().run([a, b], until=10.0)

    def test_duplicate_lp_names_rejected(self):
        a1, _ = make_logged_lp("A")
        a2, _ = make_logged_lp("A")
        a1.connect(a2, 1.0)
        with pytest.raises(ConfigurationError, match="duplicate"):
            OptimisticExecutor().run([a1, a2], until=10.0)

    def test_nested_optimistic_runs_rejected(self):
        a, _ = make_logged_lp("A")
        b, _ = make_logged_lp("B")
        a.connect(b, 1.0)
        a._tw = object()  # simulate an in-progress optimistic run
        try:
            with pytest.raises(ConfigurationError, match="already inside"):
                OptimisticExecutor().run([a, b], until=10.0)
        finally:
            a._tw = None

    @pytest.mark.parametrize("kw", [{"batch": 0}, {"checkpoint_every": 0},
                                    {"throttle": 0.0}, {"throttle": -1.0}])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            OptimisticExecutor(**kw)

    def test_pre_run_channel_messages_adopted(self):
        """Messages sent before the run (via the conservative channel path)
        must be swept into the Time Warp input queues at setup."""
        a, alog = make_logged_lp("A")
        b, blog = make_logged_lp("B")
        a.connect(b, 1.0)
        b.connect(a, 1.0)
        b.on_message("seed", lambda lp, m: blog.append((lp.sim.now,
                                                        m.payload)))
        a.on_message("seed", lambda lp, m: None)
        a.send("B", "seed", 42)  # outside any executor: goes via Channel
        OptimisticExecutor().run([a, b], until=10.0)
        assert blog == [(1.0, 42)]
