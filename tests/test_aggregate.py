"""Tests for model simplification (machine aggregation + grid coarsening)."""

import pytest

from repro.core import ConfigurationError, Simulator
from repro.hosts import (
    Disk,
    Grid,
    Site,
    SpaceSharedMachine,
    aggregate_machines,
    coarsen_grid,
)
from repro.middleware import GridRunner, Job, LeastLoadedScheduler
from repro.network import FileSpec, Topology


def detailed_grid(sim, n_sites=4, pes=2, rating=500.0):
    topo = Topology()
    topo.add_node("WAN")
    sites = []
    for i in range(n_sites):
        name = f"s{i}"
        topo.add_link(name, "WAN", 1e8, 0.01)
        sites.append(Site(sim, name,
                          machines=[SpaceSharedMachine(sim, pes=pes,
                                                       rating=rating,
                                                       name=f"{name}-m")],
                          disk=Disk(sim, 1e12, name=f"{name}-d")))
    return Grid(sim, topo, sites)


class TestAggregateMachines:
    def test_preserves_total_capacity(self):
        sim = Simulator()
        ms = [SpaceSharedMachine(sim, pes=2, rating=1000.0),
              SpaceSharedMachine(sim, pes=4, rating=250.0)]
        agg = aggregate_machines(sim, ms)
        assert agg.pes == 6
        assert agg.total_mips == pytest.approx(2 * 1000 + 4 * 250)

    def test_single_machine_identity(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=3, rating=700.0)
        agg = aggregate_machines(sim, [m])
        assert agg.pes == 3 and agg.rating == pytest.approx(700.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_machines(Simulator(), [])

    def test_pooling_never_slower_for_uniform_fleet(self):
        """One pooled queue serves a backlog no later than split queues."""
        def run(split):
            sim = Simulator()
            if split:
                ms = [SpaceSharedMachine(sim, pes=1, rating=100.0, name=f"m{i}")
                      for i in range(4)]
            else:
                base = [SpaceSharedMachine(sim, pes=1, rating=100.0)
                        for _ in range(4)]
                ms = [aggregate_machines(sim, base)]
            runs = []
            # imbalanced static assignment for the split case
            for i in range(8):
                target = ms[0] if not split else ms[i % 2]  # only 2 of 4 used
                runs.append(target.submit(100.0))
            sim.run()
            return max(r.finished for r in runs)

        assert run(split=False) <= run(split=True)


class TestCoarsenGrid:
    def test_structure_and_capacity(self):
        sim_a = Simulator()
        grid = detailed_grid(sim_a, n_sites=4, pes=2, rating=500.0)
        sim_b = Simulator()
        coarse = coarsen_grid(sim_b, grid,
                              {"east": ["s0", "s1"], "west": ["s2", "s3"]})
        assert sorted(coarse.site_names) == ["east", "west"]
        assert coarse.site("east").total_pes == 4
        assert coarse.site("east").total_mips == pytest.approx(4 * 500.0)

    def test_disk_capacity_sums_and_files_carry(self):
        sim_a = Simulator()
        grid = detailed_grid(sim_a, n_sites=2)
        grid.site("s0").store_file(FileSpec("data", 100.0))
        sim_b = Simulator()
        coarse = coarsen_grid(sim_b, grid, {"all": ["s0", "s1"]})
        assert coarse.site("all").disk.capacity == pytest.approx(2e12)
        assert coarse.site("all").has_file("data")

    def test_bandwidth_sums(self):
        sim_a = Simulator()
        grid = detailed_grid(sim_a, n_sites=3)
        sim_b = Simulator()
        coarse = coarsen_grid(sim_b, grid, {"g": ["s0", "s1", "s2"]})
        link = coarse.topology.link("g", "AGG-WAN")
        assert link.bandwidth == pytest.approx(3e8)

    def test_duplicate_membership_rejected(self):
        sim_a = Simulator()
        grid = detailed_grid(sim_a, n_sites=2)
        with pytest.raises(ConfigurationError, match="two groups"):
            coarsen_grid(Simulator(), grid, {"a": ["s0"], "b": ["s0", "s1"]})

    def test_unknown_member_rejected(self):
        sim_a = Simulator()
        grid = detailed_grid(sim_a, n_sites=2)
        with pytest.raises(ConfigurationError):
            coarsen_grid(Simulator(), grid, {"a": ["ghost"]})

    def test_coarse_model_approximates_detailed_makespan(self):
        """The E14 claim in miniature: coarse != exact but close, cheaper."""
        def run(build):
            sim = Simulator(seed=9)
            grid = build(sim)
            runner = GridRunner(sim, grid, scheduler=LeastLoadedScheduler())
            jobs = [Job(id=i, length=1000.0, submitted=float(i)) for i in range(40)]
            runner.submit_all(jobs)
            sim.run()
            return runner.makespan, sim.events_executed

        def detailed(sim):
            return detailed_grid(sim, n_sites=8, pes=2, rating=500.0)

        def coarse(sim):
            ref_sim = Simulator()
            ref = detailed_grid(ref_sim, n_sites=8, pes=2, rating=500.0)
            return coarsen_grid(sim, ref, {
                "g0": [f"s{i}" for i in range(4)],
                "g1": [f"s{i}" for i in range(4, 8)]})

        exact_ms, exact_events = run(detailed)
        coarse_ms, coarse_events = run(coarse)
        assert coarse_ms == pytest.approx(exact_ms, rel=0.25)
