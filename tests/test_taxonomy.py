"""Tests for the taxonomy: schema, registry, rules, comparison, reports.

The registry assertions here double as the E1/Table-1 reproduction: every
Section-4 prose claim about the six simulators must hold in the records.
"""

import pytest

from repro.core import ConfigurationError, Simulator, TimeDrivenSimulator
from repro.core.trace import TraceRecord
from repro.core.tracedriven import TraceDrivenSimulator
from repro.taxonomy import (
    SURVEYED,
    Behavior,
    Component,
    DesKind,
    Execution,
    InputKind,
    Mechanics,
    Motivation,
    QueueStructure,
    REPRO_RECORD,
    SimulatorRecord,
    SpecMode,
    SystemKind,
    TimeBase,
    UiKind,
    ValidationKind,
    all_records,
    check_consistency,
    classify_engine,
    complementarity,
    coverage,
    diff,
    record,
    render_ascii,
    render_csv,
    render_markdown,
    similarity,
    survey_report,
    table1_rows,
    validate_registry,
)


class TestRegistryMatchesPaperClaims:
    """Each test encodes one sentence of Section 4 (or 3)."""

    def test_six_surveyed_simulators_in_order(self):
        assert [r.name for r in SURVEYED] == [
            "Bricks", "OptorSim", "SimGrid", "GridSim", "ChicagoSim", "MONARC 2"]

    def test_bricks_lacks_runtime_components(self):
        # "there are also exceptions (Bricks for example)"
        assert not record("Bricks").runtime_components
        assert all(r.runtime_components for r in SURVEYED if r.name != "Bricks")

    def test_bricks_is_scheduling_motivated_with_replica_extension(self):
        m = record("Bricks").motivations
        assert Motivation.SCHEDULING in m and Motivation.DATA_REPLICATION in m

    def test_optorsim_emphasis_is_replication(self):
        assert Motivation.DATA_REPLICATION in record("OptorSim").motivations

    def test_simgrid_has_no_middleware_support(self):
        # "SimGrid does not provide any of the system support facilities"
        assert Component.MIDDLEWARE not in record("SimGrid").components
        for name in ("Bricks", "OptorSim", "GridSim", "ChicagoSim", "MONARC 2"):
            assert Component.MIDDLEWARE in record(name).components

    def test_simgrid_validated_mathematically(self):
        # Casanova 2001: analytic comparison
        assert record("SimGrid").validation is ValidationKind.MATHEMATICAL

    def test_validation_only_for_bricks_monarc_simgrid(self):
        # "To this date only a few simulators present validation studies
        #  (e.g. Bricks, MONARC and SimGrid)"
        with_validation = {r.name for r in SURVEYED
                           if r.validation is not ValidationKind.NONE}
        assert with_validation == {"Bricks", "SimGrid", "MONARC 2"}

    def test_gridsim_is_economy_focused(self):
        assert Motivation.ECONOMY in record("GridSim").motivations
        assert SystemKind.P2P in record("GridSim").systems

    def test_visual_design_interfaces_gridsim_and_monarc(self):
        # "Examples of simulators providing visual design interfaces are
        #  GridSim and MONARC 2"
        visual = {r.name for r in SURVEYED if SpecMode.VISUAL in r.spec_modes}
        assert visual == {"GridSim", "MONARC 2"}

    def test_chicagosim_generator_input_only(self):
        # "ChicagoSim accepts only input data generators"
        assert record("ChicagoSim").input_kinds == frozenset({InputKind.GENERATOR})

    def test_monarc_accepts_both_input_kinds(self):
        # "MONARC 2 accepts both types of input"
        assert record("MONARC 2").input_kinds == frozenset(
            {InputKind.GENERATOR, InputKind.MONITORED})

    def test_chicagosim_built_on_parsec_language(self):
        assert SpecMode.LANGUAGE in record("ChicagoSim").spec_modes

    def test_all_surveyed_are_discrete_event_probabilistic(self):
        # §2: "all simulators that address Grid-related problems use both
        # modeling frameworks" — and all are stochastic DES
        for r in SURVEYED:
            assert r.mechanics is Mechanics.DISCRETE_EVENT
            assert r.behavior is Behavior.PROBABILISTIC
            assert r.time_base is TimeBase.DISCRETE

    def test_no_pure_distributed_surveyed_simulator(self):
        # "There are no pure distributed simulators"; MONARC 2's threading
        # is the closest, everything else is centralized.
        centralized = [r for r in SURVEYED if r.execution is Execution.CENTRALIZED]
        assert len(centralized) == 5

    def test_registry_is_internally_consistent(self):
        assert validate_registry(all_records()) == []

    def test_record_lookup_case_insensitive(self):
        assert record("gridsim").name == "GridSim"
        with pytest.raises(KeyError):
            record("ns-3")


class TestConsistencyRules:
    def base_kwargs(self):
        r = record("GridSim")
        return {f: getattr(r, f) for f in (
            "name", "year", "motivations", "systems", "components", "behavior",
            "time_base", "mechanics", "des_kinds", "execution",
            "queue_structure", "entity_mapping", "spec_modes", "input_kinds",
            "design_ui", "execution_ui", "output_analysis", "validation",
            "runtime_components")}

    def test_deprecated_execution_flagged(self):
        kw = self.base_kwargs()
        kw["execution"] = Execution.SERIAL
        bad = SimulatorRecord(**kw)
        assert any(v.rule == "deprecated-execution" for v in check_consistency(bad))

    def test_trace_driven_needs_monitored_input(self):
        kw = self.base_kwargs()
        kw["des_kinds"] = frozenset({DesKind.TRACE_DRIVEN})
        kw["input_kinds"] = frozenset({InputKind.GENERATOR})
        bad = SimulatorRecord(**kw)
        assert any(v.rule == "trace-needs-monitored-input"
                   for v in check_consistency(bad))

    def test_des_needs_discrete_time(self):
        kw = self.base_kwargs()
        kw["time_base"] = TimeBase.CONTINUOUS
        bad = SimulatorRecord(**kw)
        assert any(v.rule == "des-discrete-time" for v in check_consistency(bad))

    def test_scheduling_needs_hosts(self):
        kw = self.base_kwargs()
        kw["components"] = frozenset({Component.NETWORK})
        kw["motivations"] = frozenset({Motivation.SCHEDULING})
        bad = SimulatorRecord(**kw)
        rules = {v.rule for v in check_consistency(bad)}
        assert "scheduling-needs-hosts" in rules

    def test_visual_spec_needs_gui(self):
        kw = self.base_kwargs()
        kw["spec_modes"] = frozenset({SpecMode.VISUAL, SpecMode.LIBRARY})
        kw["design_ui"] = UiKind.TEXTUAL
        bad = SimulatorRecord(**kw)
        assert any(v.rule == "visual-spec-needs-gui"
                   for v in check_consistency(bad))

    def test_empty_axis_rejected_at_construction(self):
        kw = self.base_kwargs()
        kw["motivations"] = frozenset()
        with pytest.raises(ConfigurationError):
            SimulatorRecord(**kw)


class TestEngineClassifier:
    def test_event_driven_heap(self):
        info = classify_engine(Simulator(queue="heap"))
        assert info["des_kind"] is DesKind.EVENT_DRIVEN
        assert info["queue_structure"] is QueueStructure.TREE

    def test_time_driven_calendar(self):
        info = classify_engine(TimeDrivenSimulator(tick=1.0, queue="calendar"))
        assert info["des_kind"] is DesKind.TIME_DRIVEN
        assert info["queue_structure"] is QueueStructure.CALENDAR

    def test_trace_driven_linear(self):
        sim = TraceDrivenSimulator([TraceRecord(1.0, "s", "k", 0.0)],
                                   queue="linear")
        info = classify_engine(sim)
        assert info["des_kind"] is DesKind.TRACE_DRIVEN
        assert info["queue_structure"] is QueueStructure.LINEAR

    def test_repro_record_matches_live_capabilities(self):
        """The dog-food check: our registry row reflects the actual kernel."""
        assert DesKind.EVENT_DRIVEN in REPRO_RECORD.des_kinds
        assert DesKind.TIME_DRIVEN in REPRO_RECORD.des_kinds
        assert DesKind.TRACE_DRIVEN in REPRO_RECORD.des_kinds
        from repro.core.queues import QUEUE_FACTORIES

        assert {"linear", "heap", "splay", "calendar", "ladder"} <= set(QUEUE_FACTORIES)


class TestComparison:
    def test_diff_symmetry_and_content(self):
        d = diff(record("SimGrid"), record("GridSim"))
        axes = {x.axis for x in d}
        assert "motivations" in axes  # scheduling vs economy+scheduling
        assert "components" in axes   # middleware missing in SimGrid

    def test_self_similarity_is_one(self):
        r = record("Bricks")
        assert similarity(r, r) == pytest.approx(1.0)

    def test_similarity_bounded_and_symmetric(self):
        a, b = record("OptorSim"), record("ChicagoSim")
        s = similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(similarity(b, a))

    def test_related_pairs_more_similar(self):
        """Data-grid simulators resemble each other more than SimGrid."""
        data_pair = similarity(record("OptorSim"), record("ChicagoSim"))
        cross = similarity(record("OptorSim"), record("SimGrid"))
        assert data_pair > cross

    def test_coverage_marks_explored_space(self):
        cov = coverage(list(SURVEYED))
        assert cov["validation"]["validation vs analytic model"] is True
        assert cov["runtime_components"] == {"yes": True, "no": True}
        # nobody surveyed uses an O(1) documented event list
        assert cov["queue_structure"]["calendar / ladder O(1)"] is False

    def test_complementarity_increases_with_repro(self):
        """Adding this framework covers cells the six leave empty."""
        base = complementarity(list(SURVEYED))
        extended = complementarity(all_records())
        assert 0.0 < base < 1.0
        assert extended > base


class TestReports:
    def test_ascii_table_has_all_simulators(self):
        out = render_ascii()
        for name in ("Bricks", "OptorSim", "SimGrid", "GridSim",
                     "ChicagoSim", "MONARC 2"):
            assert name in out

    def test_markdown_table_shape(self):
        md = render_markdown()
        lines = md.strip().splitlines()
        assert lines[0].startswith("| Axis |")
        assert len(lines) == 2 + 17  # header + separator + 17 axes

    def test_csv_parses_with_stdlib(self):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(render_csv())))
        assert rows[0][0] == "Axis"
        assert len(rows) == 18
        assert all(len(r) == 7 for r in rows)

    def test_survey_report_includes_provenance(self):
        rpt = survey_report()
        assert "Provenance notes" in rpt
        assert "MonALISA" in rpt  # MONARC note survives rendering

    def test_table1_rows_custom_records(self):
        rows = table1_rows([record("Bricks")])
        assert rows[0] == ["Axis", "Bricks"]
