"""Tests for distributed execution: LPs, channels, and all executors."""

import math

import pytest

from repro.core import ConfigurationError, SchedulingError
from repro.core.optimistic import OptimisticExecutor
from repro.core.parallel import (
    CMBExecutor,
    Channel,
    LogicalProcess,
    SequentialExecutor,
    WindowExecutor,
)

EXECUTORS = [SequentialExecutor(), CMBExecutor(), WindowExecutor(),
             WindowExecutor(threads=2), OptimisticExecutor()]
EXECUTOR_IDS = ["sequential", "cmb", "window", "window-threaded", "optimistic"]


def build_ping_pong(rounds=20, lookahead=1.0):
    """Two LPs bouncing a counter; returns (lps, log)."""
    a = LogicalProcess("A")
    b = LogicalProcess("B")
    a.connect(b, lookahead)
    b.connect(a, lookahead)
    log = []

    def on_ball(lp, msg):
        log.append((round(lp.sim.now, 9), lp.name, msg.payload))
        if msg.payload < rounds:
            other = "B" if lp.name == "A" else "A"
            lp.send(other, "ball", msg.payload + 1)

    a.on_message("ball", on_ball)
    b.on_message("ball", on_ball)
    a.sim.schedule(0.0, a.send, "B", "ball", 0)
    return [a, b], log


def build_ring(n=4, lookahead=0.5, hops=40):
    """n LPs in a ring, one token circulating."""
    lps = [LogicalProcess(f"lp{i}") for i in range(n)]
    for i, lp in enumerate(lps):
        lp.connect(lps[(i + 1) % n], lookahead)
    log = []

    def on_token(lp, msg):
        log.append((round(lp.sim.now, 9), lp.name))
        if msg.payload < hops:
            nxt = f"lp{(int(lp.name[2:]) + 1) % n}"
            lp.send(nxt, "token", msg.payload + 1)

    for lp in lps:
        lp.on_message("token", on_token)
    lps[0].sim.schedule(0.0, lps[0].send, "lp1", "token", 0)
    return lps, log


class TestChannelInvariants:
    def test_zero_lookahead_rejected(self):
        a, b = LogicalProcess("a"), LogicalProcess("b")
        with pytest.raises(ConfigurationError, match="lookahead"):
            a.connect(b, 0.0)

    def test_connect_idempotent(self):
        a, b = LogicalProcess("a"), LogicalProcess("b")
        assert a.connect(b, 1.0) is a.connect(b, 1.0)

    def test_send_without_channel_rejected(self):
        a = LogicalProcess("a")
        with pytest.raises(ConfigurationError, match="no channel"):
            a.send("ghost", "kind")

    def test_channel_clock_monotone(self):
        a, b = LogicalProcess("a"), LogicalProcess("b")
        ch = a.connect(b, 2.0)
        a.send("b", "m", 1)
        assert ch.clock == 2.0
        a.send("b", "m", 2, extra_delay=3.0)
        assert ch.clock == 5.0

    def test_clock_violation_rejected(self):
        a, b = LogicalProcess("a"), LogicalProcess("b")
        ch = a.connect(b, 1.0)
        from repro.core.parallel import Message

        ch.send(Message(10.0, "m", None, "a", 1))
        with pytest.raises(SchedulingError, match="violates"):
            ch.send(Message(5.0, "m", None, "a", 2))

    def test_unknown_message_kind_raises(self):
        a, b = LogicalProcess("a"), LogicalProcess("b")
        a.connect(b, 1.0)
        a.sim.schedule(0.0, a.send, "b", "mystery")
        a.sim.run()
        with pytest.raises(ConfigurationError, match="mystery"):
            SequentialExecutor().run([a, b], until=100.0)


@pytest.mark.parametrize("executor", EXECUTORS, ids=EXECUTOR_IDS)
class TestExecutorCorrectness:
    def test_ping_pong_order_and_times(self, executor):
        lps, log = build_ping_pong(rounds=10, lookahead=1.0)
        executor.run(lps, until=100.0)
        assert [entry[2] for entry in log] == list(range(11))
        # ball i arrives at time i+1 (one lookahead per hop)
        assert [entry[0] for entry in log] == [float(i + 1) for i in range(11)]

    def test_ring_token_visits_all(self, executor):
        lps, log = build_ring(n=4, lookahead=0.5, hops=20)
        executor.run(lps, until=100.0)
        assert len(log) == 21
        assert [e[1] for e in log[:4]] == ["lp1", "lp2", "lp3", "lp0"]

    def test_horizon_respected(self, executor):
        lps, log = build_ping_pong(rounds=1000, lookahead=1.0)
        executor.run(lps, until=10.5)
        assert all(t <= 10.5 for t, *_ in log)
        assert len(log) == 10  # balls at t=1..10


class TestExecutorEquivalence:
    def test_all_executors_same_event_log(self):
        reference = None
        for executor, name in zip(EXECUTORS, EXECUTOR_IDS):
            lps, log = build_ring(n=5, lookahead=0.7, hops=60)
            executor.run(lps, until=1000.0)
            if reference is None:
                reference = log
            else:
                assert log == reference, f"{name} diverged"


class TestHorizonValidation:
    """Regression: a zero-channel model under `until=inf` used to make every
    executor spin each partition forever; now it's a clear config error."""

    @staticmethod
    def _channel_free_lps():
        lps = [LogicalProcess(f"solo{i}") for i in range(2)]

        def tick(lp):  # self-regenerating: would never exhaust
            lp.sim.schedule(1.0, tick, lp)

        for lp in lps:
            lp.sim.schedule(0.0, tick, lp)
        return lps

    @pytest.mark.parametrize("executor", EXECUTORS, ids=EXECUTOR_IDS)
    def test_zero_channels_infinite_horizon_rejected(self, executor):
        with pytest.raises(ConfigurationError, match="zero channels"):
            executor.run(self._channel_free_lps(), until=math.inf)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=EXECUTOR_IDS)
    def test_nan_horizon_rejected(self, executor):
        lps, _ = build_ping_pong(rounds=2)
        with pytest.raises(ConfigurationError, match="NaN"):
            executor.run(lps, until=math.nan)

    def test_zero_channels_finite_horizon_still_fine(self):
        lps = self._channel_free_lps()
        stats = SequentialExecutor().run(lps, until=5.0)
        assert stats.events > 0

    def test_channels_with_infinite_horizon_still_fine(self):
        lps, log = build_ping_pong(rounds=5)
        SequentialExecutor().run(lps, until=math.inf)
        assert [entry[2] for entry in log] == list(range(6))


class TestProtocolMetrics:
    def test_cmb_emits_null_messages(self):
        lps, _ = build_ping_pong(rounds=30, lookahead=1.0)
        stats = CMBExecutor().run(lps, until=40.0)
        assert stats.null_messages > 0
        assert stats.real_messages == 31

    def test_smaller_lookahead_more_nulls(self):
        """The classic CMB pathology: a busy LP whose safety depends on an
        idle neighbour's channel clock needs one null per lookahead step."""
        def nulls(lookahead):
            busy = LogicalProcess("busy")
            idle = LogicalProcess("idle")
            idle.connect(busy, lookahead)   # busy's safety gated by idle
            busy.connect(idle, lookahead)
            idle.on_message("x", lambda lp, m: None)
            busy.on_message("x", lambda lp, m: None)

            def tick(n):
                if n < 500:
                    busy.sim.schedule(0.1, tick, n + 1)

            busy.sim.schedule(0.0, tick, 0)
            return CMBExecutor().run([busy, idle], until=50.0).null_messages

        assert nulls(0.5) > 4 * nulls(10.0)

    def test_sequential_sends_no_nulls(self):
        lps, _ = build_ping_pong()
        stats = SequentialExecutor().run(lps, until=100.0)
        assert stats.null_messages == 0

    def test_window_epoch_count_positive(self):
        lps, _ = build_ring()
        stats = WindowExecutor().run(lps, until=100.0)
        assert stats.epochs > 0
        assert stats.executor == "window"

    def test_stats_event_totals_match(self):
        lps, log = build_ping_pong(rounds=10)
        stats = SequentialExecutor().run(lps, until=100.0)
        assert stats.events >= len(log)
