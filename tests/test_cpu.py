"""Tests for machines: space-shared, time-shared, background load."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Process, Simulator
from repro.hosts import SpaceSharedMachine, TimeSharedMachine


class FakeJob:
    def __init__(self, length):
        self.length = length


class TestSpaceShared:
    def test_single_job_timing(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=1, rating=100.0)
        run = m.submit(FakeJob(1000.0))
        sim.run()
        assert run.finished == pytest.approx(10.0)
        assert run.queue_delay == 0.0

    def test_fcfs_queueing(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=1, rating=100.0)
        r1 = m.submit(FakeJob(1000.0))
        r2 = m.submit(FakeJob(500.0))
        sim.run()
        assert r1.finished == pytest.approx(10.0)
        assert r2.started == pytest.approx(10.0)
        assert r2.finished == pytest.approx(15.0)

    def test_multiple_pes_run_in_parallel(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        runs = [m.submit(FakeJob(1000.0)) for _ in range(3)]
        sim.run()
        assert sorted(r.finished for r in runs) == pytest.approx([10.0, 10.0, 20.0])

    def test_job_monopolizes_one_pe(self):
        """Space-shared: a lone job cannot use more than one PE."""
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=4, rating=100.0)
        run = m.submit(FakeJob(1000.0))
        sim.run()
        assert run.finished == pytest.approx(10.0)  # not 2.5

    def test_counts(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=1, rating=100.0)
        m.submit(FakeJob(100.0))
        m.submit(FakeJob(100.0))
        assert m.running == 1 and m.queued == 1
        sim.run()
        assert m.running == 0 and m.queued == 0 and m.completed == 2

    def test_estimated_completion_accounts_for_queue(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=1, rating=100.0)
        m.submit(FakeJob(1000.0))
        m.submit(FakeJob(1000.0))
        est = m.estimated_completion(1000.0)
        assert est == pytest.approx(30.0)

    def test_background_load_slows_running_job(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=1, rating=100.0)
        run = m.submit(FakeJob(1000.0))
        # at t=5, half done; then 50% load doubles the remaining time
        sim.schedule(5.0, m.set_background_load, 0.5)
        sim.run()
        assert run.finished == pytest.approx(15.0)


class TestTimeShared:
    def test_single_job_full_speed(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, pes=2, rating=100.0)
        run = m.submit(FakeJob(1000.0))
        sim.run()
        assert run.finished == pytest.approx(10.0)  # capped at one PE

    def test_processor_sharing_two_jobs_one_pe(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, pes=1, rating=100.0)
        r1 = m.submit(FakeJob(1000.0))
        r2 = m.submit(FakeJob(1000.0))
        sim.run()
        assert r1.finished == pytest.approx(20.0)
        assert r2.finished == pytest.approx(20.0)

    def test_two_pes_two_jobs_no_interference(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, pes=2, rating=100.0)
        r1 = m.submit(FakeJob(1000.0))
        r2 = m.submit(FakeJob(1000.0))
        sim.run()
        assert r1.finished == pytest.approx(10.0)
        assert r2.finished == pytest.approx(10.0)

    def test_short_job_departure_speeds_up_survivor(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, pes=1, rating=100.0)
        long = m.submit(FakeJob(1000.0))
        short = m.submit(FakeJob(100.0))
        sim.run()
        # share 50 MIPS each; short done at t=2 (100MI), long then solo:
        # 900MI left at 100 MIPS -> t = 2 + 9 = 11
        assert short.finished == pytest.approx(2.0)
        assert long.finished == pytest.approx(11.0)

    def test_no_queue_in_ps(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, pes=1, rating=100.0)
        for _ in range(5):
            m.submit(FakeJob(100.0))
        assert m.queued == 0 and m.running == 5
        sim.run()

    def test_background_load_reallocates(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, pes=1, rating=100.0)
        run = m.submit(FakeJob(1000.0))
        sim.schedule(5.0, m.set_background_load, 0.5)
        sim.run()
        assert run.finished == pytest.approx(15.0)

    def test_process_can_yield_run(self):
        sim = Simulator()
        m = TimeSharedMachine(sim, rating=10.0)
        log = []

        def body():
            run = yield m.submit(FakeJob(100.0))
            log.append((sim.now, run.turnaround))

        Process(sim, body)
        sim.run()
        assert log == [(10.0, 10.0)]


class TestValidation:
    def test_bad_machine_params(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            SpaceSharedMachine(sim, pes=0)
        with pytest.raises(ConfigurationError):
            TimeSharedMachine(sim, rating=0.0)

    def test_bad_job_length(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            m.submit(FakeJob(0.0))

    def test_bad_background_load(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            m.set_background_load(1.0)
        with pytest.raises(ConfigurationError):
            m.set_background_load(-0.1)

    def test_raw_number_accepted_as_job(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=10.0)
        run = m.submit(50.0)
        sim.run()
        assert run.finished == pytest.approx(5.0)


@settings(max_examples=25, deadline=None)
@given(lengths=st.lists(st.floats(min_value=1.0, max_value=1e4),
                        min_size=1, max_size=10),
       rating=st.floats(min_value=1.0, max_value=1e3))
def test_property_ps_work_conservation(lengths, rating):
    """Time-shared, 1 PE: the last completion is exactly total_work/rate."""
    sim = Simulator()
    m = TimeSharedMachine(sim, pes=1, rating=rating)
    runs = [m.submit(FakeJob(l)) for l in lengths]
    sim.run()
    assert max(r.finished for r in runs) == pytest.approx(sum(lengths) / rating, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(lengths=st.lists(st.floats(min_value=1.0, max_value=1e3),
                        min_size=1, max_size=12),
       pes=st.integers(min_value=1, max_value=4))
def test_property_space_shared_completes_everything(lengths, pes):
    sim = Simulator()
    m = SpaceSharedMachine(sim, pes=pes, rating=100.0)
    runs = [m.submit(FakeJob(l)) for l in lengths]
    sim.run()
    assert all(r.finished is not None for r in runs)
    assert m.completed == len(lengths)
