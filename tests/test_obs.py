"""The obs subsystem: causal tracing, handler profiling, run telemetry.

Covers the span model (parentage, cancellation, cross-LP grafting), the
profiler's aggregation keys, telemetry snapshots/heartbeats, the Chrome
trace exporter's structural invariants, and the Observation session's
attach/detach lifecycle.
"""

import functools
import json

import pytest

from repro.core import Process, Simulator
from repro.core.parallel import LogicalProcess, SequentialExecutor
from repro.core.timedriven import TimeDrivenSimulator
from repro.obs import (Observation, SpanStatus, Telemetry, Tracer,
                       callback_name, chrome_trace, profile_csv,
                       profile_markdown, HandlerProfiler)


def _observed_sim(**kw):
    obs = Observation(**kw)
    sim = Simulator(seed=1)
    obs.attach(sim, track="t0")
    return obs, sim


class TestCausalParentage:
    def test_child_scheduled_during_firing_gets_parent(self):
        obs, sim = _observed_sim()

        def root():
            sim.schedule(1.0, leaf, label="leaf")

        def leaf():
            pass

        sim.schedule(0.0, root, label="root")
        sim.run()
        spans = {s.label: s for s in obs.tracer.spans}
        assert spans["leaf"].parent is spans["root"]
        assert spans["root"].parent is None

    def test_chain_follows_generations(self):
        obs, sim = _observed_sim()

        def hop(i):
            if i < 3:
                sim.schedule(1.0, hop, i + 1, label=f"hop{i+1}")

        sim.schedule(0.0, hop, 0, label="hop0")
        sim.run()
        tracer = obs.tracer
        last = next(s for s in tracer.spans if s.label == "hop3")
        assert [s.label for s in tracer.chain(last)] == [
            "hop0", "hop1", "hop2", "hop3"]
        root = next(s for s in tracer.spans if s.label == "hop0")
        assert [s.label for s in tracer.children_of(root)] == ["hop1"]

    def test_externally_scheduled_events_are_roots(self):
        obs, sim = _observed_sim()
        sim.schedule(0.0, lambda: None, label="a")
        sim.schedule(1.0, lambda: None, label="b")
        sim.run()
        assert all(s.parent is None for s in obs.tracer.spans)

    def test_process_resumptions_stay_in_the_chain(self):
        obs, sim = _observed_sim()

        def proc():
            yield 1.0
            yield 2.0

        Process(sim, proc(), name="p")
        sim.run()
        fired = obs.tracer.fired_spans()
        assert len(fired) == 3  # spawn step + two timeout resumptions
        # each resumption is caused by the previous step's firing
        assert fired[1].parent is fired[0]
        assert fired[2].parent is fired[1]
        # and the lifecycle markers made it on
        names = [m.name for m in obs.tracer.markers]
        assert "spawn:p" in names and "done:p" in names


class TestCancellation:
    def test_cancelled_event_resolved_at_finalize(self):
        obs, sim = _observed_sim()
        ev = sim.schedule(5.0, lambda: None, label="doomed")
        sim.schedule(1.0, lambda: None, label="live")
        ev.cancel()
        sim.run()
        obs.close()
        by = {s.label: s.status for s in obs.tracer.spans}
        assert by["doomed"] == SpanStatus.CANCELLED
        assert by["live"] == SpanStatus.FIRED
        counts = obs.tracer.counts()
        assert counts["cancelled"] == 1 and counts["fired"] == 1

    def test_fired_spans_drop_event_reference(self):
        obs, sim = _observed_sim()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert all(s.event is None for s in obs.tracer.fired_spans())


class TestProfiler:
    def test_bound_methods_aggregate_under_one_key(self):
        class Sink:
            def __init__(self):
                self.n = 0

            def handle(self):
                self.n += 1

        obs, sim = _observed_sim(trace=False)
        sink = Sink()
        for i in range(10):
            sim.schedule(float(i), sink.handle)
        sim.run()
        rows = obs.profiler.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row.count == 10 and sink.n == 10
        assert row.key.endswith("Sink.handle")
        assert row.total_ns > 0 and row.max_ns >= row.mean_ns >= row.min_ns
        assert obs.profiler.share(row) == pytest.approx(1.0)

    def test_distinct_handlers_get_distinct_rows(self):
        obs, sim = _observed_sim(trace=False)

        def a():
            pass

        def b():
            pass

        sim.schedule(0.0, a)
        sim.schedule(1.0, b)
        sim.schedule(2.0, a)
        sim.run()
        by_key = {r.key: r.count for r in obs.profiler.rows()}
        assert sum(by_key.values()) == 3 and len(by_key) == 2

    def test_callback_name_variants(self):
        assert callback_name(callback_name).endswith("spans.callback_name")
        part = functools.partial(callback_name, None)
        assert callback_name(part) == callback_name(callback_name)

        class C:
            def m(self):
                pass

        assert callback_name(C().m).endswith("C.m")

    def test_markdown_and_csv_reductions(self):
        prof = HandlerProfiler()
        for _ in range(5):
            prof.add(callback_name, 1000)
        md = profile_markdown(prof, top=5)
        assert md.splitlines()[0].startswith("| handler |")
        assert "callback_name" in md
        csv = profile_csv(prof)
        assert csv.startswith("handler,firings,total_ns")
        assert ",5," in csv


class TestTelemetry:
    def test_snapshot_counts_every_firing(self):
        obs, sim = _observed_sim(trace=False, profile=False)
        for i in range(50):
            sim.schedule(float(i), lambda: None)
        sim.run()
        snap = obs.telemetry.snapshot(sim)
        assert snap["events"] == 50
        assert snap["sim_time"] == pytest.approx(49.0)
        assert snap["wall_seconds"] > 0
        assert snap["events_per_sec"] > 0
        assert snap["queue_depth"] == 0

    def test_heartbeat_lines_reach_the_sink(self):
        lines = []
        tel = Telemetry(heartbeat=0.0, sink=lines.append, check_every=1)
        sim = Simulator()
        obs = Observation(trace=False, profile=False, telemetry=False)
        obs.telemetry = tel
        obs.attach(sim)
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert lines and all(line.startswith("[obs]") for line in lines)
        assert tel.heartbeats == len(lines)

    def test_flow_reallocation_counters(self):
        """An observed FlowNetwork feeds the sharing counters into the
        telemetry snapshot via ObsBinding.on_reallocate."""
        from repro.network import FlowNetwork, Topology

        obs, sim = _observed_sim(trace=False, profile=False)
        topo = Topology()
        topo.add_link("a", "b", 100.0, 0.0)
        net = FlowNetwork(sim, topo, efficiency=1.0)
        net.transfer("a", "b", 200.0)
        net.transfer("a", "b", 100.0)
        sim.run()
        snap = obs.telemetry.snapshot(sim)
        assert snap["reallocs"] == net.sharing.recomputes > 0
        assert snap["realloc_flows_touched"] == net.sharing.flows_touched
        assert snap["realloc_rescheduled"] == net.sharing.rescheduled > 0
        assert snap["realloc_preserved"] == net.sharing.preserved


class TestChromeExport:
    def _traced_run(self):
        obs, sim = _observed_sim()

        def root():
            sim.schedule(1.0, lambda: None, label="child")

        sim.schedule(0.0, root, label="root")
        doomed = sim.schedule(9.0, lambda: None, label="doomed")
        doomed.cancel()
        sim.run()
        return obs

    def test_structure_and_json_round_trip(self):
        obs = self._traced_run()
        payload = obs.chrome_trace()
        text = json.dumps(payload)  # must be serializable as-is
        back = json.loads(text)
        events = back["traceEvents"]
        assert events, "trace must be non-empty"
        phases = {e["ph"] for e in events}
        assert {"M", "X"} <= phases
        assert back["otherData"]["tracer"]["fired"] == 2
        # cancelled events never become slices
        assert not any(e.get("name") == "doomed" for e in events
                       if e["ph"] == "X")

    def test_flow_arrows_pair_up_and_link_cause_to_effect(self):
        obs = self._traced_run()
        events = obs.chrome_trace()["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends) == 1
        assert starts[0]["id"] == ends[0]["id"]
        assert starts[0]["cat"] == "causal"
        slices = {e["name"]: e for e in events if e["ph"] == "X"}
        assert starts[0]["ts"] == slices["root"]["ts"]
        assert ends[0]["ts"] == slices["child"]["ts"]

    def test_slice_args_carry_sim_coordinates(self):
        obs = self._traced_run()
        events = obs.chrome_trace()["traceEvents"]
        child = next(e for e in events if e["ph"] == "X" and e["name"] == "child")
        assert child["args"]["t_sim"] == pytest.approx(1.0)
        assert child["args"]["scheduled_at"] == pytest.approx(0.0)
        assert child["dur"] >= 0

    def test_export_chrome_writes_loadable_file(self, tmp_path):
        obs = self._traced_run()
        path = tmp_path / "trace.json"
        n = obs.export_chrome(path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n > 0

    def test_trace_disabled_raises(self):
        obs = Observation(trace=False)
        with pytest.raises(ValueError, match="tracing"):
            obs.chrome_trace()
        with pytest.raises(ValueError, match="profiling"):
            Observation(profile=False).profile_table()


class TestCrossLP:
    def _ping_pong(self, rounds=6):
        a, b = LogicalProcess("A", seed=1), LogicalProcess("B", seed=2)
        a.connect(b, 1.0)
        b.connect(a, 1.0)

        def on_ball(lp, msg):
            if msg.payload < rounds:
                other = "B" if lp.name == "A" else "A"
                lp.send(other, "ball", msg.payload + 1)

        a.on_message("ball", on_ball)
        b.on_message("ball", on_ball)
        a.sim.schedule(0.0, a.send, "B", "ball", 0)
        return [a, b]

    def test_parent_grafted_across_lps(self):
        lps = self._ping_pong()
        obs = Observation().attach_lps(lps)
        SequentialExecutor().run(lps, until=100.0)
        obs.close()
        remote = [s for s in obs.tracer.spans if s.remote]
        assert remote, "cross-LP deliveries must be marked remote"
        for span in remote:
            assert span.parent is not None
            assert span.parent.track != span.track
        assert obs.tracer.counts()["cross_lp_links"] == len(remote)

    def test_chain_crosses_tracks(self):
        lps = self._ping_pong(rounds=4)
        obs = Observation().attach_lps(lps)
        SequentialExecutor().run(lps, until=100.0)
        deliveries = [s for s in obs.tracer.spans if s.remote
                      and s.status == SpanStatus.FIRED]
        last = max(deliveries, key=lambda s: s.due_sim)
        tracks = [s.track for s in obs.tracer.chain(last)]
        assert "A" in tracks and "B" in tracks
        assert len(tracks) > 2  # the whole rally, not one hop

    def test_remote_flows_render_in_chrome_trace(self):
        lps = self._ping_pong()
        obs = Observation().attach_lps(lps)
        SequentialExecutor().run(lps, until=100.0)
        events = obs.chrome_trace()["traceEvents"]
        assert any(e["ph"] == "s" and e["cat"] == "causal-remote"
                   for e in events)
        thread_names = {e["args"]["name"] for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"A", "B"} <= thread_names


class TestTransfersAndJobs:
    def test_transfer_becomes_async_interval(self):
        from repro.network import (FileSpec, FileTransferService, FlowNetwork,
                                   Topology)

        topo = Topology()
        topo.add_link("a", "b", 100.0, 0.0)
        obs, sim = (Observation(), Simulator())
        obs.attach(sim, track="net")
        fts = FileTransferService(sim, FlowNetwork(sim, topo, efficiency=1.0))
        fts.fetch(FileSpec("data.bin", 100.0), "a", "b")
        sim.run()
        spans = obs.tracer.async_spans
        assert len(spans) == 1
        aspan = spans[0]
        assert not aspan.open and aspan.category == "transfer"
        assert "data.bin" in aspan.name
        assert aspan.end_sim > aspan.begin_sim
        assert aspan.args["bytes"] == 100.0
        events = obs.chrome_trace()["traceEvents"]
        assert {e["ph"] for e in events} >= {"b", "e"}

    def test_job_transitions_become_markers(self):
        from repro.middleware import Job, JobState

        obs = Observation().observe_jobs()
        try:
            job = Job(id=7, length=10.0)
            job.transition(JobState.QUEUED, 1.0)
            job.transition(JobState.RUNNING, 2.0)
            job.transition(JobState.DONE, 5.0)
        finally:
            obs.unobserve_jobs()
        names = [m.name for m in obs.tracer.markers]
        assert names == ["job7:queued", "job7:running", "job7:done"]
        assert all(m.track == "jobs" for m in obs.tracer.markers)
        # the hook is global state: it must be gone after unobserve
        from repro.middleware import jobs as _jobs
        assert _jobs._job_observer is None

    def test_observe_jobs_without_tracer_is_a_noop(self):
        from repro.middleware import jobs as _jobs

        obs = Observation(trace=False).observe_jobs()
        try:
            assert _jobs._job_observer is None
        finally:
            obs.unobserve_jobs()


class TestObservationLifecycle:
    def test_attach_is_idempotent(self):
        obs = Observation()
        sim = Simulator()
        obs.attach(sim).attach(sim)
        assert len(obs.bindings) == 1
        assert sim._obs is obs.bindings[0]

    def test_detach_restores_null_object(self):
        obs = Observation()
        sim = Simulator()
        obs.attach(sim)
        obs.detach(sim)
        assert sim._obs is None and not obs.bindings
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert len(obs.tracer.spans) == 0  # detached => unobserved

    def test_close_finalizes_and_detaches_everything(self):
        obs = Observation()
        sims = [Simulator(), Simulator()]
        for i, sim in enumerate(sims):
            obs.attach(sim, track=f"s{i}")
        obs.close()
        assert all(sim._obs is None for sim in sims)
        assert obs.tracer._finalized

    def test_summary_reports_every_facet(self):
        obs, sim = _observed_sim()
        sim.schedule(0.0, lambda: None)
        sim.run()
        summary = obs.summary()
        assert summary["trace"]["fired"] == 1
        assert summary["profile"]["firings"] == 1
        assert summary["telemetry"]["events"] == 1

    def test_metrics_csv_combines_sections(self):
        obs, sim = _observed_sim()
        sim.schedule(0.0, lambda: None, label="x")
        sim.run()
        csv = obs.metrics_csv()
        assert "metric,value" in csv and "handler,firings" in csv


class TestEngineIntegration:
    def test_step_is_instrumented(self):
        obs, sim = _observed_sim()
        sim.schedule(0.0, lambda: None, label="stepped")
        assert sim.step() is True
        assert obs.tracer.fired_spans()[0].label == "stepped"

    def test_time_driven_loop_is_instrumented(self):
        obs = Observation()
        sim = TimeDrivenSimulator(tick=1.0)
        obs.attach(sim, track="td")
        sim.schedule(0.5, lambda: None, label="a")
        sim.schedule(1.5, lambda: None, label="b")
        sim.run(until=3.0)
        obs.close()
        assert obs.tracer.counts()["fired"] == 2
        assert obs.tracer.counts()["pending"] == 0

    def test_handler_exception_still_seals_span(self):
        obs, sim = _observed_sim()

        def boom():
            raise RuntimeError("boom")

        sim.schedule(0.0, boom, label="boom")
        with pytest.raises(RuntimeError):
            sim.run()
        span = obs.tracer.spans[0]
        assert span.status == SpanStatus.FIRED and span.dur_ns > 0
        # the binding's current-firing slot must not leak
        assert obs.bindings[0].current is None

    def test_standalone_tracer_repr_and_iter(self):
        tracer = Tracer()
        assert len(tracer) == 0 and list(tracer) == []
        assert chrome_trace(tracer)["traceEvents"]  # metadata only, still valid


class TestPicklableSnapshots:
    """Campaign workers ship telemetry across process boundaries: every
    snapshot/summary must survive a pickle round-trip and contain only
    builtin scalar types."""

    def test_telemetry_snapshot_round_trips(self):
        import pickle

        obs, sim = _observed_sim(trace=False, profile=False)
        for i in range(20):
            sim.schedule(float(i), lambda: None)
        sim.run()
        snap = obs.telemetry.snapshot(sim)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        for key, value in snap.items():
            assert type(key) is str
            assert type(value) in (int, float, str, type(None)), (key, value)
        json.dumps(snap)  # and JSON-safe, for canonical records

    def test_monitor_summary_round_trips(self):
        import pickle

        from repro.core import Monitor

        mon = Monitor()
        for v in (1.0, 3.0, 0.5):
            mon.tally("wait").record(v)
        lv = mon.level("queue")
        lv.set(1.0, 2.0)
        lv.set(4.0, 0.0)
        mon.counter("served").increment(5.0)
        summary = mon.summary(t_end=10.0)
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
        for group in summary.values():
            for key, value in group.items():
                assert type(value) in (int, float), (key, value)
        json.dumps(summary)


class TestMetricsFacet:
    def test_disabled_by_default_and_zero_handles(self):
        obs = Observation()
        assert obs.metrics is None and obs.recorder is None
        sim = Simulator()
        obs.attach(sim)
        assert sim._obs._m_fired is None
        with pytest.raises(ValueError, match="metrics"):
            obs.prometheus_text()

    def test_counters_track_scheduling_and_firing(self):
        obs, sim = _observed_sim(trace=False, profile=False, metrics=True)
        ev = sim.schedule(5.0, lambda: None, label="doomed")
        for i in range(20):
            sim.schedule(float(i), lambda: None)
        ev.cancel()
        sim.run()
        m = obs.metrics
        assert m.value("repro_events_scheduled_total", track="t0") == 21.0
        assert m.value("repro_events_fired_total", track="t0") == 20.0
        hist = m.histogram("repro_handler_duration_ns", track="t0")
        assert hist.count == 20 and hist.sum > 0
        assert m.value("repro_events_fired_total", track="t0") == \
            obs.telemetry.snapshot(sim)["events"]

    def test_shared_registry_partitions_by_track(self):
        from repro.obs import Registry

        reg = Registry()
        obs = Observation(trace=False, profile=False, metrics=reg)
        s1, s2 = Simulator(seed=1), Simulator(seed=2)
        obs.attach(s1, track="a")
        obs.attach(s2, track="b")
        s1.schedule(0.0, lambda: None)
        s1.schedule(1.0, lambda: None)
        s2.schedule(0.0, lambda: None)
        s1.run()
        s2.run()
        assert obs.metrics is reg
        assert reg.value("repro_events_fired_total", track="a") == 2.0
        assert reg.value("repro_events_fired_total", track="b") == 1.0
        assert "metrics" in repr(obs)
        assert obs.summary()["metrics"]["instruments"] == len(reg)

    def test_gvt_is_global_not_per_track(self):
        obs, sim = _observed_sim(trace=False, profile=False, metrics=True)
        binding = sim._obs
        binding.on_gvt(4.0)
        binding.on_gvt(9.0)
        m = obs.metrics
        # no track label: the gauge/counter are shared across bindings
        assert m.value("repro_gvt") == 9.0
        assert m.value("repro_gvt_rounds_total") == 2.0
        snap = obs.telemetry.snapshot(sim)
        assert snap["gvt"] == 9.0 and snap["gvt_rounds"] == 2

    def test_optimistic_executor_reports_gvt_once_per_round(self):
        from repro.core.optimistic import OptimisticExecutor

        a, b = LogicalProcess("A", seed=1), LogicalProcess("B", seed=2)
        a.connect(b, 1.0)
        b.connect(a, 1.0)

        def bounce(lp, msg):
            if msg.payload < 4:
                other = "B" if lp.name == "A" else "A"
                lp.send(other, "ball", msg.payload + 1)

        a.on_message("ball", bounce)
        b.on_message("ball", bounce)
        obs = Observation(trace=False, profile=False,
                          metrics=True).attach_lps([a, b])
        a.sim.schedule(0.0, a.send, "B", "ball", 0)
        OptimisticExecutor().run([a, b], until=20.0)
        m = obs.metrics
        rounds = m.value("repro_gvt_rounds_total")
        assert rounds is not None and rounds >= 1
        # shared telemetry agrees with the registry — one count per round
        assert obs.telemetry.gvt_rounds == int(rounds)

    def test_prometheus_export_from_observation(self):
        obs, sim = _observed_sim(trace=False, profile=False, metrics=True)
        sim.schedule(0.0, lambda: None)
        sim.run()
        text = obs.prometheus_text()
        assert "# TYPE repro_events_fired_total counter" in text
        assert 'repro_events_fired_total{track="t0"} 1' in text


class TestLambdaDisambiguation:
    def test_lambdas_keyed_by_definition_site(self):
        f = lambda: None  # noqa: E731
        g = lambda: None  # noqa: E731
        nf, ng = callback_name(f), callback_name(g)
        assert nf != ng, "distinct lambdas must not collapse into one key"
        assert "test_obs.py" in nf and "<lambda>" in nf
        # same definition site -> same key, every call
        assert callback_name(f) == nf

    def test_partial_of_lambda_gets_site_too(self):
        f = lambda _x: None  # noqa: E731
        assert callback_name(functools.partial(f, 1)) == callback_name(f)
        assert "test_obs.py" in callback_name(f)

    def test_named_functions_unchanged(self):
        assert "@" not in callback_name(callback_name)

    def test_profiler_separates_lambda_rows(self):
        obs, sim = _observed_sim(trace=False)
        sim.schedule(0.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        keys = {r.key for r in obs.profiler.rows()}
        assert len(keys) == 2, f"expected two rows, got {keys}"


class TestMetricsLiteLoop:
    """Metrics-only runs take the engine's batched lite loop."""

    def _lite_obs(self):
        return Observation(trace=False, profile=False, telemetry=False,
                           metrics=True)

    def test_counters_exact_histogram_sampled(self):
        obs = self._lite_obs()
        sim = Simulator(seed=1)
        obs.attach(sim, track="t0")
        for i in range(40):
            sim.schedule(float(i), lambda: None)
        sim.run()
        m = obs.metrics
        assert m.value("repro_events_scheduled_total", track="t0") == 40.0
        assert m.value("repro_events_fired_total", track="t0") == 40.0
        hist = m.histogram("repro_handler_duration_ns", track="t0")
        # lite loop samples every 16th firing: firings 16 and 32
        assert hist.count == 2
        assert sum(hist.counts) == 2 and hist.sum > 0

    def test_flush_happens_on_stop_simulation(self):
        from repro.core import StopSimulation

        obs = self._lite_obs()
        sim = Simulator(seed=1)
        obs.attach(sim, track="t0")

        def boom():
            raise StopSimulation("enough")

        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.schedule(5.5, boom)
        sim.schedule(9.0, lambda: None)  # never fires
        sim.run()
        assert obs.metrics.value(
            "repro_events_fired_total", track="t0") == 6.0

    def test_lite_and_generic_paths_fire_identically(self):
        def run_with(obs):
            sim = Simulator(seed=7)
            obs.attach(sim, track="t0")
            fired = []
            for i in range(30):
                sim.schedule(float(i), fired.append, i)
            sim.run()
            return fired, sim.events_executed

        lite, n1 = run_with(self._lite_obs())
        generic, n2 = run_with(Observation(trace=False, profile=False,
                                           telemetry=True, metrics=True))
        assert lite == generic and n1 == n2 == 30

    def test_telemetry_or_recorder_forces_generic_path(self):
        # with telemetry on, every firing is timed (no sampling)
        obs = Observation(trace=False, profile=False, telemetry=True,
                          metrics=True)
        sim = Simulator(seed=1)
        obs.attach(sim, track="t0")
        for i in range(20):
            sim.schedule(float(i), lambda: None)
        sim.run()
        hist = obs.metrics.histogram("repro_handler_duration_ns", track="t0")
        assert hist.count == 20

    def test_max_events_budget_still_enforced(self):
        from repro.core import SchedulingError

        obs = self._lite_obs()
        sim = Simulator(seed=1)
        obs.attach(sim, track="t0")

        def chain():
            sim.schedule(sim.now + 1.0, chain)

        sim.schedule(0.0, chain)
        with pytest.raises(SchedulingError, match="budget"):
            sim.run(max_events=10)
        assert obs.metrics.value(
            "repro_events_fired_total", track="t0") == 10.0
