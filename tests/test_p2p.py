"""Tests for the P2P substrate: Chord routing, unstructured search, churn."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Simulator
from repro.p2p import ChordRing, ChurnProcess, UnstructuredOverlay, node_id


def chord_with(sim, n=20, bits=16):
    ring = ChordRing(sim, bits=bits)
    for i in range(n):
        ring.join(f"node-{i}")
    return ring


class TestNodeId:
    def test_stable_and_bounded(self):
        a = node_id("alpha", 16)
        assert a == node_id("alpha", 16)
        assert 0 <= a < (1 << 16)

    def test_different_names_differ(self):
        assert node_id("a", 32) != node_id("b", 32)

    def test_bad_bits(self):
        with pytest.raises(ConfigurationError):
            node_id("x", 0)


class TestChordMembership:
    def test_join_and_members(self):
        sim = Simulator()
        ring = chord_with(sim, n=5)
        assert ring.size == 5
        assert len(ring.members) == 5

    def test_leave(self):
        sim = Simulator()
        ring = chord_with(sim, n=5)
        assert ring.leave("node-2")
        assert ring.size == 4
        assert not ring.leave("node-2")

    def test_successor_wraps_the_circle(self):
        sim = Simulator()
        ring = ChordRing(sim, bits=8)
        ring.join("only")
        nid = ring.successor(0)
        assert ring.owner_of((nid + 1) % 256) == "only"  # wraps to itself

    def test_empty_ring_rejects_lookup(self):
        sim = Simulator()
        ring = ChordRing(sim)
        with pytest.raises(ConfigurationError):
            ring.successor(0)


class TestChordRouting:
    def test_lookup_finds_responsible_node(self):
        sim = Simulator(seed=1)
        ring = chord_with(sim, n=25)
        key = 12345
        expected = ring.owner_of(key)
        res = ring.lookup("node-0", key)
        sim.run()
        assert res.done and res.found
        assert res.owner == expected

    def test_lookup_hops_logarithmic(self):
        """O(log N) routing: hops stay well below N."""
        sim = Simulator(seed=2)
        ring = chord_with(sim, n=64)
        stream = sim.stream("keys")
        results = [ring.lookup("node-0", stream.randint(0, ring.space - 1))
                   for _ in range(30)]
        sim.run()
        mean_hops = sum(r.hops for r in results) / len(results)
        assert all(r.found for r in results)
        assert mean_hops <= 2 * math.log2(64)  # generous 2x slack

    def test_lookup_latency_scales_with_hops(self):
        sim = Simulator(seed=3)
        ring = ChordRing(sim, hop_latency=0.5)
        for i in range(8):
            ring.join(f"n{i}")
        res = ring.lookup("n0", 999)
        sim.run()
        assert res.latency == pytest.approx(res.hops * 0.5)

    def test_unknown_origin_rejected(self):
        sim = Simulator()
        ring = chord_with(sim, n=3)
        with pytest.raises(ConfigurationError):
            ring.lookup("ghost", 1)

    def test_lookup_survives_mid_flight_departure(self):
        sim = Simulator(seed=4)
        ring = chord_with(sim, n=30)
        res = ring.lookup("node-0", 54321)
        # rip out half the ring while the lookup is in flight
        sim.schedule(0.01, lambda: [ring.leave(f"node-{i}") for i in range(1, 15)])
        sim.run()
        assert res.done and res.found

    def test_monitor_records_hops(self):
        sim = Simulator(seed=5)
        ring = chord_with(sim, n=10)
        ring.lookup("node-0", 7)
        sim.run()
        assert ring.monitor.tally("lookup_hops").count == 1


class TestUnstructured:
    def overlay(self, sim, n=30, degree=4):
        ov = UnstructuredOverlay(sim, sim.stream("p2p"), degree=degree)
        for i in range(n):
            ov.join(f"peer-{i}")
        return ov

    def test_join_builds_bounded_degree(self):
        sim = Simulator(seed=6)
        ov = self.overlay(sim, n=20, degree=3)
        # joiners attach to exactly `degree` peers (existing nodes may
        # accumulate more from later joiners)
        assert all(len(ov.neighbours(f"peer-{i}")) >= 1 for i in range(1, 20))

    def test_duplicate_join_rejected(self):
        sim = Simulator(seed=7)
        ov = self.overlay(sim, n=3)
        with pytest.raises(ConfigurationError):
            ov.join("peer-0")

    def test_leave_detaches(self):
        sim = Simulator(seed=8)
        ov = self.overlay(sim, n=10)
        victim_peers = ov.neighbours("peer-3")
        assert ov.leave("peer-3")
        for p in victim_peers:
            assert "peer-3" not in ov.neighbours(p)

    def test_flood_finds_nearby_item(self):
        sim = Simulator(seed=9)
        ov = self.overlay(sim, n=30)
        ov.place_item("song.mp3", "peer-17")
        res = ov.flood_search("peer-0", "song.mp3", ttl=6)
        sim.run()
        assert res.done
        assert res.found and res.owner == "peer-17"

    def test_flood_ttl_zero_checks_only_origin(self):
        sim = Simulator(seed=10)
        ov = self.overlay(sim, n=10)
        ov.place_item("x", "peer-0")
        res = ov.flood_search("peer-0", "x", ttl=0)
        sim.run()
        assert res.found and res.messages == 0

    def test_flood_miss_reports_not_found(self):
        sim = Simulator(seed=11)
        ov = self.overlay(sim, n=10)
        res = ov.flood_search("peer-0", "ghost", ttl=3)
        sim.run()
        assert res.done and not res.found

    def test_walk_search_finds_item(self):
        sim = Simulator(seed=12)
        ov = self.overlay(sim, n=20)
        ov.place_item("doc", "peer-5")
        res = ov.walk_search("peer-0", "doc", walkers=8, max_steps=64)
        sim.run()
        assert res.done
        # random walks may miss, but with 8x64 steps on 20 nodes they
        # almost surely hit; accept found or a completed miss
        assert res.found or res.messages > 0

    def test_walk_cheaper_than_flood_on_big_overlay(self):
        sim = Simulator(seed=13)
        ov = self.overlay(sim, n=80, degree=4)
        ov.place_item("item", "peer-40")
        flood = ov.flood_search("peer-0", "item", ttl=8)
        walk = ov.walk_search("peer-0", "item", walkers=4, max_steps=30)
        sim.run()
        assert flood.messages > walk.messages

    def test_validation(self):
        sim = Simulator(seed=14)
        ov = self.overlay(sim, n=3)
        with pytest.raises(ConfigurationError):
            ov.flood_search("ghost", "x")
        with pytest.raises(ConfigurationError):
            ov.walk_search("peer-0", "x", walkers=0)
        with pytest.raises(ConfigurationError):
            ov.place_item("x", "ghost")


class TestChurn:
    def test_population_maintained(self):
        sim = Simulator(seed=15)
        ring = ChordRing(sim)
        churn = ChurnProcess(sim, ring, sim.stream("churn"),
                             target_population=20, mean_session=50.0,
                             mean_rejoin_gap=5.0, horizon=500.0)
        sim.run()
        assert churn.monitor.counter("leaves").count > 0
        assert churn.monitor.counter("joins").count >= 20
        # population stays near target (rejoins compensate departures)
        assert churn.population >= 10

    def test_lookups_succeed_under_churn(self):
        sim = Simulator(seed=16)
        ring = ChordRing(sim)
        churn = ChurnProcess(sim, ring, sim.stream("churn"),
                             target_population=30, mean_session=80.0,
                             mean_rejoin_gap=10.0, horizon=300.0)
        keys = sim.stream("keys")
        results = []

        def fire_lookup():
            if ring.size > 1:
                results.append(ring.lookup(churn.random_member(),
                                           keys.randint(0, ring.space - 1)))

        for t in range(10, 300, 10):
            sim.schedule_at(float(t), fire_lookup)
        sim.run()
        done = [r for r in results if r.done]
        assert len(done) == len(results) > 0
        assert sum(r.found for r in done) / len(done) > 0.9

    def test_exponential_sessions(self):
        sim = Simulator(seed=17)
        ov = UnstructuredOverlay(sim, sim.stream("ov"))
        churn = ChurnProcess(sim, ov, sim.stream("churn"),
                             target_population=10, mean_session=20.0,
                             session_model="exponential", horizon=200.0)
        sim.run()
        assert churn.monitor.counter("leaves").count > 0

    def test_validation(self):
        sim = Simulator()
        ring = ChordRing(sim)
        with pytest.raises(ConfigurationError):
            ChurnProcess(sim, ring, sim.stream("c"), target_population=0)
        with pytest.raises(ConfigurationError):
            ChurnProcess(sim, ring, sim.stream("c"), session_model="weird")


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=40), seed=st.integers(0, 100))
def test_property_chord_lookup_matches_oracle(n, seed):
    """Routed lookups always land on the oracle's responsible node."""
    sim = Simulator(seed=seed)
    ring = ChordRing(sim, bits=12)
    for i in range(n):
        ring.join(f"m{i}")
    key = sim.stream("k").randint(0, ring.space - 1)
    expected = ring.owner_of(key)
    res = ring.lookup("m0", key)
    sim.run()
    assert res.found and res.owner == expected
