"""Tests for scheduler policies and execution harnesses."""

import pytest

from repro.core import ConfigurationError, Simulator
from repro.hosts import Disk, Grid, Site, SpaceSharedMachine
from repro.middleware import (
    Dag,
    DagRunner,
    DataPresentScheduler,
    FastestSiteScheduler,
    GridRunner,
    HeftScheduler,
    Job,
    JobState,
    LeastLoadedScheduler,
    LocalScheduler,
    MaxMinScheduler,
    MinMinScheduler,
    PredictiveScheduler,
    RandomScheduler,
    ReplicaCatalog,
    RoundRobinScheduler,
    SchedulingContext,
    SufferageScheduler,
    WorkQueueRunner,
)
from repro.network import FileSpec, Topology


def hetero_grid(sim, ratings=(100.0, 500.0), pes=(2, 2), bw=1e6):
    topo = Topology()
    names = [f"S{i}" for i in range(len(ratings))]
    for n in names:
        topo.add_node(n)
    for a in names:
        for b in names:
            if a < b:
                topo.add_link(a, b, bw, 0.001)
    sites = [Site(sim, n,
                  machines=[SpaceSharedMachine(sim, pes=p, rating=r, name=f"{n}-m")],
                  disk=Disk(sim, 1e9))
             for n, r, p in zip(names, ratings, pes)]
    return Grid(sim, topo, sites)


def jobs(lengths, **kw):
    return [Job(id=i, length=l, **kw) for i, l in enumerate(lengths)]


class TestOnlinePolicies:
    def test_round_robin_cycles(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim))
        rr = RoundRobinScheduler()
        picks = [rr.select_site(Job(id=i, length=1.0), ctx) for i in range(4)]
        assert picks == ["S0", "S1", "S0", "S1"]

    def test_random_uses_stream(self):
        sim = Simulator(seed=1)
        ctx = SchedulingContext(hetero_grid(sim))
        rs = RandomScheduler(sim.stream("sched"))
        picks = {rs.select_site(Job(id=i, length=1.0), ctx) for i in range(30)}
        assert picks == {"S0", "S1"}

    def test_least_loaded_avoids_busy_site(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        ctx = SchedulingContext(grid)
        for _ in range(4):
            grid.site("S0").submit(1000.0)
        assert LeastLoadedScheduler().select_site(Job(id=1, length=1.0), ctx) == "S1"

    def test_fastest_picks_highest_mips(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim))
        assert FastestSiteScheduler().select_site(Job(id=1, length=1.0), ctx) == "S1"

    def test_predictive_accounts_for_queue_and_speed(self):
        sim = Simulator()
        grid = hetero_grid(sim, ratings=(100.0, 500.0))
        ctx = SchedulingContext(grid)
        # S1 fast but swamped
        for _ in range(20):
            grid.site("S1").submit(10_000.0)
        pick = PredictiveScheduler().select_site(Job(id=1, length=100.0), ctx)
        assert pick == "S0"

    def test_data_present_prefers_input_holder(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        ctx = SchedulingContext(grid)
        f = FileSpec("big", 1000.0)
        grid.site("S0").store_file(f)
        j = Job(id=1, length=1.0, input_files=(f,))
        assert DataPresentScheduler().select_site(j, ctx) == "S0"

    def test_data_present_falls_back_to_load(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        ctx = SchedulingContext(grid)
        for _ in range(4):
            grid.site("S0").submit(1000.0)
        j = Job(id=1, length=1.0)  # no inputs: all sites tie at 0 bytes
        assert DataPresentScheduler().select_site(j, ctx) == "S1"

    def test_local_fixed_home(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim))
        assert LocalScheduler("S1").select_site(Job(id=1, length=1.0), ctx) == "S1"


class TestBatchHeuristics:
    def test_minmin_prefers_fast_site(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim, ratings=(100.0, 1000.0)))
        plan = MinMinScheduler().plan(jobs([100.0] * 4), ctx)
        # the fast site should get most of the work
        assert sum(1 for s in plan.values() if s == "S1") >= 3

    def test_maxmin_schedules_long_jobs_first_on_fast(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim, ratings=(100.0, 1000.0)))
        batch = jobs([10.0, 10.0, 10_000.0])
        plan = MaxMinScheduler().plan(batch, ctx)
        assert plan[2] == "S1"  # the monster lands on the fast site

    def test_sufferage_balances(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim, ratings=(100.0, 120.0)))
        plan = SufferageScheduler().plan(jobs([100.0] * 6), ctx)
        assert set(plan.values()) == {"S0", "S1"}  # near-homogeneous: spread

    def test_all_batch_plans_cover_all_jobs(self):
        sim = Simulator()
        ctx = SchedulingContext(hetero_grid(sim))
        batch = jobs([50.0, 100.0, 200.0, 400.0])
        for sched in (MinMinScheduler(), MaxMinScheduler(), SufferageScheduler()):
            plan = sched.plan(batch, ctx)
            assert sorted(plan) == [0, 1, 2, 3]
            assert all(s in ("S0", "S1") for s in plan.values())


class TestGridRunner:
    def test_requires_exactly_one_policy(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        with pytest.raises(ConfigurationError):
            GridRunner(sim, grid)
        with pytest.raises(ConfigurationError):
            GridRunner(sim, grid, scheduler=RoundRobinScheduler(),
                       batch=MinMinScheduler())

    def test_runs_jobs_to_completion(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        runner = GridRunner(sim, grid, scheduler=RoundRobinScheduler())
        batch = jobs([100.0, 100.0, 100.0])
        runner.submit_all(batch)
        sim.run()
        assert len(runner.completed) == 3
        assert all(j.state is JobState.DONE for j in batch)
        assert runner.makespan > 0

    def test_staging_fetches_remote_inputs(self):
        sim = Simulator()
        grid = hetero_grid(sim, bw=1000.0)
        f = FileSpec("data", 5000.0)
        grid.site("S0").store_file(f)
        cat = ReplicaCatalog(grid)
        cat.ingest_site(grid.site("S0"))
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("S1"), catalog=cat)
        j = Job(id=1, length=100.0, input_files=(f,))
        runner.submit_all([j])
        sim.run()
        assert j.state is JobState.DONE
        # staged over the 1000 B/s link: >= 5 seconds before compute
        assert j.started >= 5.0 * 0.92 - 1e-6
        assert runner.monitor.counter("remote_fetches").count == 1

    def test_local_input_no_fetch(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        f = FileSpec("data", 5000.0)
        grid.site("S0").store_file(f)
        cat = ReplicaCatalog(grid)
        cat.ingest_site(grid.site("S0"))
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("S0"), catalog=cat)
        runner.submit_all([Job(id=1, length=100.0, input_files=(f,))])
        sim.run()
        assert runner.monitor.counter("remote_fetches").count == 0
        assert runner.remote_fraction() == 0.0

    def test_output_stored_and_registered(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        cat = ReplicaCatalog(grid)
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("S0"), catalog=cat)
        runner.submit_all([Job(id=7, length=10.0, output_size=123.0)])
        sim.run()
        assert grid.site("S0").has_file("out-7")
        assert cat.locations("out-7") == ["S0"]

    def test_batch_plan_execution(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        runner = GridRunner(sim, grid, batch=MinMinScheduler())
        batch = jobs([100.0] * 6)
        runner.submit_all(batch)
        sim.run()
        assert len(runner.completed) == 6

    def test_staggered_submissions(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        runner = GridRunner(sim, grid, scheduler=LeastLoadedScheduler())
        batch = jobs([100.0, 100.0])
        batch[1].submitted = 50.0
        runner.submit_all(batch)
        sim.run()
        assert batch[1].started >= 50.0


class TestWorkQueue:
    def test_pull_mode_drains_queue(self):
        sim = Simulator()
        grid = hetero_grid(sim, ratings=(100.0, 100.0), pes=(1, 1))
        runner = WorkQueueRunner(sim, grid)
        batch = jobs([100.0] * 6)
        runner.submit_all(batch)
        sim.run()
        assert len(runner.completed) == 6
        # 6 equal jobs over 2 single-PE equal sites: 3 rounds of 1s
        assert runner.makespan == pytest.approx(3.0)

    def test_fast_site_pulls_more_jobs(self):
        sim = Simulator()
        grid = hetero_grid(sim, ratings=(100.0, 400.0), pes=(1, 1))
        runner = WorkQueueRunner(sim, grid)
        runner.submit_all(jobs([100.0] * 10))
        sim.run()
        fast = runner.monitor.counter("jobs@S1").count
        slow = runner.monitor.counter("jobs@S0").count
        assert fast > slow


class TestDagRunner:
    def chain_dag(self, lengths=(100.0, 100.0, 100.0), data=1000.0):
        d = Dag()
        for i, l in enumerate(lengths):
            d.add_job(Job(id=i, length=l))
        for i in range(len(lengths) - 1):
            d.add_edge(i, i + 1, data=data)
        return d

    def test_respects_precedence(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        dag = self.chain_dag()
        runner = DagRunner(sim, grid, dag, scheduler=FastestSiteScheduler())
        runner.start()
        sim.run()
        assert len(runner.completed) == 3
        j0, j1, j2 = (dag.job(i) for i in range(3))
        assert j0.finished <= j1.started and j1.finished <= j2.started

    def test_heft_plan_executes(self):
        sim = Simulator()
        grid = hetero_grid(sim, ratings=(100.0, 500.0))
        dag = self.chain_dag()
        ctx = SchedulingContext(grid)
        plan = HeftScheduler().plan(dag, ctx)
        assert sorted(plan) == [0, 1, 2]
        runner = DagRunner(sim, grid, dag, plan=plan)
        runner.start()
        sim.run()
        assert len(runner.completed) == 3
        assert runner.makespan > 0

    def test_heft_keeps_chain_on_one_site_when_comm_dominates(self):
        sim = Simulator()
        grid = hetero_grid(sim, ratings=(400.0, 500.0), bw=10.0)  # tiny bw
        dag = self.chain_dag(data=1e6)
        plan = HeftScheduler().plan(dag, SchedulingContext(grid))
        assert len(set(plan.values())) == 1  # all on one site: no transfers

    def test_cross_site_edge_ships_data(self):
        sim = Simulator()
        grid = hetero_grid(sim, bw=1000.0)
        dag = self.chain_dag(lengths=(100.0, 100.0), data=5000.0)
        plan = {0: "S0", 1: "S1"}  # force a transfer
        runner = DagRunner(sim, grid, dag, plan=plan)
        runner.start()
        sim.run()
        j1 = dag.job(1)
        # edge 5000B over ~920B/s effective: > 5s gap
        assert j1.started - dag.job(0).finished >= 5.0
        assert len(runner.completed) == 2

    def test_parallel_branches_overlap(self):
        sim = Simulator()
        grid = hetero_grid(sim, ratings=(100.0, 100.0))
        d = Dag()
        for i in range(4):
            d.add_job(Job(id=i, length=100.0))
        d.add_edge(0, 1)
        d.add_edge(0, 2)
        d.add_edge(1, 3)
        d.add_edge(2, 3)
        runner = DagRunner(sim, grid, d, scheduler=LeastLoadedScheduler())
        runner.start()
        sim.run()
        j1, j2 = d.job(1), d.job(2)
        # the two middle tasks ran concurrently on different sites
        assert j1.started < j2.finished and j2.started < j1.finished

    def test_start_twice_rejected(self):
        sim = Simulator()
        grid = hetero_grid(sim)
        runner = DagRunner(sim, grid, self.chain_dag(),
                           scheduler=FastestSiteScheduler())
        runner.start()
        with pytest.raises(ConfigurationError):
            runner.start()
