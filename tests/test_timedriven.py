"""Tests for the time-driven (fixed-increment) engine."""

import pytest

from repro.core import SchedulingError, Simulator, TimeDrivenSimulator


class TestQuantization:
    def test_events_fire_on_tick_boundaries(self):
        sim = TimeDrivenSimulator(tick=1.0)
        fired = []
        sim.schedule_at(2.3, lambda: fired.append(sim.now))
        sim.schedule_at(2.7, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0, 3.0]

    def test_exact_boundary_not_pushed_up(self):
        sim = TimeDrivenSimulator(tick=0.5)
        fired = []
        sim.schedule_at(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_order_preserved_within_tick(self):
        sim = TimeDrivenSimulator(tick=10.0)
        order = []
        sim.schedule_at(1.0, lambda: order.append("first"))
        sim.schedule_at(2.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]  # same tick, FIFO by seq

    def test_bad_tick_rejected(self):
        with pytest.raises(SchedulingError):
            TimeDrivenSimulator(tick=0.0)
        with pytest.raises(SchedulingError):
            TimeDrivenSimulator(tick=-1.0)


class TestStepping:
    def test_ticks_stepped_counts_empty_ticks(self):
        sim = TimeDrivenSimulator(tick=1.0)
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        # visits t=0..10 inclusive
        assert sim.ticks_stepped == 11

    def test_event_driven_skips_where_time_driven_steps(self):
        """The paper's E3 claim in miniature."""
        td = TimeDrivenSimulator(tick=1.0)
        ed = Simulator()
        for s in (td, ed):
            s.schedule_at(1000.0, lambda: None)
        td.run()
        ed.run()
        assert ed.events_executed == 1
        assert td.ticks_stepped == 1001  # stepped through empty time

    def test_model_extends_its_own_horizon(self):
        sim = TimeDrivenSimulator(tick=1.0)
        fired = []

        def chain(i):
            fired.append(sim.now)
            if i < 3:
                sim.schedule(5.0, chain, i + 1)

        sim.schedule_at(0.0, chain, 0)
        sim.run()
        assert fired == [0.0, 5.0, 10.0, 15.0]

    def test_run_until_caps_horizon(self):
        sim = TimeDrivenSimulator(tick=1.0)
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.schedule_at(30.0, lambda: fired.append(30))
        sim.run(until=5.0)
        assert fired == [3]
        assert sim.now == 5.0

    def test_empty_run_returns_immediately(self):
        sim = TimeDrivenSimulator(tick=1.0)
        sim.run()
        assert sim.ticks_stepped == 0 and sim.now == 0.0

    def test_stop_inside_tick(self):
        sim = TimeDrivenSimulator(tick=1.0)
        fired = []
        sim.schedule_at(2.0, lambda: sim.stop("halt"))
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [] and sim.stop_reason == "halt"


class TestEquivalence:
    def test_same_model_same_aggregate_results(self):
        """With tick << inter-event gap, both engines agree on statistics."""

        def mm1(sim_cls, **kw):
            sim = sim_cls(seed=9, **kw)
            arr = sim.stream("arr")
            svc = sim.stream("svc")
            waiting = []
            busy = [False]
            done = []

            def depart(started):
                done.append(sim.now - started)
                busy[0] = False
                if waiting:
                    start(waiting.pop(0))

            def start(arrived_at):
                busy[0] = True
                sim.schedule(svc.exponential(0.5), depart, arrived_at)

            def arrive(n):
                if busy[0]:
                    waiting.append(sim.now)
                else:
                    start(sim.now)
                if n < 200:
                    sim.schedule(arr.exponential(1.0), arrive, n + 1)

            sim.schedule(0.0, arrive, 0)
            sim.run()
            return len(done)

        n_ed = mm1(Simulator)
        n_td = mm1(TimeDrivenSimulator, tick=0.001)
        # both complete every job that started service
        assert abs(n_ed - n_td) <= 2
