"""Tests for analytic queueing models and the sim-vs-theory harness."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ValidationError
from repro.validation import (
    MG1,
    MM1,
    MM1K,
    JacksonNetwork,
    MMc,
    check_flow_conservation,
    check_littles_law,
    compare,
    erlang_b,
    simulate_mg1,
    simulate_mm1,
    simulate_mmc,
)


class TestMM1:
    def test_textbook_example(self):
        q = MM1(lam=2.0, mu=3.0)
        assert q.rho == pytest.approx(2 / 3)
        assert q.L == pytest.approx(2.0)
        assert q.W == pytest.approx(1.0)
        assert q.Wq == pytest.approx(2 / 3)
        assert q.Lq == pytest.approx(4 / 3)

    def test_littles_law_internal(self):
        q = MM1(lam=0.7, mu=1.0)
        assert q.L == pytest.approx(q.lam * q.W)
        assert q.Lq == pytest.approx(q.lam * q.Wq)

    def test_pn_sums_to_one(self):
        q = MM1(lam=1.0, mu=2.0)
        assert sum(q.p_n(n) for n in range(200)) == pytest.approx(1.0)

    def test_wait_tail(self):
        q = MM1(lam=1.0, mu=2.0)
        assert q.p_wait_exceeds(0.0) == 1.0
        assert q.p_wait_exceeds(1.0) == pytest.approx(math.exp(-1.0))

    def test_instability_rejected(self):
        with pytest.raises(ValidationError, match="unstable"):
            MM1(lam=2.0, mu=2.0)
        with pytest.raises(ValidationError):
            MM1(lam=0.0, mu=1.0)


class TestMMc:
    def test_reduces_to_mm1_when_c1(self):
        single = MM1(lam=0.5, mu=1.0)
        multi = MMc(lam=0.5, mu=1.0, c=1)
        assert multi.erlang_c == pytest.approx(single.rho)
        assert multi.L == pytest.approx(single.L)
        assert multi.W == pytest.approx(single.W)

    def test_textbook_mm2(self):
        # λ=3, μ=2, c=2: a=1.5, ρ=0.75; ErlangC = 0.6428..., Lq = 1.9286
        q = MMc(lam=3.0, mu=2.0, c=2)
        assert q.erlang_c == pytest.approx(0.642857, rel=1e-4)
        assert q.Lq == pytest.approx(1.928571, rel=1e-4)
        assert q.L == pytest.approx(q.lam * q.W)

    def test_more_servers_less_wait(self):
        w2 = MMc(lam=3.0, mu=2.0, c=2).Wq
        w4 = MMc(lam=3.0, mu=2.0, c=4).Wq
        assert w4 < w2

    def test_instability(self):
        with pytest.raises(ValidationError):
            MMc(lam=4.0, mu=2.0, c=2)


class TestMM1K:
    def test_pn_sums_to_one(self):
        q = MM1K(lam=1.0, mu=1.5, K=5)
        assert sum(q.p_n(n) for n in range(6)) == pytest.approx(1.0)

    def test_rho_equal_one_uniform(self):
        q = MM1K(lam=1.0, mu=1.0, K=4)
        assert q.p_n(0) == pytest.approx(0.2)
        assert q.L == pytest.approx(2.0)

    def test_blocking_grows_with_load(self):
        low = MM1K(lam=0.5, mu=1.0, K=3).blocking_probability
        high = MM1K(lam=2.0, mu=1.0, K=3).blocking_probability
        assert high > low

    def test_large_K_approaches_mm1(self):
        finite = MM1K(lam=0.5, mu=1.0, K=200)
        infinite = MM1(lam=0.5, mu=1.0)
        assert finite.L == pytest.approx(infinite.L, rel=1e-6)


class TestMG1:
    def test_exponential_service_matches_mm1(self):
        mm1 = MM1(lam=0.8, mu=2.0)
        # exponential: var = mean^2
        mg1 = MG1(lam=0.8, service_mean=0.5, service_var=0.25)
        assert mg1.Lq == pytest.approx(mm1.Lq)
        assert mg1.W == pytest.approx(mm1.W)

    def test_deterministic_service_halves_queue(self):
        exp = MG1(lam=0.8, service_mean=0.5, service_var=0.25)
        det = MG1(lam=0.8, service_mean=0.5, service_var=0.0)
        assert det.Lq == pytest.approx(exp.Lq / 2)

    def test_high_variance_hurts(self):
        lo = MG1(lam=0.5, service_mean=1.0, service_var=0.1)
        hi = MG1(lam=0.5, service_mean=1.0, service_var=10.0)
        assert hi.Wq > lo.Wq

    def test_instability(self):
        with pytest.raises(ValidationError):
            MG1(lam=2.0, service_mean=0.5, service_var=0.1)


class TestErlangB:
    def test_known_value(self):
        # classic table: a=2 Erlang, c=3 -> B ~ 0.2105
        assert erlang_b(2.0, 3) == pytest.approx(0.2105, rel=1e-3)

    def test_monotone_in_servers(self):
        assert erlang_b(5.0, 10) < erlang_b(5.0, 5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            erlang_b(0.0, 2)


class TestJackson:
    def test_tandem_network(self):
        """γ -> node0 -> node1 -> out: both see the same λ."""
        net = JacksonNetwork(gamma=[1.0, 0.0], mu=[3.0, 2.0],
                             routing=[[0.0, 1.0], [0.0, 0.0]])
        assert net.lam[0] == pytest.approx(1.0)
        assert net.lam[1] == pytest.approx(1.0)
        expected = MM1(1.0, 3.0).L + MM1(1.0, 2.0).L
        assert net.L_total == pytest.approx(expected)

    def test_feedback_amplifies_rate(self):
        """Node revisits itself with p=0.5: λ_eff = γ/(1-0.5)."""
        net = JacksonNetwork(gamma=[1.0], mu=[4.0], routing=[[0.5]])
        assert net.lam[0] == pytest.approx(2.0)

    def test_network_littles_law(self):
        net = JacksonNetwork(gamma=[0.5, 0.3], mu=[2.0, 2.0],
                             routing=[[0.1, 0.4], [0.2, 0.0]])
        assert net.W_total == pytest.approx(net.L_total / 0.8)

    def test_instability_detected(self):
        with pytest.raises(ValidationError, match="unstable"):
            JacksonNetwork(gamma=[1.5], mu=[1.0], routing=[[0.0]])

    def test_bad_routing_rejected(self):
        with pytest.raises(ValidationError):
            JacksonNetwork(gamma=[1.0], mu=[2.0], routing=[[1.1]])

    def test_multi_server_nodes(self):
        net = JacksonNetwork(gamma=[3.0], mu=[2.0], routing=[[0.0]],
                             servers=[2])
        assert isinstance(net.node(0), MMc)


class TestSimulationValidation:
    """The E4 experiment in unit-test form: sim within a few % of theory."""

    def test_mm1_converges_to_theory(self):
        model = MM1(lam=1.0, mu=2.0)
        stats = simulate_mm1(1.0, 2.0, n_jobs=15_000, seed=7)
        report = compare(model, stats)
        assert report.rel_errors["W"] < 0.08
        assert report.rel_errors["utilization"] < 0.05
        assert report.rel_errors["L"] < 0.10

    def test_mmc_converges_to_theory(self):
        model = MMc(lam=3.0, mu=2.0, c=2)
        stats = simulate_mmc(3.0, 2.0, 2, n_jobs=15_000, seed=11)
        report = compare(model, stats)
        assert report.rel_errors["W"] < 0.10
        assert report.rel_errors["Wq"] < 0.15

    def test_mg1_deterministic_service(self):
        from repro.core import StreamFactory

        model = MG1(lam=0.8, service_mean=1.0, service_var=0.0)
        stats = simulate_mg1(0.8, lambda: 1.0, n_jobs=15_000, seed=3)
        report = compare(model, stats)
        assert report.rel_errors["W"] < 0.08

    def test_report_rows_shape(self):
        model = MM1(lam=1.0, mu=2.0)
        stats = simulate_mm1(1.0, 2.0, n_jobs=3_000, seed=1)
        rows = compare(model, stats).to_rows()
        assert len(rows) == 5
        assert all(len(r) == 4 for r in rows)

    def test_simulated_littles_law(self):
        stats = simulate_mm1(1.0, 2.0, n_jobs=10_000, seed=5)
        lam_hat = 1.0  # configured arrival rate
        check = check_littles_law(stats.L, lam_hat, stats.W, tolerance=0.10)
        assert check.passed, str(check)


class TestCheckers:
    def test_littles_law_pass_and_fail(self):
        assert check_littles_law(2.0, 1.0, 2.0).passed
        assert not check_littles_law(5.0, 1.0, 2.0).passed

    def test_littles_law_zero_system(self):
        assert check_littles_law(0.0, 0.0, 0.0).passed

    def test_littles_law_validation(self):
        with pytest.raises(ValidationError):
            check_littles_law(1.0, 1.0, 1.0, tolerance=0.0)
        with pytest.raises(ValidationError):
            check_littles_law(-1.0, 1.0, 1.0)

    def test_flow_conservation(self):
        assert check_flow_conservation(arrived=10, departed=7, in_system=3)
        with pytest.raises(ValidationError, match="imbalance"):
            check_flow_conservation(arrived=10, departed=7, in_system=2)


@settings(max_examples=30, deadline=None)
@given(lam=st.floats(min_value=0.05, max_value=0.9),
       mu=st.floats(min_value=1.0, max_value=10.0))
def test_property_mm1_internal_consistency(lam, mu):
    q = MM1(lam, mu)
    assert q.L == pytest.approx(q.Lq + q.rho)
    assert q.W == pytest.approx(q.Wq + 1 / mu)
    assert q.L == pytest.approx(lam * q.W)


@settings(max_examples=20, deadline=None)
@given(a=st.floats(min_value=0.1, max_value=20.0),
       c=st.integers(min_value=1, max_value=30))
def test_property_erlang_b_is_probability(a, c):
    b = erlang_b(a, c)
    assert 0.0 <= b <= 1.0


class TestJacksonCrossValidation:
    """Simulate a two-node tandem with kernel primitives and compare the
    whole network's L against the Jackson product-form solution."""

    def test_tandem_network_matches_theory(self):
        from repro.core import Process, Resource, Simulator

        lam, mu1, mu2 = 0.6, 1.2, 1.0
        net = JacksonNetwork(gamma=[lam, 0.0], mu=[mu1, mu2],
                             routing=[[0.0, 1.0], [0.0, 0.0]])

        sim = Simulator(seed=31)
        arr = sim.stream("arr")
        s1 = sim.stream("svc1")
        s2 = sim.stream("svc2")
        st1 = Resource(sim, 1, name="node1")
        st2 = Resource(sim, 1, name="node2")
        from repro.core import Monitor

        mon = Monitor("tandem")
        in_system = mon.level("L", start_time=0.0)
        n_jobs = 12_000

        def customer():
            in_system.add(sim.now, +1)
            r1 = yield st1.request()
            yield s1.exponential(1 / mu1)
            st1.release(r1)
            r2 = yield st2.request()
            yield s2.exponential(1 / mu2)
            st2.release(r2)
            in_system.add(sim.now, -1)

        def source():
            for _ in range(n_jobs):
                Process(sim, customer)
                yield arr.exponential(1 / lam)

        Process(sim, source)
        sim.run()
        measured_L = in_system.mean(sim.now)
        assert measured_L == pytest.approx(net.L_total, rel=0.10)
        # per-node utilizations match the traffic equations too
        assert st1.utilization(sim.now) == pytest.approx(lam / mu1, rel=0.05)
        assert st2.utilization(sim.now) == pytest.approx(lam / mu2, rel=0.05)
