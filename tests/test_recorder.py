"""Tests for repro.obs.recorder — flight-recorder ring and post-mortems."""

import json

import pytest

from repro.core import Simulator
from repro.obs import (FlightRecorder, Observation, arm_postmortem,
                       disarm_postmortem, dump_postmortem)


def named_handler():
    pass


class TestRing:
    def test_ring_keeps_last_n(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.record("t0", float(i), named_handler, queue_depth=10 - i)
        assert len(rec) == 3
        snap = rec.snapshot()
        assert [e["sim_time"] for e in snap] == [7.0, 8.0, 9.0]
        assert snap[-1]["queue_depth"] == 1
        assert all(e["track"] == "t0" for e in snap)

    def test_names_resolved_at_snapshot_not_record(self):
        rec = FlightRecorder(capacity=4)
        rec.record("t", 0.0, named_handler, 0)
        # the ring holds the raw callable; resolution happens on snapshot
        assert rec.ring[-1][2] is named_handler
        assert rec.snapshot()[0]["handler"].endswith("named_handler")
        assert rec.last_handler().endswith("named_handler")

    def test_empty_recorder_is_still_truthy(self):
        rec = FlightRecorder()
        assert len(rec) == 0
        assert bool(rec) is True  # attached-but-empty facet is "on"
        assert rec.last_handler() is None
        assert rec.snapshot() == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestDump:
    def test_dump_header_and_entries(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        for i in range(3):
            rec.record("sim", float(i), named_handler, i)
        path = rec.dump(str(tmp_path / "flight.jsonl"), "timeout",
                        extra={"run_index": 7})
        with open(path) as fp:
            lines = [json.loads(line) for line in fp]
        header, events = lines[0], lines[1:]
        assert header["record"] == "flight-recorder"
        assert header["reason"] == "timeout"
        assert header["events"] == 3 and header["capacity"] == 8
        assert header["run_index"] == 7
        assert header["last_handler"].endswith("named_handler")
        assert [e["sim_time"] for e in events] == [0.0, 1.0, 2.0]

    def test_armed_postmortem_dump_and_disarm(self, tmp_path):
        rec = FlightRecorder()
        rec.record("t", 1.0, named_handler, 0)
        path = str(tmp_path / "pm.jsonl")
        arm_postmortem(rec, path, {"worker": 3})
        try:
            out = dump_postmortem("terminated")
            assert out == path
            header = json.loads(open(path).readline())
            assert header["reason"] == "terminated"
            assert header["worker"] == 3
        finally:
            disarm_postmortem()
        assert dump_postmortem("again") is None  # disarmed: no-op


class TestObservationIntegration:
    def test_binding_records_firings_with_queue_depth(self):
        obs = Observation(trace=False, profile=False, recorder=16)
        sim = Simulator(seed=1)
        obs.attach(sim, track="ring")
        for i in range(40):
            sim.schedule(float(i), named_handler)
        sim.run()
        rec = obs.recorder
        assert isinstance(rec, FlightRecorder)
        assert rec.capacity == 16 and len(rec) == 16
        snap = rec.snapshot()
        # the ring kept the *last* 16 of 40 firings
        assert snap[0]["sim_time"] == 24.0
        assert snap[-1]["sim_time"] == 39.0
        assert snap[-1]["queue_depth"] == 0  # last event: queue drained
        assert all(e["track"] == "ring" for e in snap)
        assert "recorder" in repr(obs)
        assert obs.summary()["recorder"]["events"] == 16

    def test_recorder_instance_shared_across_bindings(self):
        ring = FlightRecorder(capacity=4)
        obs = Observation(trace=False, profile=False, recorder=ring)
        s1, s2 = Simulator(seed=1), Simulator(seed=2)
        obs.attach(s1, track="a")
        obs.attach(s2, track="b")
        s1.schedule(0.0, named_handler)
        s2.schedule(0.0, named_handler)
        s1.run()
        s2.run()
        assert obs.recorder is ring
        assert {e["track"] for e in ring.snapshot()} == {"a", "b"}
