"""Executor conformance matrix — one model, five executors, identical output.

The strongest claim the distributed layer makes (and the one the paper's
critical analysis says the field keeps failing to deliver cheaply): whatever
synchronization protocol runs the partitioned model — centralized
sequential, conservative CMB, synchronous windows (serial or threaded), or
optimistic Time Warp — the *committed* event stream and the final monitor
statistics are identical, for every RNG seed.

The model is the shared partitioned ring from
:mod:`repro.workloads.partitioned` (also the E7 benchmark model), which has
genuine cross-LP traffic and is rollback-safe for the optimistic executor.
"""

import pytest

from repro.core.optimistic import OptimisticExecutor
from repro.core.parallel import (CMBExecutor, SequentialExecutor,
                                 WindowExecutor)
from repro.workloads.partitioned import build_partitioned_ring

SEEDS = [1, 7, 23]
K = 4
JOBS = 60
HORIZON = 200.0

EXECUTOR_FACTORIES = {
    "sequential": SequentialExecutor,
    "cmb": CMBExecutor,
    "window": WindowExecutor,
    "window-threaded": lambda: WindowExecutor(threads=4),
    "optimistic": OptimisticExecutor,
}


def run_one(name: str, seed: int):
    model = build_partitioned_ring(k=K, seed=seed, jobs_per_site=JOBS,
                                   horizon=HORIZON)
    stats = EXECUTOR_FACTORIES[name]().run(model.lps, until=HORIZON)
    return model.results(), model.monitor_stats(), stats


@pytest.fixture(scope="module")
def references():
    """Sequential runs, one per seed — the conformance oracle."""
    return {seed: run_one("sequential", seed) for seed in SEEDS}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name",
                         [n for n in sorted(EXECUTOR_FACTORIES)
                          if n != "sequential"])
def test_committed_stream_matches_sequential(name, seed, references):
    ref_results, ref_stats, _ = references[seed]
    results, mstats, _ = run_one(name, seed)
    # Byte-identical committed stream: repr equality, not approx-compare.
    assert repr(results) == repr(ref_results), (
        f"{name} seed={seed}: committed event stream diverged from "
        f"sequential execution")
    assert mstats == ref_stats, (
        f"{name} seed={seed}: final monitor statistics diverged")


@pytest.mark.parametrize("seed", SEEDS)
def test_seeds_give_distinct_trajectories(seed, references):
    """Sanity: the seeds actually vary the workload (no vacuous matrix)."""
    other = SEEDS[(SEEDS.index(seed) + 1) % len(SEEDS)]
    assert references[seed][0] != references[other][0]


def test_model_produces_cross_lp_traffic():
    """Sanity: the conformance model exercises real channel traffic."""
    _, _, stats = run_one("sequential", SEEDS[0])
    assert stats.real_messages > 0
    assert stats.events >= K * JOBS
