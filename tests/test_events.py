"""Unit tests for event records: ordering, cancellation, firing."""

import pytest

from repro.core import Event, EventCancelledError, Priority


def ev(time, seq=0, priority=Priority.NORMAL, fn=lambda: None):
    return Event(time, seq, fn, priority=priority)


class TestOrdering:
    def test_earlier_time_sorts_first(self):
        assert ev(1.0, seq=5) < ev(2.0, seq=1)

    def test_priority_breaks_time_ties(self):
        assert ev(1.0, seq=5, priority=Priority.URGENT) < ev(1.0, seq=1, priority=Priority.NORMAL)

    def test_seq_breaks_full_ties(self):
        assert ev(1.0, seq=1) < ev(1.0, seq=2)

    def test_sort_key_shape(self):
        e = ev(3.5, seq=7, priority=Priority.HIGH)
        assert e.sort_key == (3.5, Priority.HIGH, 7)

    def test_le_consistent_with_lt(self):
        a, b = ev(1.0, seq=1), ev(1.0, seq=1)
        # distinct objects, equal keys: le holds both ways, lt neither
        assert a <= b and b <= a
        assert not (a < b) and not (b < a)

    def test_identity_equality(self):
        a, b = ev(1.0), ev(1.0)
        assert a == a and a != b
        assert len({a, b}) == 2


class TestLifecycle:
    def test_fire_invokes_callback_with_args(self):
        got = []
        e = Event(0.0, 0, lambda *a, **k: got.append((a, k)), ("x",), {"k": 1})
        e.fire()
        assert got == [(("x",), {"k": 1})]

    def test_fire_returns_callback_result(self):
        assert Event(0.0, 0, lambda: 42).fire() == 42

    def test_cancel_is_idempotent(self):
        e = ev(1.0)
        e.cancel()
        e.cancel()
        assert e.cancelled

    def test_fire_after_cancel_raises(self):
        e = ev(1.0)
        e.cancel()
        with pytest.raises(EventCancelledError):
            e.fire()

    def test_priority_bands_ordered(self):
        assert Priority.URGENT < Priority.HIGH < Priority.NORMAL < Priority.LOW < Priority.FINALIZE
