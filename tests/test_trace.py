"""Tests for trace recording, the monitoring file format, and replay."""

import io

import pytest

from repro.core import (
    Simulator,
    TraceDrivenSimulator,
    TraceFormatError,
    TraceRecord,
    TraceRecorder,
    read_trace,
    write_trace,
)
from repro.core.trace import parse_trace_line


class TestFormat:
    def test_roundtrip(self):
        recs = [
            TraceRecord(0.0, "siteA", "job_arrival", 1.0, {"job": "j1"}),
            TraceRecord(2.5, "siteB", "transfer", 100.0, {"file": "f1", "dst": "siteA"}),
        ]
        buf = io.StringIO()
        assert write_trace(recs, buf) == 2
        buf.seek(0)
        back = read_trace(buf)
        assert back == recs

    def test_escaping_of_tabs_and_newlines(self):
        rec = TraceRecord(1.0, "s\tite", "k\nind", 0.0, {"a": "v\tal"})
        buf = io.StringIO()
        write_trace([rec], buf)
        buf.seek(0)
        assert read_trace(buf) == [rec]

    def test_headerless_file_accepted(self):
        body = "0.0\tsrc\tkind\t1.0\n2.0\tsrc\tkind\t2.0\n"
        recs = read_trace(io.StringIO(body))
        assert len(recs) == 2 and recs[1].time == 2.0

    def test_comments_and_blanks_skipped(self):
        body = "# repro-trace v1\n\n# comment\n1.0\ts\tk\t0.0\n"
        assert len(read_trace(io.StringIO(body))) == 1

    def test_unsorted_rejected_by_default(self):
        body = "# repro-trace v1\n5.0\ts\tk\t0.0\n1.0\ts\tk\t0.0\n"
        with pytest.raises(TraceFormatError, match="backwards"):
            read_trace(io.StringIO(body))
        recs = read_trace(io.StringIO(body), require_sorted=False)
        assert len(recs) == 2

    def test_short_line_rejected(self):
        with pytest.raises(TraceFormatError, match="fields"):
            parse_trace_line("1.0\tonly_two")

    def test_bad_number_rejected(self):
        with pytest.raises(TraceFormatError, match="numeric"):
            parse_trace_line("abc\ts\tk\t1.0")

    def test_bad_attr_rejected(self):
        with pytest.raises(TraceFormatError, match="attr"):
            parse_trace_line("1.0\ts\tk\t1.0\tnoequals")


class TestRecorder:
    def test_records_fired_events_with_labels(self):
        sim = Simulator()
        rec = TraceRecorder("run1").attach(sim)
        sim.schedule(1.0, lambda: None, label="alpha")
        sim.schedule(2.0, lambda: None, label="beta")
        sim.run()
        assert [r.kind for r in rec] == ["alpha", "beta"]
        assert [r.time for r in rec] == [1.0, 2.0]

    def test_filter_limits_capture(self):
        sim = Simulator()
        rec = TraceRecorder("run1", event_filter=lambda e: e.label == "keep").attach(sim)
        sim.schedule(1.0, lambda: None, label="keep")
        sim.schedule(2.0, lambda: None, label="drop")
        sim.run()
        assert len(rec) == 1

    def test_dumps_parses_back(self):
        sim = Simulator()
        rec = TraceRecorder("x").attach(sim)
        sim.schedule(1.5, lambda: None, label="evt")
        sim.run()
        back = read_trace(io.StringIO(rec.dumps()))
        assert back[0].kind == "evt" and back[0].time == 1.5


class TestTraceDriven:
    def records(self):
        return [
            TraceRecord(1.0, "m", "arrive", 10.0),
            TraceRecord(2.0, "m", "depart", 10.0),
            TraceRecord(5.0, "m", "arrive", 20.0),
        ]

    def test_replay_dispatches_by_kind(self):
        sim = TraceDrivenSimulator(self.records())
        seen = []
        sim.on("arrive", lambda s, r: seen.append(("a", s.now, r.value)))
        sim.on("depart", lambda s, r: seen.append(("d", s.now, r.value)))
        sim.run()
        assert seen == [("a", 1.0, 10.0), ("d", 2.0, 10.0), ("a", 5.0, 20.0)]
        assert sim.replayed == 3 and sim.unhandled == 0

    def test_unhandled_counted(self):
        sim = TraceDrivenSimulator(self.records())
        sim.on("arrive", lambda s, r: None)
        sim.run()
        assert sim.unhandled == 1  # 'depart'

    def test_strict_mode_raises(self):
        sim = TraceDrivenSimulator(self.records(), strict=True)
        sim.on("arrive", lambda s, r: None)
        with pytest.raises(TraceFormatError, match="depart"):
            sim.run()

    def test_default_handler_catches_rest(self):
        sim = TraceDrivenSimulator(self.records())
        rest = []
        sim.on("arrive", lambda s, r: None)
        sim.on_default(lambda s, r: rest.append(r.kind))
        sim.run()
        assert rest == ["depart"]

    def test_unsorted_input_is_sorted(self):
        recs = [TraceRecord(5.0, "m", "k", 0.0), TraceRecord(1.0, "m", "k", 0.0)]
        sim = TraceDrivenSimulator(recs)
        times = []
        sim.on("k", lambda s, r: times.append(s.now))
        sim.run()
        assert times == [1.0, 5.0]

    def test_record_then_replay_reproduces_timing(self):
        """E12 in miniature: record a stochastic run, replay it exactly."""
        src = Simulator(seed=5)
        rec = TraceRecorder("src").attach(src)
        stream = src.stream("arr")

        def arrival(i):
            if i < 20:
                src.schedule(stream.exponential(2.0), arrival, i + 1,
                             label="arrival")

        src.schedule(0.0, arrival, 0, label="arrival")
        src.run()
        original_times = [r.time for r in rec]

        replay = TraceDrivenSimulator(rec.records)
        replay_times = []
        replay.on("arrival", lambda s, r: replay_times.append(s.now))
        replay.run()
        assert replay_times == original_times
