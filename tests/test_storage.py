"""Tests for disks, mass storage, the HSM, sites, and load injectors."""

import pytest

from repro.core import CapacityError, ConfigurationError, Simulator
from repro.hosts import (
    Disk,
    Grid,
    MassStorage,
    RandomBurstLoad,
    Site,
    SpaceSharedMachine,
    SquareWaveLoad,
    StorageManager,
    central_grid,
    tier_grid,
)
from repro.network import FileSpec


def f(name, size=100.0):
    return FileSpec(name, size)


class TestDiskInventory:
    def test_store_and_lookup(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        d.store(f("a", 300.0))
        assert d.has("a") and d.used == 300.0 and d.free == 700.0

    def test_store_idempotent(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        d.store(f("a", 300.0))
        d.store(f("a", 300.0))
        assert d.used == 300.0

    def test_overflow_rejected(self):
        sim = Simulator()
        d = Disk(sim, 100.0)
        with pytest.raises(CapacityError):
            d.store(f("big", 200.0))

    def test_delete(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        d.store(f("a"))
        assert d.delete("a") and not d.has("a") and d.used == 0.0
        assert not d.delete("a")

    def test_evict_lru_order(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        d.store(f("old"))
        sim.schedule(1.0, d.store, f("mid"))
        sim.schedule(2.0, d.store, f("new"))
        sim.schedule(3.0, d.touch, "old")  # old becomes most-recent
        sim.run()
        assert d.evict_lru().name == "mid"

    def test_evict_lfu_order(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        d.store(f("hot"))
        d.store(f("cold"))
        for _ in range(5):
            d.touch("hot")
        assert d.evict_lfu().name == "cold"

    def test_make_room_evicts_until_fit(self):
        sim = Simulator()
        d = Disk(sim, 300.0)
        d.store(f("a", 100.0))
        d.store(f("b", 100.0))
        d.store(f("c", 100.0))
        victims = d.make_room(250.0)
        assert len(victims) >= 2
        assert d.free >= 250.0

    def test_make_room_impossible(self):
        sim = Simulator()
        d = Disk(sim, 100.0)
        with pytest.raises(CapacityError):
            d.make_room(200.0)


class TestDiskIo:
    def test_read_timing(self):
        sim = Simulator()
        d = Disk(sim, 1000.0, read_rate=10.0)
        d.store(f("a", 100.0))
        t = d.read("a")
        sim.run()
        assert t.finished == pytest.approx(10.0)

    def test_read_missing_raises(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        with pytest.raises(ConfigurationError):
            d.read("ghost")

    def test_write_with_eviction(self):
        sim = Simulator()
        d = Disk(sim, 100.0, write_rate=100.0)
        d.store(f("old", 80.0))
        t = d.write(f("new", 50.0), evict_policy="lru")
        sim.run()
        assert t.done and d.has("new") and not d.has("old")

    def test_io_serializes_on_channel(self):
        sim = Simulator()
        d = Disk(sim, 1000.0, read_rate=10.0)
        d.store(f("a", 100.0))
        d.store(f("b", 100.0))
        t1 = d.read("a")
        t2 = d.read("b")
        sim.run()
        assert t1.finished == pytest.approx(10.0)
        assert t2.finished == pytest.approx(20.0)  # queued behind t1

    def test_reads_update_access_stats(self):
        sim = Simulator()
        d = Disk(sim, 1000.0)
        d.store(f("a"))
        d.read("a")
        sim.run()
        assert d.access_count("a") == 1


class TestHsm:
    def test_tape_mount_latency(self):
        sim = Simulator()
        tape = MassStorage(sim, read_rate=10.0, mount_latency=5.0)
        tape.store(f("x", 100.0))
        t = tape.read("x")
        sim.run()
        assert t.finished == pytest.approx(15.0)

    def test_disk_hit_fast_path(self):
        sim = Simulator()
        hsm = StorageManager(sim, Disk(sim, 1000.0, read_rate=100.0),
                             MassStorage(sim))
        hsm.write(f("a", 100.0))
        sim.run()
        hsm.read("a")
        sim.run()
        assert hsm.disk_hits == 1 and hsm.tape_hits == 0

    def test_tape_miss_stages_to_disk(self):
        sim = Simulator()
        disk = Disk(sim, 150.0, read_rate=100.0)
        tape = MassStorage(sim, read_rate=10.0, mount_latency=1.0)
        hsm = StorageManager(sim, disk, tape)
        tape.store(f("cold", 100.0))
        t = hsm.read("cold")
        sim.run()
        assert t.done and hsm.tape_hits == 1
        assert disk.has("cold")  # staged in

    def test_eviction_never_loses_only_copy(self):
        sim = Simulator()
        disk = Disk(sim, 100.0)
        tape = MassStorage(sim)
        hsm = StorageManager(sim, disk, tape)
        hsm.write(f("a", 80.0))
        sim.run()
        hsm.write(f("b", 80.0))  # evicts a from disk
        sim.run()
        assert not disk.has("a") and tape.has("a")
        assert hsm.has("a")

    def test_missing_everywhere_raises(self):
        sim = Simulator()
        hsm = StorageManager(sim, Disk(sim, 100.0), MassStorage(sim))
        with pytest.raises(ConfigurationError):
            hsm.read("nowhere")


class TestSitesAndGrids:
    def test_site_submit_least_loaded(self):
        sim = Simulator()
        m1 = SpaceSharedMachine(sim, pes=1, rating=100.0, name="m1")
        m2 = SpaceSharedMachine(sim, pes=1, rating=100.0, name="m2")
        site = Site(sim, "s", machines=[m1, m2])
        site.submit(100.0)
        site.submit(100.0)
        assert m1.running == 1 and m2.running == 1

    def test_site_without_machines_rejects_submit(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Site(sim, "empty").submit(10.0)

    def test_site_file_helpers(self):
        sim = Simulator()
        site = Site(sim, "s", disk=Disk(sim, 100.0))
        site.store_file(f("a", 60.0))
        site.store_file(f("b", 60.0), evict="lru")
        assert site.has_file("b") and not site.has_file("a")

    def test_grid_validates_sites(self):
        sim = Simulator()
        grid = central_grid(sim, n_clients=2)
        assert set(grid.site_names) == {"server", "client-0", "client-1"}
        with pytest.raises(ConfigurationError):
            grid.site("nope")

    def test_central_grid_routes_jobs_to_server(self):
        sim = Simulator()
        grid = central_grid(sim, n_clients=2, server_pes=2, rating=100.0)
        run = grid.site("server").submit(1000.0)
        sim.run()
        assert run.finished == pytest.approx(10.0)

    def test_tier_grid_shape(self):
        sim = Simulator()
        grid = tier_grid(sim, fanouts=(2, 2), bandwidths=(1e9, 1e8),
                         pes_by_tier=(8, 4, 2), disk_by_tier=(1e12, 1e11, 1e10))
        assert grid.site("T0").tier == 0
        assert grid.site("T1.0").tier == 1
        assert grid.site("T2.1.1").tier == 2
        assert len(grid.sites) == 7

    def test_sites_with_file_scan(self):
        sim = Simulator()
        grid = tier_grid(sim)
        grid.site("T0").store_file(f("data"))
        assert [s.name for s in grid.sites_with_file("data")] == ["T0"]


class TestLoadInjectors:
    def test_square_wave_alternates(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        wave = SquareWaveLoad(sim, m, high=0.5, low=0.0, period=10.0)
        sim.run(until=24.0)
        assert wave.transitions >= 4
        assert wave.mean_load == pytest.approx(0.25)

    def test_square_wave_validation(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            SquareWaveLoad(sim, m, high=1.0)
        with pytest.raises(ConfigurationError):
            SquareWaveLoad(sim, m, period=0.0)

    def test_random_bursts_within_bounds(self):
        sim = Simulator(seed=4)
        m = SpaceSharedMachine(sim)
        burst = RandomBurstLoad(sim, m, sim.stream("bg"), mean_gap=5.0,
                                mean_burst=5.0, peak=0.7, horizon=200.0)
        sim.run(until=200.0)
        assert burst.bursts > 0
        assert 0.0 <= burst.mean_load(200.0) <= 0.7

    def test_burst_affects_job_timing(self):
        sim = Simulator(seed=4)
        m = SpaceSharedMachine(sim, rating=100.0)
        RandomBurstLoad(sim, m, sim.stream("bg"), mean_gap=2.0,
                        mean_burst=10.0, peak=0.8, horizon=100.0)
        run = m.submit(1000.0)
        sim.run()
        assert run.finished > 10.0  # slower than the unloaded 10s


class TestNetworkCrossTraffic:
    def test_cross_traffic_slows_foreground_flow(self):
        from repro.hosts import NetworkCrossTraffic
        from repro.network import FlowNetwork, Topology

        def transfer_time(with_noise):
            sim = Simulator(seed=6)
            topo = Topology()
            topo.add_node("hub")
            for n in ("a", "b", "c", "d"):
                topo.add_link(n, "hub", 1e6, 0.001)
            net = FlowNetwork(sim, topo, efficiency=1.0)
            if with_noise:
                NetworkCrossTraffic(sim, net, sim.stream("xt"),
                                    endpoints=["a", "b", "c", "d"],
                                    mean_gap=0.5, mean_bytes=5e5,
                                    horizon=200.0)
            h = net.transfer("a", "b", 5e6)
            sim.run()
            return h.duration

        assert transfer_time(True) > transfer_time(False)

    def test_injection_stops_at_horizon(self):
        from repro.hosts import NetworkCrossTraffic
        from repro.network import FlowNetwork, Topology

        sim = Simulator(seed=7)
        topo = Topology()
        topo.add_link("a", "b", 1e6, 0.001)
        net = FlowNetwork(sim, topo)
        xt = NetworkCrossTraffic(sim, net, sim.stream("xt"),
                                 endpoints=["a", "b"], mean_gap=1.0,
                                 mean_bytes=1e4, horizon=50.0)
        sim.run()  # must terminate
        assert xt.flows_started > 10
        assert sim.now < 200.0

    def test_validation(self):
        from repro.core import ConfigurationError as CE
        from repro.hosts import NetworkCrossTraffic
        from repro.network import FlowNetwork, Topology

        sim = Simulator()
        net = FlowNetwork(sim, Topology())
        with pytest.raises(CE):
            NetworkCrossTraffic(sim, net, sim.stream("x"), endpoints=["a"])
        with pytest.raises(CE):
            NetworkCrossTraffic(sim, net, sim.stream("x"),
                                endpoints=["a", "b"], mean_gap=0.0)
