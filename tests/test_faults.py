"""Tests for correlated fault injection: graph cascades, link aborts,
transfer retries, the dependability scenario, and the differential
fault-churn cross-check."""

import math

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.scenarios import run_scenario, theory_for
from repro.core import ConfigurationError, Simulator
from repro.faults import CorrelatedFaultInjector, FaultGraph
from repro.hosts import Grid, Site, SpaceSharedMachine
from repro.network import (
    FileSpec,
    FileTransferService,
    FlowNetwork,
    Topology,
    star,
)
from repro.workloads import FaultChurnModel


def _linked_sim(bw=1e5):
    sim = Simulator()
    topo = Topology()
    topo.add_link("a", "b", bw, latency=0.001)
    net = FlowNetwork(sim, topo, efficiency=1.0)
    return sim, topo, net


class TestFaultGraph:
    def _graph(self):
        sim, topo, net = _linked_sim()
        m = SpaceSharedMachine(sim, rating=100.0, name="m0")
        g = FaultGraph(sim, topo, net)
        g.add_host("host:m0", m)
        g.add_link("link:a->b", "a", "b")
        g.add_site("site:s", ["host:m0", "link:a->b"])
        return sim, topo, m, g

    def test_site_cascade_takes_down_children(self):
        sim, topo, m, g = self._graph()
        g.fail("site:s")
        assert m.failed
        assert not topo.link_up("a", "b")
        assert g.is_down("host:m0") and g.is_down("link:a->b")
        g.repair("site:s")
        assert not m.failed
        assert topo.link_up("a", "b")

    def test_independent_child_fault_survives_site_repair(self):
        sim, topo, m, g = self._graph()
        g.fail("host:m0")
        g.fail("site:s")
        g.repair("site:s")
        assert m.failed, "host's own fault must outlive the site repair"
        g.repair("host:m0")
        assert not m.failed

    def test_nested_outage_never_double_evicts(self):
        sim, topo, m, g = self._graph()
        m.submit(1000.0)
        g.fail("host:m0")
        g.fail("site:s")  # host already down: no second eviction
        assert m.evictions == 1
        g.repair("site:s")
        assert m.failed  # still held by its own fault
        g.repair("host:m0")
        assert m.failures == 1

    def test_downtime_and_availability_clocks(self):
        sim, topo, m, g = self._graph()
        sim.schedule(2.0, g.fail, "site:s")
        sim.schedule(5.0, g.repair, "site:s")
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert g.downtime("site:s") == pytest.approx(3.0)
        assert g.downtime("host:m0") == pytest.approx(3.0)
        assert g.availability("host:m0") == pytest.approx(0.7)
        assert g.mttr_observed == pytest.approx(3.0)

    def test_from_grid_builds_sites_hosts_links(self):
        sim = Simulator()
        topo = star("hub", ["s0", "s1"], 1e6)
        sites = [Site(sim, "hub")]
        for n in ("s0", "s1"):
            sites.append(Site(sim, n, machines=[
                SpaceSharedMachine(sim, rating=100.0, name=f"{n}-cpu")]))
        grid = Grid(sim, topo, sites)
        g = FaultGraph.from_grid(grid)
        assert {c.name for c in g.components("site")} == {"site:s0", "site:s1"}
        assert len(g.components("host")) == 2
        # each leaf claims its access link exactly once; the hub owns none
        assert len(g.components("link")) == 2
        g.fail("site:s0")
        assert not topo.link_up("s0", "hub")
        assert topo.link_up("s1", "hub")

    def test_validation(self):
        sim, topo, net = _linked_sim()
        g = FaultGraph(sim, topo, net)
        m = SpaceSharedMachine(sim, rating=100.0)
        g.add_host("h", m)
        with pytest.raises(ConfigurationError):
            g.add_host("h", m)  # duplicate
        with pytest.raises(ConfigurationError):
            g.add_site("s", ["nope"])  # unknown child
        g.add_site("s", ["h"])
        with pytest.raises(ConfigurationError):
            g.add_site("s2", ["h"])  # already parented
        with pytest.raises(ConfigurationError):
            g.add_site("s3", ["s"])  # nested site
        with pytest.raises(ConfigurationError):
            FaultGraph(sim).add_link("l", "a", "b")  # no topology
        with pytest.raises(ConfigurationError):
            g.fail("ghost")


class TestLinkFailures:
    def test_link_outage_aborts_inflight_flow(self):
        sim, topo, net = _linked_sim(bw=1e3)
        g = FaultGraph(sim, topo, net)
        g.add_link("l", "a", "b")
        h = net.transfer("a", "b", 1e4)  # 10s at 1e3 B/s
        sim.schedule(2.0, g.fail, "l")
        sim.run()
        assert h.failed and h.finished == pytest.approx(2.0)
        assert h.remaining == pytest.approx(8e3, rel=0.01)
        assert net.aborted == 1

    def test_flow_completes_exactly_once_on_abort(self):
        sim, topo, net = _linked_sim(bw=1e3)
        g = FaultGraph(sim, topo, net)
        g.add_link("l", "a", "b")
        h = net.transfer("a", "b", 1e4)
        fired = []
        h._subscribe(lambda r: fired.append(r))
        sim.schedule(2.0, g.fail, "l")
        sim.schedule(4.0, g.repair, "l")
        sim.run()
        assert fired == [h]

    def test_no_route_transfer_fails_fast(self):
        sim, topo, net = _linked_sim()
        g = FaultGraph(sim, topo, net)
        g.add_link("l", "a", "b")
        svc = FileTransferService(sim, net)  # max_attempts=1
        g.fail("l")
        ticket = svc.fetch(FileSpec("f", 1e4), "a", "b")
        sim.run()
        assert ticket.failed and svc.failed == 1
        assert ticket.finished == pytest.approx(0.0)

    def test_transfer_retries_until_link_repaired(self):
        sim, topo, net = _linked_sim(bw=1e4)
        g = FaultGraph(sim, topo, net)
        g.add_link("l", "a", "b")
        svc = FileTransferService(sim, net, max_attempts=20,
                                  retry_backoff=0.5)
        ticket = svc.fetch(FileSpec("f", 1e4), "a", "b")
        sim.schedule(0.3, g.fail, "l")
        sim.schedule(3.0, g.repair, "l")
        sim.run()
        assert not ticket.failed and ticket.finished is not None
        assert ticket.attempts > 1 and svc.retries >= 1
        assert svc.completed == 1

    def test_retry_schedule_is_deterministic(self):
        def attempts():
            sim, topo, net = _linked_sim(bw=1e4)
            g = FaultGraph(sim, topo, net)
            g.add_link("l", "a", "b")
            svc = FileTransferService(sim, net, max_attempts=30,
                                      retry_backoff=0.25)
            ticket = svc.fetch(FileSpec("f", 1e4), "a", "b")
            sim.schedule(0.1, g.fail, "l")
            sim.schedule(5.0, g.repair, "l")
            sim.run()
            return ticket.attempts, ticket.finished

        assert attempts() == attempts()

    def test_outage_during_latency_window_aborts_at_admit(self):
        # The flow is scheduled but not yet admitted when the link dies:
        # _admit must notice the edge is down instead of streaming through.
        sim = Simulator()
        topo = Topology()
        topo.add_link("a", "b", 1e4, latency=1.0)
        net = FlowNetwork(sim, topo, efficiency=1.0)
        g = FaultGraph(sim, topo, net)
        g.add_link("l", "a", "b")
        h = net.transfer("a", "b", 1e4)
        sim.schedule(0.5, g.fail, "l")  # inside the propagation latency
        sim.run()
        assert h.failed and net.aborted == 1


class TestCorrelatedInjector:
    def _grid_graph(self, seed=0):
        sim = Simulator(seed=seed)
        topo = star("hub", ["s0", "s1"], 1e6)
        sites = [Site(sim, "hub")]
        for n in ("s0", "s1"):
            sites.append(Site(sim, n, machines=[
                SpaceSharedMachine(sim, rating=100.0, name=f"{n}-cpu")]))
        grid = Grid(sim, topo, sites)
        return sim, grid, FaultGraph.from_grid(grid)

    def test_same_seed_same_outage_schedule(self):
        def crashes(seed):
            sim, grid, g = self._grid_graph(seed)
            inj = CorrelatedFaultInjector(
                sim, g, sim.streams.spawn("faults"),
                mtbf=20.0, mttr=5.0, horizon=400.0)
            sim.schedule_at(500.0, lambda: None)
            sim.run()
            return (inj.crashes, round(inj.availability, 12),
                    tuple(c.outages for c in g.components("site")))

        assert crashes(7) == crashes(7)
        assert crashes(7) != crashes(8)

    def test_availability_near_theory(self):
        sim, grid, g = self._grid_graph(seed=3)
        inj = CorrelatedFaultInjector(
            sim, g, sim.streams.spawn("faults"),
            mtbf=50.0, mttr=10.0, horizon=3000.0)
        sim.schedule_at(3000.0, lambda: None)
        sim.run()
        assert inj.theoretical_availability() == pytest.approx(5 / 6)
        assert abs(inj.availability - 5 / 6) < 0.1
        assert inj.crashes > 20

    def test_site_target_correlates_host_and_link(self):
        sim, grid, g = self._grid_graph(seed=1)
        CorrelatedFaultInjector(sim, g, sim.streams.spawn("faults"),
                                targets=["site:s0"], mtbf=20.0, mttr=10.0,
                                horizon=300.0)
        m = grid.site("s0").machines[0]
        seen = []

        def probe():
            host_down = g.is_down("host:s0-cpu")
            link_down = not grid.topology.link_up("s0", "hub")
            seen.append((g.is_down("site:s0"), host_down, link_down))

        for t in range(1, 300, 2):
            sim.schedule_at(float(t), probe)
        sim.run()
        downs = [s for s in seen if s[0]]
        assert downs, "expected at least one sampled outage"
        # whenever the site is down, its machine AND access link are down
        assert all(h and l for _s, h, l in downs)
        ups = [s for s in seen if not s[0]]
        assert all(not h and not l for _s, h, l in ups)

    def test_external_fault_not_double_cycled(self):
        sim, grid, g = self._grid_graph(seed=2)
        inj = CorrelatedFaultInjector(sim, g, sim.streams.spawn("faults"),
                                      targets=["site:s0"],
                                      mtbf=5.0, mttr=2.0, horizon=100.0)
        # an external owner opens/closes faults on the same target
        for t in range(0, 100, 7):
            sim.schedule_at(float(t) + 0.5, g.fail, "site:s0")
            sim.schedule_at(float(t) + 1.5, g.repair, "site:s0")
        sim.schedule_at(150.0, lambda: None)
        sim.run()
        assert not g.is_down("site:s0")
        assert not grid.site("s0").machines[0].failed
        assert 0.0 < inj.availability <= 1.0

    def test_mapping_rates_and_validation(self):
        sim, grid, g = self._grid_graph()
        inj = CorrelatedFaultInjector(
            sim, g, sim.streams.spawn("f"),
            mtbf={"site": 100.0}, mttr={"site": 10.0})
        assert inj.theoretical_availability() == pytest.approx(100 / 110)
        with pytest.raises(ConfigurationError):
            CorrelatedFaultInjector(sim, g, sim.streams.spawn("g"),
                                    targets=["ghost"])
        with pytest.raises(ConfigurationError):
            CorrelatedFaultInjector(sim, g, sim.streams.spawn("h"),
                                    mtbf=0.0)
        with pytest.raises(ConfigurationError):
            CorrelatedFaultInjector(sim, g, sim.streams.spawn("i"),
                                    mtbf={"host": 5.0})  # no 'site' entry


class TestDependabilityScenario:
    PARAMS = {"sites": 2, "horizon": 500.0}

    def test_deterministic_and_fault_heavy(self):
        m1, _ = run_scenario("dependability", self.PARAMS, 11)
        m2, _ = run_scenario("dependability", self.PARAMS, 11)
        m3, _ = run_scenario("dependability", self.PARAMS, 12)
        assert m1 == m2
        assert m1 != m3
        assert 0.0 < m1["availability"] < 1.0
        assert m1["crashes"] > 0 and m1["jobs_evicted"] > 0
        assert m1["flow_aborts"] > 0 and m1["transfer_retries"] > 0
        assert m1["jobs_completed"] > 0 and m1["transfers_completed"] > 0

    def test_theory_mapping(self):
        th = theory_for("dependability", {"mtbf": 40.0, "mttr": 10.0})
        assert th == {"availability": pytest.approx(0.8)}

    def test_campaign_parallel_matches_serial_and_covers_theory(self):
        spec = CampaignSpec("dependability",
                            base={"sites": 2, "horizon": 800.0},
                            replications=10, root_seed=0)
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=2)
        assert serial.metrics_bytes() == pooled.metrics_bytes()
        summ = serial.summaries(["availability"])["availability"]
        assert summ.contains(5 / 6)


class TestFaultChurn:
    def test_injected_matches_static_twin_within_bound(self):
        churn = FaultChurnModel(inject=True).run()
        assert churn.differential_gap() <= churn.differential_bound()
        assert churn.stats()["evictions"] > 0

    def test_static_twin_matches_arithmetic_exactly(self):
        static = FaultChurnModel(inject=False).run()
        assert static.makespans() == [static.analytic_makespan()] * 4

    def test_flapping_link_transfers_all_complete(self):
        churn = FaultChurnModel(inject=True, transfers=6).run()
        s = churn.stats()
        assert s["transfers_done"] == 6
        assert s["transfer_retries"] > 0
        assert s["flow_aborts"] == s["transfer_retries"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultChurnModel(period=10.0, downtime=10.0)
        with pytest.raises(ConfigurationError):
            FaultChurnModel(period=10.0, downtime=6.0)  # duty < 1/2
        with pytest.raises(ConfigurationError):
            FaultChurnModel(machines=0)
