"""Tests for the process-oriented ("active objects") layer."""

import pytest

from repro.core import (
    AllOf,
    AnyOf,
    InterruptError,
    Process,
    ProcessError,
    Signal,
    Simulator,
    spawn,
)


class TestHold:
    def test_hold_advances_local_time(self):
        sim = Simulator()
        log = []

        def body():
            log.append(sim.now)
            yield 5.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        Process(sim, body)
        sim.run()
        assert log == [0.0, 5.0, 7.5]

    def test_zero_hold_allowed(self):
        sim = Simulator()
        done = []

        def body():
            yield 0.0
            done.append(sim.now)

        Process(sim, body)
        sim.run()
        assert done == [0.0]

    def test_negative_hold_rejected(self):
        sim = Simulator()

        def body():
            yield -1.0

        Process(sim, body, name="bad")
        with pytest.raises(ProcessError, match="negative"):
            sim.run()

    def test_bad_yield_type_rejected(self):
        sim = Simulator()

        def body():
            yield "nonsense"

        Process(sim, body)
        with pytest.raises(ProcessError, match="unsupported"):
            sim.run()

    def test_non_generator_body_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError, match="generator"):
            Process(sim, lambda: 42)


class TestSignals:
    def test_signal_wakes_waiters_with_payload(self):
        sim = Simulator()
        sig = Signal("go")
        got = []

        def waiter():
            payload = yield sig
            got.append((sim.now, payload))

        Process(sim, waiter)
        Process(sim, waiter)
        sim.schedule(3.0, sig.fire, "payload")
        sim.run()
        assert got == [(3.0, "payload"), (3.0, "payload")]

    def test_fire_returns_waiter_count(self):
        sim = Simulator()
        sig = Signal()

        def waiter():
            yield sig

        Process(sim, waiter)
        counts = []
        sim.schedule(1.0, lambda: counts.append(sig.fire()))
        sim.run()
        assert counts == [1]

    def test_late_waiter_blocks_until_next_fire(self):
        sim = Simulator()
        sig = Signal()
        got = []

        def late():
            yield 5.0  # signal fires at t=1 while we sleep
            yield sig  # must wait for the t=9 firing, not see the old one
            got.append(sim.now)

        Process(sim, late)
        sim.schedule(1.0, sig.fire)
        sim.schedule(9.0, sig.fire)
        sim.run()
        assert got == [9.0]


class TestJoin:
    def test_join_returns_process_result(self):
        sim = Simulator()
        results = []

        def child():
            yield 4.0
            return "child-result"

        def parent():
            c = Process(sim, child)
            r = yield c
            results.append((sim.now, r))

        Process(sim, parent)
        sim.run()
        assert results == [(4.0, "child-result")]

    def test_join_already_finished_process(self):
        sim = Simulator()
        results = []

        def quick():
            yield 1.0
            return 7

        def parent(c):
            yield 10.0  # child long done
            r = yield c
            results.append((sim.now, r))

        c = Process(sim, quick)
        Process(sim, parent, c)
        sim.run()
        assert results == [(10.0, 7)]


class TestCombinators:
    def test_anyof_first_wins(self):
        sim = Simulator()
        got = []

        def sleeper(d):
            yield d
            return d

        def racer():
            a = Process(sim, sleeper, 10.0)
            b = Process(sim, sleeper, 3.0)
            idx, result = yield AnyOf([a, b])
            got.append((sim.now, idx, result))

        Process(sim, racer)
        sim.run()
        assert got == [(3.0, 1, 3.0)]

    def test_allof_waits_for_slowest(self):
        sim = Simulator()
        got = []

        def sleeper(d):
            yield d
            return d

        def gatherer():
            procs = [Process(sim, sleeper, d) for d in (5.0, 2.0, 8.0)]
            results = yield AllOf(procs)
            got.append((sim.now, results))

        Process(sim, gatherer)
        sim.run()
        assert got == [(8.0, [5.0, 2.0, 8.0])]

    def test_empty_combinators_rejected(self):
        with pytest.raises(ProcessError):
            AnyOf([])
        with pytest.raises(ProcessError):
            AllOf([])


class TestInterrupt:
    def test_interrupt_during_hold(self):
        sim = Simulator()
        log = []

        def victim():
            try:
                yield 100.0
                log.append("finished")
            except InterruptError as exc:
                log.append((sim.now, exc.cause))

        v = Process(sim, victim)
        sim.schedule(5.0, v.interrupt, "preempt")
        sim.run()
        assert log == [(5.0, "preempt")]
        assert sim.now == 5.0

    def test_interrupt_during_signal_wait(self):
        sim = Simulator()
        sig = Signal()
        log = []

        def victim():
            try:
                yield sig
            except InterruptError:
                log.append("interrupted")
                return
            log.append("woke")

        v = Process(sim, victim)
        sim.schedule(2.0, v.interrupt)
        sim.schedule(5.0, sig.fire)  # late fire must NOT resume the victim
        sim.run()
        assert log == ["interrupted"]

    def test_interrupt_finished_process_noop(self):
        sim = Simulator()

        def body():
            yield 1.0

        p = Process(sim, body)
        sim.run()
        p.interrupt("too late")  # must not raise
        sim.run()
        assert not p.alive

    def test_unhandled_interrupt_completes_with_cause(self):
        sim = Simulator()

        def victim():
            yield 100.0

        v = Process(sim, victim)
        sim.schedule(1.0, v.interrupt, "cause-x")
        sim.run()
        assert v.done and v.result == "cause-x"


class TestLifecycle:
    def test_process_crash_raises_processerror(self):
        sim = Simulator()

        def bad():
            yield 1.0
            raise ValueError("boom")

        Process(sim, bad, name="crasher")
        with pytest.raises(ProcessError, match="crasher"):
            sim.run()

    def test_spawn_helper(self):
        sim = Simulator()
        done = []

        def body():
            yield 1.0
            done.append(True)

        p = spawn(sim, body, name="helper")
        sim.run()
        assert done == [True] and p.name == "helper"

    def test_generator_instance_accepted(self):
        sim = Simulator()
        log = []

        def body(tag):
            yield 2.0
            log.append(tag)

        Process(sim, body("pre-built-gen-fn-call")((), ) if False else body("x"))
        sim.run()
        assert log == ["x"]

    def test_result_available_after_completion(self):
        sim = Simulator()

        def body():
            yield 1.0
            return 99

        p = Process(sim, body)
        sim.run()
        assert p.done and p.result == 99

    def test_many_processes_interleave_deterministically(self):
        def run():
            sim = Simulator(seed=3)
            log = []

            def worker(i):
                stream = sim.stream(f"w{i}")
                for _ in range(5):
                    yield stream.exponential(1.0)
                    log.append((round(sim.now, 10), i))

            for i in range(10):
                Process(sim, worker, i)
            sim.run()
            return log

        assert run() == run()


class TestTimer:
    def test_timer_completes_at_delay(self):
        from repro.core import timer

        sim = Simulator()
        got = []

        def body():
            t = timer(sim, 4.0, payload="ding")
            result = yield t
            got.append((sim.now, result))

        Process(sim, body)
        sim.run()
        assert got == [(4.0, "ding")]

    def test_timeout_race_slow_operation(self):
        from repro.core import timer

        sim = Simulator()
        outcome = []

        def slow():
            yield 100.0
            return "done"

        def guarded():
            op = Process(sim, slow)
            idx, result = yield AnyOf([op, timer(sim, 10.0)])
            outcome.append(("timeout" if idx == 1 else "completed", sim.now))

        Process(sim, guarded)
        sim.run()
        assert outcome == [("timeout", 10.0)]

    def test_fast_operation_beats_timer(self):
        from repro.core import timer

        sim = Simulator()
        outcome = []

        def fast():
            yield 1.0
            return "done"

        def guarded():
            op = Process(sim, fast)
            idx, result = yield AnyOf([op, timer(sim, 10.0)])
            outcome.append((idx, result, sim.now))

        Process(sim, guarded)
        sim.run()
        assert outcome == [(0, "done", 1.0)]

    def test_negative_delay_rejected(self):
        from repro.core import timer

        with pytest.raises(ProcessError):
            timer(Simulator(), -1.0)

    def test_zero_delay_timer(self):
        from repro.core import timer

        sim = Simulator()
        t = timer(sim, 0.0)
        sim.run()
        assert t.done
