"""Unit tests for the event-driven kernel."""

import pytest

from repro.core import (
    Priority,
    SchedulingError,
    Simulator,
    StopSimulation,
)
from repro.core.queues import QUEUE_FACTORIES


class TestScheduling:
    def test_relative_schedule_fires_at_offset(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_absolute_schedule(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError, match="in the past"):
            sim.schedule_at(1.0, lambda: None)

    def test_nan_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError, match="NaN"):
            sim.schedule_at(float("nan"), lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("a"), sim.schedule(0.0, lambda: order.append("b"))))
        sim.schedule(1.0, lambda: order.append("c"))
        sim.run()
        # zero-delay event scheduled during t=1 runs after the other t=1 event
        assert order == ["a", "c", "b"]

    def test_kwargs_passed(self):
        sim = Simulator()
        got = {}
        sim.schedule(1.0, lambda **kw: got.update(kw), value=9)
        sim.run()
        assert got == {"value": 9}

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        seen = []
        ev = sim.schedule(1.0, lambda: seen.append("x"))
        ev.cancel()
        sim.run()
        assert seen == []
        assert sim.events_executed == 0


class TestRunSemantics:
    def test_run_until_inclusive_and_clock_advance(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(2))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=3.5)
        assert seen == [2]
        assert sim.now == 3.5  # clock pinned to the horizon
        sim.run()
        assert seen == [2, 5]

    def test_event_at_exact_horizon_fires(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.0, lambda: seen.append(1))
        sim.run(until=4.0)
        assert seen == [1]

    def test_stop_simulation_exception(self):
        sim = Simulator()
        seen = []

        def bomb():
            raise StopSimulation("enough")

        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, bomb)
        sim.schedule(3.0, seen.append, 3)
        sim.run()
        assert seen == [1]
        assert sim.stop_reason == "enough"

    def test_stop_method(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.stop("manual"))
        sim.schedule(2.0, seen.append, 2)
        sim.run()
        assert seen == []
        assert sim.stop_reason == "manual"
        # a fresh run resumes from the remaining queue
        sim.run()
        assert seen == [2]

    def test_max_events_budget(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SchedulingError, match="budget"):
            sim.run(max_events=100)

    def test_max_events_budget_is_per_run(self):
        """The budget counts firings of *this* run() call, not the lifetime
        total — a second run after N earlier firings must not raise at once."""
        sim = Simulator()
        for i in range(10):
            sim.schedule_at(float(i), lambda: None)
        sim.run(max_events=100)
        assert sim.events_executed == 10
        for i in range(10, 15):
            sim.schedule_at(float(i), lambda: None)
        # 15 cumulative firings > 12, but this run only fires 5: no raise.
        sim.run(max_events=12)
        assert sim.events_executed == 15

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SchedulingError, match="budget"):
            sim.run(max_events=3)
        # exactly the budgeted number fired in the raising run
        assert sim.events_executed == 18

    def test_run_not_reentrant(self):
        sim = Simulator()
        captured = []

        def inner():
            try:
                sim.run()
            except SchedulingError as exc:
                captured.append(str(exc))

        sim.schedule(1.0, inner)
        sim.run()
        assert captured and "reentrant" in captured[0]

    def test_step_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        assert sim.step() and seen == ["a"]
        assert sim.step() and seen == ["a", "b"]
        assert not sim.step()

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() == float("inf")
        sim.schedule(3.0, lambda: None)
        assert sim.peek_time() == 3.0

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(QUEUE_FACTORIES))
    def test_same_trajectory_across_queue_kinds(self, kind):
        """The event-list structure must never change model results."""

        def run(kind):
            sim = Simulator(queue=kind, seed=7)
            log = []
            stream = sim.stream("arrivals")

            def arrival(i):
                log.append((round(sim.now, 9), i))
                if i < 50:
                    sim.schedule(stream.exponential(2.0), arrival, i + 1)

            sim.schedule(0.0, arrival, 0)
            sim.run()
            return log

        assert run(kind) == run("heap")

    def test_same_seed_same_draws(self):
        a = Simulator(seed=123).stream("x").exponential(1.0)
        b = Simulator(seed=123).stream("x").exponential(1.0)
        assert a == b

    def test_different_seed_differs(self):
        a = Simulator(seed=1).stream("x").exponential(1.0)
        b = Simulator(seed=2).stream("x").exponential(1.0)
        assert a != b

    def test_priority_order_at_same_instant(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=Priority.LOW)
        sim.schedule(1.0, lambda: order.append("urgent"), priority=Priority.URGENT)
        sim.schedule(1.0, lambda: order.append("normal"))
        sim.run()
        assert order == ["urgent", "normal", "low"]


class TestHooks:
    def test_pre_event_hook_sees_events(self):
        sim = Simulator()
        labels = []
        sim.pre_event_hooks.append(lambda ev: labels.append(ev.label))
        sim.schedule(1.0, lambda: None, label="one")
        sim.schedule(2.0, lambda: None, label="two")
        sim.run()
        assert labels == ["one", "two"]
