"""Conformance + property tests for all five event-list structures.

Every structure must dequeue identical orders on identical inputs — the
binary heap is the reference.  Hypothesis drives randomized schedules
including cancellations and interleaved push/pop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Event, Priority
from repro.core.queues import QUEUE_FACTORIES, make_queue

ALL_KINDS = sorted(QUEUE_FACTORIES)


def make_events(times, priority=Priority.NORMAL):
    return [Event(t, seq, lambda: None, priority=priority) for seq, t in enumerate(times)]


@pytest.fixture(params=ALL_KINDS)
def kind(request):
    return request.param


class TestBasics:
    def test_empty_pop_returns_none(self, kind):
        assert make_queue(kind).pop() is None

    def test_empty_peek_returns_none(self, kind):
        assert make_queue(kind).peek() is None

    def test_bool_false_when_empty(self, kind):
        assert not make_queue(kind)

    def test_single_roundtrip(self, kind):
        q = make_queue(kind)
        [e] = make_events([3.0])
        q.push(e)
        assert q.peek() is e
        assert q.pop() is e
        assert q.pop() is None

    def test_sorted_output(self, kind):
        q = make_queue(kind)
        times = [5.0, 1.0, 3.0, 2.0, 4.0, 0.5, 9.9, 3.3]
        for e in make_events(times):
            q.push(e)
        out = [q.pop().time for _ in range(len(times))]
        assert out == sorted(times)

    def test_fifo_among_equal_times(self, kind):
        q = make_queue(kind)
        events = make_events([1.0] * 10)
        for e in events:
            q.push(e)
        assert [q.pop().seq for _ in range(10)] == list(range(10))

    def test_priority_orders_within_timestamp(self, kind):
        q = make_queue(kind)
        lo = Event(1.0, 1, lambda: None, priority=Priority.LOW)
        hi = Event(1.0, 2, lambda: None, priority=Priority.URGENT)
        q.push(lo)
        q.push(hi)
        assert q.pop() is hi
        assert q.pop() is lo

    def test_len_counts_records(self, kind):
        q = make_queue(kind)
        for e in make_events([1, 2, 3]):
            q.push(e)
        assert len(q) == 3

    def test_cancelled_events_skipped(self, kind):
        q = make_queue(kind)
        events = make_events([1.0, 2.0, 3.0])
        for e in events:
            q.push(e)
        events[0].cancel()
        events[2].cancel()
        assert q.pop() is events[1]
        assert q.pop() is None

    def test_live_len_excludes_cancelled(self, kind):
        q = make_queue(kind)
        events = make_events([1.0, 2.0, 3.0, 4.0])
        for e in events:
            q.push(e)
        events[1].cancel()
        assert q.live_len() == 3

    def test_peek_skips_cancelled_head(self, kind):
        q = make_queue(kind)
        events = make_events([1.0, 2.0])
        for e in events:
            q.push(e)
        events[0].cancel()
        assert q.peek() is events[1]

    def test_drain_returns_sorted_live(self, kind):
        q = make_queue(kind)
        events = make_events([4.0, 1.0, 3.0, 2.0])
        for e in events:
            q.push(e)
        events[2].cancel()
        assert [e.time for e in q.drain()] == [1.0, 2.0, 4.0]
        assert q.pop() is None

    def test_make_queue_unknown_kind(self):
        with pytest.raises(KeyError, match="unknown event queue"):
            make_queue("fibonacci")


class TestInterleaved:
    def test_push_pop_interleaving(self, kind):
        q = make_queue(kind)
        e1, e2, e3 = make_events([10.0, 20.0, 15.0])
        q.push(e1)
        q.push(e2)
        assert q.pop() is e1
        q.push(e3)
        assert q.pop() is e3
        assert q.pop() is e2

    def test_reinsert_earlier_after_pops(self, kind):
        """Calendar/ladder structures must cope with inserts behind the scan."""
        q = make_queue(kind)
        far = make_events([100.0, 200.0, 300.0])
        for e in far:
            q.push(e)
        assert q.pop() is far[0]
        near = Event(150.0, 99, lambda: None)
        q.push(near)
        assert q.pop() is near
        assert q.pop() is far[1]
        assert q.pop() is far[2]

    def test_large_monotone_burst(self, kind):
        """Hold-model style: pop one, push one slightly later, many times."""
        q = make_queue(kind)
        for e in make_events([float(i) for i in range(64)]):
            q.push(e)
        t_prev = -1.0
        seq = 1000
        for step in range(500):
            e = q.pop()
            assert e.time >= t_prev
            t_prev = e.time
            seq += 1
            q.push(Event(e.time + 17.3, seq, lambda: None))
        assert len(q) == 64


@st.composite
def schedules(draw):
    """A list of operations: (push t) or (pop) or (cancel idx)."""
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n):
        ops.append(draw(st.sampled_from(["push", "push", "push", "pop", "cancel"])))
    times = draw(st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n))
    return list(zip(ops, times))


@settings(max_examples=60, deadline=None)
@given(schedule=schedules(), kind=st.sampled_from([k for k in ALL_KINDS if k != "heap"]))
def test_property_equivalence_with_heap(schedule, kind):
    """Any structure dequeues exactly what the reference heap dequeues."""
    ref = make_queue("heap")
    q = make_queue(kind)
    seq = 0
    pushed = []
    ref_out, out = [], []
    for op, t in schedule:
        if op == "push":
            seq += 1
            a = Event(t, seq, lambda: None)
            b = Event(t, seq, lambda: None)
            pushed.append((a, b))
            ref.push(a)
            q.push(b)
        elif op == "pop":
            ra, rb = ref.pop(), q.pop()
            ref_out.append(None if ra is None else ra.sort_key)
            out.append(None if rb is None else rb.sort_key)
        else:  # cancel a random still-known pair (deterministic: first live)
            for a, b in pushed:
                if not a.cancelled:
                    a.cancel()
                    b.cancel()
                    break
    # Drain both completely.
    while True:
        ra, rb = ref.pop(), q.pop()
        ref_out.append(None if ra is None else ra.sort_key)
        out.append(None if rb is None else rb.sort_key)
        if ra is None and rb is None:
            break
    assert out == ref_out


@settings(max_examples=30, deadline=None)
@given(
    times=st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False,
                             allow_infinity=False), min_size=1, max_size=200),
    kind=st.sampled_from(ALL_KINDS),
)
def test_property_total_order(times, kind):
    """Popping everything yields non-decreasing sort keys."""
    q = make_queue(kind)
    for seq, t in enumerate(times):
        q.push(Event(t, seq, lambda: None))
    prev = None
    for _ in range(len(times)):
        e = q.pop()
        assert e is not None
        if prev is not None:
            assert prev <= e.sort_key
        prev = e.sort_key
    assert q.pop() is None


class TestPopIfLe:
    """Conformance for the fused single-call dispatch operation."""

    def test_empty_returns_none(self, kind):
        assert make_queue(kind).pop_if_le(float("inf")) is None

    def test_returns_events_in_order_up_to_horizon(self, kind):
        q = make_queue(kind)
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for e in make_events(times):
            q.push(e)
        out = []
        while (ev := q.pop_if_le(3.0)) is not None:
            out.append(ev.time)
        assert out == [1.0, 2.0, 3.0]
        assert q.live_len() == 2  # 4.0 and 5.0 untouched

    def test_beyond_horizon_leaves_queue_untouched(self, kind):
        q = make_queue(kind)
        [e] = make_events([7.0])
        q.push(e)
        assert q.pop_if_le(6.999999) is None
        assert q.peek() is e
        assert q.pop_if_le(7.0) is e

    def test_skips_cancelled_below_horizon(self, kind):
        q = make_queue(kind)
        events = make_events([1.0, 2.0, 3.0])
        for e in events:
            q.push(e)
        events[0].cancel()
        assert q.pop_if_le(2.5) is events[1]
        assert q.pop_if_le(2.5) is None

    def test_cancelled_head_beyond_horizon_not_returned(self, kind):
        q = make_queue(kind)
        events = make_events([1.0, 9.0])
        for e in events:
            q.push(e)
        events[0].cancel()
        assert q.pop_if_le(5.0) is None
        assert q.pop() is events[1]

    def test_matches_peek_pop_protocol(self, kind):
        """pop_if_le(h) == (peek() if time<=h then pop()) on any state."""
        from repro.core.rng import StreamFactory

        stream = StreamFactory(3).stream(f"pil-{kind}")
        a, b = make_queue(kind), make_queue(kind)
        pushed = []
        seq = 0
        for step in range(400):
            r = stream.uniform(0.0, 1.0)
            if r < 0.5:
                seq += 1
                t = stream.uniform(0.0, 100.0)
                ea = Event(t, seq, lambda: None)
                eb = Event(t, seq, lambda: None)
                pushed.append((ea, eb))
                a.push(ea)
                b.push(eb)
            elif r < 0.65 and pushed:
                i = int(stream.uniform(0, len(pushed)))
                ea, eb = pushed[i]
                ea.cancel()
                eb.cancel()
            else:
                h = stream.uniform(0.0, 120.0)
                got = a.pop_if_le(h)
                ref = b.peek()
                expect = b.pop() if ref is not None and ref.time <= h else None
                assert (None if got is None else got.sort_key) \
                    == (None if expect is None else expect.sort_key), f"step {step}"


class TestCancellationHeavy:
    """Mass-cancellation conformance: ordering, counts, and eager purging."""

    def test_mass_cancel_then_drain_order(self, kind):
        q = make_queue(kind)
        events = make_events([float(i) for i in range(500)])
        for e in events:
            q.push(e)
        for e in events[::2]:  # kill every even-timed event
            e.cancel()
        assert q.live_len() == 250
        out = [e.time for e in q.drain()]
        assert out == [float(i) for i in range(1, 500, 2)]
        assert q.live_len() == 0
        assert not q

    def test_live_len_and_bool_track_cancellations(self, kind):
        q = make_queue(kind)
        events = make_events([1.0, 2.0, 3.0, 4.0])
        for e in events:
            q.push(e)
        assert q and q.live_len() == 4
        for e in events:
            e.cancel()
        assert q.live_len() == 0
        assert not q
        assert q.peek() is None and q.pop() is None

    def test_cancel_all_but_last(self, kind):
        q = make_queue(kind)
        events = make_events([float(i) for i in range(200)])
        for e in events:
            q.push(e)
        for e in events[:-1]:
            e.cancel()
        assert q.live_len() == 1
        assert q.peek() is events[-1]
        assert q.pop() is events[-1]
        assert q.pop() is None

    def test_threshold_compaction_purges_dead_records(self, kind):
        q = make_queue(kind)
        events = make_events([float(i) for i in range(300)])
        for e in events:
            q.push(e)
        for e in events[:299]:
            e.cancel()
        # Way past compact_min with dead >= half the records: the structure
        # must have purged (len is the raw slot count).
        assert len(q) < 300
        assert q.dead_len == len(q) - q.live_len()
        assert q.live_len() == 1
        assert q.pop() is events[299]

    def test_interleaved_cancel_push_pop(self, kind):
        """Cancel-churn while the queue keeps serving ordered pops."""
        from repro.core.rng import StreamFactory

        stream = StreamFactory(9).stream(f"churn-{kind}")
        q = make_queue(kind)
        seq = 0
        live = []
        prev_key = None
        for _ in range(150):
            for _ in range(6):
                seq += 1
                ev = Event(stream.uniform(0.0, 1e4), seq, lambda: None)
                q.push(ev)
                live.append(ev)
            # cancel half of what we know about
            for _ in range(3):
                i = int(stream.uniform(0, len(live)))
                live.pop(i).cancel()
            ev = q.pop()
            if ev is not None:
                assert not ev.cancelled
                if ev in live:
                    live.remove(ev)
        assert q.live_len() == len(live)
        drained = q.drain()
        assert all(not e.cancelled for e in drained)
        assert len(drained) == len(live)

    def test_cancel_across_calendar_resize(self):
        """Dead records must not survive a CalendarQueue resize."""
        from repro.core.queues import CalendarQueue

        q = CalendarQueue(initial_buckets=2, initial_width=1.0)
        events = make_events([float(i) for i in range(40)])
        for e in events:
            q.push(e)
        for e in events[:30]:
            e.cancel()
        before = q.nbuckets
        # Push enough new events to cross the resize-up threshold.
        extra = [Event(1000.0 + i, 100 + i, lambda: None) for i in range(200)]
        for e in extra:
            q.push(e)
        assert q.nbuckets > before
        # Cancelled records were dropped by the resize, not re-inserted.
        assert all(not ev.cancelled for ev in q._iter_events())
        out = [e.time for e in q.drain()]
        assert out == [float(i) for i in range(30, 40)] \
            + [1000.0 + i for i in range(200)]

    def test_calendar_peek_purge_applies_resize_down(self):
        """peek() purging cancelled heads shrinks the bucket array too."""
        from repro.core.queues import CalendarQueue

        q = CalendarQueue(initial_buckets=2, initial_width=1.0)
        events = make_events([float(i) for i in range(256)])
        for e in events:
            q.push(e)
        grown = q.nbuckets
        assert grown > 2
        # Cancel nearly everything without popping; stay below the
        # compaction threshold ratio by cancelling in one burst then
        # checking peek's own purge path on a fresh queue.
        for e in events[:-1]:
            e.cancel()
        assert q.peek() is events[-1]
        assert q.nbuckets < grown  # resize-down applied by the purge

    def test_cancel_across_ladder_spawn(self):
        """Mass-cancel survives a LadderQueue top->rung conversion."""
        from repro.core.queues import LadderQueue

        q = LadderQueue()
        # > _THRESHOLD events spread over a range: first pop spawns a rung.
        events = make_events([float(i) % 97 + 0.25 for i in range(400)])
        for e in events:
            q.push(e)
        for e in events[::3]:
            e.cancel()
        survivors = sorted((e.sort_key for e in events if not e.cancelled))
        assert q.live_len() == len(survivors)
        assert q._rungs or q._top or q._bottom
        out = [e.sort_key for e in q.drain()]
        assert out == survivors

    def test_dead_len_exact_through_mixed_ops(self, kind):
        q = make_queue(kind)
        events = make_events([float(i) for i in range(50)])
        for e in events:
            q.push(e)
        assert q.dead_len == 0
        events[0].cancel()
        events[10].cancel()
        assert q.dead_len == 2
        assert q.pop() is events[1]  # purges the dead head
        assert q.dead_len == len(q) - q.live_len()
        q.compact()
        assert q.dead_len == 0
        assert q.live_len() == 47

    def test_pushing_already_cancelled_event_counts_dead(self, kind):
        q = make_queue(kind)
        [e] = make_events([1.0])
        e.cancel()
        q.push(e)
        assert q.live_len() == 0
        assert q.dead_len == 1
        assert not q
        assert q.pop() is None


class TestCalendarInternals:
    def test_resize_grows_buckets(self):
        from repro.core.queues import CalendarQueue

        q = CalendarQueue(initial_buckets=2, initial_width=1.0)
        for seq, t in enumerate(range(100)):
            q.push(Event(float(t), seq, lambda: None))
        assert q.nbuckets > 2

    def test_skew_diagnostic(self):
        from repro.core.queues import CalendarQueue

        q = CalendarQueue()
        for seq in range(50):
            q.push(Event(0.001 * seq, seq, lambda: None))
        assert q.max_bucket_occupancy() >= 1
