"""Tests for failure injection: crash/repair semantics and work loss."""

import math

import pytest

from repro.core import ConfigurationError, Simulator
from repro.faults import FaultGraph
from repro.hosts import SpaceSharedMachine, TimeSharedMachine
from repro.hosts.failures import MachineFailureInjector


class TestFailRepairSemantics:
    def test_fail_evicts_running_jobs(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        m.submit(1000.0)
        m.submit(1000.0)
        assert m.fail() == 2
        assert m.failed and m.running == 0 and m.queued == 2

    def test_fail_idempotent(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail()
        assert m.fail() == 0
        assert m.failures == 1

    def test_submissions_queue_during_downtime(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail()
        run = m.submit(100.0)
        assert m.queued == 1 and run.started is None
        m.repair()
        assert m.running == 1

    def test_checkpoint_preserves_completed_work(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0, restart_policy="checkpoint")
        run = m.submit(1000.0)  # 10s of work
        sim.schedule(5.0, m.fail)    # crash halfway
        sim.schedule(7.0, m.repair)  # 2s outage
        sim.run()
        # 5s done + 2s down + 5s remaining = 12s
        assert run.finished == pytest.approx(12.0)

    def test_restart_loses_work(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0, restart_policy="restart")
        run = m.submit(1000.0)
        sim.schedule(5.0, m.fail)
        sim.schedule(7.0, m.repair)
        sim.run()
        # 5s lost + 2s down + full 10s again = 17s
        assert run.finished == pytest.approx(17.0)

    def test_checkpoint_beats_restart(self):
        """The checkpointing argument, as an inequality."""
        def total(policy):
            sim = Simulator()
            m = SpaceSharedMachine(sim, rating=100.0, restart_policy=policy)
            runs = [m.submit(500.0) for _ in range(3)]
            sim.schedule(3.0, m.fail)
            sim.schedule(4.0, m.repair)
            sim.run()
            return max(r.finished for r in runs)

        assert total("checkpoint") < total("restart")

    def test_evicted_jobs_restart_in_submission_order(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        r1 = m.submit(1000.0)
        r2 = m.submit(1000.0)
        r3 = m.submit(1000.0)  # queued
        sim.schedule(1.0, m.fail)
        sim.schedule(2.0, m.repair)
        sim.run()
        # evicted r1, r2 go back before the never-started r3
        assert r3.finished > max(r1.finished, r2.finished)

    def test_failure_during_idle_harmless(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        assert m.fail() == 0
        m.repair()
        run = m.submit(100.0)
        sim.run()
        assert run.finished == pytest.approx(1.0)

    def test_bad_restart_policy(self):
        with pytest.raises(ConfigurationError):
            SpaceSharedMachine(Simulator(), restart_policy="pray")

    def test_crash_at_completion_instant_completes_job(self):
        """A crash event tied with a completion must not re-queue a
        zero-residue job: the work is done, the victim is a completion."""
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0,
                               restart_policy="checkpoint")
        # schedule the crash BEFORE submitting so its event fires first
        # at the shared timestamp (lower sequence number)
        sim.schedule(5.0, m.fail)
        run = m.submit(500.0)  # completes at exactly t=5
        sim.run()
        assert run.finished == pytest.approx(5.0)
        assert m.completed == 1
        assert m.evictions == 0
        assert m.queued == 0

    def test_crash_at_completion_instant_then_repair_runs_backlog(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0,
                               restart_policy="checkpoint")
        sim.schedule(5.0, m.fail)
        sim.schedule(7.0, m.repair)
        r1 = m.submit(500.0)   # done exactly at the crash instant
        r2 = m.submit(500.0)   # queued; runs after the repair
        sim.run()
        assert r1.finished == pytest.approx(5.0)
        assert r2.finished == pytest.approx(12.0)
        assert m.completed == 2


class TestEstimatedCompletion:
    def test_failed_machine_without_eta_estimates_inf(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail()
        assert m.estimated_completion(100.0) == math.inf

    def test_failed_machine_uses_repair_eta(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail(repair_eta=8.0)
        # repair at 8, then 1s of work
        assert m.estimated_completion(100.0) == pytest.approx(9.0)

    def test_repair_clears_eta(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail(repair_eta=8.0)
        m.repair()
        assert m.repair_eta is None
        assert m.estimated_completion(100.0) == pytest.approx(1.0)

    def test_queue_drain_estimate_uses_checkpoint_residue(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0,
                               restart_policy="checkpoint")
        m.submit(1000.0)
        sim.schedule(5.0, m.fail)  # 5s done, 5s of residue at eviction
        sim.run(until=6.0)
        m.fail(repair_eta=8.0)  # idempotent: refreshes the repair hint
        # repair at 8, drain 5s of residue, then 1s for the new job
        assert m.estimated_completion(100.0) == pytest.approx(14.0)


class TestInjector:
    def test_cycles_and_availability(self):
        sim = Simulator(seed=3)
        m = SpaceSharedMachine(sim, rating=100.0)
        inj = MachineFailureInjector(sim, m, sim.stream("fail"),
                                     mtbf=50.0, mttr=10.0, horizon=1000.0)
        sim.schedule_at(1500.0, lambda: None)  # pin a horizon to observe
        sim.run()
        crashes = inj.monitor.counter("crashes").count
        assert crashes > 5
        # availability should be in the MTBF/(MTBF+MTTR) ballpark ≈ 0.83
        assert 0.6 < inj.availability < 0.98

    def test_jobs_complete_despite_failures(self):
        sim = Simulator(seed=4)
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        MachineFailureInjector(sim, m, sim.stream("fail"),
                               mtbf=30.0, mttr=5.0, horizon=2000.0)
        runs = [m.submit(500.0) for _ in range(10)]
        sim.run()
        assert all(r.finished is not None for r in runs)
        assert m.completed == 10

    def test_failures_extend_turnaround(self):
        def makespan(inject):
            sim = Simulator(seed=5)
            m = SpaceSharedMachine(sim, pes=1, rating=100.0)
            if inject:
                MachineFailureInjector(sim, m, sim.stream("fail"),
                                       mtbf=4.0, mttr=8.0, horizon=500.0)
            runs = [m.submit(300.0) for _ in range(5)]
            sim.run()
            return max(r.finished for r in runs)

        assert makespan(True) > makespan(False)

    def test_validation(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            MachineFailureInjector(sim, m, sim.stream("f"), mtbf=0.0)
        ts = TimeSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            MachineFailureInjector(sim, ts, sim.stream("f"))

    def test_external_fail_repair_does_not_corrupt_injector(self):
        """Out-of-band fail()/repair() calls (an operator, a fault graph)
        must leave the injector's view and downtime books consistent."""
        sim = Simulator(seed=9)
        m = SpaceSharedMachine(sim, rating=100.0)
        inj = MachineFailureInjector(sim, m, sim.stream("fail"),
                                     mtbf=10.0, mttr=3.0, horizon=300.0)
        for t in range(0, 300, 11):
            sim.schedule_at(t + 0.25, m.fail)
            sim.schedule_at(t + 0.75, m.repair)
        sim.schedule_at(400.0, lambda: None)
        sim.run()
        assert not m.failed
        # the injector reads the machine's single outage clock, so external
        # overlap can never double-count downtime
        assert inj.downtime == m.total_downtime
        assert 0.0 < inj.availability <= 1.0
        assert m.total_downtime < 400.0

    def test_machine_downtime_clock_single_source(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        sim.schedule(1.0, m.fail)
        sim.schedule(1.5, m.fail)   # idempotent: one open interval
        sim.schedule(4.0, m.repair)
        sim.schedule(4.2, m.repair)  # idempotent: already up
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert m.total_downtime == pytest.approx(3.0)
        assert m.availability == pytest.approx(0.7)


class TestCorrelatedSiteOutages:
    def _lost_work(self, policy):
        """Makespan of a job chain under scripted correlated site outages."""
        sim = Simulator()
        machines = [SpaceSharedMachine(sim, rating=100.0,
                                       name=f"{policy}-{i}",
                                       restart_policy=policy)
                    for i in range(2)]
        g = FaultGraph(sim)
        children = [g.add_host(f"h{i}", m)
                    for i, m in enumerate(machines)]
        g.add_site("site", children)
        runs = [m.submit(500.0) for m in machines]  # 5s of work each
        sim.schedule(3.0, g.fail, "site")
        sim.schedule(4.0, g.repair, "site")
        sim.run()
        return max(r.finished for r in runs)

    def test_checkpoint_vs_restart_lost_work_gap(self):
        """Under a correlated site outage, restart re-pays the pre-crash
        work on every machine; checkpoint pays only the outage."""
        ckpt = self._lost_work("checkpoint")
        rstrt = self._lost_work("restart")
        assert ckpt == pytest.approx(6.0)   # 3 done + 1 down + 2 left
        assert rstrt == pytest.approx(9.0)  # 3 lost + 1 down + 5 again
        assert rstrt - ckpt == pytest.approx(3.0)  # exactly the lost work
