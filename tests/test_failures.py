"""Tests for failure injection: crash/repair semantics and work loss."""

import pytest

from repro.core import ConfigurationError, Simulator
from repro.hosts import SpaceSharedMachine, TimeSharedMachine
from repro.hosts.failures import MachineFailureInjector


class TestFailRepairSemantics:
    def test_fail_evicts_running_jobs(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        m.submit(1000.0)
        m.submit(1000.0)
        assert m.fail() == 2
        assert m.failed and m.running == 0 and m.queued == 2

    def test_fail_idempotent(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail()
        assert m.fail() == 0
        assert m.failures == 1

    def test_submissions_queue_during_downtime(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        m.fail()
        run = m.submit(100.0)
        assert m.queued == 1 and run.started is None
        m.repair()
        assert m.running == 1

    def test_checkpoint_preserves_completed_work(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0, restart_policy="checkpoint")
        run = m.submit(1000.0)  # 10s of work
        sim.schedule(5.0, m.fail)    # crash halfway
        sim.schedule(7.0, m.repair)  # 2s outage
        sim.run()
        # 5s done + 2s down + 5s remaining = 12s
        assert run.finished == pytest.approx(12.0)

    def test_restart_loses_work(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0, restart_policy="restart")
        run = m.submit(1000.0)
        sim.schedule(5.0, m.fail)
        sim.schedule(7.0, m.repair)
        sim.run()
        # 5s lost + 2s down + full 10s again = 17s
        assert run.finished == pytest.approx(17.0)

    def test_checkpoint_beats_restart(self):
        """The checkpointing argument, as an inequality."""
        def total(policy):
            sim = Simulator()
            m = SpaceSharedMachine(sim, rating=100.0, restart_policy=policy)
            runs = [m.submit(500.0) for _ in range(3)]
            sim.schedule(3.0, m.fail)
            sim.schedule(4.0, m.repair)
            sim.run()
            return max(r.finished for r in runs)

        assert total("checkpoint") < total("restart")

    def test_evicted_jobs_restart_in_submission_order(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        r1 = m.submit(1000.0)
        r2 = m.submit(1000.0)
        r3 = m.submit(1000.0)  # queued
        sim.schedule(1.0, m.fail)
        sim.schedule(2.0, m.repair)
        sim.run()
        # evicted r1, r2 go back before the never-started r3
        assert r3.finished > max(r1.finished, r2.finished)

    def test_failure_during_idle_harmless(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim, rating=100.0)
        assert m.fail() == 0
        m.repair()
        run = m.submit(100.0)
        sim.run()
        assert run.finished == pytest.approx(1.0)

    def test_bad_restart_policy(self):
        with pytest.raises(ConfigurationError):
            SpaceSharedMachine(Simulator(), restart_policy="pray")


class TestInjector:
    def test_cycles_and_availability(self):
        sim = Simulator(seed=3)
        m = SpaceSharedMachine(sim, rating=100.0)
        inj = MachineFailureInjector(sim, m, sim.stream("fail"),
                                     mtbf=50.0, mttr=10.0, horizon=1000.0)
        sim.schedule_at(1500.0, lambda: None)  # pin a horizon to observe
        sim.run()
        crashes = inj.monitor.counter("crashes").count
        assert crashes > 5
        # availability should be in the MTBF/(MTBF+MTTR) ballpark ≈ 0.83
        assert 0.6 < inj.availability < 0.98

    def test_jobs_complete_despite_failures(self):
        sim = Simulator(seed=4)
        m = SpaceSharedMachine(sim, pes=2, rating=100.0)
        MachineFailureInjector(sim, m, sim.stream("fail"),
                               mtbf=30.0, mttr=5.0, horizon=2000.0)
        runs = [m.submit(500.0) for _ in range(10)]
        sim.run()
        assert all(r.finished is not None for r in runs)
        assert m.completed == 10

    def test_failures_extend_turnaround(self):
        def makespan(inject):
            sim = Simulator(seed=5)
            m = SpaceSharedMachine(sim, pes=1, rating=100.0)
            if inject:
                MachineFailureInjector(sim, m, sim.stream("fail"),
                                       mtbf=4.0, mttr=8.0, horizon=500.0)
            runs = [m.submit(300.0) for _ in range(5)]
            sim.run()
            return max(r.finished for r in runs)

        assert makespan(True) > makespan(False)

    def test_validation(self):
        sim = Simulator()
        m = SpaceSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            MachineFailureInjector(sim, m, sim.stream("f"), mtbf=0.0)
        ts = TimeSharedMachine(sim)
        with pytest.raises(ConfigurationError):
            MachineFailureInjector(sim, ts, sim.stream("f"))
