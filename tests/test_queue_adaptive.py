"""Regression tests for the ladder drain pathology and the adaptive queue.

Three families:

* **Drain scaling** — the quadratic rung-scan bug made an N-event ladder
  drain cost O(N²/THRESHOLD); these tests pin both the absolute comparison
  against the heap (the E2 acceptance bound) and the *growth rate* between
  two sizes, so the pathology cannot silently return.
* **Ladder bug regressions** — ``_pop_any`` cancellation accounting and the
  single-timestamp Top-spill horizon at fractional timescales.
* **AdaptiveQueue** — profile shifts trigger migrations, orderings and
  len/peek survive them, and the counters reach obs telemetry.
"""

import random
from time import perf_counter

from repro.core import Event, Simulator
from repro.core.queues import AdaptiveQueue, LadderQueue, make_queue
from repro.obs import Observation


def _drain_seconds(kind: str, n: int) -> float:
    """Wall seconds to pop *n* pre-scheduled events from structure *kind*."""
    q = make_queue(kind)
    rng = random.Random(1234)
    for i in range(n):
        q.push(Event(rng.uniform(0.0, 1000.0), i, lambda: None))
    t0 = perf_counter()
    while q.pop_if_le(float("inf")) is not None:
        pass
    return perf_counter() - t0


class TestDrainScaling:
    def test_ladder_drain_within_2x_of_heap(self):
        n = 30_000
        heap_s = min(_drain_seconds("heap", n) for _ in range(2))
        ladder_s = min(_drain_seconds("ladder", n) for _ in range(2))
        assert ladder_s <= 2.0 * heap_s, (
            f"ladder drained {n} events in {ladder_s:.3f}s vs heap "
            f"{heap_s:.3f}s — the E2 bound is 2x")

    def test_ladder_drain_scales_linearly(self):
        # Quadratic drain makes the 4x-size run ~16x slower; linear makes
        # it ~4x.  Normalizing by the heap's own ratio absorbs machine
        # noise and cache effects; 2.5x the heap's growth is far below the
        # ~4x gap the bug produced (16/4.3) and far above run jitter.
        n = 8_000
        heap_ratio = (min(_drain_seconds("heap", 4 * n) for _ in range(2))
                      / min(_drain_seconds("heap", n) for _ in range(2)))
        ladder_ratio = (min(_drain_seconds("ladder", 4 * n) for _ in range(2))
                        / min(_drain_seconds("ladder", n) for _ in range(2)))
        assert ladder_ratio <= 2.5 * max(heap_ratio, 4.0), (
            f"ladder drain grew {ladder_ratio:.1f}x for 4x the events "
            f"(heap: {heap_ratio:.1f}x) — superlinear drain is back")


class TestLadderRegressions:
    def test_pop_any_skips_cancelled_and_detaches_hook(self):
        # _pop_any used to return the raw minimum: cancelled events came
        # back to callers, _dead went stale, and the popped event kept its
        # _on_cancel hook — so cancelling it later corrupted the counter.
        q = LadderQueue()
        events = [Event(float(i), i, lambda: None) for i in range(8)]
        for ev in events:
            q.push(ev)
        events[0].cancel()
        assert q.dead_len == 1
        got = q._pop_any()
        assert got is events[1]  # cancelled head skipped, not returned
        assert q.dead_len == 0  # purged record decremented the counter
        got.cancel()  # post-pop cancel must be invisible to the queue
        assert q.dead_len == 0
        assert q.live_len() == 6

    def test_single_timestamp_spill_horizon_fractional(self):
        # A Top spill where every event shares one timestamp used to set
        # the next horizon to lo + 1.0 — at sub-unit timescales every
        # subsequent push landed in Bottom's insort path instead of Top.
        q = LadderQueue()
        for i in range(8):
            q.push(Event(5.0, i, lambda: None))
        assert q.pop().time == 5.0  # forces the Top -> Bottom conversion
        assert q._top_start == 5.0  # horizon is the max *observed* time
        q.push(Event(5.25, 100, lambda: None))
        assert len(q._top) == 1  # beyond the horizon -> Top, not Bottom
        q.push(Event(5.0, 101, lambda: None))  # tie at the boundary
        times = [q.pop().time for _ in range(len(q))]
        assert times == sorted(times)
        assert times[-1] == 5.25

    def test_fractional_timescale_ordering(self):
        q = LadderQueue()
        rng = random.Random(9)
        times = [round(rng.uniform(0.0, 0.001), 9) for _ in range(500)]
        for i, t in enumerate(times):
            q.push(Event(t, i, lambda: None))
        popped = [q.pop().time for _ in range(500)]
        assert popped == sorted(times)


def _tiny_adaptive(**overrides) -> AdaptiveQueue:
    defaults = dict(window=16, ladder_size=64, calendar_size=24,
                    calendar_skew=100.0, calendar_cancel=1.0)
    defaults.update(overrides)
    return AdaptiveQueue(**defaults)


class TestAdaptiveMigration:
    def test_growth_triggers_ladder_then_drain_returns_to_heap(self):
        q = _tiny_adaptive()
        assert q.backend_kind == "heap"
        for i in range(200):
            q.push(Event(float(i), i, lambda: None))
        assert q.backend_kind == "ladder"
        assert q.migrations >= 1
        while q.pop() is not None:
            pass
        assert q.backend_kind == "heap"
        assert q.migrations >= 2

    def test_balanced_midband_profile_selects_calendar(self):
        q = _tiny_adaptive(window=16, ladder_size=10_000, calendar_size=24,
                           calendar_skew=1e9)
        rng = random.Random(3)
        clock = 0.0
        seq = 0
        for _ in range(40):  # grow into the mid band
            q.push(Event(clock + rng.uniform(0.0, 10.0), seq, lambda: None))
            seq += 1
        for _ in range(200):  # steady hold pattern: one in, one out
            q.push(Event(clock + rng.uniform(0.0, 10.0), seq, lambda: None))
            seq += 1
            ev = q.pop()
            clock = max(clock, ev.time)
        assert q.backend_kind == "calendar"

    def test_ordering_byte_identical_across_migrations(self):
        q = _tiny_adaptive()
        rng = random.Random(77)
        events = [Event(rng.uniform(0.0, 100.0), i, lambda: None)
                  for i in range(300)]
        for ev in events:
            q.push(ev)
        assert q.migrations >= 1  # the run must actually cross a boundary
        popped = [q.pop() for _ in range(300)]
        assert popped == sorted(events, key=lambda ev: ev.sort_key)
        assert q.pop() is None

    def test_len_peek_and_cancellation_consistent_across_migration(self):
        # window=16, ladder_size=64: evaluations land on pushes 16, 32, 48,
        # 64, 80.  With 10 cancellations the live size is 54 at push 64
        # (stays heap) and 70 at push 80 — so the final push is the exact
        # operation that migrates, with dead records still in the backend.
        q = _tiny_adaptive()
        events = [Event(float(i), i, lambda: None) for i in range(80)]
        for ev in events[:63]:
            q.push(ev)
        for ev in events[10:20]:
            ev.cancel()
        for ev in events[63:79]:
            q.push(ev)
        assert q.migrations == 0 and q.backend_kind == "heap"
        live_before = q.live_len()
        head_before = q.peek()
        q.push(events[79])
        assert q.migrations == 1
        assert q.backend_kind == "ladder"
        assert q.live_len() == live_before + 1
        assert q.peek() is head_before
        assert q.dead_len == 0  # migration moved only live events
        assert len(q) == q.live_len()
        # cancellation accounting keeps working against the new backend
        events[30].cancel()
        assert q.dead_len == 1
        popped = [q.pop() for _ in range(q.live_len())]
        want = [ev for ev in events if not ev.cancelled]
        assert popped == sorted(want, key=lambda ev: ev.sort_key)

    def test_migration_counters_reach_obs_telemetry(self):
        sim = Simulator(queue=_tiny_adaptive())
        obs = Observation(trace=True, profile=False)
        obs.attach(sim)
        for i in range(200):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        q = sim._queue
        assert q.migrations >= 1
        snap = obs.telemetry.snapshot(sim)
        assert snap["queue_migrations"] == q.migrations
        assert snap["queue_migrated_events"] == q.migrated_events
        assert snap["queue_backend"] == q.backend_kind
        # the Chrome trace carries one marker per switch
        counts = obs.tracer.counts()
        assert counts["markers"] >= q.migrations
        obs.close()
        assert q.on_migrate is None  # detach unhooks the queue

    def test_factory_and_classification(self):
        from repro.taxonomy.classify import classify_engine
        from repro.taxonomy.schema import QueueStructure

        q = make_queue("adaptive")
        assert isinstance(q, AdaptiveQueue)
        sim = Simulator(queue="adaptive")
        assert classify_engine(sim)["queue_structure"] is QueueStructure.TREE
        sim._queue = _tiny_adaptive()
        for i in range(200):
            sim._queue.push(Event(float(i), i, lambda: None))
        assert sim._queue.backend_kind == "ladder"
        assert (classify_engine(sim)["queue_structure"]
                is QueueStructure.CALENDAR)
