"""Trace equivalence: fused single-call dispatch vs. the legacy peek+pop loop.

The kernel's ``run()`` was restructured to touch the event list once per
firing (``pop_if_le``) instead of twice (``peek`` then ``pop``).  That is a
pure protocol change: for a fixed seed the executed event stream — times,
labels, sequence numbers, and the final clock — must be byte-identical to
the old loop's, on every queue structure.  These tests pin that guarantee.
"""

import math

import pytest

from repro.core import Priority, Simulator
from repro.core.errors import SchedulingError, StopSimulation
from repro.core.queues import QUEUE_FACTORIES

ALL_KINDS = sorted(QUEUE_FACTORIES)


class LegacyPeekPopSimulator(Simulator):
    """The pre-change dispatch loop, kept verbatim as the reference."""

    def run(self, until=None, max_events=None):
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        budget = math.inf if max_events is None else int(max_events)
        try:
            while not self._stopped:
                ev = self._queue.peek()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    break
                popped = self._queue.pop()
                assert popped is ev
                self._now = ev.time
                self._events_executed += 1
                if self.pre_event_hooks:
                    for hook in self.pre_event_hooks:
                        hook(ev)
                try:
                    ev.fire()
                except StopSimulation as sig:
                    self._stopped = True
                    self._stop_reason = sig.reason or "StopSimulation"
                if self._events_executed >= budget:
                    raise SchedulingError(
                        f"max_events budget of {max_events} exhausted at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False


def _run_reference_model(sim_cls, kind, seed=42):
    """A branching model with cancellations, priorities, and ties.

    Returns the executed trace as (time, priority, seq, label) rows captured
    by a pre-event hook — exactly what a TraceRecorder would see.
    """
    sim = sim_cls(queue=kind, seed=seed)
    trace = []
    sim.pre_event_hooks.append(
        lambda ev: trace.append((round(ev.time, 12), ev.priority, ev.seq, ev.label)))
    stream = sim.stream("model")
    timers = []

    def arrival(i):
        if i < 120:
            sim.schedule(stream.exponential(1.0), arrival, i + 1, label=f"arr{i+1}")
        # park a timer and cancel an older one: builds dead records
        timers.append(sim.schedule(50.0 + stream.exponential(5.0), _noop,
                                   label=f"timer{i}"))
        if len(timers) > 3:
            timers.pop(0).cancel()
        if i % 7 == 0:
            # same-timestamp burst across priority bands
            sim.schedule(0.0, _noop, priority=Priority.URGENT, label=f"u{i}")
            sim.schedule(0.0, _noop, priority=Priority.LOW, label=f"l{i}")

    def _noop():
        pass

    sim.schedule(0.0, arrival, 0, label="arr0")
    sim.run(until=40.0)
    sim.run()  # drain the surviving timers in a second run
    return trace, sim.now, sim.events_executed


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_fused_dispatch_trace_identical_to_peek_pop(kind):
    """Same seed => identical executed event stream under both protocols."""
    fused = _run_reference_model(Simulator, kind)
    legacy = _run_reference_model(LegacyPeekPopSimulator, kind)
    assert fused == legacy


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_fused_dispatch_trace_identical_across_seeds(kind):
    for seed in (0, 7, 1234):
        assert (_run_reference_model(Simulator, kind, seed)
                == _run_reference_model(LegacyPeekPopSimulator, kind, seed))


def _observed_sim_factory(**obs_kwargs):
    """A Simulator factory that attaches a fresh full Observation."""
    from repro.obs import Observation

    def make(queue="heap", seed=0):
        sim = Simulator(queue=queue, seed=seed)
        Observation(**obs_kwargs).attach(sim, track="ref")
        return sim

    return make


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_traced_stream_identical_to_untraced(kind):
    """Observation on => the fired-event stream is byte-identical.

    The obs subsystem must be a pure observer: spans, profiles, and
    telemetry may not perturb event order, timing, counts, or the clock on
    any queue structure.
    """
    traced = _observed_sim_factory(trace=True, profile=True, telemetry=True)
    assert _run_reference_model(traced, kind) == _run_reference_model(Simulator, kind)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_profile_only_stream_identical(kind):
    """Same guarantee with the tracer off (profiler/telemetry only)."""
    profiled = _observed_sim_factory(trace=False, profile=True, telemetry=True)
    assert (_run_reference_model(profiled, kind)
            == _run_reference_model(Simulator, kind))


def _parallel():
    import repro.core.parallel as mod
    return mod


def _run_parallel_reference(executor_factory, observed):
    """A 3-LP relay with fan-out; returns per-LP fired streams + clocks."""
    from repro.core.parallel import LogicalProcess

    lps = [LogicalProcess(f"lp{i}", seed=i) for i in range(3)]
    for i, lp in enumerate(lps):
        lp.connect(lps[(i + 1) % 3], lookahead=0.5)
    if observed:
        from repro.obs import Observation

        Observation(trace=True, profile=True, telemetry=True).attach_lps(lps)
    traces = {lp.name: [] for lp in lps}
    for lp in lps:
        lp.sim.pre_event_hooks.append(
            lambda ev, log=traces[lp.name]: log.append(
                (round(ev.time, 12), ev.priority, ev.seq, ev.label)))

    def on_token(lp, msg):
        if msg.payload < 30:
            nxt = f"lp{(int(lp.name[2:]) + 1) % 3}"
            lp.send(nxt, "token", msg.payload + 1)
        if msg.payload % 4 == 0:  # local work fans out from the dispatch
            lp.sim.schedule(0.25, lambda: None, label=f"work{msg.payload}")

    for lp in lps:
        lp.on_message("token", on_token)
    lps[0].sim.schedule(0.0, lps[0].send, "lp1", "token", 0)
    executor_factory().run(lps, until=40.0)
    clocks = {lp.name: round(lp.sim.now, 12) for lp in lps}
    events = {lp.name: lp.sim.events_executed for lp in lps}
    return traces, clocks, events


@pytest.mark.parametrize("executor_factory", [
    lambda: _parallel().SequentialExecutor(),
    lambda: _parallel().CMBExecutor(),
    lambda: _parallel().WindowExecutor(),
    lambda: _parallel().WindowExecutor(threads=2),
], ids=["sequential", "cmb", "window", "window-threaded"])
def test_traced_parallel_stream_identical(executor_factory):
    """Tracing a distributed run leaves every LP's stream untouched."""
    plain = _run_parallel_reference(executor_factory, observed=False)
    traced = _run_parallel_reference(executor_factory, observed=True)
    assert traced == plain


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_pop_if_le_horizon_boundary(kind):
    """Events exactly at the horizon fire; later ones stay queued."""
    sim = Simulator(queue=kind)
    seen = []
    sim.schedule_at(1.0, seen.append, 1)
    sim.schedule_at(2.0, seen.append, 2)
    sim.schedule_at(2.0 + 1e-9, seen.append, 3)
    sim.run(until=2.0)
    assert seen == [1, 2]
    assert sim.pending == 1
    sim.run()
    assert seen == [1, 2, 3]
