"""Trace equivalence: fused single-call dispatch vs. the legacy peek+pop loop.

The kernel's ``run()`` was restructured to touch the event list once per
firing (``pop_if_le``) instead of twice (``peek`` then ``pop``).  That is a
pure protocol change: for a fixed seed the executed event stream — times,
labels, sequence numbers, and the final clock — must be byte-identical to
the old loop's, on every queue structure.  These tests pin that guarantee.
"""

import math

import pytest

from repro.core import Priority, Simulator
from repro.core.errors import SchedulingError, StopSimulation
from repro.core.queues import QUEUE_FACTORIES

ALL_KINDS = sorted(QUEUE_FACTORIES)


class LegacyPeekPopSimulator(Simulator):
    """The pre-change dispatch loop, kept verbatim as the reference."""

    def run(self, until=None, max_events=None):
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        budget = math.inf if max_events is None else int(max_events)
        try:
            while not self._stopped:
                ev = self._queue.peek()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    break
                popped = self._queue.pop()
                assert popped is ev
                self._now = ev.time
                self._events_executed += 1
                if self.pre_event_hooks:
                    for hook in self.pre_event_hooks:
                        hook(ev)
                try:
                    ev.fire()
                except StopSimulation as sig:
                    self._stopped = True
                    self._stop_reason = sig.reason or "StopSimulation"
                if self._events_executed >= budget:
                    raise SchedulingError(
                        f"max_events budget of {max_events} exhausted at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False


def _run_reference_model(sim_cls, kind, seed=42):
    """A branching model with cancellations, priorities, and ties.

    Returns the executed trace as (time, priority, seq, label) rows captured
    by a pre-event hook — exactly what a TraceRecorder would see.
    """
    sim = sim_cls(queue=kind, seed=seed)
    trace = []
    sim.pre_event_hooks.append(
        lambda ev: trace.append((round(ev.time, 12), ev.priority, ev.seq, ev.label)))
    stream = sim.stream("model")
    timers = []

    def arrival(i):
        if i < 120:
            sim.schedule(stream.exponential(1.0), arrival, i + 1, label=f"arr{i+1}")
        # park a timer and cancel an older one: builds dead records
        timers.append(sim.schedule(50.0 + stream.exponential(5.0), _noop,
                                   label=f"timer{i}"))
        if len(timers) > 3:
            timers.pop(0).cancel()
        if i % 7 == 0:
            # same-timestamp burst across priority bands
            sim.schedule(0.0, _noop, priority=Priority.URGENT, label=f"u{i}")
            sim.schedule(0.0, _noop, priority=Priority.LOW, label=f"l{i}")

    def _noop():
        pass

    sim.schedule(0.0, arrival, 0, label="arr0")
    sim.run(until=40.0)
    sim.run()  # drain the surviving timers in a second run
    return trace, sim.now, sim.events_executed


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_fused_dispatch_trace_identical_to_peek_pop(kind):
    """Same seed => identical executed event stream under both protocols."""
    fused = _run_reference_model(Simulator, kind)
    legacy = _run_reference_model(LegacyPeekPopSimulator, kind)
    assert fused == legacy


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_fused_dispatch_trace_identical_across_seeds(kind):
    for seed in (0, 7, 1234):
        assert (_run_reference_model(Simulator, kind, seed)
                == _run_reference_model(LegacyPeekPopSimulator, kind, seed))


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_pop_if_le_horizon_boundary(kind):
    """Events exactly at the horizon fire; later ones stay queued."""
    sim = Simulator(queue=kind)
    seen = []
    sim.schedule_at(1.0, seen.append, 1)
    sim.schedule_at(2.0, seen.append, 2)
    sim.schedule_at(2.0 + 1e-9, seen.append, 3)
    sim.run(until=2.0)
    assert seen == [1, 2]
    assert sim.pending == 1
    sim.run()
    assert seen == [1, 2, 3]
