"""Tests for jobs, lifecycle state machine, and DAGs."""

import math

import pytest

from repro.core import ConfigurationError
from repro.middleware import Dag, Job, JobState
from repro.network import FileSpec


def job(i=1, length=100.0, **kw):
    return Job(id=i, length=length, **kw)


class TestJobLifecycle:
    def test_legal_path(self):
        j = job()
        for state in (JobState.QUEUED, JobState.STAGING, JobState.RUNNING, JobState.DONE):
            j.transition(state, 1.0)
        assert j.state is JobState.DONE
        assert len(j.history) == 4

    def test_skip_staging_allowed(self):
        j = job()
        j.transition(JobState.QUEUED, 0.0)
        j.transition(JobState.RUNNING, 1.0)
        assert j.started == 1.0

    def test_illegal_transition_rejected(self):
        j = job()
        with pytest.raises(ConfigurationError, match="illegal transition"):
            j.transition(JobState.DONE, 0.0)

    def test_done_is_terminal(self):
        j = job()
        j.transition(JobState.QUEUED, 0.0)
        j.transition(JobState.RUNNING, 0.0)
        j.transition(JobState.DONE, 5.0)
        with pytest.raises(ConfigurationError):
            j.transition(JobState.RUNNING, 6.0)

    def test_turnaround_and_deadline(self):
        j = job(deadline=10.0)
        j.submitted = 1.0
        j.transition(JobState.QUEUED, 1.0)
        j.transition(JobState.RUNNING, 2.0)
        j.transition(JobState.DONE, 8.0)
        assert j.turnaround == 7.0
        assert j.met_deadline

    def test_unfinished_turnaround_nan(self):
        assert math.isnan(job().turnaround)

    def test_input_bytes(self):
        j = job(input_files=(FileSpec("a", 10.0), FileSpec("b", 5.0)))
        assert j.input_bytes == 15.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Job(id=1, length=0.0)
        with pytest.raises(ConfigurationError):
            Job(id=1, length=10.0, output_size=-1.0)


class TestDag:
    def diamond(self):
        d = Dag()
        for i in range(4):
            d.add_job(job(i))
        d.add_edge(0, 1, data=10.0)
        d.add_edge(0, 2, data=20.0)
        d.add_edge(1, 3)
        d.add_edge(2, 3)
        return d

    def test_roots_and_leaves(self):
        d = self.diamond()
        assert [j.id for j in d.roots()] == [0]
        assert [j.id for j in d.leaves()] == [3]

    def test_topological_order_valid(self):
        d = self.diamond()
        order = [j.id for j in d.topological_order()]
        assert order.index(0) < order.index(1) < order.index(3)
        assert order.index(0) < order.index(2) < order.index(3)

    def test_duplicate_job_rejected(self):
        d = Dag()
        d.add_job(job(1))
        with pytest.raises(ConfigurationError, match="duplicate"):
            d.add_job(job(1))

    def test_cycle_rejected(self):
        d = self.diamond()
        with pytest.raises(ConfigurationError, match="cycle"):
            d.add_edge(3, 0)
        # the failed edge must not have been half-added
        assert 0 not in d.successors(3)

    def test_self_edge_rejected(self):
        d = self.diamond()
        with pytest.raises(ConfigurationError):
            d.add_edge(1, 1)

    def test_unknown_endpoint_rejected(self):
        d = self.diamond()
        with pytest.raises(ConfigurationError):
            d.add_edge(0, 99)

    def test_edge_data_recorded(self):
        d = self.diamond()
        assert d.successors(0) == {1: 10.0, 2: 20.0}
        assert d.predecessors(3) == {1: 0.0, 2: 0.0}

    def test_critical_path(self):
        d = Dag()
        for i in range(3):
            d.add_job(job(i, length=100.0))
        d.add_edge(0, 1, data=50.0)
        d.add_edge(1, 2, data=50.0)
        # chain: 3 * (100/10) + 2 * (50/25) = 30 + 4 = 34
        assert d.critical_path_length(rate=10.0, bandwidth=25.0) == pytest.approx(34.0)

    def test_critical_path_validates(self):
        d = self.diamond()
        with pytest.raises(ConfigurationError):
            d.critical_path_length(rate=0.0, bandwidth=1.0)

    def test_empty_dag(self):
        d = Dag()
        assert d.topological_order() == []
        assert len(d) == 0
