"""Tests for run-to-run output analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    compare_monitors,
    compare_samples,
    plot_series,
    reduce_series,
    welch_t,
)
from repro.core import Monitor, StreamFactory, ValidationError


class TestWelch:
    def test_clearly_different_samples(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95]
        b = [5.0, 5.2, 4.9, 5.1, 5.05]
        t, p = welch_t(a, b)
        assert p < 1e-6 and t < 0

    def test_identical_distributions_not_significant(self):
        s = StreamFactory(3).stream("w")
        a = [s.exponential(1.0) for _ in range(40)]
        b = [s.exponential(1.0) for _ in range(40)]
        _, p = welch_t(a, b)
        assert p > 0.01  # same distribution: rarely "significant"

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            welch_t([1.0], [2.0, 3.0])


class TestCompareSamples:
    def test_significant_winner(self):
        cmp = compare_samples("fast", [1.0, 1.1, 0.9, 1.0],
                              "slow", [3.0, 3.1, 2.9, 3.0])
        assert cmp.significant and cmp.winner == "fast"
        assert cmp.diff == pytest.approx(-2.0)
        assert "fast is lower" in cmp.render()

    def test_tie_reported(self):
        s = StreamFactory(5).stream("t")
        a = [s.exponential(2.0) for _ in range(30)]
        b = [s.exponential(2.0) for _ in range(30)]
        cmp = compare_samples("a", a, "b", b)
        if not cmp.significant:  # overwhelmingly likely
            assert cmp.winner == "tie"
            assert "no significant difference" in cmp.render()

    def test_bad_alpha(self):
        with pytest.raises(ValidationError):
            compare_samples("a", [1, 2], "b", [3, 4], alpha=1.5)


class TestCompareMonitors:
    def monitors(self):
        a, b = Monitor("A"), Monitor("B")
        for v in (1.0, 2.0, 3.0):
            a.tally("wait").record(v)
        for v in (2.0, 4.0, 6.0):
            b.tally("wait").record(v)
        a.counter("done").increment(1.0)
        b.counter("done").increment(1.0, by=2)
        return a, b

    def test_shared_collectors_diffed(self):
        a, b = self.monitors()
        lines = compare_monitors(a, b)
        joined = "\n".join(lines)
        assert "tally.wait.mean" in joined
        assert "+100.0%" in joined  # mean 2 -> 4

    def test_one_sided_collectors_flagged(self):
        a, b = self.monitors()
        a.tally("extra").record(1.0)
        lines = compare_monitors(a, b, "left", "right")
        assert any("only in left" in line for line in lines)


class TestSeriesReduction:
    def test_short_series_unchanged(self):
        s = [(0.0, 1.0), (1.0, 2.0)]
        assert reduce_series(s, buckets=10) == s

    def test_reduces_to_bucket_count(self):
        s = [(float(i), float(i % 7)) for i in range(1000)]
        out = reduce_series(s, buckets=20)
        assert len(out) <= 20
        times = [t for t, _ in out]
        assert times == sorted(times)

    def test_bucket_means_bounded_by_extremes(self):
        s = [(float(i), math.sin(i / 10.0)) for i in range(500)]
        out = reduce_series(s, buckets=25)
        lo, hi = min(v for _, v in s), max(v for _, v in s)
        assert all(lo - 1e-9 <= v <= hi + 1e-9 for _, v in out)

    def test_degenerate_time_span(self):
        s = [(5.0, 1.0)] * 50
        assert reduce_series(s, buckets=10) == [(5.0, 1.0)]

    def test_bad_buckets(self):
        with pytest.raises(ValidationError):
            reduce_series([(0.0, 1.0)], buckets=0)

    def test_plot_series_renders(self):
        s = [(float(i), float(i * i)) for i in range(200)]
        out = plot_series(s, label="quadratic")
        assert "quadratic" in out and "*" in out


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1e3), st.floats(-1e3, 1e3)),
                min_size=2, max_size=300))
def test_property_reduction_preserves_time_order(points):
    series = sorted(points)
    out = reduce_series(series, buckets=15)
    times = [t for t, _ in out]
    assert times == sorted(times)
    assert len(out) <= max(15, 1)
