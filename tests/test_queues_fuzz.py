"""Differential fuzzing of all five event-list structures.

Every structure is driven through seeded random operation sequences —
push / cancel / pop / pop_if_le / peek / compact — and compared **after
every operation** against a plain ``heapq`` reference model.  The events
are shared objects, so a ``cancel()`` hits both sides; the reference model
uses pure lazy deletion and never touches the ``_on_cancel`` hook (the real
queue claims it at push time).

Timestamp distributions are chosen adversarially: uniform spread, heavy
ties (many events at identical times, where ordering falls to the
(priority, seq) tiebreak), short-range exponential with rare huge outliers
(stretches CalendarQueue bucket widths and forces resizes), and a drifting
narrow band (the LadderQueue's rung-spawn pattern).

Seeds: a fixed set always runs in CI; set ``REPRO_FUZZ_RANDOM=1`` for a
short randomized burst (each seed is printed in the failure message, and
``REPRO_FUZZ_SEED=<n>`` replays a single one).
"""

import heapq
import itertools
import os
import random

import pytest

from repro.core import Event, Priority
from repro.core.queues import QUEUE_FACTORIES, AdaptiveQueue, make_queue

ALL_KINDS = sorted(QUEUE_FACTORIES)

#: The registry's AdaptiveQueue defaults need thousands of operations per
#: window before it even considers migrating; this variant shrinks every
#: threshold so a 400-op run crosses them repeatedly — the point is to
#: catch ordering divergence *across* backend migrations, not only within
#: one structure.
SMALL_ADAPTIVE = "adaptive-small"

FUZZ_KINDS = ALL_KINDS + [SMALL_ADAPTIVE]


def build_queue(kind: str):
    if kind == SMALL_ADAPTIVE:
        return AdaptiveQueue(window=24, ladder_size=48, calendar_size=12,
                             calendar_skew=50.0, calendar_cancel=0.5)
    return make_queue(kind)

FIXED_SEEDS = [2009, 40962, 777216]

OPS_PER_RUN = 400

#: name -> draw(rng, clock) returning a timestamp >= clock (engines only
#: ever schedule at or after `now`, and the structures may exploit that).
DISTRIBUTIONS = {
    "uniform": lambda rng, clock: clock + rng.uniform(0.0, 100.0),
    "ties": lambda rng, clock: clock + float(rng.randrange(4)),
    "skew": lambda rng, clock: clock + (rng.expovariate(8.0)
                                        if rng.random() > 0.05
                                        else rng.uniform(1e3, 1e6)),
    "drift": lambda rng, clock: clock + 0.01 + rng.uniform(0.0, 0.5),
}

PRIORITIES = (Priority.URGENT, Priority.HIGH, Priority.NORMAL)


class RefQueue:
    """The specification: a heapq with lazy deletion, nothing else."""

    def __init__(self):
        self._heap = []

    def push(self, ev):
        heapq.heappush(self._heap, (ev.sort_key, ev))

    def _settle(self):
        while self._heap and self._heap[0][1]._cancelled:
            heapq.heappop(self._heap)

    def peek(self):
        self._settle()
        return self._heap[0][1] if self._heap else None

    def pop(self):
        ev = self.peek()
        if ev is not None:
            heapq.heappop(self._heap)
        return ev

    def pop_if_le(self, horizon):
        ev = self.peek()
        if ev is None or ev.time > horizon:
            return None
        heapq.heappop(self._heap)
        return ev

    def live(self):
        return [ev for _, ev in self._heap if not ev._cancelled]


def run_differential(kind: str, seed: int, dist_name: str,
                     ops: int = OPS_PER_RUN) -> None:
    """Drive one (structure, seed, distribution) run; raises on divergence."""
    tag = f"kind={kind} seed={seed} dist={dist_name}"
    rng = random.Random(seed)
    draw = DISTRIBUTIONS[dist_name]
    q = build_queue(kind)
    ref = RefQueue()
    seq = itertools.count()
    clock = 0.0
    outstanding = []  # events pushed and not yet seen popped (may be dead)

    for step in range(ops):
        where = f"{tag} step={step}"
        r = rng.random()
        if r < 0.45 or not ref.live():
            t = draw(rng, clock)
            ev = Event(t, next(seq), lambda: None,
                       priority=rng.choice(PRIORITIES))
            q.push(ev)
            ref.push(ev)
            outstanding.append(ev)
        elif r < 0.60:
            victim = rng.choice(outstanding)
            victim.cancel()  # idempotent; hits both queues via the flag
        elif r < 0.80:
            horizon = clock + rng.uniform(0.0, 50.0)
            got, want = q.pop_if_le(horizon), ref.pop_if_le(horizon)
            assert got is want, (f"{where}: pop_if_le({horizon}) returned "
                                 f"{got!r}, reference says {want!r}")
            if got is not None:
                clock = max(clock, got.time)
        elif r < 0.92:
            got, want = q.pop(), ref.pop()
            assert got is want, (f"{where}: pop() returned {got!r}, "
                                 f"reference says {want!r}")
            if got is not None:
                clock = max(clock, got.time)
        elif r < 0.97:
            got, want = q.peek(), ref.peek()
            assert got is want, (f"{where}: peek() returned {got!r}, "
                                 f"reference says {want!r}")
        else:
            q.compact()
        assert q.live_len() == len(ref.live()), (
            f"{where}: live_len {q.live_len()} != reference "
            f"{len(ref.live())}")

    # Drain: the full remaining order must match, then both must be empty.
    while True:
        got, want = q.pop(), ref.pop()
        assert got is want, (f"{tag} drain: pop() returned {got!r}, "
                             f"reference says {want!r}")
        if want is None:
            break
    assert not q, f"{tag}: queue truthy after drain"


@pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("seed", FIXED_SEEDS)
@pytest.mark.parametrize("kind", FUZZ_KINDS)
def test_differential_fixed_seeds(kind, seed, dist_name):
    run_differential(kind, seed, dist_name)


def test_small_adaptive_migrates_during_fuzz():
    """The shrunken variant must actually exercise migrations (else the
    matrix silently tests nothing beyond the plain adaptive entry)."""
    q = build_queue(SMALL_ADAPTIVE)
    rng = random.Random(FIXED_SEEDS[0])
    seq = itertools.count()
    clock = 0.0
    for _ in range(300):
        if rng.random() < 0.6:
            q.push(Event(clock + rng.uniform(0.0, 100.0), next(seq),
                         lambda: None))
        else:
            ev = q.pop()
            if ev is not None:
                clock = max(clock, ev.time)
    assert q.migrations > 0


@pytest.mark.skipif(not os.environ.get("REPRO_FUZZ_RANDOM")
                    and not os.environ.get("REPRO_FUZZ_SEED"),
                    reason="randomized burst: set REPRO_FUZZ_RANDOM=1 "
                           "(or REPRO_FUZZ_SEED=<n> to replay one seed)")
def test_differential_random_burst():
    """A short burst of fresh seeds; any failure prints the seed to replay."""
    fixed = os.environ.get("REPRO_FUZZ_SEED")
    if fixed:
        seeds = [int(fixed)]
    else:
        seeds = [random.SystemRandom().randrange(2**32) for _ in range(3)]
    for seed in seeds:
        for kind in FUZZ_KINDS:
            for dist_name in sorted(DISTRIBUTIONS):
                # assertion messages carry the seed; REPRO_FUZZ_SEED replays
                run_differential(kind, seed, dist_name)
