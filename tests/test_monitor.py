"""Tests for statistics collectors and reporting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Counter, Monitor, Tally, TimeWeighted, ascii_plot


class TestTally:
    def test_empty_stats_are_nan(self):
        t = Tally("x")
        assert math.isnan(t.mean) and math.isnan(t.minimum)
        assert t.count == 0

    def test_basic_moments(self):
        t = Tally("x")
        for v in [2.0, 4.0, 6.0]:
            t.record(v)
        assert t.count == 3
        assert t.mean == 4.0
        assert t.minimum == 2.0 and t.maximum == 6.0
        assert abs(t.variance - 4.0) < 1e-12
        assert abs(t.std - 2.0) < 1e-12
        assert t.total == 12.0

    def test_quantile(self):
        t = Tally("x")
        for v in range(101):
            t.record(float(v))
        assert t.quantile(0.5) == 50.0
        assert t.quantile(0.0) == 0.0

    def test_quantile_requires_samples(self):
        t = Tally("x", keep_samples=False)
        t.record(1.0)
        with pytest.raises(ConfigurationError):
            t.quantile(0.5)

    def test_confidence_interval_covers_mean(self):
        t = Tally("x")
        for v in [10.0] * 50:
            t.record(v)
        mean, half = t.confidence_interval()
        assert mean == 10.0 and half == 0.0

    def test_confidence_interval_single_sample_infinite(self):
        t = Tally("x")
        t.record(1.0)
        _, half = t.confidence_interval()
        assert math.isinf(half)

    def test_batch_means_reasonable(self):
        t = Tally("x")
        for i in range(200):
            t.record(float(i % 10))
        mean, half = t.batch_means(10)
        assert abs(mean - 4.5) < 1e-9
        assert half >= 0.0


class TestTimeWeighted:
    def test_time_average_steps(self):
        lv = TimeWeighted("L")
        lv.set(0.0, 2.0)   # level 0 during [start..0], then 2
        lv.set(10.0, 4.0)  # level 2 during [0,10]
        lv.set(20.0, 0.0)  # level 4 during [10,20]
        assert lv.mean(20.0) == pytest.approx((2 * 10 + 4 * 10) / 20)

    def test_mean_extends_to_t_end(self):
        lv = TimeWeighted("L", initial=3.0)
        assert lv.mean(10.0) == pytest.approx(3.0)

    def test_add_delta(self):
        lv = TimeWeighted("L")
        lv.add(1.0, 2.0)
        lv.add(2.0, -1.0)
        assert lv.level == 1.0

    def test_min_max_track_levels(self):
        lv = TimeWeighted("L", initial=5.0)
        lv.set(1.0, 7.0)
        lv.set(2.0, 3.0)
        assert lv.minimum == 3.0 and lv.maximum == 7.0

    def test_backwards_time_rejected(self):
        lv = TimeWeighted("L")
        lv.set(5.0, 1.0)
        with pytest.raises(ConfigurationError, match="backwards"):
            lv.set(4.0, 2.0)

    def test_series_retention(self):
        lv = TimeWeighted("L", keep_series=True)
        lv.set(1.0, 2.0)
        assert lv.series == [(0.0, 0.0), (1.0, 2.0)]

    def test_variance_constant_level_zero(self):
        lv = TimeWeighted("L", initial=4.0)
        lv.set(10.0, 4.0)
        assert lv.variance(10.0) == pytest.approx(0.0)


class TestCounter:
    def test_count_and_rate(self):
        c = Counter("jobs")
        c.increment(0.0)
        c.increment(5.0)
        c.increment(10.0, by=2)
        assert c.count == 4
        assert c.rate() == pytest.approx(4 / 10)

    def test_rate_with_explicit_end(self):
        c = Counter("jobs")
        c.increment(0.0)
        assert c.rate(t_end=20.0) == pytest.approx(1 / 20)

    def test_empty_rate_zero(self):
        assert Counter("x").rate() == 0.0

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ConfigurationError):
            c.increment(0.0, by=-1)


class TestMonitor:
    def test_collectors_created_on_first_use_and_cached(self):
        m = Monitor()
        t1 = m.tally("w")
        t2 = m.tally("w")
        assert t1 is t2
        assert m.level("q") is m.level("q")
        assert m.counter("c") is m.counter("c")

    def test_summary_structure(self):
        m = Monitor("test")
        m.tally("wait").record(2.0)
        m.level("queue").set(10.0, 3.0)
        m.counter("done").increment(1.0)
        s = m.summary(t_end=10.0)
        assert s["tally.wait"]["mean"] == 2.0
        assert "level.queue" in s and "counter.done" in s

    def test_report_text_contains_names(self):
        m = Monitor("rpt")
        m.tally("wait").record(1.0)
        out = m.report()
        assert "rpt" in out and "tally.wait" in out

    def test_csv_export_parses(self):
        m = Monitor()
        m.tally("x").record(1.0)
        lines = m.to_csv().strip().splitlines()
        assert lines[0] == "collector,statistic,value"
        assert any(line.startswith("tally.x,mean,") for line in lines)

    def test_empty_collectors_render_dash_not_nan(self):
        # Regression: an empty tally/level reduces to NaN; the human tables
        # must show an em dash, never the literal "nan".
        m = Monitor("empty")
        m.tally("wait")        # no observations
        m.level("queue")       # no samples
        for text in (m.report(), m.to_markdown()):
            assert "nan" not in text.lower()
            assert "—" in text

    def test_csv_keeps_nan_lossless(self):
        # Machine format stays repr()-exact so round-trips detect emptiness.
        m = Monitor()
        m.tally("wait")
        assert "tally.wait,mean,nan" in m.to_csv()

    def test_markdown_table_shape(self):
        m = Monitor("md")
        m.tally("wait").record(2.5)
        m.counter("done").increment(1.0)
        lines = m.to_markdown(t_end=10.0).splitlines()
        assert lines[0].startswith("| collector |")
        assert set(lines[1].replace("|", "").replace("-", "").replace(":", "")) <= {""}
        width = lines[0].count("|")
        assert all(line.count("|") == width for line in lines)
        assert any("`tally.wait`" in line for line in lines)


class TestAsciiPlot:
    def test_plot_renders_grid(self):
        out = ascii_plot([0, 1, 2, 3], [0, 1, 4, 9], label="sq")
        assert "sq" in out and "*" in out

    def test_empty_data(self):
        assert ascii_plot([], []) == "(no data)"

    def test_mismatched_lengths(self):
        assert ascii_plot([1, 2], [1]) == "(no data)"


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_property_tally_matches_numpy(values):
    import numpy as np

    t = Tally("p")
    for v in values:
        t.record(v)
    arr = np.asarray(values)
    assert t.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
    assert t.minimum == arr.min() and t.maximum == arr.max()
    if len(values) > 1:
        assert t.variance == pytest.approx(arr.var(ddof=1), rel=1e-6, abs=1e-5)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.001, max_value=100),
                          st.floats(min_value=0, max_value=50)),
                min_size=1, max_size=50))
def test_property_time_weighted_mean_bounded(steps):
    """The time-average always lies within [min level, max level]."""
    lv = TimeWeighted("L", initial=steps[0][1])
    t = 0.0
    for dt, level in steps:
        t += dt
        lv.set(t, level)
    m = lv.mean(t)
    assert lv.minimum - 1e-9 <= m <= lv.maximum + 1e-9
