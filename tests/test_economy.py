"""Tests for the GridSim-style deadline/budget economy broker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Simulator
from repro.hosts import Grid, Site, SpaceSharedMachine
from repro.middleware import EconomyBroker, Job, JobState, ResourceOffer
from repro.network import Topology


def priced_grid(sim, specs=((100.0, 1, 1.0), (500.0, 1, 5.0))):
    """specs: (rating, pes, price) per site; returns (grid, offers)."""
    topo = Topology()
    names = [f"R{i}" for i in range(len(specs))]
    for n in names:
        topo.add_node(n)
    sites, offers = [], []
    for n, (rating, pes, price) in zip(names, specs):
        sites.append(Site(sim, n, machines=[
            SpaceSharedMachine(sim, pes=pes, rating=rating, name=f"{n}-m")]))
        offers.append(ResourceOffer(n, price))
    return Grid(sim, topo, sites), offers


def gridlets(n, length=100.0):
    return [Job(id=i, length=length) for i in range(n)]


class TestDispatch:
    def test_time_opt_prefers_fast_resource(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        broker = EconomyBroker(sim, grid, offers, deadline=100.0, budget=1e9,
                               strategy="time")
        batch = gridlets(4)
        broker.submit_all(batch)
        sim.run()
        fast_jobs = [j for j in broker.completed if j.site == "R1"]
        assert len(fast_jobs) >= 3  # fast resource absorbs most work

    def test_cost_opt_prefers_cheap_resource(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        broker = EconomyBroker(sim, grid, offers, deadline=1e9, budget=1e9,
                               strategy="cost")
        batch = gridlets(4)
        broker.submit_all(batch)
        sim.run()
        assert all(j.site == "R0" for j in broker.completed)

    def test_cost_opt_escalates_when_deadline_tight(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        # cheap site runs 100 MI in 1s each, FCFS; deadline 2.5 allows only
        # ~2 jobs there; the rest must use the expensive fast site
        broker = EconomyBroker(sim, grid, offers, deadline=2.5, budget=1e9,
                               strategy="cost")
        batch = gridlets(6)
        broker.submit_all(batch)
        sim.run()
        sites = {j.site for j in broker.completed}
        assert "R1" in sites and "R0" in sites
        assert broker.deadline_misses == 0

    def test_budget_exhaustion_fails_jobs(self):
        sim = Simulator()
        grid, offers = priced_grid(sim, specs=((100.0, 1, 1.0),))
        # each 100 MI job costs 100; budget covers two
        broker = EconomyBroker(sim, grid, offers, deadline=1e9, budget=250.0,
                               strategy="cost")
        batch = gridlets(5)
        broker.submit_all(batch)
        sim.run()
        assert len(broker.completed) == 2
        assert len(broker.failed) == 3
        assert broker.spent <= 250.0

    def test_infeasible_deadline_fails_everything(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        broker = EconomyBroker(sim, grid, offers, deadline=0.01, budget=1e9)
        batch = gridlets(3)
        broker.submit_all(batch)
        sim.run()
        assert broker.completion_rate == 0.0
        assert all(j.state is JobState.FAILED for j in batch)

    def test_spend_accounting(self):
        sim = Simulator()
        grid, offers = priced_grid(sim, specs=((100.0, 4, 2.0),))
        broker = EconomyBroker(sim, grid, offers, deadline=1e9, budget=1e9)
        broker.submit_all(gridlets(3, length=50.0))
        sim.run()
        assert broker.spent == pytest.approx(3 * 50.0 * 2.0)

    def test_summary_shape(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        broker = EconomyBroker(sim, grid, offers, deadline=100.0, budget=1e6)
        broker.submit_all(gridlets(2))
        sim.run()
        s = broker.summary()
        assert s["completed"] == 2 and s["spent"] > 0


class TestValidation:
    def test_bad_parameters(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        with pytest.raises(ConfigurationError):
            EconomyBroker(sim, grid, offers, deadline=0.0, budget=10.0)
        with pytest.raises(ConfigurationError):
            EconomyBroker(sim, grid, offers, deadline=10.0, budget=-1.0)
        with pytest.raises(ConfigurationError):
            EconomyBroker(sim, grid, offers, deadline=10.0, budget=10.0,
                          strategy="magic")
        with pytest.raises(ConfigurationError):
            EconomyBroker(sim, grid, [], deadline=10.0, budget=10.0)

    def test_duplicate_offer_rejected(self):
        sim = Simulator()
        grid, offers = priced_grid(sim)
        with pytest.raises(ConfigurationError, match="duplicate"):
            EconomyBroker(sim, grid, list(offers) + [offers[0]],
                          deadline=10.0, budget=10.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceOffer("X", -1.0)


@settings(max_examples=20, deadline=None)
@given(budget=st.floats(min_value=0.0, max_value=2000.0),
       n=st.integers(min_value=1, max_value=10),
       strategy=st.sampled_from(["time", "cost"]))
def test_property_never_overspends(budget, n, strategy):
    """The broker invariant: realized spend <= budget, always."""
    sim = Simulator()
    grid, offers = priced_grid(sim)
    broker = EconomyBroker(sim, grid, offers, deadline=1e9, budget=budget,
                           strategy=strategy)
    broker.submit_all(gridlets(n))
    sim.run()
    assert broker.spent <= budget + 1e-9
    assert len(broker.completed) + len(broker.failed) == n
