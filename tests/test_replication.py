"""Tests for replication strategies: pull, push, economic, agent."""

import pytest

from repro.core import ConfigurationError, Simulator
from repro.hosts import Disk, Grid, Site, SpaceSharedMachine
from repro.middleware import (
    DataReplicationAgent,
    EconomicReplication,
    GridRunner,
    Job,
    LfuReplication,
    LocalScheduler,
    LruReplication,
    NoReplication,
    PushReplication,
    ReplicaCatalog,
)
from repro.network import FileSpec, Topology


def data_grid(sim, n_sites=3, disk=10_000.0, bw=1e4):
    topo = Topology()
    names = ["SRC"] + [f"W{i}" for i in range(n_sites)]
    topo.add_node("WAN")
    for n in names:
        topo.add_link(n, "WAN", bw, 0.001)
    sites = [Site(sim, "SRC", disk=Disk(sim, 1e12))]
    for i in range(n_sites):
        sites.append(Site(sim, f"W{i}",
                          machines=[SpaceSharedMachine(sim, pes=2, rating=1000.0,
                                                       name=f"W{i}-m")],
                          disk=Disk(sim, disk)))
    grid = Grid(sim, topo, sites)
    return grid


def seed_files(grid, cat, names, size=1000.0):
    specs = []
    for n in names:
        f = FileSpec(n, size)
        grid.site("SRC").store_file(f)
        cat.register(f, "SRC")
        specs.append(f)
    return specs


class TestPullStrategies:
    def run_jobs(self, strategy_cls, n_files=3, n_jobs=6, disk=10_000.0, **kw):
        sim = Simulator(seed=2)
        grid = data_grid(sim, disk=disk)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, [f"f{i}" for i in range(n_files)])
        strat = strategy_cls(sim, grid, cat, protected={"SRC"}, **kw)
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        batch = [Job(id=i, length=100.0, input_files=(files[i % n_files],))
                 for i in range(n_jobs)]
        for i, j in enumerate(batch):
            j.submitted = i * 5.0
        runner.submit_all(batch)
        sim.run()
        return sim, grid, cat, strat, runner

    def test_no_replication_always_refetches(self):
        sim, grid, cat, strat, runner = self.run_jobs(NoReplication)
        assert runner.monitor.counter("remote_fetches").count == 6
        assert strat.replicas_created == 0
        assert not grid.site("W0").has_file("f0")

    def test_lru_caches_after_first_fetch(self):
        sim, grid, cat, strat, runner = self.run_jobs(LruReplication)
        # 3 distinct files: only the first access of each goes remote
        assert runner.monitor.counter("remote_fetches").count == 3
        assert strat.replicas_created == 3
        assert cat.replica_count("f0") == 2

    def test_lru_evicts_oldest_on_pressure(self):
        # disk fits only two 1000B files
        sim, grid, cat, strat, runner = self.run_jobs(LruReplication, disk=2500.0)
        w0 = grid.site("W0").disk
        assert len(w0.files) == 2
        assert strat.replicas_evicted >= 1
        # catalog stays consistent with the disk
        for f in w0.files:
            assert "W0" in cat.locations(f.name)

    def test_lfu_keeps_hot_file(self):
        sim = Simulator()
        grid = data_grid(sim, disk=2500.0)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["hot", "cold1", "cold2"])
        strat = LfuReplication(sim, grid, cat, protected={"SRC"})
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        # hot accessed 4x interleaved with the colds
        pattern = ["hot", "cold1", "hot", "cold2", "hot", "hot"]
        batch = [Job(id=i, length=100.0,
                     input_files=(next(f for f in files if f.name == p),))
                 for i, p in enumerate(pattern)]
        for i, j in enumerate(batch):
            j.submitted = i * 10.0
        runner.submit_all(batch)
        sim.run()
        assert grid.site("W0").has_file("hot")

    def test_economic_vetoes_eviction_of_valuable_file(self):
        sim = Simulator()
        grid = data_grid(sim, disk=1500.0)  # fits exactly one file
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["hot", "once"])
        strat = EconomicReplication(sim, grid, cat, protected={"SRC"},
                                    window=1e6)
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        pattern = ["hot", "hot", "hot", "once"]
        batch = [Job(id=i, length=100.0,
                     input_files=(next(f for f in files if f.name == p),))
                 for i, p in enumerate(pattern)]
        for i, j in enumerate(batch):
            j.submitted = i * 10.0
        runner.submit_all(batch)
        sim.run()
        # 'once' (value 1) must not displace 'hot' (value 3)
        assert grid.site("W0").has_file("hot")
        assert not grid.site("W0").has_file("once")

    def test_protected_site_never_stores(self):
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["f"])
        strat = LruReplication(sim, grid, cat, protected={"SRC", "W0"})
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        runner.submit_all([Job(id=1, length=10.0, input_files=(files[0],))])
        sim.run()
        assert not grid.site("W0").has_file("f")

    def test_last_copy_never_evicted(self):
        """A file whose only replica sits on the worker must survive."""
        sim = Simulator()
        grid = data_grid(sim, disk=1800.0)
        cat = ReplicaCatalog(grid)
        solo = FileSpec("solo", 1000.0)
        grid.site("W0").store_file(solo)
        cat.register(solo, "W0")  # only copy in the system
        files = seed_files(grid, cat, ["other"])
        strat = LruReplication(sim, grid, cat, protected={"SRC"})
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        runner.submit_all([Job(id=1, length=10.0, input_files=(files[0],))])
        sim.run()
        assert grid.site("W0").has_file("solo")  # survived
        assert not grid.site("W0").has_file("other")  # couldn't fit


class TestPush:
    def test_popular_file_gets_pushed(self):
        sim = Simulator()
        grid = data_grid(sim, n_sites=3)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["pop"])
        strat = PushReplication(sim, grid, cat, protected={"SRC"},
                                threshold=2, fanout=2)
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        batch = [Job(id=i, length=10.0, input_files=(files[0],)) for i in range(3)]
        for i, j in enumerate(batch):
            j.submitted = i * 100.0
        runner.submit_all(batch)
        sim.run()
        assert strat.pushes >= 1
        assert cat.replica_count("pop") >= 2

    def test_below_threshold_no_push(self):
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["quiet"])
        strat = PushReplication(sim, grid, cat, threshold=10)
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        runner.submit_all([Job(id=1, length=10.0, input_files=(files[0],))])
        sim.run()
        assert strat.pushes == 0

    def test_validation(self):
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        with pytest.raises(ConfigurationError):
            PushReplication(sim, grid, cat, threshold=0)
        with pytest.raises(ConfigurationError):
            EconomicReplication(sim, grid, cat, window=0.0)


class TestAgent:
    def test_agent_ships_announced_files(self):
        sim = Simulator()
        grid = data_grid(sim, n_sites=2)
        cat = ReplicaCatalog(grid)
        agent = DataReplicationAgent(sim, grid, cat, source="SRC",
                                     targets=["W0", "W1"])
        f = FileSpec("prod-1", 2000.0)
        grid.site("SRC").store_file(f)
        cat.register(f, "SRC")
        agent.announce(f)
        sim.run()
        assert agent.shipped == 2
        assert grid.site("W0").has_file("prod-1")
        assert grid.site("W1").has_file("prod-1")
        assert cat.replica_count("prod-1") == 3

    def test_agent_bounds_in_flight(self):
        sim = Simulator()
        grid = data_grid(sim, n_sites=1, bw=100.0)
        cat = ReplicaCatalog(grid)
        agent = DataReplicationAgent(sim, grid, cat, source="SRC",
                                     targets=["W0"], max_in_flight=1)
        for i in range(5):
            f = FileSpec(f"p{i}", 1000.0)
            grid.site("SRC").store_file(f)
            cat.register(f, "SRC")
            agent.announce(f)
        assert agent.backlog("W0") == 4  # one flying, four queued
        sim.run()
        assert agent.shipped == 5
        assert agent.total_backlog == 0

    def test_agent_validation(self):
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        with pytest.raises(ConfigurationError):
            DataReplicationAgent(sim, grid, cat, source="SRC", targets=[])
        with pytest.raises(ConfigurationError):
            DataReplicationAgent(sim, grid, cat, source="SRC",
                                 targets=["W0"], max_in_flight=0)


class TestFaultTolerance:
    """Failure-path guarantees: outages must never corrupt the catalog."""

    def _cut_src_link(self, sim, grid):
        from repro.faults import FaultGraph

        g = FaultGraph(sim, grid.topology, grid.network)
        g.add_link("l", "SRC", "WAN")
        return g

    def test_last_copy_guard_when_holder_site_dies(self):
        """Cutting the holder's access link must not lose or duplicate the
        catalog's view of the last copy, and the eviction guard must keep
        refusing to delete it."""
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["f0"])
        strat = LruReplication(sim, grid, cat, protected={"SRC"})
        g = self._cut_src_link(sim, grid)
        g.fail("l")
        ticket = grid.transfers.fetch(files[0], "SRC", "W0")
        sim.run()
        assert ticket.failed
        # the sole replica is still registered exactly where it lives
        assert cat.has("f0") and cat.replica_count("f0") == 1
        assert cat.locations("f0") == ["SRC"]
        assert not grid.site("W0").has_file("f0")
        # and the last-copy guard still shields it from eviction
        assert "f0" not in strat._evictable("SRC", FileSpec("new", 100.0))

    def test_failed_fetch_registers_no_phantom_replica(self):
        """A broker staging fetch that dies with the link must not call
        on_fetch: no replica, no remote-read accounting."""
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["f0"])
        strat = LruReplication(sim, grid, cat, protected={"SRC"})
        runner = GridRunner(sim, grid, scheduler=LocalScheduler("W0"),
                            catalog=cat, replication=strat)
        g = self._cut_src_link(sim, grid)
        g.fail("l")
        runner.submit_all([Job(id=1, length=10.0, input_files=(files[0],))])
        sim.run()
        assert strat.replicas_created == 0
        assert cat.replica_count("f0") == 1
        assert runner.monitor.counter("remote_fetches").count == 0

    def test_agent_requeues_and_ships_after_repair(self):
        sim = Simulator()
        grid = data_grid(sim)
        cat = ReplicaCatalog(grid)
        files = seed_files(grid, cat, ["d0"])
        agent = DataReplicationAgent(sim, grid, cat, source="SRC",
                                     targets=["W0"], retry_delay=2.0)
        g = self._cut_src_link(sim, grid)
        g.fail("l")
        agent.announce(files[0])
        sim.schedule(10.0, g.repair, "l")
        sim.run()
        assert agent.shipped == 1
        assert grid.site("W0").has_file("d0")
        assert cat.replica_count("d0") == 2
        assert agent.total_backlog == 0
