"""Tests for the flow-level network: max-min fairness, event timing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Process, Simulator
from repro.network import FlowNetwork, Topology, dumbbell


def simple_net(bw=100.0, latency=0.0, efficiency=1.0):
    t = Topology()
    t.add_link("a", "b", bw, latency)
    sim = Simulator()
    return sim, FlowNetwork(sim, t, efficiency=efficiency)


class TestSingleFlow:
    def test_lone_flow_gets_full_capacity(self):
        sim, net = simple_net(bw=100.0)
        h = net.transfer("a", "b", 1000.0)
        sim.run()
        assert h.finished == pytest.approx(10.0)
        assert h.throughput == pytest.approx(100.0)

    def test_latency_prepended(self):
        sim, net = simple_net(bw=100.0, latency=2.0)
        h = net.transfer("a", "b", 1000.0)
        sim.run()
        assert h.finished == pytest.approx(12.0)

    def test_zero_size_transfer_latency_only(self):
        sim, net = simple_net(bw=100.0, latency=3.0)
        h = net.transfer("a", "b", 0.0)
        sim.run()
        assert h.done and sim.now == pytest.approx(3.0)

    def test_same_node_transfer(self):
        sim, net = simple_net()
        h = net.transfer("a", "a", 500.0)
        sim.run()
        assert h.done

    def test_negative_size_rejected(self):
        sim, net = simple_net()
        with pytest.raises(ConfigurationError):
            net.transfer("a", "b", -1.0)

    def test_efficiency_scales_rate(self):
        sim, net = simple_net(bw=100.0, efficiency=0.5)
        h = net.transfer("a", "b", 100.0)
        sim.run()
        assert h.finished == pytest.approx(2.0)

    def test_rate_cap_respected(self):
        sim, net = simple_net(bw=100.0)
        h = net.transfer("a", "b", 100.0, rate_cap=10.0)
        sim.run()
        assert h.finished == pytest.approx(10.0)


class TestFairSharing:
    def test_two_flows_halve_the_link(self):
        sim, net = simple_net(bw=100.0)
        h1 = net.transfer("a", "b", 1000.0)
        h2 = net.transfer("a", "b", 1000.0)
        sim.run()
        # both share 50 each, finish together at t=20
        assert h1.finished == pytest.approx(20.0)
        assert h2.finished == pytest.approx(20.0)

    def test_short_flow_releases_capacity(self):
        sim, net = simple_net(bw=100.0)
        h1 = net.transfer("a", "b", 1000.0)
        h2 = net.transfer("a", "b", 100.0)
        sim.run()
        # share 50/50 until h2 ends at t=2 (100B at 50B/s);
        # h1 then has 900B left at 100B/s -> ends at 2 + 9 = 11
        assert h2.finished == pytest.approx(2.0)
        assert h1.finished == pytest.approx(11.0)

    def test_late_arrival_steals_share(self):
        sim, net = simple_net(bw=100.0)
        h1 = net.transfer("a", "b", 1000.0)
        h2_holder = {}
        sim.schedule(5.0, lambda: h2_holder.update(h=net.transfer("a", "b", 250.0)))
        sim.run()
        # h1 alone for 5s (500B), then 50/50: h2 takes 5s (250B),
        # h1 has 250B left at t=10, full rate -> ends 12.5
        assert h2_holder["h"].finished == pytest.approx(10.0)
        assert h1.finished == pytest.approx(12.5)

    def test_max_min_with_unequal_bottlenecks(self):
        """Dumbbell: two flows share the bottleneck; a local flow doesn't."""
        t = dumbbell(["l1", "l2"], ["r1", "r2"], access_bw=100.0,
                     bottleneck_bw=60.0, latency=0.0)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        cross1 = net.transfer("l1", "r1", 300.0)   # crosses bottleneck
        cross2 = net.transfer("l2", "r2", 300.0)   # crosses bottleneck
        local = net.transfer("l1", "l2", 300.0)    # Lhub only
        sim.run()
        # bottleneck 60 shared -> 30 each; local flow: l1 access link shared
        # with cross1: l1->Lhub carries cross1(30)+local -> local gets 70.
        assert cross1.finished == pytest.approx(10.0)
        assert cross2.finished == pytest.approx(10.0)
        assert local.finished < 10.0

    def test_capacity_conservation_invariant(self):
        """Sum of rates on any link never exceeds capacity."""
        t = dumbbell(["l1", "l2", "l3"], ["r1"], access_bw=80.0,
                     bottleneck_bw=50.0, latency=0.0)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        for src in ("l1", "l2", "l3"):
            net.transfer(src, "r1", 500.0)
        # inspect rates after admission (t=0 events)
        sim.run(until=0.001)
        for link in t.links:
            used = sum(f.rate for f in net.flows() if link in f.links)
            assert used <= link.bandwidth + 1e-6

    def test_process_can_yield_flow(self):
        sim, net = simple_net(bw=10.0)
        log = []

        def body():
            h = yield net.transfer("a", "b", 100.0)
            log.append((sim.now, h.throughput))

        Process(sim, body)
        sim.run()
        assert log and log[0][0] == pytest.approx(10.0)

    def test_statistics_recorded(self):
        sim, net = simple_net()
        net.transfer("a", "b", 100.0)
        net.transfer("a", "b", 100.0)
        sim.run()
        assert net.completed == 2
        assert net.monitor.tally("transfer_time").count == 2


class TestStarvationGuard:
    """Regression: float residue (or underflow) in the free-capacity
    bookkeeping must never freeze an uncapped flow at rate 0 — a starved
    flow gets no completion event and the transfer hangs forever."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_subnormal_capacity_does_not_starve(self, incremental):
        # bandwidth 5e-324 (the minimum subnormal): the fair share for two
        # crossing flows, 5e-324 / 2, rounds to exactly 0.0 — the old
        # engine allocated rate 0 to both flows and never completed either.
        t = Topology()
        t.add_link("a", "b", 5e-324, 0.0)
        t.add_link("b", "c", 5e-324, 0.0)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0, incremental=incremental)
        h1 = net.transfer("a", "c", 5e-323)  # crosses both saturated links
        h2 = net.transfer("a", "c", 5e-323)
        sim.run(until=1e-9)
        for h in (h1, h2):
            assert h.rate > 0.0, "uncapped active flow frozen at rate 0"
            assert h._completion is not None
        sim.run()
        assert h1.done and h2.done

    def test_zero_rate_cap_flow_may_idle(self):
        """The guard applies to *servable* flows only: a cap of exactly 0
        legitimately parks the flow at rate 0 (no starvation assert)."""
        t = Topology()
        t.add_link("a", "b", 100.0, 0.0)
        sim = Simulator()
        net = FlowNetwork(sim, t, efficiency=1.0)
        live = net.transfer("a", "b", 100.0)
        parked = net.transfer("a", "b", 100.0, rate_cap=0.0)
        sim.run(until=1e-9)
        assert live.rate == pytest.approx(100.0)  # full link, sharer is idle
        assert parked.rate == 0.0 and not parked.done


class TestIncrementalSharing:
    def net(self, links, incremental=True, verify=True):
        t = Topology()
        for a, b, bw in links:
            t.add_link(a, b, bw, 0.0)
        sim = Simulator()
        return sim, FlowNetwork(sim, t, efficiency=1.0,
                                incremental=incremental, verify=verify)

    def test_same_timestamp_admits_coalesce_into_one_recompute(self):
        sim, net = self.net([("a", "b", 100.0)])
        handles = [net.transfer("a", "b", 100.0) for _ in range(5)]
        sim.run(until=1e-9)
        assert net.sharing.recomputes == 1
        assert net.sharing.coalesced == 4
        assert net.sharing.flows_touched == 5
        sim.run()
        assert all(h.done for h in handles)

    def test_disjoint_component_events_untouched(self):
        sim, net = self.net([("a", "b", 100.0), ("c", "d", 100.0)])
        h1 = net.transfer("a", "b", 1000.0)
        sim.run(until=0.5)
        ev1 = h1._completion
        assert ev1 is not None
        h2 = net.transfer("c", "d", 100.0)
        sim.run(until=0.6)
        # h2's admit recomputed only its own one-flow component
        assert h1._completion is ev1
        assert net.sharing.flows_touched == 2  # one per single-flow flush
        sim.run()
        assert h1.finished == pytest.approx(10.0)
        assert h2.finished == pytest.approx(1.5)

    def test_unchanged_rate_preserves_completion_event(self):
        sim, net = self.net([("a", "b", 100.0)])
        big = net.transfer("a", "b", 10_000.0)
        capped = net.transfer("a", "b", 1_000.0, rate_cap=10.0)
        sim.run(until=1e-9)
        assert big.rate == pytest.approx(90.0)
        assert capped.rate == pytest.approx(10.0)
        ev = capped._completion
        holder = {}
        sim.schedule(1.0, lambda: holder.update(
            h=net.transfer("a", "b", 500.0, rate_cap=5.0)))
        sim.run(until=1.5)
        # the newcomer squeezes `big` (85), but `capped` still gets its cap:
        # its rate is unchanged, so its completion event must be kept
        assert big.rate == pytest.approx(85.0)
        assert capped._completion is ev
        assert net.sharing.preserved >= 1
        sim.run()
        assert big.done and capped.done and holder["h"].done

    def test_latency_only_transfers_leave_rates_alone(self):
        sim, net = self.net([("a", "b", 100.0)])
        h = net.transfer("a", "b", 1000.0)
        sim.run(until=1e-9)
        ev = h._completion
        recomputes = net.sharing.recomputes
        zero = net.transfer("a", "b", 0.0)    # empty payload
        local = net.transfer("b", "b", 50.0)  # same-host copy
        sim.run(until=0.1)
        assert zero.done and local.done
        # neither was ever admitted: no recompute, no event churn
        assert h._completion is ev
        assert net.sharing.recomputes == recomputes
        sim.run()
        assert h.finished == pytest.approx(10.0)
        assert net.completed == 3
        # throughput is only tallied for flows that actually held bandwidth
        assert net.monitor.tally("throughput").count == 1
        assert net.monitor.tally("transfer_time").count == 3

    def test_reference_mode_matches_incremental(self):
        for incremental in (True, False):
            sim, net = self.net([("a", "b", 100.0), ("b", "c", 60.0)],
                                incremental=incremental, verify=incremental)
            h1 = net.transfer("a", "c", 300.0)
            h2 = net.transfer("a", "b", 300.0)
            sim.run()
            if incremental:
                inc = (h1.finished, h2.finished)
            else:
                ref = (h1.finished, h2.finished)
        assert inc == pytest.approx(ref, rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=8),
       bw=st.floats(min_value=1.0, max_value=1e3))
def test_property_shared_link_aggregate_time(sizes, bw):
    """N simultaneous flows on one link finish no earlier than total/capacity,
    and the last finisher lands exactly at total_bytes/bandwidth (work
    conservation for a single shared link)."""
    sim, net = simple_net(bw=bw)
    handles = [net.transfer("a", "b", s) for s in sizes]
    sim.run()
    last = max(h.finished for h in handles)
    assert last == pytest.approx(sum(sizes) / bw, rel=1e-6)
    for h in handles:
        assert h.finished >= h.size / bw - 1e-9  # nobody beats the capacity
