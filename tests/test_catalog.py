"""Tests for the replica catalog and grid information service."""

import pytest

from repro.core import CatalogError, Simulator
from repro.hosts import Disk, Site, SpaceSharedMachine, Grid
from repro.middleware import GridInformationService, ReplicaCatalog
from repro.network import FileSpec, Topology


def make_grid(sim):
    topo = Topology()
    topo.add_link("A", "B", 100.0, 0.01)
    topo.add_link("B", "C", 10.0, 0.01)
    topo.add_link("A", "C", 1.0, 0.5)
    sites = [
        Site(sim, "A", machines=[SpaceSharedMachine(sim, pes=4, rating=100.0)],
             disk=Disk(sim, 1e6)),
        Site(sim, "B", machines=[SpaceSharedMachine(sim, pes=2, rating=500.0)],
             disk=Disk(sim, 1e6)),
        Site(sim, "C", disk=Disk(sim, 1e6)),  # storage-only site
    ]
    return Grid(sim, topo, sites)


class TestCatalog:
    def test_register_requires_physical_copy_in_strict_mode(self):
        sim = Simulator()
        grid = make_grid(sim)
        cat = ReplicaCatalog(grid)
        with pytest.raises(CatalogError, match="physically"):
            cat.register(FileSpec("f", 10.0), "A")
        grid.site("A").store_file(FileSpec("f", 10.0))
        cat.register(FileSpec("f", 10.0), "A")
        assert cat.locations("f") == ["A"]

    def test_non_strict_mode_allows_logical_registration(self):
        cat = ReplicaCatalog()
        cat.register(FileSpec("f", 10.0), "X")
        assert cat.locations("f") == ["X"]

    def test_size_conflict_rejected(self):
        cat = ReplicaCatalog()
        cat.register(FileSpec("f", 10.0), "X")
        with pytest.raises(CatalogError, match="different size"):
            cat.register(FileSpec("f", 20.0), "Y")

    def test_unregister_last_copy_removes_file(self):
        cat = ReplicaCatalog()
        cat.register(FileSpec("f", 10.0), "X")
        cat.unregister("f", "X")
        assert not cat.has("f")
        with pytest.raises(CatalogError):
            cat.spec("f")

    def test_unregister_unknown_raises(self):
        cat = ReplicaCatalog()
        with pytest.raises(CatalogError):
            cat.unregister("ghost", "X")

    def test_ingest_site(self):
        sim = Simulator()
        grid = make_grid(sim)
        grid.site("C").store_file(FileSpec("a", 1.0))
        grid.site("C").store_file(FileSpec("b", 2.0))
        cat = ReplicaCatalog(grid)
        assert cat.ingest_site(grid.site("C")) == 2
        assert cat.files == ["a", "b"]

    def test_best_replica_prefers_local(self):
        sim = Simulator()
        grid = make_grid(sim)
        for s in ("A", "B"):
            grid.site(s).store_file(FileSpec("f", 100.0))
        cat = ReplicaCatalog(grid)
        cat.register(FileSpec("f", 100.0), "A")
        cat.register(FileSpec("f", 100.0), "B")
        assert cat.best_replica("f", "A") == "A"

    def test_best_replica_uses_network_cost(self):
        sim = Simulator()
        grid = make_grid(sim)
        for s in ("A", "B"):
            grid.site(s).store_file(FileSpec("f", 1000.0))
        cat = ReplicaCatalog(grid)
        cat.register(FileSpec("f", 1000.0), "A")
        cat.register(FileSpec("f", 1000.0), "B")
        # to C: from B bottleneck 10 (xfer 100s); from A direct link is 1.0
        # but the route A->C goes A->B->C (lower latency-ish)... bottleneck 10
        # both 100s, tie -> but A adds hop latency; B wins on latency.
        assert cat.best_replica("f", "C") == "B"

    def test_best_replica_none_raises(self):
        cat = ReplicaCatalog()
        with pytest.raises(CatalogError):
            cat.best_replica("ghost", "X")

    def test_replica_count(self):
        cat = ReplicaCatalog()
        cat.register(FileSpec("f", 1.0), "X")
        cat.register(FileSpec("f", 1.0), "Y")
        assert cat.replica_count("f") == 2
        assert cat.replica_count("ghost") == 0


class TestGis:
    def test_compute_sites_excludes_storage_only(self):
        sim = Simulator()
        gis = GridInformationService(make_grid(sim))
        assert [s.name for s in gis.compute_sites()] == ["A", "B"]

    def test_total_pes(self):
        sim = Simulator()
        gis = GridInformationService(make_grid(sim))
        assert gis.total_pes() == 6

    def test_least_loaded_prefers_idle(self):
        sim = Simulator()
        grid = make_grid(sim)
        gis = GridInformationService(grid)
        # load up A
        for _ in range(8):
            grid.site("A").submit(1000.0)
        assert gis.least_loaded_site().name == "B"

    def test_fastest_site(self):
        sim = Simulator()
        gis = GridInformationService(make_grid(sim))
        # B: 2*500=1000 MIPS > A: 4*100=400
        assert gis.fastest_site().name == "B"

    def test_site_load_metric(self):
        sim = Simulator()
        grid = make_grid(sim)
        gis = GridInformationService(grid)
        grid.site("B").submit(100.0)
        assert gis.site_load("B") == pytest.approx(0.5)
        assert gis.site_load("A") == 0.0
