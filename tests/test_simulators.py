"""Integration tests for the six rebuilt simulator models."""

import math

import pytest

from repro.core import ConfigurationError, Simulator
from repro.simulators import (
    BricksModel,
    ChicagoSimModel,
    GridSimModel,
    MonarcModel,
    OptorSimModel,
    SGTask,
    SimGridModel,
)
from repro.workloads import CMS_2005, ExperimentSpec, chain_dag, layered_dag


class TestBricks:
    def test_jobs_complete_and_response_recorded(self):
        sim = Simulator(seed=1)
        model = BricksModel(sim, n_clients=3, n_servers=2, job_rate=0.5,
                            background=None)
        model.run(horizon=200.0)
        assert len(model.completed) > 10
        assert model.mean_response_time > 0
        assert all(j.finished >= j.created for j in model.completed)

    def test_all_schedulers_run(self):
        for sched in ("random", "round-robin", "load-aware", "predictive"):
            sim = Simulator(seed=2)
            model = BricksModel(sim, n_clients=2, n_servers=2,
                                scheduler=sched, job_rate=0.3,
                                background=None)
            model.run(horizon=100.0)
            assert model.completed, sched

    def test_predictive_beats_random_under_load(self):
        """The Bricks design point: prediction pays when servers are noisy."""
        def mean_rt(sched):
            sim = Simulator(seed=7)
            # keep the offered load well under capacity: an unstable system
            # drowns the scheduling signal (and the event count)
            model = BricksModel(sim, n_clients=4, n_servers=3,
                                scheduler=sched, job_rate=0.25,
                                background=0.6)
            model.run(horizon=250.0)
            return model.mean_response_time

        assert mean_rt("predictive") < mean_rt("random")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            BricksModel(Simulator(), scheduler="oracle")

    def test_central_model_all_jobs_on_servers(self):
        sim = Simulator(seed=3)
        model = BricksModel(sim, n_clients=2, n_servers=2, job_rate=0.5,
                            background=None)
        model.run(horizon=100.0)
        assert all(j.server.startswith("server-") for j in model.completed)


class TestOptorSim:
    def test_jobs_complete(self):
        sim = Simulator(seed=4)
        model = OptorSimModel(sim, optimizer="lru", n_sites=3, n_files=10,
                              files_per_job=4)
        model.run(n_jobs=20)
        assert len(model.completed) == 20
        assert 0.0 <= model.remote_fraction() <= 1.0

    def test_replication_reduces_remote_reads(self):
        def remote_frac(optimizer):
            sim = Simulator(seed=5)
            model = OptorSimModel(sim, optimizer=optimizer, n_sites=3,
                                  n_files=10, files_per_job=5,
                                  access_pattern="zipf")
            model.run(n_jobs=40)
            return model.remote_fraction()

        assert remote_frac("lru") < remote_frac("none")

    def test_all_optimizers_and_patterns_run(self):
        for opt in ("none", "lru", "lfu", "economic"):
            for pat in ("sequential", "random", "unitary", "gaussian", "zipf"):
                sim = Simulator(seed=6)
                model = OptorSimModel(sim, optimizer=opt, access_pattern=pat,
                                      n_sites=2, n_files=6, files_per_job=3)
                model.run(n_jobs=6)
                assert len(model.completed) == 6, (opt, pat)

    def test_catalog_consistency_after_run(self):
        sim = Simulator(seed=7)
        model = OptorSimModel(sim, optimizer="lru", n_sites=3, n_files=8,
                              se_capacity=3e9)  # tight: forces eviction
        model.run(n_jobs=30)
        # every catalog entry is physically present
        for fname in model.catalog.files:
            for loc in model.catalog.locations(fname):
                assert model.grid.site(loc).has_file(fname)

    def test_master_copies_never_lost(self):
        sim = Simulator(seed=8)
        model = OptorSimModel(sim, optimizer="lru", n_sites=2, n_files=5,
                              se_capacity=2e9)
        model.run(n_jobs=20)
        for f in model.files:
            assert model.grid.site("CERN").has_file(f.name)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OptorSimModel(Simulator(), optimizer="magic")
        with pytest.raises(ConfigurationError):
            OptorSimModel(Simulator(), access_pattern="psychic")


class TestSimGrid:
    def test_master_worker_agents(self):
        sim = Simulator(seed=9)
        model = SimGridModel(sim, {"h0": 1000.0, "h1": 500.0})
        results = []

        def worker(agent):
            while True:
                task = yield agent.recv()
                if task.name == "stop":
                    return
                yield agent.execute(task)
                agent.send("master", SGTask(f"done-{task.name}", data=100.0))

        def master(agent):
            for i in range(4):
                agent.send("w0", SGTask(f"t{i}", compute=1000.0, data=1e4))
            for _ in range(4):
                ack = yield agent.recv()
                results.append((sim.now, ack.name))
            agent.send("w0", SGTask("stop"))

        model.spawn("w0", "h1", worker)
        model.spawn("master", "h0", master)
        sim.run()
        assert len(results) == 4
        assert all(name.startswith("done-") for _, name in results)

    def test_compile_time_beats_runtime_on_quiet_platform(self):
        def makespans(seed):
            dag_a = layered_dag(Simulator(seed=seed).stream("dag"), 4, 4,
                                mean_edge_bytes=1e5)
            sim1 = Simulator(seed=seed)
            m1 = SimGridModel(sim1, {"h0": 1000.0, "h1": 600.0, "h2": 300.0})
            static = m1.run_compile_time(dag_a)
            dag_b = layered_dag(Simulator(seed=seed).stream("dag"), 4, 4,
                                mean_edge_bytes=1e5)
            sim2 = Simulator(seed=seed)
            m2 = SimGridModel(sim2, {"h0": 1000.0, "h1": 600.0, "h2": 300.0})
            dynamic = m2.run_runtime(dag_b)
            return static, dynamic

        static, dynamic = makespans(11)
        assert static > 0 and dynamic > 0
        # HEFT should not lose badly on a quiet platform
        assert static <= dynamic * 1.25

    def test_duplicate_agent_rejected(self):
        sim = Simulator()
        model = SimGridModel(sim, {"h0": 100.0})

        def body(agent):
            yield 1.0

        model.spawn("a", "h0", body)
        with pytest.raises(ConfigurationError):
            model.spawn("a", "h0", body)

    def test_unknown_host_rejected(self):
        sim = Simulator()
        model = SimGridModel(sim, {"h0": 100.0})
        with pytest.raises(ConfigurationError):
            model.spawn("a", "ghost", lambda agent: iter(()))

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            SGTask("bad", compute=-1.0)


class TestGridSim:
    def test_dbc_time_vs_cost_tradeoff(self):
        sim_t = Simulator(seed=12)
        time_summary = GridSimModel(sim_t).run_dbc(
            n_gridlets=30, deadline=500.0, budget=1e6, strategy="time")
        sim_c = Simulator(seed=12)
        cost_summary = GridSimModel(sim_c).run_dbc(
            n_gridlets=30, deadline=500.0, budget=1e6, strategy="cost")
        assert time_summary["completed"] == 30
        assert cost_summary["completed"] == 30
        # the classic DBC shape: time-opt finishes earlier, cost-opt cheaper
        assert time_summary["makespan"] <= cost_summary["makespan"] + 1e-9
        assert cost_summary["spent"] <= time_summary["spent"] + 1e-9

    def test_multiple_brokers_coexist(self):
        sim = Simulator(seed=13)
        model = GridSimModel(sim)
        b1 = model.new_broker(deadline=1e6, budget=1e9, strategy="time")
        b2 = model.new_broker(deadline=1e6, budget=1e9, strategy="cost")
        b1.submit_all(model.farm(10, seed_name="u1"))
        b2.submit_all(model.farm(10, first_id=100, seed_name="u2"))
        sim.run()
        assert len(b1.completed) == 10 and len(b2.completed) == 10

    def test_tight_budget_fails_some(self):
        sim = Simulator(seed=14)
        model = GridSimModel(sim)
        summary = model.run_dbc(n_gridlets=20, deadline=1e6, budget=5000.0,
                                strategy="cost")
        assert summary["failed"] > 0
        assert summary["spent"] <= 5000.0


class TestChicagoSim:
    def test_jobs_complete_under_all_policy_combos(self):
        for jp in ("random", "least-loaded", "data-present", "local"):
            for dp in ("none", "push"):
                sim = Simulator(seed=15)
                model = ChicagoSimModel(sim, n_sites=3, n_datasets=6,
                                        job_policy=jp, data_policy=dp,
                                        n_schedulers=2)
                model.run(n_jobs=12)
                assert len(model.completed) == 12, (jp, dp)

    def test_data_present_lowers_remote_fraction(self):
        def remote(jp):
            sim = Simulator(seed=16)
            model = ChicagoSimModel(sim, n_sites=4, n_datasets=8,
                                    job_policy=jp, data_policy="none")
            model.run(n_jobs=40)
            return model.remote_fraction()

        assert remote("data-present") < remote("random")

    def test_push_creates_replicas(self):
        sim = Simulator(seed=17)
        model = ChicagoSimModel(sim, n_sites=4, n_datasets=4,
                                job_policy="random", data_policy="push",
                                push_threshold=2)
        model.run(n_jobs=40, zipf_s=1.5)
        assert model.strategy.pushes > 0

    def test_multiple_external_schedulers(self):
        sim = Simulator(seed=18)
        model = ChicagoSimModel(sim, n_schedulers=4, job_policy="local")
        assert len(model.runners) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChicagoSimModel(Simulator(), job_policy="bogus")
        with pytest.raises(ConfigurationError):
            ChicagoSimModel(Simulator(), data_policy="teleport")


class TestMonarc:
    SMALL = ExperimentSpec("MINI", rate_bytes_per_s=50e6, file_size=5e8)

    def test_agent_replicates_everything_with_ample_capacity(self):
        sim = Simulator(seed=19)
        model = MonarcModel(sim, n_tier1=2, uplink_gbps=30.0)
        result = model.run_t0_t1_study(horizon=300.0,
                                       experiments=[self.SMALL])
        assert result.produced_files > 0
        assert result.replicated_files == result.produced_files * 2
        assert result.final_backlog_files == 0
        assert not result.diverged

    def test_insufficient_uplink_diverges(self):
        """The study's headline: 2.5 Gbps can't carry full production."""
        # 2 experiments at 90 MB/s total to 3 T1s = 4.32 Gbps demand
        exps = [ExperimentSpec("A", 50e6, 5e8), ExperimentSpec("B", 40e6, 5e8)]
        sim = Simulator(seed=20)
        model = MonarcModel(sim, n_tier1=2, uplink_gbps=0.622)
        result = model.run_t0_t1_study(horizon=300.0, experiments=exps)
        assert result.peak_backlog_files > 5
        assert result.diverged

    def test_pull_mode_also_works(self):
        sim = Simulator(seed=21)
        model = MonarcModel(sim, n_tier1=2, uplink_gbps=30.0,
                            agent_enabled=False)
        result = model.run_t0_t1_study(horizon=200.0,
                                       experiments=[self.SMALL])
        assert not result.agent_enabled
        assert result.produced_files > 0
        assert result.final_backlog_files == 0

    def test_analysis_activity_runs(self):
        sim = Simulator(seed=22)
        model = MonarcModel(sim, n_tier1=2, uplink_gbps=30.0)
        model.production_activity([self.SMALL], horizon=100.0)
        model.analysis_activity("T1.0", n_jobs=5, think_time=30.0)
        sim.run()
        assert model.monitor.tally("analysis_turnaround").count == 5

    def test_backlog_series_sampled(self):
        sim = Simulator(seed=23)
        model = MonarcModel(sim, n_tier1=1, uplink_gbps=30.0)
        result = model.run_t0_t1_study(horizon=120.0,
                                       experiments=[self.SMALL],
                                       sample_period=30.0)
        assert len(result.backlog_series) >= 4
        times = [t for t, _ in result.backlog_series]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MonarcModel(Simulator(), n_tier1=0)
        with pytest.raises(ConfigurationError):
            MonarcModel(Simulator(), uplink_gbps=0.0)


class TestOptorSimBroker:
    """The broker-policy axis added in the OptorSim evaluations."""

    def run_with(self, broker, n_jobs=30, inter_arrival=5.0):
        sim = Simulator(seed=44)
        model = OptorSimModel(sim, optimizer="lru", n_sites=4, n_files=12,
                              files_per_job=4, broker=broker)
        return model.run(n_jobs=n_jobs, inter_arrival=inter_arrival)

    def test_all_policies_complete(self):
        for broker in ("random", "queue-length", "access-cost"):
            model = self.run_with(broker)
            assert len(model.completed) == 30, broker

    def test_queue_length_balances_load(self):
        """Shortest-queue placement spreads jobs once queues actually form
        (under light load ties go to the first site — also correct)."""
        model = self.run_with("queue-length", n_jobs=40, inter_arrival=1.0)
        per_site = {}
        for j in model.completed:
            per_site[j.site] = per_site.get(j.site, 0) + 1
        assert len(per_site) == 4  # every site used
        assert max(per_site.values()) <= 2 * min(per_site.values())

    def test_access_cost_prefers_data_locality(self):
        """Once replicas exist, access-cost placement re-uses them."""
        model = self.run_with("access-cost", n_jobs=40)
        rand = self.run_with("random", n_jobs=40)
        assert model.remote_fraction() <= rand.remote_fraction() + 1e-9

    def test_unknown_broker_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            OptorSimModel(sim, broker="psychic")


class TestMonarcTier2:
    """The tier model below T1: T2 centres reach data through their region."""

    SMALL = ExperimentSpec("MINI", rate_bytes_per_s=50e6, file_size=5e8)

    def test_t2_topology_routes_through_parent(self):
        sim = Simulator(seed=50)
        model = MonarcModel(sim, n_tier1=2, uplink_gbps=30.0,
                            n_tier2_per_t1=2)
        assert len(model.t2_names) == 4
        route = model.grid.topology.route("T2.0.1", "T0")
        assert route == ["T2.0.1", "T1.0", "WAN", "T0"]

    def test_t2_analysis_pulls_via_hierarchy(self):
        sim = Simulator(seed=51)
        model = MonarcModel(sim, n_tier1=2, uplink_gbps=30.0,
                            n_tier2_per_t1=1)
        model.production_activity([self.SMALL], horizon=120.0)
        model.analysis_activity("T2.0.0", n_jobs=4, think_time=40.0)
        sim.run()
        assert model.monitor.tally("analysis_turnaround").count == 4
        # the T2 fetched data (it produces nothing locally)
        assert model.monitor.counter("analysis_remote_reads").count >= 1

    def test_t2_prefers_regional_replica_over_t0(self):
        """Once the agent lands data at T1, a T2 fetches from its region."""
        sim = Simulator(seed=52)
        model = MonarcModel(sim, n_tier1=1, uplink_gbps=30.0,
                            n_tier2_per_t1=1)
        model.production_activity([self.SMALL], horizon=60.0)
        sim.run()  # production + replication complete
        f = model.produced[0]
        src = model.catalog.best_replica(f.name, "T2.0.0")
        assert src == "T1.0"  # regional copy beats crossing the WAN to T0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MonarcModel(Simulator(), n_tier2_per_t1=-1)
        with pytest.raises(ConfigurationError):
            MonarcModel(Simulator(), t2_link_gbps=0.0)


class TestBricksNetworkBackground:
    def test_cross_traffic_slows_responses(self):
        def mean_rt(noise):
            sim = Simulator(seed=61)
            model = BricksModel(sim, n_clients=3, n_servers=2,
                                scheduler="predictive", job_rate=0.2,
                                background=None, bandwidth=1e6,
                                mean_input=5e5, mean_output=2e5,
                                network_background_bytes=noise)
            model.run(horizon=200.0)
            return model.mean_response_time

        assert mean_rt(2e6) > mean_rt(None)

    def test_cross_traffic_bounded_run(self):
        sim = Simulator(seed=62)
        model = BricksModel(sim, n_clients=2, n_servers=2, job_rate=0.3,
                            background=None, network_background_bytes=1e5)
        model.run(horizon=100.0)  # must terminate
        assert model.cross_traffic is not None
        assert model.cross_traffic.flows_started > 0
