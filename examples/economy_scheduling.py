#!/usr/bin/env python
"""GridSim-style deadline/budget-constrained (DBC) economy scheduling.

"GridSim is mainly used to study cost-time optimization algorithms for
scheduling task farming applications on heterogeneous Grids, considering
economy based distributed resource management, dealing with deadline and
budget constraints."

This example farms 60 gridlets over four priced resources under both DBC
strategies at several (deadline, budget) corners.  Expected shape:
time-optimization finishes earlier but spends more; cost-optimization is
cheaper but slower; the infeasible corner fails jobs under both.

Run:  python examples/economy_scheduling.py
"""

from repro.core import Simulator
from repro.simulators import GridSimModel

N = 60
CORNERS = [
    ("loose D, big B", 2000.0, 1e6),
    ("tight D, big B", 120.0, 1e6),
    ("loose D, small B", 2000.0, 8e4),
    ("infeasible", 5.0, 2e3),
]


def run(strategy: str, deadline: float, budget: float) -> dict:
    sim = Simulator(seed=21)
    return GridSimModel(sim).run_dbc(n_gridlets=N, deadline=deadline,
                                     budget=budget, strategy=strategy)


def main() -> None:
    print(f"{'corner':<18} {'strategy':<6} {'done':>5} {'spent':>10} "
          f"{'makespan':>9} {'misses':>7}")
    for label, deadline, budget in CORNERS:
        for strategy in ("time", "cost"):
            s = run(strategy, deadline, budget)
            print(f"{label:<18} {strategy:<6} "
                  f"{s['completed']:>3}/{N} {s['spent']:>10.0f} "
                  f"{s['makespan']:>9.1f} {s['deadline_misses']:>7}")

    t = run("time", 2000.0, 1e6)
    c = run("cost", 2000.0, 1e6)
    assert t["makespan"] <= c["makespan"] + 1e-9
    assert c["spent"] <= t["spent"] + 1e-9
    print("\nTime-opt finished no later; cost-opt spent no more — "
          "the DBC trade-off holds.")


if __name__ == "__main__":
    main()
