#!/usr/bin/env python
"""OptorSim-style replication-optimizer comparison.

"The objective of OptorSim is to investigate the stability and transient
behavior of replication optimization methods."  This example runs the same
Zipf-popular workload on an EU-DataGrid-like grid under the four pull
optimizers and reports mean job time and the fraction of reads that had to
cross the WAN.  Expected shape: any replication beats none; the economic
optimizer resists the cache churn that hurts LRU when disks are tight.

Run:  python examples/replica_optimization.py
"""

from repro.core import Simulator
from repro.simulators import OPTIMIZERS, OptorSimModel

N_JOBS = 120


def run(optimizer: str, pattern: str = "zipf") -> OptorSimModel:
    sim = Simulator(seed=11)
    model = OptorSimModel(sim, optimizer=optimizer, access_pattern=pattern,
                          n_sites=5, n_files=30, files_per_job=6,
                          se_capacity=8e9)  # ~8 files fit: real pressure
    return model.run(n_jobs=N_JOBS, inter_arrival=15.0)


def main() -> None:
    print(f"{'optimizer':<10} {'mean job time':>14} {'remote reads':>13} "
          f"{'replicas made':>14} {'evictions':>10}")
    times = {}
    for name in sorted(OPTIMIZERS):
        m = run(name)
        times[name] = m.mean_job_time
        print(f"{name:<10} {m.mean_job_time:>12.1f} s "
              f"{m.remote_fraction():>12.1%} "
              f"{m.strategy.replicas_created:>14} "
              f"{m.strategy.replicas_evicted:>10}")

    assert times["lru"] < times["none"], "replication must beat streaming"
    print("\nReplication beats no-replication on Zipf-popular access — "
          "the OptorSim result's shape holds.")

    print("\nAccess-pattern sensitivity (LRU optimizer):")
    for pattern in ("sequential", "random", "unitary", "gaussian", "zipf"):
        m = run("lru", pattern)
        print(f"  {pattern:<11} mean job time {m.mean_job_time:>8.1f} s, "
              f"remote {m.remote_fraction():.1%}")


if __name__ == "__main__":
    main()
