#!/usr/bin/env python
"""Quickstart: build a small grid, schedule jobs on it, read the results.

Covers the three layers a first-time user touches:

1. the kernel — a :class:`~repro.core.Simulator` with a seed;
2. the substrates — a heterogeneous two-site grid (hosts + network);
3. the middleware — an online scheduler driving jobs through a runner.

Run:  python examples/quickstart.py
"""

from repro.core import Simulator
from repro.hosts import Disk, Grid, Site, SpaceSharedMachine
from repro.middleware import GridRunner, Job, PredictiveScheduler
from repro.network import Topology
from repro.workloads import poisson_arrivals, task_farm


def build_grid(sim: Simulator) -> Grid:
    """Two compute sites with different speeds, one fast link."""
    topo = Topology()
    topo.add_link("fast-site", "slow-site", bandwidth=1e8, latency=0.01)
    sites = [
        Site(sim, "fast-site",
             machines=[SpaceSharedMachine(sim, pes=4, rating=2000.0,
                                          name="fast-cpu")],
             disk=Disk(sim, 1e12, name="fast-disk")),
        Site(sim, "slow-site",
             machines=[SpaceSharedMachine(sim, pes=8, rating=500.0,
                                          name="slow-cpu")],
             disk=Disk(sim, 1e12, name="slow-disk")),
    ]
    return Grid(sim, topo, sites)


def main() -> None:
    sim = Simulator(seed=42)          # one seed pins the whole trajectory
    grid = build_grid(sim)

    # A 100-job farm arriving as a Poisson stream over ~500s.
    arrivals = poisson_arrivals(sim.stream("arrivals"), rate=0.2, horizon=500.0)
    jobs = task_farm(sim.stream("farm"), n=len(arrivals),
                     mean_length=5000.0, arrival_times=arrivals)

    # Predictive scheduling (Bricks-style): send each job where it is
    # predicted to finish earliest, given queue states and speeds.
    runner = GridRunner(sim, grid, scheduler=PredictiveScheduler())
    runner.submit_all(jobs)
    sim.run()

    print(f"jobs completed : {len(runner.completed)}/{len(jobs)}")
    print(f"makespan       : {runner.makespan:.1f} s")
    print(f"mean turnaround: {runner.mean_turnaround:.2f} s")
    for site in grid.site_names:
        n = runner.monitor.counter(f"jobs@{site}").count
        print(f"  {site:<10} ran {n} jobs")
    fast = runner.monitor.counter("jobs@fast-site").count
    assert fast > len(jobs) / 2, "the predictive policy should favour the fast site"
    print("\nOK — the fast site absorbed the majority of the work, as predicted.")


if __name__ == "__main__":
    main()
