#!/usr/bin/env python
"""Regenerate the paper's Table 1 and the Section-4 critical analysis.

Prints the design-comparison table from the executable registry, runs the
taxonomy's consistency rules over every record, and reports the
parameter-space coverage behind the paper's conclusion that the surveyed
simulators are "allowing exploration of different areas of parameter space".

Run:  python examples/taxonomy_survey.py
"""

from repro.taxonomy import (
    SURVEYED,
    all_records,
    complementarity,
    coverage,
    diff,
    record,
    similarity,
    survey_report,
    validate_registry,
)


def main() -> None:
    print(survey_report())

    violations = validate_registry(all_records())
    assert not violations, violations
    print("consistency rules: all records pass ✓\n")

    print("Pairwise similarity (fraction of axes in agreement):")
    names = [r.name for r in SURVEYED]
    print("            " + "  ".join(f"{n[:8]:>8}" for n in names))
    for a in names:
        cells = "  ".join(f"{similarity(record(a), record(b)):>8.2f}"
                          for b in names)
        print(f"{a:<12}{cells}")

    print("\nMost similar pair vs most different pair:")
    pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]
    close = max(pairs, key=lambda p: similarity(record(p[0]), record(p[1])))
    far = min(pairs, key=lambda p: similarity(record(p[0]), record(p[1])))
    print(f"  closest : {close[0]} ~ {close[1]}")
    print(f"  farthest: {far[0]} ~ {far[1]}")
    print(f"  axes separating the farthest pair: "
          f"{[d.axis for d in diff(record(far[0]), record(far[1]))]}")

    cov6 = complementarity(list(SURVEYED))
    cov7 = complementarity(all_records())
    print(f"\nparameter-space coverage: surveyed six = {cov6:.0%}, "
          f"with this framework = {cov7:.0%}")
    unexplored = [
        (axis, value)
        for axis, cells in coverage(list(SURVEYED)).items()
        for value, hit in cells.items() if not hit
    ]
    print(f"cells the surveyed six leave unexplored ({len(unexplored)}):")
    for axis, value in unexplored:
        print(f"  - {axis}: {value}")


if __name__ == "__main__":
    main()
