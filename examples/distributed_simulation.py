#!/usr/bin/env python
"""Distributed simulation: why the paper says it "has not impressed".

Section 3 replaces the serial/parallel split with centralized/distributed
and observes that "despite over two decades of research, the technology of
distributed simulations has not significantly impressed the general
simulation community".  This example shows the mechanism: the same
partitioned grid model runs under a sequential executor, the
Chandy–Misra–Bryant null-message protocol, and synchronous windows — all
producing identical results — while the protocol overhead (null messages)
explodes as lookahead (inter-site latency) shrinks.

Run:  python examples/distributed_simulation.py
"""

from repro.core import Simulator  # noqa: F401 - imported for parity with docs
from repro.core.parallel import (
    CMBExecutor,
    LogicalProcess,
    SequentialExecutor,
    WindowExecutor,
)


def build_model(n_sites: int, lookahead: float):
    """A ring of sites exchanging job-completion notifications."""
    lps = [LogicalProcess(f"site-{i}", seed=i) for i in range(n_sites)]
    for i, lp in enumerate(lps):
        lp.connect(lps[(i + 1) % n_sites], lookahead)
    log = []

    def on_job(lp, msg):
        log.append((round(lp.sim.now, 6), lp.name, msg.payload))
        if msg.payload < 200:
            nxt = f"site-{(int(lp.name.split('-')[1]) + 1) % n_sites}"
            # local processing time before forwarding
            lp.sim.schedule(0.5, lp.send, nxt, "job", msg.payload + 1)

    for lp in lps:
        lp.on_message("job", on_job)
    lps[0].sim.schedule(0.0, lps[0].send, "site-1", "job", 0)
    return lps, log


def main() -> None:
    print("Executor equivalence (lookahead = 1.0):")
    reference = None
    for executor in (SequentialExecutor(), CMBExecutor(), WindowExecutor()):
        lps, log = build_model(4, lookahead=1.0)
        stats = executor.run(lps, until=1000.0)
        if reference is None:
            reference = log
        assert log == reference, f"{stats.executor} diverged!"
        print(f"  {stats.executor:<11} events={stats.events:>5} "
              f"nulls={stats.null_messages:>6} epochs={stats.epochs:>5}")
    print("  all executors produced identical event logs ✓\n")

    print("CMB null-message overhead vs lookahead (the protocol's curse):")
    for la in (4.0, 1.0, 0.25, 0.0625):
        lps, _ = build_model(4, lookahead=la)
        stats = CMBExecutor().run(lps, until=1000.0)
        ratio = stats.null_messages / max(stats.real_messages, 1)
        print(f"  lookahead {la:>7.4g}: {stats.null_messages:>7} nulls "
              f"for {stats.real_messages} real messages "
              f"({ratio:.1f} nulls per real message)")
    print("\nSmall lookahead => null storms: exactly why conservative "
          "distributed DES rarely pays off.")


if __name__ == "__main__":
    main()
