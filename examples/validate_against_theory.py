#!/usr/bin/env python
"""Queueing-theory validation of the kernel (the paper's Section-5 demand).

"A scientist wanting to use a simulator to evaluate a specific technology
needs to have increased confidence in the obtained results ... the use of
queuing theory [provides] an analytical model."

This example simulates M/M/1 (three loads), M/M/3, and M/G/1 (deterministic
and heavy-tailed service) with kernel primitives, and prints analytic vs
measured for L, Lq, W, Wq, utilization.  Every relative error should land
within a few percent.

Run:  python examples/validate_against_theory.py
"""

from repro.core import StreamFactory
from repro.validation import (
    MG1,
    MM1,
    MMc,
    compare,
    simulate_mg1,
    simulate_mm1,
    simulate_mmc,
)

N_JOBS = 25_000


def show(title: str, report) -> float:
    print(f"\n{title}")
    print(f"  {'qty':<12} {'analytic':>10} {'measured':>10} {'rel.err':>8}")
    for qty, analytic, measured, err in report.to_rows():
        print(f"  {qty:<12} {analytic:>10.4f} {measured:>10.4f} {err:>7.2%}")
    return report.max_rel_error


def main() -> None:
    worst = 0.0
    for rho in (0.3, 0.6, 0.9):
        lam, mu = rho, 1.0
        # heavy traffic converges like 1/(1-ρ)²: give ρ=0.9 a longer run
        n = N_JOBS if rho < 0.8 else 4 * N_JOBS
        rep = compare(MM1(lam, mu), simulate_mm1(lam, mu, n_jobs=n, seed=5))
        worst = max(worst, show(f"M/M/1  ρ={rho}", rep))

    rep = compare(MMc(lam=2.4, mu=1.0, c=3),
                  simulate_mmc(2.4, 1.0, 3, n_jobs=N_JOBS, seed=6))
    worst = max(worst, show("M/M/3  ρ=0.8", rep))

    # M/G/1, deterministic service (the P-K variance term at its minimum)
    rep = compare(MG1(lam=0.8, service_mean=1.0, service_var=0.0),
                  simulate_mg1(0.8, lambda: 1.0, n_jobs=N_JOBS, seed=7))
    worst = max(worst, show("M/D/1  ρ=0.8", rep))

    # M/G/1, heavy-ish service (lognormal, cv^2 ≈ 1.7)
    svc = StreamFactory(8).stream("svc")
    mean, sigma = 1.0, 1.0
    import math

    var = (math.exp(sigma**2) - 1) * mean**2
    rep = compare(MG1(lam=0.5, service_mean=mean, service_var=var),
                  simulate_mg1(0.5, lambda: svc.lognormal(mean, sigma),
                               n_jobs=N_JOBS, seed=8))
    worst = max(worst, show(f"M/G/1 lognormal cv²={var:.2f}", rep))

    print(f"\nworst relative error across all systems: {worst:.2%}")
    assert worst < 0.15, "simulation should track theory within 15% everywhere"
    print("Kernel validated against queueing theory.")


if __name__ == "__main__":
    main()
