#!/usr/bin/env python
"""Statistically sound policy comparison across replicated runs.

The taxonomy's top *output analyzer* tier includes "comparison between
different sets of results, often from different simulation runs".  A single
seed can flatter either policy; this example replicates the Bricks
scheduler experiment across seeds and lets a Welch t-test decide whether
predictive scheduling *really* beats random placement — plus a monitor-level
diff of one matched pair of runs.

Run:  python examples/run_comparison.py
"""

from repro.analysis import compare_monitors, compare_samples
from repro.core import Simulator
from repro.simulators import BricksModel

SEEDS = range(8)


def one_run(scheduler: str, seed: int) -> BricksModel:
    sim = Simulator(seed=seed)
    model = BricksModel(sim, n_clients=5, n_servers=3, scheduler=scheduler,
                        job_rate=0.3, background=0.6)
    return model.run(horizon=300.0)


def main() -> None:
    samples = {
        s: [one_run(s, seed).mean_response_time for seed in SEEDS]
        for s in ("predictive", "random")
    }
    print("mean response times per seed:")
    for s, xs in samples.items():
        rendered = ", ".join(f"{x:.2f}" for x in xs)
        print(f"  {s:<11} [{rendered}]")

    verdict = compare_samples("predictive", samples["predictive"],
                              "random", samples["random"])
    print(f"\n{verdict.render()}")
    assert verdict.winner == "predictive", \
        "prediction should win significantly across seeds"

    print("\nmonitor diff for one matched pair (seed 0):")
    a = one_run("predictive", 0)
    b = one_run("random", 0)
    for line in compare_monitors(a.monitor, b.monitor,
                                 "predictive", "random"):
        print(line)


if __name__ == "__main__":
    main()
