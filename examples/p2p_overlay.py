#!/usr/bin/env python
"""P2P overlays under churn: structured vs unstructured search.

The taxonomy covers "P2P networks" as a system kind of its own; this
example contrasts the two canonical search disciplines on the same kernel:
Chord-style finger routing (O(log N) hops) vs Gnutella-style flooding and
random walks, then runs Chord lookups while a heavy-tailed churn process
replaces half the population.

Run:  python examples/p2p_overlay.py
"""

import math

from repro.core import Simulator
from repro.p2p import ChordRing, ChurnProcess, UnstructuredOverlay


def chord_demo() -> None:
    print("Chord: mean lookup hops vs overlay size")
    for n in (16, 64, 256):
        sim = Simulator(seed=1)
        ring = ChordRing(sim, bits=20)
        for i in range(n):
            ring.join(f"node-{i}")
        keys = sim.stream("keys")
        lookups = [ring.lookup("node-0", keys.randint(0, ring.space - 1))
                   for _ in range(40)]
        sim.run()
        hops = sum(r.hops for r in lookups) / len(lookups)
        print(f"  N={n:<4} mean hops {hops:.2f}  (log2 N = {math.log2(n):.1f})")
        assert all(r.found for r in lookups)


def unstructured_demo() -> None:
    print("\nUnstructured (N=100): flooding vs random walks")
    sim = Simulator(seed=2)
    ov = UnstructuredOverlay(sim, sim.stream("ov"), degree=4)
    for i in range(100):
        ov.join(f"peer-{i}")
    ov.place_item("needle", "peer-50")
    flood = ov.flood_search("peer-0", "needle", ttl=7)
    walk = ov.walk_search("peer-0", "needle", walkers=4, max_steps=40)
    sim.run()
    print(f"  flooding    : found={flood.found}  messages={flood.messages}")
    print(f"  random walks: found={walk.found}  messages={walk.messages}")
    assert flood.messages > walk.messages


def churn_demo() -> None:
    print("\nChord under churn (population 40, heavy-tailed sessions):")
    sim = Simulator(seed=3)
    ring = ChordRing(sim, bits=16)
    churn = ChurnProcess(sim, ring, sim.stream("churn"),
                         target_population=40, mean_session=120.0,
                         mean_rejoin_gap=10.0, horizon=400.0)
    keys = sim.stream("keys")
    results = []

    def fire() -> None:
        if ring.size > 1:
            results.append(ring.lookup(churn.random_member(),
                                       keys.randint(0, ring.space - 1)))

    for t in range(10, 400, 5):
        sim.schedule_at(float(t), fire)
    sim.run()
    ok = sum(r.found for r in results)
    joins = churn.monitor.counter("joins").count
    leaves = churn.monitor.counter("leaves").count
    print(f"  {joins} joins / {leaves} leaves over the run")
    print(f"  lookups: {ok}/{len(results)} succeeded "
          f"({ok / len(results):.1%})")
    assert ok / len(results) > 0.9


if __name__ == "__main__":
    chord_demo()
    unstructured_demo()
    churn_demo()
    print("\nStructured routing stays logarithmic; flooding pays in "
          "messages; eager repair keeps lookups working through churn.")
