#!/usr/bin/env python
"""ChicagoSim-style data-location scheduling × push replication.

ChicagoSim "is designed to investigate scheduling strategies in conjunction
with data location ... [with] a 'push' model in which, when a site contains
a popular data file, it will replicate it to remote sites."

This example crosses the four external-scheduler policies with the two data
policies on Zipf-popular datasets.  Expected shape: data-present placement
slashes remote reads; push replication helps the data-blind policies most
(it moves the popular data to where the jobs land anyway).

Run:  python examples/data_aware_scheduling.py
"""

from repro.core import Simulator
from repro.simulators import ChicagoSimModel, DATA_POLICIES, JOB_POLICIES

N_JOBS = 80


def run(job_policy: str, data_policy: str) -> ChicagoSimModel:
    sim = Simulator(seed=31)
    model = ChicagoSimModel(sim, n_sites=5, n_datasets=20,
                            job_policy=job_policy, data_policy=data_policy,
                            n_schedulers=3, push_threshold=3)
    return model.run(n_jobs=N_JOBS, zipf_s=1.2)


def main() -> None:
    print(f"{'job policy':<14} {'data policy':<12} {'mean turnaround':>16} "
          f"{'remote reads':>13} {'pushes':>7}")
    remote = {}
    for jp in JOB_POLICIES:
        for dp in DATA_POLICIES:
            m = run(jp, dp)
            remote[(jp, dp)] = m.remote_fraction()
            pushes = getattr(m.strategy, "pushes", 0)
            print(f"{jp:<14} {dp:<12} {m.mean_turnaround:>14.1f} s "
                  f"{m.remote_fraction():>12.1%} {pushes:>7}")

    assert remote[("data-present", "none")] < remote[("random", "none")], \
        "running jobs at the data must reduce remote reads"
    assert remote[("random", "push")] <= remote[("random", "none")] + 1e-9, \
        "push replication should not increase remote reads for random placement"
    print("\nData-aware placement reduces WAN traffic; push replication "
          "rescues data-blind placement — the ChicagoSim result's shape holds.")


if __name__ == "__main__":
    main()
