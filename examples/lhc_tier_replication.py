#!/usr/bin/env python
"""The MONARC T0/T1 replication study (Legrand et al. 2005), reproduced.

The paper reports that MONARC 2 simulations of CMS+ATLAS data distribution
"showed that the existing capacity of 2.5 Gbps was not sufficient and, in
fact, not far afterwards the link was upgraded to a current 30 Gbps", and
"indicated the role of using a data replication agent".

This example sweeps the T0 uplink capacity with the replication agent on,
then contrasts agent vs on-demand pull at the crossover capacity.  Expect
backlog divergence below the aggregate demand (two experiments × three T1
replicas ≈ 4.3 Gbps) and a clean steady state at 10/30 Gbps.

Run:  python examples/lhc_tier_replication.py
"""

from repro.core import Simulator, ascii_plot
from repro.simulators import MonarcModel
from repro.workloads import ATLAS_2005, CMS_2005

HORIZON = 1800.0  # half an hour of production
CAPACITIES = [0.622, 1.25, 2.5, 10.0, 30.0]


def study(uplink_gbps: float, agent: bool) -> "StudyResult":
    sim = Simulator(seed=7)
    model = MonarcModel(sim, n_tier1=3, uplink_gbps=uplink_gbps,
                        agent_enabled=agent)
    return model.run_t0_t1_study(horizon=HORIZON,
                                 experiments=[CMS_2005, ATLAS_2005])


def main() -> None:
    print(f"{'uplink':>8} {'produced':>9} {'replicated':>11} "
          f"{'peak backlog':>13} {'final backlog':>14} {'verdict':>10}")
    results = {}
    for cap in CAPACITIES:
        r = study(cap, agent=True)
        results[cap] = r
        verdict = "DIVERGES" if r.diverged else "keeps up"
        print(f"{cap:>7.3g}G {r.produced_files:>9} {r.replicated_files:>11} "
              f"{r.peak_backlog_files:>13} {r.final_backlog_files:>14} {verdict:>10}")

    assert results[2.5].diverged, "2.5 Gbps should NOT keep up (the paper's point)"
    assert not results[30.0].diverged, "30 Gbps should keep up"
    print("\n2.5 Gbps insufficient, 30 Gbps sufficient — matching the study.\n")

    r = results[2.5]
    xs = [t for t, _ in r.backlog_series]
    ys = [b for _, b in r.backlog_series]
    print(ascii_plot(xs, ys, label="T0->T1 backlog (files) at 2.5 Gbps"))


if __name__ == "__main__":
    main()
