"""Host substrate: CPUs, storage devices, sites, background load.

The taxonomy's *host characteristics* layer: time/space-shared machines
(:mod:`~repro.hosts.cpu`), disks and tape (:mod:`~repro.hosts.storage`),
resource organizations — central and tier — (:mod:`~repro.hosts.site`),
and external-load injectors (:mod:`~repro.hosts.load`).
"""

from .aggregate import aggregate_machines, coarsen_grid
from .cpu import JobRun, Machine, SpaceSharedMachine, TimeSharedMachine
from .load import NetworkCrossTraffic, RandomBurstLoad, SquareWaveLoad
from .site import Grid, Site, central_grid, tier_grid
from .failures import MachineFailureInjector
from .storage import Disk, MassStorage, StorageManager

__all__ = [
    "aggregate_machines",
    "MachineFailureInjector",
    "coarsen_grid",
    "JobRun",
    "Machine",
    "SpaceSharedMachine",
    "TimeSharedMachine",
    "Disk",
    "MassStorage",
    "StorageManager",
    "Site",
    "Grid",
    "central_grid",
    "tier_grid",
    "SquareWaveLoad",
    "NetworkCrossTraffic",
    "RandomBurstLoad",
]
