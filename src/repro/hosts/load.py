"""Background-load injectors for machines (and anything load-settable).

Bricks schedules against a *monitored and predicted* background: servers
and networks in a global computing system carry external traffic the
scheduler does not control.  These injectors reproduce that environment by
driving :meth:`~repro.hosts.cpu.Machine.set_background_load` over time:

:class:`SquareWaveLoad`
    Deterministic on/off load — the predictable diurnal pattern.
:class:`RandomBurstLoad`
    Exponential burst arrivals with uniform levels and durations — the
    unpredictable competing traffic that separates load-aware from
    predictive scheduling in benchmark E11.

Both expose ``current`` plus an exact ``mean_load`` over the emitted
schedule, so predictive schedulers have ground truth to "predict".
"""

from __future__ import annotations

from typing import Protocol

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.rng import Stream

__all__ = ["LoadTarget", "SquareWaveLoad", "RandomBurstLoad",
           "NetworkCrossTraffic"]


class LoadTarget(Protocol):
    """Anything accepting a background-load fraction."""

    def set_background_load(self, fraction: float) -> None:
        """Apply an external-load fraction in [0, 1)."""
        ...  # pragma: no cover


class SquareWaveLoad:
    """Alternates the target between ``high`` and ``low`` load forever.

    The first edge (to *high*) fires after ``phase`` time units.
    """

    def __init__(self, sim: Simulator, target: LoadTarget, high: float = 0.6,
                 low: float = 0.0, period: float = 100.0, phase: float = 0.0) -> None:
        if not 0 <= low <= high < 1:
            raise ConfigurationError("need 0 <= low <= high < 1")
        if period <= 0:
            raise ConfigurationError("period must be > 0")
        self.sim = sim
        self.target = target
        self.high = high
        self.low = low
        self.period = period
        self.current = low
        self.transitions = 0
        sim.schedule(phase, self._rise, label="bgload_rise")

    @property
    def mean_load(self) -> float:
        """Long-run average load of the wave."""
        return (self.high + self.low) / 2.0

    def _rise(self) -> None:
        self.current = self.high
        self.transitions += 1
        self.target.set_background_load(self.high)
        self.sim.schedule(self.period / 2, self._fall, label="bgload_fall")

    def _fall(self) -> None:
        self.current = self.low
        self.transitions += 1
        self.target.set_background_load(self.low)
        self.sim.schedule(self.period / 2, self._rise, label="bgload_rise")


class RandomBurstLoad:
    """Poisson load bursts: idle gaps ~ Exp(mean_gap), levels ~ U(0, peak).

    ``horizon`` bounds the schedule so a finite run drains; the realized
    time-average is tracked in ``observed_load_time`` for prediction tests.
    """

    def __init__(self, sim: Simulator, target: LoadTarget, stream: Stream,
                 mean_gap: float = 50.0, mean_burst: float = 20.0,
                 peak: float = 0.8, horizon: float = float("inf")) -> None:
        if mean_gap <= 0 or mean_burst <= 0:
            raise ConfigurationError("mean_gap and mean_burst must be > 0")
        if not 0 < peak < 1:
            raise ConfigurationError("peak must be in (0,1)")
        self.sim = sim
        self.target = target
        self.stream = stream
        self.mean_gap = mean_gap
        self.mean_burst = mean_burst
        self.peak = peak
        self.horizon = horizon
        self.current = 0.0
        self.bursts = 0
        self.observed_load_time = 0.0  # integral of load over time
        self._last_change = sim.now
        sim.schedule(stream.exponential(mean_gap), self._burst_start,
                     label="burst_start")

    def _account(self) -> None:
        now = self.sim.now
        self.observed_load_time += self.current * (now - self._last_change)
        self._last_change = now

    def _burst_start(self) -> None:
        if self.sim.now >= self.horizon:
            return
        self._account()
        self.current = self.stream.uniform(0.1 * self.peak, self.peak)
        self.bursts += 1
        self.target.set_background_load(self.current)
        self.sim.schedule(self.stream.exponential(self.mean_burst),
                          self._burst_end, label="burst_end")

    def _burst_end(self) -> None:
        self._account()
        self.current = 0.0
        self.target.set_background_load(0.0)
        if self.sim.now < self.horizon:
            self.sim.schedule(self.stream.exponential(self.mean_gap),
                              self._burst_start, label="burst_start")

    def mean_load(self, t_end: float | None = None) -> float:
        """Realized time-average load up to *t_end* (default: now)."""
        t = self.sim.now if t_end is None else t_end
        if t <= 0:
            return 0.0
        pending = self.current * (t - self._last_change)
        return (self.observed_load_time + pending) / t


class NetworkCrossTraffic:
    """Background flows competing with the modelled traffic on a network.

    Bricks simulates "processing schemes for networks and servers": its
    scheduling unit monitors *network* conditions too.  This injector
    creates that environment — Poisson-started transfers between random
    endpoint pairs steal fair-share bandwidth from the model's own flows
    through the normal max-min reallocation, so no special-casing is
    needed anywhere.

    Parameters
    ----------
    network:
        The :class:`~repro.network.flow.FlowNetwork` to load.
    endpoints:
        Candidate source/destination node names (pairs drawn uniformly,
        src != dst).
    mean_gap, mean_bytes:
        Exponential inter-start time and transfer size.
    horizon:
        No new cross-flows start after this time (bounded runs stay
        bounded; in-flight transfers complete normally).
    """

    def __init__(self, sim: Simulator, network, stream: Stream,
                 endpoints: list[str], mean_gap: float = 10.0,
                 mean_bytes: float = 1e7, horizon: float = 3_600.0) -> None:
        if len(endpoints) < 2:
            raise ConfigurationError("need at least two endpoints")
        if mean_gap <= 0 or mean_bytes <= 0 or horizon <= 0:
            raise ConfigurationError("gap, bytes and horizon must be > 0")
        self.sim = sim
        self.network = network
        self.stream = stream
        self.endpoints = list(endpoints)
        self.mean_gap = mean_gap
        self.mean_bytes = mean_bytes
        self.horizon = horizon
        self.flows_started = 0
        self.bytes_injected = 0.0
        sim.schedule(stream.exponential(mean_gap), self._start_flow,
                     label="cross_traffic")

    def _start_flow(self) -> None:
        if self.sim.now >= self.horizon:
            return
        src = self.stream.choice(self.endpoints)
        dst = self.stream.choice([e for e in self.endpoints if e != src])
        size = self.stream.exponential(self.mean_bytes)
        self.network.transfer(src, dst, size)
        self.flows_started += 1
        self.bytes_injected += size
        self.sim.schedule(self.stream.exponential(self.mean_gap),
                          self._start_flow, label="cross_traffic")
