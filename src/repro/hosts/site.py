"""Sites: the resource-organization layer (farms, clusters, regional centres).

Taxonomy *host characteristics*: hosts "may contain computing, data storage,
and other resources, grouped into single or distributed systems", with two
canonical organizations the paper names explicitly — Bricks' **central
model** ("all the jobs are processed at a single site") and MONARC's
**tier model** ("jobs are processed according to their hierarchical
levels").

A :class:`Site` bundles machines and a disk behind one name that matches a
topology node, so middleware can say "run this job at RAL, reading file X
from CERN" and the right CPU, disk, and network costs compose.
:func:`central_grid` and :func:`tier_grid` build whole systems in the two
organizations; both return a :class:`Grid` — the container every simulator
model in :mod:`repro.simulators` starts from.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..network.flow import FlowNetwork
from ..network.topology import GBPS, Topology, star, tier_tree
from ..network.transfer import FileSpec, FileTransferService
from .cpu import JobRun, Machine, SpaceSharedMachine, TimeSharedMachine
from .storage import Disk

__all__ = ["Site", "Grid", "central_grid", "tier_grid"]


class Site:
    """One named location: machines + disk + position in the topology."""

    def __init__(self, sim: Simulator, name: str,
                 machines: Iterable[Machine] | None = None,
                 disk: Optional[Disk] = None, tier: int | None = None) -> None:
        self.sim = sim
        self.name = name
        self.machines: list[Machine] = list(machines or [])
        self.disk = disk
        self.tier = tier

    # -- compute ---------------------------------------------------------------

    @property
    def total_pes(self) -> int:
        """PEs summed over the site's machines."""
        return sum(m.pes for m in self.machines)

    @property
    def total_mips(self) -> float:
        """Effective MIPS summed over the site's machines."""
        return sum(m.total_mips for m in self.machines)

    @property
    def running_jobs(self) -> int:
        """Jobs currently executing at the site."""
        return sum(m.running for m in self.machines)

    @property
    def queued_jobs(self) -> int:
        """Jobs waiting in the site's machine queues."""
        return sum(m.queued for m in self.machines)

    def least_loaded_machine(self) -> Machine:
        """The machine with the fewest waiting+running jobs."""
        if not self.machines:
            raise ConfigurationError(f"site {self.name!r} has no machines")
        return min(self.machines, key=lambda m: (m.running + m.queued, m.name))

    def submit(self, job) -> JobRun:
        """Run *job* on the least-loaded machine."""
        return self.least_loaded_machine().submit(job)

    def estimated_completion(self, length: float) -> float:
        """Best completion estimate across this site's machines."""
        if not self.machines:
            return float("inf")
        return min(m.estimated_completion(length) for m in self.machines)

    # -- data ---------------------------------------------------------------------

    def has_file(self, name: str) -> bool:
        """True when the site disk holds *name*."""
        return self.disk is not None and self.disk.has(name)

    def store_file(self, file: FileSpec, evict: str | None = None) -> None:
        """Place a file on the site disk, optionally evicting to make room."""
        if self.disk is None:
            raise ConfigurationError(f"site {self.name!r} has no disk")
        if evict is not None:
            self.disk.make_room(file.size, evict)
        self.disk.store(file)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Site {self.name!r} pes={self.total_pes} "
                f"files={len(self.disk.files) if self.disk else 0}>")


class Grid:
    """A whole simulated system: sites + topology + network + transfers.

    This is the object every simulator model in :mod:`repro.simulators`
    receives; it owns nothing scheduler-shaped — policy lives in
    :mod:`repro.middleware`.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 sites: Iterable[Site], efficiency: float = 0.92,
                 max_concurrent_transfers: int = 4,
                 transfer_attempts: int = 1,
                 transfer_backoff: float = 0.5) -> None:
        self.sim = sim
        self.topology = topology
        self.sites: dict[str, Site] = {}
        for s in sites:
            if s.name in self.sites:
                raise ConfigurationError(f"duplicate site name {s.name!r}")
            if not topology.has_node(s.name):
                raise ConfigurationError(
                    f"site {s.name!r} has no topology node")
            self.sites[s.name] = s
        self.network = FlowNetwork(sim, topology, efficiency=efficiency)
        self.transfers = FileTransferService(
            sim, self.network, max_concurrent_per_route=max_concurrent_transfers,
            max_attempts=transfer_attempts, retry_backoff=transfer_backoff)

    def site(self, name: str) -> Site:
        """The site by name (ConfigurationError if unknown)."""
        try:
            return self.sites[name]
        except KeyError:
            raise ConfigurationError(f"unknown site {name!r}") from None

    @property
    def site_names(self) -> list[str]:
        """All site names, sorted."""
        return sorted(self.sites)

    def sites_with_file(self, fname: str) -> list[Site]:
        """All sites whose disk currently holds *fname* (catalog-free scan)."""
        return [s for s in self.sites.values() if s.has_file(fname)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Grid sites={len(self.sites)}>"


def central_grid(sim: Simulator, n_clients: int = 8, server_pes: int = 16,
                 rating: float = 1000.0, bandwidth: float = 1 * GBPS,
                 disk_capacity: float = 1e12,
                 time_shared: bool = True) -> Grid:
    """Bricks-style central model: clients around one processing server.

    All jobs are processed at the single ``server`` site; ``client-i``
    sites generate work and hold no compute.
    """
    if n_clients < 1:
        raise ConfigurationError("central_grid needs at least one client")
    clients = [f"client-{i}" for i in range(n_clients)]
    topo = star("server", clients, bandwidth)
    mk = TimeSharedMachine if time_shared else SpaceSharedMachine
    server = Site(sim, "server",
                  machines=[mk(sim, pes=server_pes, rating=rating, name="server-farm")],
                  disk=Disk(sim, disk_capacity, name="server-disk"))
    sites = [server] + [Site(sim, c) for c in clients]
    return Grid(sim, topo, sites)


def tier_grid(sim: Simulator, fanouts: tuple[int, ...] = (2, 3),
              bandwidths: tuple[float, ...] = (2.5 * GBPS, 0.622 * GBPS),
              pes_by_tier: tuple[int, ...] = (64, 32, 8),
              rating: float = 1000.0,
              disk_by_tier: tuple[float, ...] = (1e15, 1e14, 1e13),
              time_shared: bool = False) -> Grid:
    """MONARC-style tier model: T0 root, T1 regional centres, T2 below.

    ``pes_by_tier`` / ``disk_by_tier`` give per-site resources for tiers
    0..k; both must be one longer than ``fanouts``.
    """
    if len(pes_by_tier) != len(fanouts) + 1 or len(disk_by_tier) != len(fanouts) + 1:
        raise ConfigurationError(
            "pes_by_tier and disk_by_tier must have len(fanouts)+1 entries")
    topo = tier_tree(list(fanouts), list(bandwidths))
    mk = TimeSharedMachine if time_shared else SpaceSharedMachine
    sites = []
    for node in topo.nodes:
        tier = int(node[1:].split(".", 1)[0]) if node.startswith("T") else 0
        sites.append(Site(
            sim, node, tier=tier,
            machines=[mk(sim, pes=pes_by_tier[tier], rating=rating,
                         name=f"{node}-farm")],
            disk=Disk(sim, disk_by_tier[tier], name=f"{node}-disk")))
    return Grid(sim, topo, sites)
