"""Storage devices: disks, mass storage (tape), and a two-level manager.

Taxonomy *host characteristics* names "the types of data storage facilities"
as a classification point; MONARC's regional centres combine disk farms
with tape-backed mass storage, and OptorSim's replication strategies turn
on the question of *which file to evict from a full disk*.

:class:`Disk`
    Finite capacity, distinct read/write rates, one I/O channel (transfers
    serialize), named-file inventory with pluggable eviction support.
:class:`MassStorage`
    Tape-like: large, slow, plus a per-access mount latency.
:class:`StorageManager`
    Hierarchical pair (disk in front of tape): reads hit disk when
    possible, miss to tape with stage-in; writes land on disk and spill
    oldest files to tape when full.
"""

from __future__ import annotations

from typing import Optional

from ..core.engine import Simulator
from ..core.errors import CapacityError, ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Waitable
from ..core.resources import Resource
from ..network.transfer import FileSpec

__all__ = ["Disk", "MassStorage", "StorageManager"]


class _IoTicket(Waitable):
    """Completes when the device finishes moving the file's bytes."""

    def __init__(self, file: FileSpec, op: str, requested: float) -> None:
        super().__init__()
        self.file = file
        self.op = op
        self.requested = requested
        self.finished: Optional[float] = None

    @property
    def duration(self) -> float:
        """Queueing plus transfer time (NaN while pending)."""
        return (self.finished - self.requested) if self.finished is not None else float("nan")


class Disk:
    """A finite disk with serialized I/O and a named-file inventory.

    ``read``/``write`` return waitables timed at ``size / rate`` behind one
    I/O channel (a capacity-1 :class:`Resource`), so concurrent accesses
    queue — the contention MONARC's database servers model.
    """

    def __init__(self, sim: Simulator, capacity: float,
                 read_rate: float = 100e6, write_rate: float = 80e6,
                 name: str = "disk", access_latency: float = 0.0) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        if read_rate <= 0 or write_rate <= 0:
            raise ConfigurationError("read/write rates must be > 0")
        if access_latency < 0:
            raise ConfigurationError("access latency must be >= 0")
        self.sim = sim
        self.capacity = float(capacity)
        self.read_rate = float(read_rate)
        self.write_rate = float(write_rate)
        self.access_latency = float(access_latency)
        self.name = name
        self._files: dict[str, FileSpec] = {}
        self._last_access: dict[str, float] = {}
        self._access_count: dict[str, int] = {}
        self._used = 0.0
        self._channel = Resource(sim, capacity=1, name=f"{name}-io")
        self.monitor = Monitor(name)

    # -- inventory ----------------------------------------------------------------

    @property
    def used(self) -> float:
        """Bytes currently stored."""
        return self._used

    @property
    def free(self) -> float:
        """Remaining capacity in bytes."""
        return self.capacity - self._used

    @property
    def files(self) -> list[FileSpec]:
        """All stored :class:`FileSpec` records."""
        return list(self._files.values())

    def has(self, name: str) -> bool:
        """True when the named file is on disk."""
        return name in self._files

    def get(self, name: str) -> Optional[FileSpec]:
        """The stored :class:`FileSpec`, or None."""
        return self._files.get(name)

    def store(self, file: FileSpec) -> None:
        """Register *file* on disk (bookkeeping only — no I/O time).

        Raises :class:`CapacityError` when it does not fit; callers wanting
        eviction use :meth:`evict_lru` / :meth:`evict_lfu` first.
        """
        if file.name in self._files:
            return  # idempotent: same logical file
        if file.size > self.free:
            raise CapacityError(
                f"{self.name}: {file.name} ({file.size:.3g}B) exceeds free "
                f"space ({self.free:.3g}B)")
        self._files[file.name] = file
        self._used += file.size
        self._last_access[file.name] = self.sim.now
        self._access_count[file.name] = 0

    def delete(self, name: str) -> bool:
        """Remove a file; returns False when absent."""
        f = self._files.pop(name, None)
        if f is None:
            return False
        self._used -= f.size
        self._last_access.pop(name, None)
        self._access_count.pop(name, None)
        return True

    def touch(self, name: str) -> None:
        """Record an access (drives LRU/LFU eviction order)."""
        if name in self._files:
            self._last_access[name] = self.sim.now
            self._access_count[name] = self._access_count.get(name, 0) + 1

    def access_count(self, name: str) -> int:
        """Recorded accesses of a file (drives LFU)."""
        return self._access_count.get(name, 0)

    def evict_lru(self) -> Optional[FileSpec]:
        """Delete and return the least-recently-used file (None if empty)."""
        if not self._files:
            return None
        victim = min(self._last_access, key=lambda n: (self._last_access[n], n))
        f = self._files[victim]
        self.delete(victim)
        return f

    def evict_lfu(self) -> Optional[FileSpec]:
        """Delete and return the least-frequently-used file (None if empty)."""
        if not self._files:
            return None
        victim = min(self._access_count,
                     key=lambda n: (self._access_count[n], self._last_access[n], n))
        f = self._files[victim]
        self.delete(victim)
        return f

    def make_room(self, nbytes: float, policy: str = "lru") -> list[FileSpec]:
        """Evict files (by *policy*) until *nbytes* fit; returns the victims.

        Raises :class:`CapacityError` if the disk is too small outright.
        """
        if nbytes > self.capacity:
            raise CapacityError(
                f"{self.name}: {nbytes:.3g}B can never fit capacity "
                f"{self.capacity:.3g}B")
        evicted = []
        while self.free < nbytes:
            victim = self.evict_lru() if policy == "lru" else self.evict_lfu()
            assert victim is not None  # free < nbytes <= capacity => files exist
            evicted.append(victim)
        return evicted

    # -- timed I/O ------------------------------------------------------------------

    def read(self, name: str) -> _IoTicket:
        """Timed read of a stored file; completes after queue + transfer."""
        f = self._files.get(name)
        if f is None:
            raise ConfigurationError(f"{self.name}: no such file {name!r}")
        self.touch(name)
        return self._io(f, "read", self.read_rate)

    def write(self, file: FileSpec, evict_policy: str | None = None) -> _IoTicket:
        """Timed write; optionally evicts (*evict_policy*) to make room."""
        if not self.has(file.name):
            if evict_policy is not None:
                self.make_room(file.size, evict_policy)
            self.store(file)
        return self._io(file, "write", self.write_rate)

    def _io(self, file: FileSpec, op: str, rate: float) -> _IoTicket:
        ticket = _IoTicket(file, op, self.sim.now)

        def on_grant(req) -> None:
            duration = self.access_latency + file.size / rate

            def done() -> None:
                self._channel.release(req)
                ticket.finished = self.sim.now
                self.monitor.tally(f"{op}_time").record(ticket.duration)
                ticket._complete(ticket)

            self.sim.schedule(duration, done, label=f"{op}:{self.name}")

        self._channel.request(on_grant=on_grant)
        return ticket

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Disk {self.name!r} {self._used:.3g}/{self.capacity:.3g}B "
                f"files={len(self._files)}>")


class MassStorage(Disk):
    """Tape-like mass storage: huge, slow, with per-access mount latency."""

    def __init__(self, sim: Simulator, capacity: float = 1e15,
                 read_rate: float = 30e6, write_rate: float = 30e6,
                 mount_latency: float = 30.0, name: str = "tape") -> None:
        super().__init__(sim, capacity, read_rate, write_rate, name=name,
                         access_latency=mount_latency)


class StorageManager:
    """Two-level hierarchy: disk cache in front of mass storage.

    Reads prefer disk; a tape hit stages the file onto disk (evicting LRU)
    before completing.  Writes land on disk and archive to tape, so a later
    eviction never loses the only copy.
    """

    def __init__(self, sim: Simulator, disk: Disk, tape: MassStorage) -> None:
        self.sim = sim
        self.disk = disk
        self.tape = tape
        self.monitor = Monitor("hsm")
        self.disk_hits = 0
        self.tape_hits = 0

    def has(self, name: str) -> bool:
        """True when either level holds the file."""
        return self.disk.has(name) or self.tape.has(name)

    def write(self, file: FileSpec) -> Waitable:
        """Write-through: disk (with eviction) + tape archive."""
        disk_ticket = self.disk.write(file, evict_policy="lru")
        self.tape.store(file)  # archival registration; tape write is async
        self.tape.write(file)
        return disk_ticket

    def read(self, name: str) -> Waitable:
        """Read from disk, or stage in from tape (then it costs tape time)."""
        if self.disk.has(name):
            self.disk_hits += 1
            self.monitor.counter("disk_hits").increment(self.sim.now)
            return self.disk.read(name)
        if not self.tape.has(name):
            raise ConfigurationError(f"hsm: file {name!r} exists nowhere")
        self.tape_hits += 1
        self.monitor.counter("tape_hits").increment(self.sim.now)
        outer = _IoTicket(self.tape.get(name), "staged-read", self.sim.now)

        def staged(_ticket) -> None:
            f = self.tape.get(name)
            assert f is not None
            self.disk.make_room(f.size, "lru")
            self.disk.store(f)
            outer.finished = self.sim.now
            outer._complete(outer)

        self.tape.read(name)._subscribe(staged)
        return outer
