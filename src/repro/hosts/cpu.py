"""Processing elements and machines: time-shared and space-shared CPUs.

Taxonomy *host characteristics*: "how different simulators model the load of
the computing nodes, the granularity of jobs being processed".  GridSim's
distinction is reproduced exactly: **space-shared** machines (batch nodes —
each job monopolizes one PE, FCFS) and **time-shared** machines (interactive
nodes — all jobs progress simultaneously under processor sharing).

Work is measured in MI (millions of instructions), PE speed in MIPS, so a
job of length L on a PE of rating R takes L/R seconds when running alone.
Both machine kinds accept any object with a ``length`` attribute and return
a :class:`JobRun` waitable, so middleware schedulers never care which kind
they dispatch to.

Background load (the Bricks ingredient) multiplies effective capacity by
``1 - load``; see :mod:`repro.hosts.load` for injectors that vary it.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.events import Event
from ..core.monitor import Monitor
from ..core.process import Waitable

__all__ = ["JobRun", "Machine", "SpaceSharedMachine", "TimeSharedMachine"]


class JobRun(Waitable):
    """One job's execution on a machine.  Completes with itself."""

    _counter = 0

    def __init__(self, job, submitted: float) -> None:
        super().__init__()
        JobRun._counter += 1
        self.id = JobRun._counter
        self.job = job
        self.length = float(getattr(job, "length", job))
        if self.length <= 0:
            raise ConfigurationError(f"job length must be > 0, got {self.length}")
        self.submitted = submitted
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        # time-shared bookkeeping
        self.remaining = self.length
        self.rate = 0.0
        self._last_update = submitted
        self._completion: Optional[Event] = None

    @property
    def queue_delay(self) -> float:
        """Submission-to-start wait (NaN until started)."""
        return (self.started - self.submitted) if self.started is not None else float("nan")

    @property
    def turnaround(self) -> float:
        """Submission-to-completion time (NaN until finished)."""
        return (self.finished - self.submitted) if self.finished is not None else float("nan")

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.finished is not None else "running/queued"
        return f"<JobRun #{self.id} len={self.length:.4g} {state}>"


class Machine:
    """Common interface: ``submit(job) -> JobRun``; concrete policies below.

    Parameters
    ----------
    pes:
        Number of processing elements.
    rating:
        MIPS per processing element.
    """

    kind = "abstract"

    def __init__(self, sim: Simulator, pes: int = 1, rating: float = 1000.0,
                 name: str = "machine") -> None:
        if pes < 1:
            raise ConfigurationError(f"pes must be >= 1, got {pes}")
        if rating <= 0:
            raise ConfigurationError(f"rating must be > 0, got {rating}")
        self.sim = sim
        self.pes = pes
        self.rating = float(rating)
        self.name = name
        self._background = 0.0
        self.monitor = Monitor(name)
        self._busy_level = self.monitor.level("busy_pes", start_time=sim.now)
        self.completed = 0

    @property
    def total_mips(self) -> float:
        """Aggregate effective capacity after background load."""
        return self.pes * self.rating * (1.0 - self._background)

    @property
    def background_load(self) -> float:
        """Current external-load fraction in [0, 1)."""
        return self._background

    def set_background_load(self, fraction: float) -> None:
        """External (non-grid) load stealing a fraction of the capacity."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"background load must be in [0,1), got {fraction}")
        self._on_capacity_change(fraction)

    def _on_capacity_change(self, fraction: float) -> None:
        self._background = fraction

    def submit(self, job) -> JobRun:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def running(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def queued(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def estimated_completion(self, length: float) -> float:
        """Scheduler hint: when would a job of *length* finish if submitted
        now?  Concrete machines refine this; the default is optimistic."""
        return self.sim.now + length / (self.rating * (1.0 - self._background))

    def _finish_run(self, run: JobRun) -> None:
        run.finished = self.sim.now
        self.completed += 1
        self.monitor.tally("turnaround").record(run.turnaround)
        self.monitor.tally("queue_delay").record(run.queue_delay)
        run._complete(run)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r} pes={self.pes} rating={self.rating}>"


class SpaceSharedMachine(Machine):
    """Batch semantics: one job per PE, FCFS queue when all PEs busy.

    Supports failure injection: :meth:`fail` stops the machine (running
    jobs are requeued — with their remaining work under the ``checkpoint``
    policy, or from scratch under ``restart``) and :meth:`repair` brings it
    back.  Submissions during downtime queue normally.
    """

    kind = "space-shared"

    def __init__(self, sim: Simulator, pes: int = 1, rating: float = 1000.0,
                 name: str = "space-shared",
                 restart_policy: str = "checkpoint") -> None:
        if restart_policy not in ("checkpoint", "restart"):
            raise ConfigurationError(
                f"restart_policy must be checkpoint|restart, got {restart_policy!r}")
        super().__init__(sim, pes, rating, name)
        self.restart_policy = restart_policy
        self._queue: list[JobRun] = []
        self._running: set[JobRun] = set()
        self._failed = False
        self.failures = 0
        self.evictions = 0
        #: cumulative seconds spent down over *closed* outages; the open
        #: interval (if any) is added by :attr:`total_downtime`.  Living on
        #: the machine — not the injector — keeps the accounting correct
        #: when external ``fail()``/``repair()`` calls mix with an injector.
        self.downtime = 0.0
        self._down_at: float | None = None
        #: absolute time the current outage is expected to end (a scheduler
        #: hint set by whoever crashed the machine); None = unknown.
        self.repair_eta: float | None = None

    @property
    def failed(self) -> bool:
        """True while the machine is down."""
        return self._failed

    @property
    def total_downtime(self) -> float:
        """Down seconds including the still-open outage (if any)."""
        down = self.downtime
        if self._down_at is not None:
            down += self.sim.now - self._down_at
        return down

    @property
    def availability(self) -> float:
        """Fraction of elapsed time the machine was up (1.0 before t>0)."""
        t = self.sim.now
        if t <= 0:
            return 1.0
        return 1.0 - self.total_downtime / t

    def fail(self, repair_eta: float | None = None) -> int:
        """Crash the machine; returns how many running jobs were evicted.

        *repair_eta* (absolute time) is the expected end of the outage;
        :meth:`estimated_completion` uses it so schedulers stop treating a
        dead machine as idle.  Idempotent: failing a failed machine only
        refreshes the hint.
        """
        if self._failed:
            if repair_eta is not None:
                self.repair_eta = repair_eta
            return 0
        self._failed = True
        self.repair_eta = repair_eta
        self._down_at = self.sim.now
        self.failures += 1
        self.monitor.counter("failures").increment(self.sim.now)
        victims = []
        for run in list(self._running):
            assert run._completion is not None
            # Zero-residue guard: a crash firing at the same timestamp as
            # the job's completion must not resurrect the job as a
            # zero-length rerun (double-counted in busy-level and eviction
            # tallies) — the work is done, so complete it here.
            if run._completion.time <= self.sim.now:
                run._completion.cancel()
                run._completion = None
                run.remaining = 0.0
                self._running.discard(run)
                self._finish_run(run)
                continue
            if self.restart_policy == "checkpoint":
                rate = self.rating * (1.0 - self._background)
                run.remaining = max(0.0,
                                    (run._completion.time - self.sim.now) * rate)
            else:
                run.remaining = run.length
            run._completion.cancel()
            run._completion = None
            self._running.discard(run)
            victims.append(run)
        # evicted jobs go to the *front* of the queue, oldest first
        self._queue[:0] = sorted(victims, key=lambda r: r.submitted)
        self._busy_level.set(self.sim.now, 0)
        self.evictions += len(victims)
        return len(victims)

    def repair(self) -> None:
        """Bring the machine back; queued work resumes immediately."""
        if not self._failed:
            return
        self._failed = False
        self.repair_eta = None
        if self._down_at is not None:
            dt = self.sim.now - self._down_at
            self.downtime += dt
            self.monitor.tally("repair_time").record(dt)
            self._down_at = None
        self.monitor.counter("repairs").increment(self.sim.now)
        while self._queue and len(self._running) < self.pes:
            self._start(self._queue.pop(0))

    def submit(self, job) -> JobRun:
        run = JobRun(job, self.sim.now)
        if not self._failed and len(self._running) < self.pes:
            self._start(run)
        else:
            self._queue.append(run)
        return run

    @property
    def running(self) -> int:
        return len(self._running)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def estimated_completion(self, length: float) -> float:
        """FCFS estimate: wait for the earliest-ending PE through the queue.

        A failed machine has ``_running`` empty, which used to make it look
        *idle* to schedulers; instead, PEs free up at the expected repair
        time (``repair_eta``), or never (``inf``) when no hint exists.
        """
        rate = self.rating * (1.0 - self._background)
        if self._failed:
            if self.repair_eta is None:
                return math.inf
            free_at = [max(self.repair_eta, self.sim.now)] * self.pes
        else:
            ends = sorted((r._completion.time if r._completion else self.sim.now)
                          for r in self._running)
            free_at = list(ends) + [self.sim.now] * (self.pes - len(ends))
            free_at.sort()
        for qr in self._queue:
            t0 = free_at.pop(0)
            # `remaining` is the checkpointed residue for evicted jobs.
            free_at.append(t0 + qr.remaining / rate)
            free_at.sort()
        return free_at[0] + length / rate

    def _start(self, run: JobRun) -> None:
        if run.started is None:
            run.started = self.sim.now
        # `remaining` equals `length` for fresh runs and the checkpointed
        # residue for runs evicted by a failure.
        service = run.remaining / (self.rating * (1.0 - self._background))
        run._completion = self.sim.schedule(service, self._depart, run,
                                            label=f"job_done:{self.name}")
        self._running.add(run)
        self._busy_level.set(self.sim.now, len(self._running))

    def _depart(self, run: JobRun) -> None:
        self._running.discard(run)
        self._busy_level.set(self.sim.now, len(self._running))
        self._finish_run(run)
        if self._queue and len(self._running) < self.pes:
            self._start(self._queue.pop(0))

    def _on_capacity_change(self, fraction: float) -> None:
        """Re-time running jobs at the new effective rating."""
        old_rate = self.rating * (1.0 - self._background)
        super()._on_capacity_change(fraction)
        new_rate = self.rating * (1.0 - self._background)
        for run in self._running:
            assert run._completion is not None
            left = (run._completion.time - self.sim.now) * old_rate  # MI left
            run.remaining = left  # keep failure checkpointing consistent
            run._completion.cancel()
            run._completion = self.sim.schedule(
                left / new_rate, self._depart, run, label=f"job_done:{self.name}")


class TimeSharedMachine(Machine):
    """Processor sharing: every job runs at ``min(rating, total/n)`` MIPS.

    The per-job cap at one PE's rating mirrors real round-robin scheduling:
    a single job cannot use more than one processor.  Rates are recomputed
    on every arrival/departure, exactly like the flow network's max-min
    update (it is the same O(n) reallocation pattern).
    """

    kind = "time-shared"

    def __init__(self, sim: Simulator, pes: int = 1, rating: float = 1000.0,
                 name: str = "time-shared") -> None:
        super().__init__(sim, pes, rating, name)
        self._active: list[JobRun] = []

    def submit(self, job) -> JobRun:
        run = JobRun(job, self.sim.now)
        run.started = self.sim.now  # PS admits immediately
        run._last_update = self.sim.now
        self._active.append(run)
        self._busy_level.set(self.sim.now, min(len(self._active), self.pes))
        self._reallocate()
        return run

    @property
    def running(self) -> int:
        return len(self._active)

    @property
    def queued(self) -> int:
        return 0  # PS has no queue; everyone runs (slowly)

    def estimated_completion(self, length: float) -> float:
        """PS estimate: finish time if one more job joined now."""
        n = len(self._active) + 1
        rate = min(self.rating * (1.0 - self._background),
                   self.total_mips / n)
        return self.sim.now + length / rate if rate > 0 else math.inf

    def _settle(self, run: JobRun) -> None:
        dt = self.sim.now - run._last_update
        if dt > 0:
            run.remaining = max(0.0, run.remaining - run.rate * dt)
        run._last_update = self.sim.now

    def _reallocate(self) -> None:
        n = len(self._active)
        if n == 0:
            return
        per_pe = self.rating * (1.0 - self._background)
        share = min(per_pe, self.total_mips / n)
        for run in self._active:
            self._settle(run)
            run.rate = share
            if run._completion is not None:
                run._completion.cancel()
            eta = run.remaining / share if share > 0 else math.inf
            run._completion = self.sim.schedule(eta, self._depart, run,
                                                label=f"job_done:{self.name}")

    def _depart(self, run: JobRun) -> None:
        self._settle(run)
        self._active.remove(run)
        self._busy_level.set(self.sim.now, min(len(self._active), self.pes))
        self._finish_run(run)
        self._reallocate()

    def _on_capacity_change(self, fraction: float) -> None:
        super()._on_capacity_change(fraction)
        self._reallocate()
