"""Failure injection: crash/repair processes for availability studies.

Real large-scale systems lose nodes continuously; a simulator that cannot
express failures cannot evaluate the fault-tolerance half of middleware
design (replication exists precisely because disks and hosts die).  The
injector drives any :class:`~repro.hosts.cpu.SpaceSharedMachine` through
exponential UP/DOWN cycles:

* TTF (time to failure) ~ Exp(``mtbf``) while up;
* TTR (time to repair) ~ Exp(``mttr``) while down;
* on failure, running jobs are evicted per the machine's
  ``restart_policy`` (``checkpoint`` keeps the finished work, ``restart``
  loses it — the lost-work gap is the classic checkpointing argument,
  tested in ``tests/test_failures.py``).
"""

from __future__ import annotations

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.rng import Stream
from .cpu import SpaceSharedMachine

__all__ = ["MachineFailureInjector"]


class MachineFailureInjector:
    """Exponential UP/DOWN cycling for one machine.

    Parameters
    ----------
    mtbf:
        Mean time between failures (mean UP duration).
    mttr:
        Mean time to repair (mean DOWN duration).
    horizon:
        No new failures are injected past this time (repairs still
        complete), keeping bounded runs bounded.
    """

    def __init__(self, sim: Simulator, machine: SpaceSharedMachine,
                 stream: Stream, mtbf: float = 1000.0, mttr: float = 50.0,
                 horizon: float = float("inf")) -> None:
        if mtbf <= 0 or mttr <= 0:
            raise ConfigurationError("mtbf and mttr must be > 0")
        if not isinstance(machine, SpaceSharedMachine):
            raise ConfigurationError(
                "failure injection currently supports space-shared machines")
        self.sim = sim
        self.machine = machine
        self.stream = stream
        self.mtbf = mtbf
        self.mttr = mttr
        self.horizon = horizon
        self.monitor = Monitor(f"failures-{machine.name}")
        self._down_since: float | None = None
        self._arm_failure()

    def _arm_failure(self) -> None:
        ttf = self.stream.exponential(self.mtbf)
        if self.sim.now + ttf < self.horizon:
            self.sim.schedule(ttf, self._crash, label="machine_crash")

    def _crash(self) -> None:
        if self._down_since is not None:
            # Already mid down-cycle (a stale crash event, or reentrant
            # external interference): never schedule a second repair.
            return
        ttr = self.stream.exponential(self.mttr)
        evicted = self.machine.fail(repair_eta=self.sim.now + ttr)
        assert self.machine.failed, \
            f"injector/machine state diverged on {self.machine.name}"
        self._down_since = self.sim.now
        self.monitor.counter("crashes").increment(self.sim.now)
        self.monitor.tally("jobs_evicted").record(evicted)
        self.sim.schedule(ttr, self._repair, label="machine_repair")

    def _repair(self) -> None:
        if self._down_since is None:
            return  # idempotent: an external repair already closed the cycle
        self._down_since = None
        self.machine.repair()
        assert not self.machine.failed, \
            f"injector/machine state diverged on {self.machine.name}"
        self._arm_failure()

    @property
    def downtime(self) -> float:
        """Down seconds so far, including a still-open outage.

        Delegated to the machine's own outage clock, so externally driven
        ``fail()``/``repair()`` calls interleaved with the injector's cycle
        can neither double-count nor lose downtime.
        """
        return self.machine.total_downtime

    @property
    def availability(self) -> float:
        """Fraction of elapsed time the machine was up (1.0 before t>0)."""
        return self.machine.availability
