"""Failure injection: crash/repair processes for availability studies.

Real large-scale systems lose nodes continuously; a simulator that cannot
express failures cannot evaluate the fault-tolerance half of middleware
design (replication exists precisely because disks and hosts die).  The
injector drives any :class:`~repro.hosts.cpu.SpaceSharedMachine` through
exponential UP/DOWN cycles:

* TTF (time to failure) ~ Exp(``mtbf``) while up;
* TTR (time to repair) ~ Exp(``mttr``) while down;
* on failure, running jobs are evicted per the machine's
  ``restart_policy`` (``checkpoint`` keeps the finished work, ``restart``
  loses it — the lost-work gap is the classic checkpointing argument,
  tested in ``tests/test_failures.py``).
"""

from __future__ import annotations

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.rng import Stream
from .cpu import SpaceSharedMachine

__all__ = ["MachineFailureInjector"]


class MachineFailureInjector:
    """Exponential UP/DOWN cycling for one machine.

    Parameters
    ----------
    mtbf:
        Mean time between failures (mean UP duration).
    mttr:
        Mean time to repair (mean DOWN duration).
    horizon:
        No new failures are injected past this time (repairs still
        complete), keeping bounded runs bounded.
    """

    def __init__(self, sim: Simulator, machine: SpaceSharedMachine,
                 stream: Stream, mtbf: float = 1000.0, mttr: float = 50.0,
                 horizon: float = float("inf")) -> None:
        if mtbf <= 0 or mttr <= 0:
            raise ConfigurationError("mtbf and mttr must be > 0")
        if not isinstance(machine, SpaceSharedMachine):
            raise ConfigurationError(
                "failure injection currently supports space-shared machines")
        self.sim = sim
        self.machine = machine
        self.stream = stream
        self.mtbf = mtbf
        self.mttr = mttr
        self.horizon = horizon
        self.monitor = Monitor(f"failures-{machine.name}")
        self.downtime = 0.0
        self._down_since: float | None = None
        self._arm_failure()

    def _arm_failure(self) -> None:
        ttf = self.stream.exponential(self.mtbf)
        if self.sim.now + ttf < self.horizon:
            self.sim.schedule(ttf, self._crash, label="machine_crash")

    def _crash(self) -> None:
        evicted = self.machine.fail()
        self._down_since = self.sim.now
        self.monitor.counter("crashes").increment(self.sim.now)
        self.monitor.tally("jobs_evicted").record(evicted)
        self.sim.schedule(self.stream.exponential(self.mttr), self._repair,
                          label="machine_repair")

    def _repair(self) -> None:
        assert self._down_since is not None
        self.downtime += self.sim.now - self._down_since
        self._down_since = None
        self.machine.repair()
        self._arm_failure()

    @property
    def availability(self) -> float:
        """Fraction of elapsed time the machine was up (1.0 before t>0)."""
        t = self.sim.now
        if t <= 0:
            return 1.0
        down = self.downtime
        if self._down_since is not None:
            down += t - self._down_since
        return 1.0 - down / t
