"""Model simplification: aggregating resources to simulate larger systems.

Taxonomy §5 names the engine-side remedies for scale — better event queues,
better entity scheduling, "various simplification mechanisms".  This module
is the third remedy: *coarsening* a detailed grid into an equivalent
smaller one, trading per-site fidelity for event volume.

Two levels:

* :func:`aggregate_machines` — replace a site's machine list with one
  equivalent machine (summed PEs, capacity-weighted rating).  Exact for
  space-shared FCFS workloads up to queue *pooling* (one shared queue
  instead of per-machine queues — a slightly optimistic approximation,
  quantified in benchmark E14).
* :func:`coarsen_grid` — merge groups of sites into super-sites on a
  star topology: PEs and disk capacities sum, group access bandwidth sums
  (members can transfer in parallel), latency averages.  Intra-group
  transfers become free — the approximation that breaks first when
  intra-group traffic matters, which E14's error columns expose.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from .cpu import Machine, SpaceSharedMachine
from .site import Grid, Site
from .storage import Disk
from ..network.topology import Topology

__all__ = ["aggregate_machines", "coarsen_grid"]


def aggregate_machines(sim: Simulator, machines: Sequence[Machine],
                       name: str = "aggregate") -> SpaceSharedMachine:
    """One space-shared machine equivalent to *machines*.

    PEs sum; the rating is the capacity-weighted mean so total MIPS is
    preserved exactly.  (A mixed-rating pool is approximated by a uniform
    one — each job's service time becomes the fleet average.)
    """
    if not machines:
        raise ConfigurationError("cannot aggregate zero machines")
    total_pes = sum(m.pes for m in machines)
    total_mips = sum(m.pes * m.rating for m in machines)
    return SpaceSharedMachine(sim, pes=total_pes,
                              rating=total_mips / total_pes, name=name)


def coarsen_grid(sim: Simulator, grid: Grid,
                 groups: Mapping[str, Sequence[str]],
                 hub: str = "AGG-WAN", latency: float | None = None) -> Grid:
    """Build a coarse :class:`Grid` on *sim* by merging site groups.

    Parameters
    ----------
    sim:
        The (fresh) simulator the coarse model will run on.
    grid:
        The detailed grid to read resource totals from.
    groups:
        ``{super_site_name: [member site names]}``; every compute/storage
        site being modelled must appear in exactly one group.
    latency:
        Access-link latency for the coarse star (default: mean of the
        members' first-hop latencies).
    """
    if not groups:
        raise ConfigurationError("need at least one group")
    seen: set[str] = set()
    for members in groups.values():
        for m in members:
            if m in seen:
                raise ConfigurationError(f"site {m!r} appears in two groups")
            seen.add(m)
            grid.site(m)  # validates existence
    topo = Topology()
    topo.add_node(hub, kind="backbone")
    sites = []
    for gname, members in sorted(groups.items()):
        msites = [grid.site(m) for m in members]
        # -- compute: sum PEs, preserve total MIPS -----------------------------
        pes = sum(s.total_pes for s in msites)
        mips = sum(s.total_mips for s in msites)
        machines = []
        if pes > 0:
            machines.append(SpaceSharedMachine(
                sim, pes=pes, rating=mips / pes, name=f"{gname}-agg"))
        # -- storage: sum capacity, keep the best rates ------------------------
        disks = [s.disk for s in msites if s.disk is not None]
        disk = None
        if disks:
            disk = Disk(sim, sum(d.capacity for d in disks),
                        read_rate=max(d.read_rate for d in disks),
                        write_rate=max(d.write_rate for d in disks),
                        name=f"{gname}-disk")
            for d in disks:  # carry the files over
                for f in d.files:
                    if not disk.has(f.name):
                        disk.store(f)
        # -- network: member access links act in parallel ----------------------
        bw = 0.0
        lats = []
        for s in msites:
            links = grid.topology.route_links(s.name, _first_neighbour(grid, s.name))
            if links:
                bw += links[0].bandwidth
                lats.append(links[0].latency)
        if bw <= 0:
            bw = 1e9
        topo.add_link(gname, hub, bw,
                      latency if latency is not None
                      else (sum(lats) / len(lats) if lats else 0.01))
        sites.append(Site(sim, gname, machines=machines, disk=disk))
    return Grid(sim, topo, sites)


def _first_neighbour(grid: Grid, name: str) -> str:
    """Any directly linked node (used to read the access link's capacity)."""
    for link in grid.topology.links:
        if link.src == name:
            return link.dst
    return name
