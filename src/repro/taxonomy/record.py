"""SimulatorRecord: one instrument's classification under the taxonomy."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from .schema import (
    Behavior,
    Component,
    DesKind,
    EntityMapping,
    Execution,
    InputKind,
    Mechanics,
    Motivation,
    OutputAnalysis,
    QueueStructure,
    SpecMode,
    SystemKind,
    TimeBase,
    UiKind,
    ValidationKind,
)

__all__ = ["SimulatorRecord"]


@dataclass(frozen=True)
class SimulatorRecord:
    """One row of Table 1: a simulator classified on every taxonomy axis.

    ``notes`` carries the provenance quotes (what the paper says that
    justifies each choice); ``runtime_components`` captures the "ability to
    easily incorporate components dynamically defined during simulation
    runtime" flag the paper singles out (Bricks lacks it).
    """

    name: str
    year: int
    motivations: frozenset[Motivation]
    systems: frozenset[SystemKind]
    components: frozenset[Component]
    behavior: Behavior
    time_base: TimeBase
    mechanics: Mechanics
    des_kinds: frozenset[DesKind]
    execution: Execution
    queue_structure: QueueStructure
    entity_mapping: EntityMapping
    spec_modes: frozenset[SpecMode]
    input_kinds: frozenset[InputKind]
    design_ui: UiKind
    execution_ui: UiKind
    output_analysis: OutputAnalysis
    validation: ValidationKind
    runtime_components: bool
    notes: dict[str, str] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("record needs a name")
        for fset, label in ((self.motivations, "motivations"),
                            (self.systems, "systems"),
                            (self.components, "components"),
                            (self.des_kinds, "des_kinds"),
                            (self.spec_modes, "spec_modes"),
                            (self.input_kinds, "input_kinds")):
            if not fset:
                raise ConfigurationError(
                    f"record {self.name!r}: {label} must be non-empty")

    # -- derived views ---------------------------------------------------------

    def supports(self, component: Component) -> bool:
        """True when the record models the given component layer."""
        return component in self.components

    def axis_value(self, axis: str):
        """Fetch an axis by field name (used by diffing and rendering)."""
        if not hasattr(self, axis):
            raise ConfigurationError(f"unknown taxonomy axis {axis!r}")
        return getattr(self, axis)

    def short(self, axis: str) -> str:
        """Compact human-readable cell for tables."""
        v = self.axis_value(axis)
        if isinstance(v, frozenset):
            return ", ".join(sorted(x.value for x in v))
        if isinstance(v, bool):
            return "yes" if v else "no"
        if hasattr(v, "value"):
            return str(v.value)
        return str(v)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimulatorRecord {self.name!r} ({self.year})>"


#: The axes rendered as Table 1 columns, in presentation order.
TABLE1_AXES = [
    "motivations",
    "systems",
    "components",
    "behavior",
    "time_base",
    "mechanics",
    "des_kinds",
    "execution",
    "queue_structure",
    "entity_mapping",
    "spec_modes",
    "input_kinds",
    "design_ui",
    "execution_ui",
    "output_analysis",
    "validation",
    "runtime_components",
]
