"""Consistency rules and introspective classification.

Two jobs:

1. :func:`check_consistency` — the taxonomy's internal logic as executable
   rules.  A classification that, e.g., claims trace-driven advancement but
   no monitored-input support is self-contradictory; the paper's *arguments*
   (deprecating serial/parallel, physical time being inherent) also become
   rules.
2. :func:`classify_engine` — derive a partial record from a *live* kernel
   object, so this framework's registry row is checked against reality
   instead of hand-maintained (the classifier looks at the actual engine
   class and queue structure in use).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import Simulator
from ..core.queues import (
    AdaptiveQueue,
    CalendarQueue,
    HeapQueue,
    LadderQueue,
    LinearQueue,
    SplayQueue,
)
from ..core.timedriven import TimeDrivenSimulator
from ..core.tracedriven import TraceDrivenSimulator
from .record import SimulatorRecord
from .schema import (
    Component,
    DesKind,
    Execution,
    InputKind,
    Mechanics,
    Motivation,
    QueueStructure,
    SpecMode,
    TimeBase,
    UiKind,
    ValidationKind,
)

__all__ = ["Inconsistency", "check_consistency", "classify_engine"]


@dataclass(frozen=True, slots=True)
class Inconsistency:
    """One violated rule: which record, which rule, why."""

    record: str
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.record}] {self.rule}: {self.detail}"


def check_consistency(rec: SimulatorRecord) -> list[Inconsistency]:
    """All taxonomy-logic violations in one record (empty = consistent)."""
    out: list[Inconsistency] = []

    def bad(rule: str, detail: str) -> None:
        out.append(Inconsistency(rec.name, rule, detail))

    # The paper's §3 argument: serial/parallel is the rejected Sulistio
    # split; records must use centralized/distributed.
    if rec.execution in (Execution.SERIAL, Execution.PARALLEL):
        bad("deprecated-execution",
            "use CENTRALIZED or DISTRIBUTED (the paper replaces "
            "Sulistio's serial/parallel split)")

    # Trace-driven DES implies the tool can consume externally collected
    # event sets — i.e. monitored input.
    if DesKind.TRACE_DRIVEN in rec.des_kinds \
            and InputKind.MONITORED not in rec.input_kinds:
        bad("trace-needs-monitored-input",
            "trace-driven advancement replays collected data, so "
            "input_kinds must include MONITORED")

    # A discrete-event simulator has a discrete time base (continuous time
    # base would make it an emulator/hybrid in the paper's terms).
    if rec.mechanics is Mechanics.DISCRETE_EVENT \
            and rec.time_base is not TimeBase.DISCRETE:
        bad("des-discrete-time",
            "discrete-event mechanics requires a discrete time base")

    # Scheduling studies need something to schedule *on*: hosts.
    if Motivation.SCHEDULING in rec.motivations \
            and Component.HOSTS not in rec.components:
        bad("scheduling-needs-hosts",
            "a scheduling-motivated simulator must model hosts")

    # Replication studies need storage-bearing hosts and a network.
    if Motivation.DATA_REPLICATION in rec.motivations:
        for needed in (Component.HOSTS, Component.NETWORK):
            if needed not in rec.components:
                bad("replication-needs-substrate",
                    f"data replication requires the {needed.value} component")

    # A visual design mode and a textual-only design UI contradict.
    if SpecMode.VISUAL in rec.spec_modes and rec.design_ui is UiKind.TEXTUAL:
        bad("visual-spec-needs-gui",
            "visual model construction implies a graphical design interface")
    if rec.design_ui is not UiKind.TEXTUAL and SpecMode.VISUAL not in rec.spec_modes:
        bad("gui-implies-visual-spec",
            "a graphical design interface implies a VISUAL spec mode")

    return out


def classify_engine(sim: Simulator) -> dict[str, object]:
    """Partial classification of a live kernel instance.

    Returns the axes derivable from the object itself; the rest (scope,
    UI, validation) are properties of the surrounding tool, not the engine.
    """
    if isinstance(sim, TraceDrivenSimulator):
        des = DesKind.TRACE_DRIVEN
    elif isinstance(sim, TimeDrivenSimulator):
        des = DesKind.TIME_DRIVEN
    else:
        des = DesKind.EVENT_DRIVEN
    queue = sim._queue  # noqa: SLF001 - introspection is this function's job
    if isinstance(queue, AdaptiveQueue):
        # Classify by what currently holds the events; the wrapper itself
        # has no structure of its own.
        queue = queue.backend
    if isinstance(queue, LinearQueue):
        qs = QueueStructure.LINEAR
    elif isinstance(queue, (HeapQueue, SplayQueue)):
        qs = QueueStructure.TREE
    elif isinstance(queue, (CalendarQueue, LadderQueue)):
        qs = QueueStructure.CALENDAR
    else:
        qs = QueueStructure.UNKNOWN
    return {
        "mechanics": Mechanics.DISCRETE_EVENT,
        "time_base": TimeBase.DISCRETE,
        "des_kind": des,
        "queue_structure": qs,
    }


def validate_registry(records) -> list[Inconsistency]:
    """Convenience: concatenated violations across many records."""
    out: list[Inconsistency] = []
    for rec in records:
        out.extend(check_consistency(rec))
    return out
