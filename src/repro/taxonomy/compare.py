"""Pairwise comparison and parameter-space coverage analysis.

The paper's Section 4 conclusion: "even if many of them attack similar
problems ... the simulators give a complementary approach to each other,
allowing exploration of different areas of parameter space."  This module
makes that claim measurable: axis-by-axis diffs between two records,
Jaccard-style similarity, and a coverage report showing which taxonomy
values any simulator set leaves unexplored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .record import TABLE1_AXES, SimulatorRecord

__all__ = ["AxisDiff", "diff", "similarity", "coverage", "complementarity"]


@dataclass(frozen=True, slots=True)
class AxisDiff:
    """One axis where two records disagree."""

    axis: str
    left: str
    right: str


def diff(a: SimulatorRecord, b: SimulatorRecord) -> list[AxisDiff]:
    """Axes on which *a* and *b* differ (rendered values)."""
    out = []
    for axis in TABLE1_AXES:
        la, rb = a.short(axis), b.short(axis)
        if la != rb:
            out.append(AxisDiff(axis, la, rb))
    return out


def similarity(a: SimulatorRecord, b: SimulatorRecord) -> float:
    """Fraction of axes in agreement, weighting set axes by Jaccard overlap."""
    total = 0.0
    for axis in TABLE1_AXES:
        va, vb = a.axis_value(axis), b.axis_value(axis)
        if isinstance(va, frozenset):
            union = va | vb
            total += len(va & vb) / len(union) if union else 1.0
        else:
            total += 1.0 if va == vb else 0.0
    return total / len(TABLE1_AXES)


def _axis_values(records: Iterable[SimulatorRecord], axis: str) -> set:
    seen = set()
    for r in records:
        v = r.axis_value(axis)
        if isinstance(v, frozenset):
            seen |= v
        else:
            seen.add(v)
    return seen


def coverage(records: Sequence[SimulatorRecord]) -> dict[str, dict[str, bool]]:
    """Per-axis map of taxonomy value -> covered by at least one record.

    Boolean axes are reported as 'yes'/'no' coverage; enum axes enumerate
    the enum's members (deprecated execution members are excluded — they
    are rejected categories, not parameter space).
    """
    from .schema import Execution

    out: dict[str, dict[str, bool]] = {}
    for axis in TABLE1_AXES:
        seen = _axis_values(records, axis)
        domain: list = []
        sample = records[0].axis_value(axis) if records else None
        if isinstance(sample, bool):
            out[axis] = {"yes": True in seen, "no": False in seen}
            continue
        if isinstance(sample, frozenset):
            member = next(iter(sample))
            domain = list(type(member))
        elif sample is not None:
            domain = list(type(sample))
        covered = {}
        for member in domain:
            if member in (Execution.SERIAL, Execution.PARALLEL):
                continue
            covered[member.value] = member in seen
        out[axis] = covered
    return out


def complementarity(records: Sequence[SimulatorRecord]) -> float:
    """How much of the taxonomy's space the set covers jointly, in [0, 1].

    The quantified version of "allowing exploration of different areas of
    parameter space": fraction of (axis, value) cells hit by >= 1 record.
    """
    cov = coverage(records)
    cells = [hit for axis in cov.values() for hit in axis.values()]
    return sum(cells) / len(cells) if cells else 0.0
