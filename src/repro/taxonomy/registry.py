"""The six surveyed simulators (plus this framework) classified.

Every axis choice is justified by a quote or paraphrase from the paper,
carried in each record's ``notes`` — the registry *is* Table 1, with
provenance.  ``bench_table1`` renders it and asserts the prose claims.
"""

from __future__ import annotations

from .record import SimulatorRecord
from .schema import (
    Behavior,
    Component,
    DesKind,
    EntityMapping,
    Execution,
    InputKind,
    Mechanics,
    Motivation,
    OutputAnalysis,
    QueueStructure,
    SpecMode,
    SystemKind,
    TimeBase,
    UiKind,
    ValidationKind,
)

__all__ = ["SURVEYED", "REPRO_RECORD", "all_records", "record"]

_ALL4 = frozenset({Component.HOSTS, Component.NETWORK, Component.MIDDLEWARE,
                   Component.APPLICATIONS})

BRICKS = SimulatorRecord(
    name="Bricks", year=1999,
    motivations=frozenset({Motivation.SCHEDULING, Motivation.DATA_REPLICATION}),
    systems=frozenset({SystemKind.GRID}),
    components=_ALL4,
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN}),
    execution=Execution.CENTRALIZED,
    queue_structure=QueueStructure.UNKNOWN,
    entity_mapping=EntityMapping.EVENT_CALLBACKS,
    spec_modes=frozenset({SpecMode.LANGUAGE, SpecMode.LIBRARY}),
    input_kinds=frozenset({InputKind.GENERATOR}),
    design_ui=UiKind.TEXTUAL,
    execution_ui=UiKind.TEXTUAL,
    output_analysis=OutputAnalysis.NONE,
    validation=ValidationKind.TESTBED,
    runtime_components=False,
    notes={
        "motivations": "'among the first simulation projects developed to "
                       "investigate different resource scheduling issues'; "
                       "'extended ... with replica and disk management "
                       "simulation capabilities'",
        "organization": "the 'central model': all jobs processed at a single site",
        "runtime_components": "'The vast majority of simulation tools provide "
                              "this capability, but there are also exceptions "
                              "(Bricks for example)'",
        "validation": "paper lists Bricks among the few with validation studies",
    })

OPTORSIM = SimulatorRecord(
    name="OptorSim", year=2002,
    motivations=frozenset({Motivation.DATA_REPLICATION, Motivation.DATA_TRANSPORT}),
    systems=frozenset({SystemKind.GRID}),
    components=_ALL4,
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN, DesKind.TIME_DRIVEN}),
    execution=Execution.CENTRALIZED,
    queue_structure=QueueStructure.UNKNOWN,
    entity_mapping=EntityMapping.ONE_TO_ONE,
    spec_modes=frozenset({SpecMode.LIBRARY}),
    input_kinds=frozenset({InputKind.GENERATOR}),
    design_ui=UiKind.TEXTUAL,
    execution_ui=UiKind.TEXTUAL,
    output_analysis=OutputAnalysis.PLOTS,
    validation=ValidationKind.NONE,
    runtime_components=True,
    notes={
        "motivations": "'WorkPackage 2 ... responsible for replica management "
                       "and optimization, and the emphasis is on this area'",
        "model": "'investigate the stability and transient behavior of "
                 "replication optimization methods'; pull replication",
        "entity_mapping": "Java threads drive CE/SE entities",
        "des_kinds": "selectable time-stepped or event-based advancement",
    })

SIMGRID = SimulatorRecord(
    name="SimGrid", year=2001,
    motivations=frozenset({Motivation.SCHEDULING}),
    systems=frozenset({SystemKind.GRID, SystemKind.APPLICATION}),
    components=frozenset({Component.HOSTS, Component.NETWORK,
                          Component.APPLICATIONS}),
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN, DesKind.TRACE_DRIVEN}),
    execution=Execution.CENTRALIZED,
    queue_structure=QueueStructure.UNKNOWN,
    entity_mapping=EntityMapping.EVENT_CALLBACKS,
    spec_modes=frozenset({SpecMode.LIBRARY}),
    input_kinds=frozenset({InputKind.GENERATOR, InputKind.MONITORED}),
    design_ui=UiKind.TEXTUAL,
    execution_ui=UiKind.TEXTUAL,
    output_analysis=OutputAnalysis.NONE,
    validation=ValidationKind.MATHEMATICAL,
    runtime_components=True,
    notes={
        "components": "'SimGrid does not provide any of the system support "
                      "facilities as discussed in the taxonomy' — no "
                      "middleware layer of its own",
        "model": "agents sending/receiving events via channels; compile-time "
                 "and runtime scheduling",
        "validation": "'comparing the results of the simulator with the ones "
                      "obtained analytically on a mathematically tractable "
                      "scheduling problem' (Casanova 2001)",
        "input_kinds": "resource availability can replay NWS-style traces",
    })

GRIDSIM = SimulatorRecord(
    name="GridSim", year=2002,
    motivations=frozenset({Motivation.ECONOMY, Motivation.SCHEDULING}),
    systems=frozenset({SystemKind.GRID, SystemKind.CLUSTER, SystemKind.P2P}),
    components=_ALL4,
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN}),
    execution=Execution.CENTRALIZED,
    queue_structure=QueueStructure.UNKNOWN,
    entity_mapping=EntityMapping.ONE_TO_ONE,
    spec_modes=frozenset({SpecMode.LIBRARY, SpecMode.VISUAL}),
    input_kinds=frozenset({InputKind.GENERATOR}),
    design_ui=UiKind.GRAPHICAL,
    execution_ui=UiKind.TEXTUAL,
    output_analysis=OutputAnalysis.PLOTS,
    validation=ValidationKind.NONE,
    runtime_components=True,
    notes={
        "motivations": "'investigate effective resource allocation techniques "
                       "based on computational economy'; deadline & budget "
                       "constrained cost-time optimization",
        "systems": "'clusters, Grids, and P2P networks'; time- and "
                   "space-shared resources",
        "design_ui": "'Examples of simulators providing visual design "
                     "interfaces are GridSim and MONARC 2'",
        "entity_mapping": "SimJava threads: one per simulation entity",
    })

CHICAGOSIM = SimulatorRecord(
    name="ChicagoSim", year=2002,
    motivations=frozenset({Motivation.SCHEDULING, Motivation.DATA_REPLICATION}),
    systems=frozenset({SystemKind.GRID}),
    components=_ALL4,
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN}),
    execution=Execution.CENTRALIZED,
    queue_structure=QueueStructure.UNKNOWN,
    entity_mapping=EntityMapping.ONE_TO_ONE,
    spec_modes=frozenset({SpecMode.LANGUAGE, SpecMode.LIBRARY}),
    input_kinds=frozenset({InputKind.GENERATOR}),
    design_ui=UiKind.TEXTUAL,
    execution_ui=UiKind.TEXTUAL,
    output_analysis=OutputAnalysis.NONE,
    validation=ValidationKind.NONE,
    runtime_components=True,
    notes={
        "motivations": "'designed to investigate scheduling strategies in "
                       "conjunction with data location'",
        "model": "configurable number of schedulers rather than one Resource "
                 "Broker; push replication of popular files; sites with "
                 "equal-capacity processors and limited storage",
        "spec_modes": "'built on top of the C-based simulation language Parsec'",
        "input_kinds": "'ChicagoSim accepts only input data generators'",
    })

MONARC2 = SimulatorRecord(
    name="MONARC 2", year=2004,
    motivations=frozenset({Motivation.GENERIC_MODELING,
                           Motivation.DATA_REPLICATION,
                           Motivation.SCHEDULING}),
    systems=frozenset({SystemKind.GRID, SystemKind.FARM}),
    components=_ALL4,
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN}),
    execution=Execution.DISTRIBUTED,
    queue_structure=QueueStructure.UNKNOWN,
    entity_mapping=EntityMapping.POOLED,
    spec_modes=frozenset({SpecMode.LIBRARY, SpecMode.VISUAL}),
    input_kinds=frozenset({InputKind.GENERATOR, InputKind.MONITORED}),
    design_ui=UiKind.GRAPHICAL,
    execution_ui=UiKind.GRAPHICAL,
    output_analysis=OutputAnalysis.ANALYSIS,
    validation=ValidationKind.TESTBED,
    runtime_components=True,
    notes={
        "model": "tier model: 'a hierarchy of different sites ... grouped "
                 "into levels called tiers'; regional centres with CPU "
                 "farms, database servers, mass storage, LAN/WAN",
        "mechanics": "'process oriented approach ... Threaded objects or "
                     "Active Objects'",
        "entity_mapping": "thread reuse / advanced mapping schemes — the "
                          "engine optimization the paper credits modern "
                          "simulators with",
        "execution": "uses every processor of the station via threading; "
                     "'there are no pure distributed simulators' (§3)",
        "input_kinds": "'MONARC 2 accepts both types of input (the monitoring "
                       "data format is the one produced by MonALISA)'",
        "validation": "paper lists MONARC among the few with validation "
                      "studies; Legrand 2005 LHC study",
    })

#: This framework, classified under its own taxonomy (eat your own dog food).
REPRO_RECORD = SimulatorRecord(
    name="repro", year=2026,
    motivations=frozenset({Motivation.GENERIC_MODELING, Motivation.SCHEDULING,
                           Motivation.DATA_REPLICATION, Motivation.ECONOMY}),
    systems=frozenset({SystemKind.GRID, SystemKind.CLUSTER, SystemKind.P2P,
                       SystemKind.FARM, SystemKind.APPLICATION}),
    components=_ALL4,
    behavior=Behavior.PROBABILISTIC,
    time_base=TimeBase.DISCRETE,
    mechanics=Mechanics.DISCRETE_EVENT,
    des_kinds=frozenset({DesKind.EVENT_DRIVEN, DesKind.TIME_DRIVEN,
                         DesKind.TRACE_DRIVEN}),
    execution=Execution.DISTRIBUTED,
    queue_structure=QueueStructure.CALENDAR,
    entity_mapping=EntityMapping.POOLED,
    spec_modes=frozenset({SpecMode.LIBRARY}),
    input_kinds=frozenset({InputKind.GENERATOR, InputKind.MONITORED}),
    design_ui=UiKind.TEXTUAL,
    execution_ui=UiKind.TEXTUAL,
    output_analysis=OutputAnalysis.ANALYSIS,
    validation=ValidationKind.MATHEMATICAL,
    runtime_components=True,
    notes={
        "queue_structure": "pluggable: linear, heap, splay, calendar, ladder, "
                           "adaptive (self-tuning: migrates between heap/"
                           "calendar/ladder on the sampled workload)",
        "entity_mapping": "pluggable: dedicated / shared / pooled contexts",
        "execution": "sequential, CMB null-message and synchronous-window "
                     "conservative executors",
        "validation": "M/M/1, M/M/c, M/G/1, Jackson networks vs simulation "
                      "(tests + benchmark E4)",
    })

#: The paper's six, in survey order.
SURVEYED: tuple[SimulatorRecord, ...] = (
    BRICKS, OPTORSIM, SIMGRID, GRIDSIM, CHICAGOSIM, MONARC2,
)


def all_records() -> list[SimulatorRecord]:
    """The surveyed six plus this framework."""
    return list(SURVEYED) + [REPRO_RECORD]


def record(name: str) -> SimulatorRecord:
    """Look up a record by (case-insensitive) name."""
    for r in all_records():
        if r.name.lower() == name.lower():
            return r
    raise KeyError(f"no record named {name!r}")
