"""The paper's taxonomy, executable.

Schema (:mod:`~repro.taxonomy.schema`), records
(:mod:`~repro.taxonomy.record`), the classified six-simulator registry
(:mod:`~repro.taxonomy.registry`), consistency rules + live-engine
classification (:mod:`~repro.taxonomy.classify`), pairwise/coverage
comparison (:mod:`~repro.taxonomy.compare`), and the Table-1 renderers
(:mod:`~repro.taxonomy.report`).
"""

from .classify import Inconsistency, check_consistency, classify_engine, validate_registry
from .compare import AxisDiff, complementarity, coverage, diff, similarity
from .record import TABLE1_AXES, SimulatorRecord
from .registry import REPRO_RECORD, SURVEYED, all_records, record
from .report import (
    render_ascii,
    render_csv,
    render_markdown,
    survey_report,
    table1_rows,
)
from .schema import (
    Behavior,
    Component,
    DesKind,
    EntityMapping,
    Execution,
    InputKind,
    Mechanics,
    Motivation,
    OutputAnalysis,
    QueueStructure,
    SpecMode,
    SystemKind,
    TimeBase,
    UiKind,
    ValidationKind,
)

__all__ = [
    "SimulatorRecord",
    "TABLE1_AXES",
    "SURVEYED",
    "REPRO_RECORD",
    "all_records",
    "record",
    "check_consistency",
    "classify_engine",
    "validate_registry",
    "Inconsistency",
    "diff",
    "similarity",
    "coverage",
    "complementarity",
    "AxisDiff",
    "table1_rows",
    "render_ascii",
    "render_markdown",
    "render_csv",
    "survey_report",
    # schema
    "Motivation",
    "SystemKind",
    "Component",
    "Behavior",
    "TimeBase",
    "Mechanics",
    "DesKind",
    "Execution",
    "QueueStructure",
    "EntityMapping",
    "SpecMode",
    "InputKind",
    "UiKind",
    "OutputAnalysis",
    "ValidationKind",
]
