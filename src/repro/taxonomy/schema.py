"""The taxonomy's category system (Section 3 of the paper, executable).

Every classification axis the paper defines is an enum here, grouped the
way Section 3 groups them:

**Simulation model**
  scope/motivation (:class:`Motivation`), supported system kinds
  (:class:`SystemKind`), simulated components (:class:`Component`),
  behavior (:class:`Behavior`), time base (:class:`TimeBase`).

**Implementation / engine**
  mechanics (:class:`Mechanics`), DES kind (:class:`DesKind`), execution
  (:class:`Execution`), event-list structure (:class:`QueueStructure`),
  entity/thread mapping (:class:`EntityMapping`).

**Usability**
  model specification (:class:`SpecMode`), input data
  (:class:`InputKind`), design/execution/output interfaces
  (:class:`UiKind`, :class:`OutputAnalysis`), validation
  (:class:`ValidationKind`).

The enums deliberately include members the paper argues *against* (e.g.
``Execution.SERIAL``) so the registry can encode its critique — a record
using a deprecated member trips a consistency rule in
:mod:`repro.taxonomy.classify`.
"""

from __future__ import annotations

import enum

__all__ = [
    "Motivation",
    "SystemKind",
    "Component",
    "Behavior",
    "TimeBase",
    "Mechanics",
    "DesKind",
    "Execution",
    "QueueStructure",
    "EntityMapping",
    "SpecMode",
    "InputKind",
    "UiKind",
    "OutputAnalysis",
    "ValidationKind",
]


class Motivation(enum.Enum):
    """The scope axis: what class of problem drove the simulator.

    The paper (via Venugopal 2006) notes most Grid simulators were born of
    the LHC validation effort, giving three recurring motivations, plus
    the general ones.
    """

    SCHEDULING = "scheduling"
    DATA_REPLICATION = "data replication"
    DATA_TRANSPORT = "data transport"
    GENERIC_MODELING = "generic modeling"
    ECONOMY = "computational economy"


class SystemKind(enum.Enum):
    """Kinds of large-scale distributed systems a model can express."""

    CLUSTER = "cluster"
    GRID = "grid"
    P2P = "p2p"
    CLOUD = "cloud"
    WEB = "web"
    INTRANET = "intranet"
    FARM = "farm"
    APPLICATION = "distributed application"


class Component(enum.Enum):
    """The four-component stack of the taxonomy's scope discussion."""

    HOSTS = "hosts"
    NETWORK = "network"
    MIDDLEWARE = "middleware"
    APPLICATIONS = "user applications"


class Behavior(enum.Enum):
    """Deterministic vs probabilistic simulation."""

    DETERMINISTIC = "deterministic"
    PROBABILISTIC = "probabilistic"


class TimeBase(enum.Enum):
    """Values the simulation clock may take."""

    DISCRETE = "discrete"
    CONTINUOUS = "continuous"


class Mechanics(enum.Enum):
    """How state changes advance: the engine's fundamental design."""

    CONTINUOUS = "continuous (emulator)"
    DISCRETE_EVENT = "discrete-event"
    HYBRID = "hybrid"


class DesKind(enum.Enum):
    """Sub-classification of discrete-event simulation."""

    EVENT_DRIVEN = "event-driven"
    TIME_DRIVEN = "time-driven"
    TRACE_DRIVEN = "trace-driven"


class Execution(enum.Enum):
    """The paper's centralized/distributed split (replacing serial/parallel).

    ``SERIAL`` and ``PARALLEL`` are retained as the *rejected* Sulistio
    categories; records must use CENTRALIZED or DISTRIBUTED.
    """

    CENTRALIZED = "centralized"
    DISTRIBUTED = "distributed"
    SERIAL = "serial (deprecated)"
    PARALLEL = "parallel (deprecated)"


class QueueStructure(enum.Enum):
    """Event-list structure families and their costs (the §3/§5 concern)."""

    LINEAR = "linear list O(n)"
    TREE = "tree / heap O(log n)"
    CALENDAR = "calendar / ladder O(1)"
    UNKNOWN = "undocumented"


class EntityMapping(enum.Enum):
    """How simulated jobs map onto execution contexts."""

    ONE_TO_ONE = "thread per entity"
    SHARED_CONTEXT = "entities share contexts"
    POOLED = "context pool / reuse"
    EVENT_CALLBACKS = "no contexts (pure event callbacks)"


class SpecMode(enum.Enum):
    """How users specify simulation models."""

    LANGUAGE = "specialized language"
    LIBRARY = "general language + libraries"
    VISUAL = "visual model construction"


class InputKind(enum.Enum):
    """Where workloads come from."""

    GENERATOR = "input data generators"
    MONITORED = "monitored data sets"


class UiKind(enum.Enum):
    """Interface kinds (design and execution)."""

    TEXTUAL = "textual"
    GRAPHICAL = "graphical"
    INTERACTIVE_GRAPHICAL = "graphical + runtime interaction"


class OutputAnalysis(enum.Enum):
    """Visual output analyzer capability."""

    NONE = "raw text output"
    PLOTS = "plots (2D/3D)"
    ANALYSIS = "plots + comparative analysis"


class ValidationKind(enum.Enum):
    """How (whether) the simulator's model was validated."""

    NONE = "no published validation"
    MATHEMATICAL = "validation vs analytic model"
    TESTBED = "validation vs real-world testbed"
    BOTH = "analytic + testbed validation"
