"""Fault graph: correlated outages across hosts, links, and sites.

Dobre/Pop/Cristea's dependability paper models a distributed system's
failures as *correlated*: a site-wide outage (power, cooling, an operator)
does not take down one machine — it takes down every machine in the room
**and** the access links that hang off it.  Independent per-host injectors
cannot express that; this module can.

A :class:`FaultGraph` holds three component kinds:

``host``
    Binds a :class:`~repro.hosts.cpu.SpaceSharedMachine`; going down calls
    ``machine.fail(repair_eta=...)`` (evicting work per the machine's
    restart policy), coming up calls ``machine.repair()``.
``link``
    Binds a directed topology edge (plus its reverse when symmetric);
    going down hides the edge from routing (``Topology.fail_link``) and
    aborts every in-flight flow crossing it (``FlowNetwork.abort_link``),
    surfacing each as a failed transfer the service layer retries with
    deterministic backoff.
``site``
    A container of hosts and links.  Failing a site *cascades*: every
    child goes down with cause "the site", and comes back when the site is
    repaired — unless the child has an independent fault of its own still
    open.

Cause-set semantics make overlapping faults compose exactly: a component
is down while its cause set is non-empty, so "host h crashed, then its
site lost power, then h's own repair finished" leaves h down until the
site repair clears the last cause.  Effects (evictions, flow aborts) fire
only on the empty→non-empty and non-empty→empty transitions, so nested
outages never double-evict or double-repair.

Per-component outage clocks feed MTTR and availability metrics; when a
:mod:`repro.obs` session is attached, every transition also lands in the
labeled metrics registry (``repro_fault_transitions_total``,
``repro_fault_repair_seconds``) and the trace.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..network.flow import FlowNetwork
from ..network.topology import Topology

__all__ = ["FaultComponent", "FaultGraph"]


class FaultComponent:
    """One failable unit (host, link, or site) and its outage clock."""

    __slots__ = ("name", "kind", "machine", "link_ends", "children",
                 "parent", "causes", "down_at", "downtime", "outages")

    def __init__(self, name: str, kind: str, machine=None,
                 link_ends: tuple[str, str, bool] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.machine = machine
        self.link_ends = link_ends
        self.children: list[str] = []
        self.parent: Optional[str] = None
        #: names of components whose faults currently hold this one down
        #: (itself for a direct fault, an ancestor site for a cascade).
        self.causes: set[str] = set()
        self.down_at: Optional[float] = None
        self.downtime = 0.0
        self.outages = 0

    @property
    def down(self) -> bool:
        """True while any fault (own or cascaded) holds the component down."""
        return bool(self.causes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"down({','.join(sorted(self.causes))})" if self.causes else "up"
        return f"<FaultComponent {self.kind}:{self.name} {state}>"


class FaultGraph:
    """The dependency model driving correlated fail/repair effects.

    Parameters
    ----------
    sim:
        The owning simulator (outage clocks read ``sim.now``).
    topology / network:
        Required only when link components exist: the topology carries the
        up/down routing state, the flow network aborts in-flight transfers.
    """

    def __init__(self, sim: Simulator, topology: Topology | None = None,
                 network: FlowNetwork | None = None) -> None:
        self.sim = sim
        self.topology = topology
        self.network = network
        self._components: dict[str, FaultComponent] = {}
        self.monitor = Monitor("fault-graph")

    # -- construction --------------------------------------------------------

    def _register(self, comp: FaultComponent) -> str:
        if comp.name in self._components:
            raise ConfigurationError(
                f"duplicate fault component {comp.name!r}")
        self._components[comp.name] = comp
        return comp.name

    def add_host(self, name: str, machine) -> str:
        """Register a failable machine; returns the component name."""
        for attr in ("fail", "repair", "failed"):
            if not hasattr(machine, attr):
                raise ConfigurationError(
                    f"host component {name!r}: machine lacks {attr!r} "
                    "(space-shared machines support failure injection)")
        return self._register(FaultComponent(name, "host", machine=machine))

    def add_link(self, name: str, src: str, dst: str,
                 symmetric: bool = True) -> str:
        """Register a failable topology edge; returns the component name."""
        if self.topology is None:
            raise ConfigurationError(
                "link components need a topology (pass it to FaultGraph)")
        self.topology.link(src, dst)  # validates the edge exists
        return self._register(
            FaultComponent(name, "link", link_ends=(src, dst, symmetric)))

    def add_site(self, name: str, children: Iterable[str] = ()) -> str:
        """Register a site grouping existing host/link components."""
        comp = FaultComponent(name, "site")
        for child in children:
            sub = self._components.get(child)
            if sub is None:
                raise ConfigurationError(
                    f"site {name!r}: unknown child component {child!r}")
            if sub.kind == "site":
                raise ConfigurationError(
                    f"site {name!r}: nested sites are not supported")
            if sub.parent is not None:
                raise ConfigurationError(
                    f"site {name!r}: {child!r} already belongs to "
                    f"{sub.parent!r}")
            sub.parent = name
            comp.children.append(child)
        return self._register(comp)

    @classmethod
    def from_grid(cls, grid) -> "FaultGraph":
        """Build the natural graph of a :class:`~repro.hosts.site.Site`
        grid: one host component per failable machine, one link component
        per access link leaving the site, one site component over both.

        A symmetric link pair is registered exactly once (double ownership
        would let one site's repair resurrect an edge another site still
        holds down); compute sites claim their access links first, so a
        leaf outage cuts the leaf off rather than the hub.
        """
        graph = cls(grid.sim, grid.topology, grid.network)
        ordered = sorted(grid.site_names,
                         key=lambda n: (0 if grid.sites[n].machines else 1, n))
        claimed: set[frozenset] = set()
        children_of: dict[str, list[str]] = {}
        for name in ordered:
            site = grid.sites[name]
            children: list[str] = []
            for m in site.machines:
                if hasattr(m, "fail"):
                    children.append(graph.add_host(f"host:{m.name}", m))
            for spec in grid.topology.links:
                if spec.src != name:
                    continue
                pair = frozenset((spec.src, spec.dst))
                if pair in claimed:
                    continue
                claimed.add(pair)
                children.append(graph.add_link(
                    f"link:{spec.src}->{spec.dst}", spec.src, spec.dst))
            children_of[name] = children
        for name in grid.site_names:
            if children_of.get(name):
                graph.add_site(f"site:{name}", children_of[name])
        return graph

    # -- queries -------------------------------------------------------------

    def component(self, name: str) -> FaultComponent:
        """The component by name (ConfigurationError when unknown)."""
        try:
            return self._components[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown fault component {name!r}") from None

    def components(self, kind: str | None = None) -> list[FaultComponent]:
        """All components (of *kind* when given), in registration order."""
        out = list(self._components.values())
        if kind is not None:
            out = [c for c in out if c.kind == kind]
        return out

    def roots(self) -> list[FaultComponent]:
        """Components with no parent site — the natural injection targets."""
        return [c for c in self._components.values() if c.parent is None]

    def is_down(self, name: str) -> bool:
        """True while *name* is held down by any fault."""
        return self.component(name).down

    def downtime(self, name: str) -> float:
        """Down seconds of *name* so far, including an open outage."""
        comp = self.component(name)
        down = comp.downtime
        if comp.down_at is not None:
            down += self.sim.now - comp.down_at
        return down

    def availability(self, name: str) -> float:
        """Fraction of elapsed time *name* was up (1.0 before t>0)."""
        t = self.sim.now
        if t <= 0:
            return 1.0
        return 1.0 - self.downtime(name) / t

    def aggregate_availability(self, kind: str = "host") -> float:
        """Mean availability over every component of *kind* (NaN if none)."""
        comps = self.components(kind)
        if not comps:
            return math.nan
        return sum(self.availability(c.name) for c in comps) / len(comps)

    # -- fault operations ----------------------------------------------------

    def fail(self, name: str, repair_eta: float | None = None) -> None:
        """Open a fault on *name*; a site fault cascades to its children.

        *repair_eta* (absolute time) is forwarded to host machines as the
        scheduler hint.  Idempotent per cause: re-failing an already-failed
        component changes nothing.
        """
        self._set_cause(self.component(name), name, True, repair_eta)

    def repair(self, name: str) -> None:
        """Close *name*'s own fault; children held down only by the cascade
        come back, children with their own open fault stay down."""
        self._set_cause(self.component(name), name, False, None)

    def _set_cause(self, comp: FaultComponent, cause: str, down: bool,
                   repair_eta: float | None) -> None:
        was_down = comp.down
        if down:
            comp.causes.add(cause)
        else:
            comp.causes.discard(cause)
        if down and not was_down:
            self._take_down(comp, repair_eta)
        elif not down and was_down and not comp.down:
            self._bring_up(comp)
        for child in comp.children:
            self._set_cause(self._components[child], cause, down, repair_eta)

    def _take_down(self, comp: FaultComponent, repair_eta: float | None) -> None:
        comp.down_at = self.sim.now
        comp.outages += 1
        self.monitor.counter(f"outages_{comp.kind}").increment(self.sim.now)
        obs = self.sim._obs
        if obs is not None:
            obs.on_fault(comp.kind, comp.name, "fail")
        if comp.kind == "host":
            evicted = comp.machine.fail(repair_eta=repair_eta)
            if evicted:
                self.monitor.counter("jobs_evicted").increment(
                    self.sim.now, evicted)
        elif comp.kind == "link":
            src, dst, symmetric = comp.link_ends
            downed = self.topology.fail_link(src, dst, symmetric=symmetric)
            if self.network is not None:
                for spec in downed:
                    self.network.abort_link(spec)

    def _bring_up(self, comp: FaultComponent) -> None:
        dt = self.sim.now - comp.down_at
        comp.downtime += dt
        comp.down_at = None
        self.monitor.tally("mttr").record(dt)
        obs = self.sim._obs
        if obs is not None:
            obs.on_fault(comp.kind, comp.name, "repair", downtime=dt)
        if comp.kind == "host":
            comp.machine.repair()
        elif comp.kind == "link":
            src, dst, symmetric = comp.link_ends
            self.topology.repair_link(src, dst, symmetric=symmetric)

    # -- reporting -----------------------------------------------------------

    @property
    def mttr_observed(self) -> float:
        """Mean observed per-outage repair time (NaN before any repair)."""
        return self.monitor.tally("mttr").mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for c in self._components.values():
            kinds[c.kind] = kinds.get(c.kind, 0) + 1
        body = " ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        return f"<FaultGraph {body}>"
