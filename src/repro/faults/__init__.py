"""Correlated fault injection: the dependability subsystem.

``FaultGraph`` models the failure dependency structure (a site outage
takes down its machines and attached links); ``CorrelatedFaultInjector``
drives graph components through exponential UP/DOWN cycles drawn from
spawned child streams, so outage schedules are byte-reproducible.  See
DESIGN.md §5i for the abort/retry semantics on the network side.
"""

from .graph import FaultComponent, FaultGraph
from .injector import CorrelatedFaultInjector

__all__ = ["FaultComponent", "FaultGraph", "CorrelatedFaultInjector"]
