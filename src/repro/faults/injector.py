"""Correlated fault injector: exponential UP/DOWN cycling over a fault graph.

One renewal process per target component — TTF ~ Exp(mtbf) while up,
TTR ~ Exp(mttr) while down — where a target is typically a *site*, so one
drawn failure takes down the site's machines and access links together
(the correlation Dobre/Pop/Cristea's dependability model calls for).

Determinism contract
--------------------
Every draw comes from child streams spawned off one
:class:`~repro.core.rng.StreamFactory` with stable keys
(``spawn("fault:<component>")`` → streams ``ttf``/``ttr``), so:

* per-target timelines are independent of registration order and of every
  other stream in the run (common random numbers discipline);
* the same root seed reproduces the same outage schedule byte-for-byte,
  which is what lets the campaign runner's serial-vs-parallel
  ``metrics_bytes()`` gate hold under fault churn.

The analytic steady state of each cycle is ``A = mtbf / (mtbf + mttr)``;
campaign replications check the measured availability's confidence
interval against it (``theory_for("dependability", ...)``).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.rng import StreamFactory
from .graph import FaultGraph

__all__ = ["CorrelatedFaultInjector"]


class CorrelatedFaultInjector:
    """Drive fault-graph components through exponential outage cycles.

    Parameters
    ----------
    graph:
        The fault graph whose components are cycled (cascade semantics —
        site targets take their children down with them).
    factory:
        Root stream factory; per-target child universes are spawned off it
        with stable keys, keeping runs byte-reproducible.
    targets:
        Component names to cycle.  Default: the graph's root components
        (sites, plus any host/link not owned by a site).
    mtbf / mttr:
        Mean up / mean down durations.  Either a scalar applied to every
        target or a ``{kind: value}`` mapping (kinds: host, link, site).
    horizon:
        No new failures are injected at or past this time (pending repairs
        still complete), keeping bounded runs bounded.
    """

    def __init__(self, sim: Simulator, graph: FaultGraph,
                 factory: StreamFactory,
                 targets: Iterable[str] | None = None,
                 mtbf: "float | Mapping[str, float]" = 1000.0,
                 mttr: "float | Mapping[str, float]" = 50.0,
                 horizon: float = math.inf) -> None:
        self.sim = sim
        self.graph = graph
        self.horizon = horizon
        if targets is None:
            names = [c.name for c in graph.roots()]
        else:
            names = [graph.component(t).name for t in targets]
        if not names:
            raise ConfigurationError("fault injector has no targets")
        self.targets = names
        self._mtbf = {t: self._rate_for(mtbf, t, "mtbf") for t in names}
        self._mttr = {t: self._rate_for(mttr, t, "mttr") for t in names}
        self._ttf = {}
        self._ttr = {}
        self.crashes = 0
        for name in names:
            child = factory.spawn(f"fault:{name}")
            self._ttf[name] = child.stream("ttf")
            self._ttr[name] = child.stream("ttr")
            self._arm(name)

    def _rate_for(self, value, target: str, what: str) -> float:
        if isinstance(value, Mapping):
            kind = self.graph.component(target).kind
            if kind not in value:
                raise ConfigurationError(
                    f"{what} mapping has no entry for kind {kind!r} "
                    f"(target {target!r})")
            value = value[kind]
        v = float(value)
        if v <= 0:
            raise ConfigurationError(f"{what} must be > 0, got {v}")
        return v

    # -- the renewal cycle ---------------------------------------------------

    def _arm(self, name: str) -> None:
        ttf = self._ttf[name].exponential(self._mtbf[name])
        if self.sim.now + ttf < self.horizon:
            self.sim.schedule(ttf, self._crash, name,
                              label=f"fault_crash:{name}")

    def _crash(self, name: str) -> None:
        if self.graph.is_down(name):
            # Externally failed (or a stale event): never stack a second
            # outage cycle — whoever opened the fault owns its repair.
            return
        ttr = self._ttr[name].exponential(self._mttr[name])
        self.graph.fail(name, repair_eta=self.sim.now + ttr)
        self.crashes += 1
        self.sim.schedule(ttr, self._repair, name,
                          label=f"fault_repair:{name}")

    def _repair(self, name: str) -> None:
        self.graph.repair(name)
        self._arm(name)

    # -- reporting -----------------------------------------------------------

    @property
    def availability(self) -> float:
        """Mean availability over the injector's targets."""
        if not self.targets:
            return 1.0
        return sum(self.graph.availability(t)
                   for t in self.targets) / len(self.targets)

    @property
    def mttr_observed(self) -> float:
        """Mean observed repair time across all closed outages."""
        return self.graph.mttr_observed

    def theoretical_availability(self, target: str | None = None) -> float:
        """Steady-state ``mtbf / (mtbf + mttr)`` for one target (or the
        mean over all targets)."""
        names = [target] if target is not None else self.targets
        vals = [self._mtbf[t] / (self._mtbf[t] + self._mttr[t])
                for t in names]
        return sum(vals) / len(vals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CorrelatedFaultInjector targets={len(self.targets)} "
                f"crashes={self.crashes}>")
