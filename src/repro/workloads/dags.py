"""DAG workload generators for SimGrid-style workflow scheduling studies.

Three canonical shapes drive benchmark E9 (compile-time vs runtime
scheduling):

* :func:`layered_dag` — random layered graphs (the Tobita/Kasahara STG
  style): L layers, random edges between adjacent layers;
* :func:`fork_join_dag` — a root fans out to W parallel branches of depth D
  that re-join (bag-of-DAGs / map-reduce-ish);
* :func:`chain_dag` — the pure pipeline (maximal precedence constraint).
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from ..core.rng import Stream
from ..middleware.jobs import Dag, Job

__all__ = ["layered_dag", "fork_join_dag", "chain_dag"]


def _job(stream: Stream, jid: int, mean_length: float) -> Job:
    return Job(id=jid,
               length=stream.normal(mean_length, 0.3 * mean_length,
                                    floor=0.1 * mean_length))


def layered_dag(stream: Stream, layers: int, width: int,
                edge_prob: float = 0.5, mean_length: float = 1000.0,
                mean_edge_bytes: float = 1e6) -> Dag:
    """Random layered DAG: every non-root node gets >= 1 incoming edge.

    Edges only go layer k → k+1; each candidate edge appears with
    ``edge_prob``, and a uniformly chosen parent is forced when the draw
    leaves a node orphaned (standard STG construction).
    """
    if layers < 1 or width < 1:
        raise ConfigurationError("layers and width must be >= 1")
    if not 0.0 <= edge_prob <= 1.0:
        raise ConfigurationError("edge_prob must be in [0,1]")
    dag = Dag()
    grid: list[list[Job]] = []
    jid = 0
    for _ in range(layers):
        row = []
        for _ in range(width):
            row.append(dag.add_job(_job(stream, jid, mean_length)))
            jid += 1
        grid.append(row)
    for k in range(layers - 1):
        for child in grid[k + 1]:
            parents = [p for p in grid[k] if stream.bernoulli(edge_prob)]
            if not parents:
                parents = [stream.choice(grid[k])]
            for p in parents:
                dag.add_edge(p.id, child.id,
                             data=stream.exponential(mean_edge_bytes))
    return dag


def fork_join_dag(stream: Stream, branches: int, depth: int,
                  mean_length: float = 1000.0,
                  mean_edge_bytes: float = 1e6) -> Dag:
    """Root → *branches* parallel chains of *depth* → join node."""
    if branches < 1 or depth < 1:
        raise ConfigurationError("branches and depth must be >= 1")
    dag = Dag()
    jid = 0
    root = dag.add_job(_job(stream, jid, mean_length)); jid += 1
    tails = []
    for _ in range(branches):
        prev = root
        for _ in range(depth):
            node = dag.add_job(_job(stream, jid, mean_length)); jid += 1
            dag.add_edge(prev.id, node.id, data=stream.exponential(mean_edge_bytes))
            prev = node
        tails.append(prev)
    join = dag.add_job(_job(stream, jid, mean_length))
    for t in tails:
        dag.add_edge(t.id, join.id, data=stream.exponential(mean_edge_bytes))
    return dag


def chain_dag(stream: Stream, length: int, mean_length: float = 1000.0,
              mean_edge_bytes: float = 1e6) -> Dag:
    """A pure pipeline of *length* stages."""
    if length < 1:
        raise ConfigurationError("length must be >= 1")
    dag = Dag()
    prev = None
    for jid in range(length):
        node = dag.add_job(_job(stream, jid, mean_length))
        if prev is not None:
            dag.add_edge(prev.id, node.id, data=stream.exponential(mean_edge_bytes))
        prev = node
    return dag
