"""Arrival processes: how work reaches a simulated system over time.

The taxonomy's *behavior* axis (probabilistic simulation) and MONARC's
"stochastic arrival patterns" both reduce to: generate the times at which
jobs, requests, or files appear.  Three generators cover the standard
shapes:

* :func:`poisson_arrivals` — memoryless, the analytic-validation workhorse
  (the M in M/M/1);
* :func:`mmpp_arrivals` — a 2-state Markov-modulated Poisson process
  (quiet/burst), the classic bursty-traffic model;
* :func:`heavy_tail_arrivals` — Pareto inter-arrivals, self-similar-ish
  load with rare long gaps.

All return plain sorted lists of times so workload construction stays
decoupled from model execution.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from ..core.rng import Stream

__all__ = ["poisson_arrivals", "mmpp_arrivals", "heavy_tail_arrivals"]


def poisson_arrivals(stream: Stream, rate: float, horizon: float,
                     start: float = 0.0) -> list[float]:
    """Poisson process: exponential gaps with mean ``1/rate`` until *horizon*."""
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    if horizon <= start:
        raise ConfigurationError("horizon must exceed start")
    times = []
    t = start
    while True:
        t += stream.exponential(1.0 / rate)
        if t >= horizon:
            return times
        times.append(t)


def mmpp_arrivals(stream: Stream, quiet_rate: float, burst_rate: float,
                  mean_quiet: float, mean_burst: float, horizon: float,
                  start: float = 0.0) -> list[float]:
    """2-state MMPP: alternate Poisson(quiet_rate) and Poisson(burst_rate).

    State holding times are exponential with the given means; the process
    starts quiet.
    """
    if quiet_rate < 0 or burst_rate <= 0:
        raise ConfigurationError("rates must be positive (quiet may be 0)")
    if mean_quiet <= 0 or mean_burst <= 0:
        raise ConfigurationError("state holding means must be > 0")
    times = []
    t = start
    burst = False
    phase_end = t + stream.exponential(mean_quiet)
    while t < horizon:
        rate = burst_rate if burst else quiet_rate
        if rate == 0:
            t = phase_end
        else:
            t_next = t + stream.exponential(1.0 / rate)
            if t_next < phase_end:
                t = t_next
                if t < horizon:
                    times.append(t)
                continue
            t = phase_end
        burst = not burst
        phase_end = t + stream.exponential(mean_burst if burst else mean_quiet)
    return times


def heavy_tail_arrivals(stream: Stream, alpha: float, mean_gap: float,
                        horizon: float, start: float = 0.0) -> list[float]:
    """Pareto(alpha) inter-arrivals scaled to the requested *mean_gap*.

    Requires ``alpha > 1`` so the mean exists; smaller alpha = heavier tail.
    """
    if alpha <= 1:
        raise ConfigurationError(f"alpha must be > 1 for a finite mean, got {alpha}")
    if mean_gap <= 0:
        raise ConfigurationError("mean_gap must be > 0")
    xmin = mean_gap * (alpha - 1) / alpha
    times = []
    t = start
    while True:
        t += stream.pareto(alpha, xmin=xmin)
        if t >= horizon:
            return times
        times.append(t)
