"""Task-farming workloads: the GridSim evaluation's application class.

"GridSim is mainly used to study cost-time optimization algorithms for
scheduling task farming applications on heterogeneous Grids" — a task farm
is a bag of independent gridlets (parameter-sweep points).  The generator
controls the three axes that matter to scheduling studies: arrival pattern,
length distribution (uniform / heterogeneous / heavy-tailed), and optional
shared input data.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import ConfigurationError
from ..core.rng import Stream
from ..middleware.jobs import Job
from ..network.transfer import FileSpec

__all__ = ["task_farm", "batch_arrival_farm"]

_LENGTH_MODELS = ("uniform", "normal", "heavy")


def task_farm(stream: Stream, n: int, mean_length: float = 1000.0,
              length_model: str = "normal", arrival_times: Sequence[float] | None = None,
              input_files: Sequence[FileSpec] = (), deadline: float = float("inf"),
              budget: float = float("inf"), first_id: int = 0) -> list[Job]:
    """Generate *n* independent gridlets.

    Parameters
    ----------
    length_model:
        ``"uniform"`` (±50% of mean), ``"normal"`` (σ = 30% of mean,
        floored at 10%), or ``"heavy"`` (Pareto α=1.8 — rare monsters).
    arrival_times:
        Per-job submission times (defaults to all-at-once at t=0); length
        must be >= n.
    input_files:
        Every job reads one of these (round-robin), modelling a sweep over
        shared datasets.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if mean_length <= 0:
        raise ConfigurationError("mean_length must be > 0")
    if length_model not in _LENGTH_MODELS:
        raise ConfigurationError(
            f"unknown length model {length_model!r}; choose from {_LENGTH_MODELS}")
    if arrival_times is not None and len(arrival_times) < n:
        raise ConfigurationError("arrival_times shorter than n")
    jobs = []
    for i in range(n):
        if length_model == "uniform":
            length = stream.uniform(0.5 * mean_length, 1.5 * mean_length)
        elif length_model == "normal":
            length = stream.normal(mean_length, 0.3 * mean_length,
                                   floor=0.1 * mean_length)
        else:
            length = stream.pareto(1.8, xmin=mean_length * 0.8 / 1.8 * 0.8)
        files = (input_files[i % len(input_files)],) if input_files else ()
        jobs.append(Job(
            id=first_id + i, length=length, input_files=files,
            submitted=float(arrival_times[i]) if arrival_times is not None else 0.0,
            deadline=deadline, budget=budget))
    return jobs


def batch_arrival_farm(stream: Stream, n_batches: int, batch_size: int,
                       inter_batch: float, mean_length: float = 1000.0,
                       first_id: int = 0) -> list[Job]:
    """Bursty farm: *n_batches* groups of *batch_size* jobs, one group every
    ``Exp(inter_batch)`` — the sawtooth load that stresses schedulers."""
    if n_batches < 1 or batch_size < 1:
        raise ConfigurationError("n_batches and batch_size must be >= 1")
    jobs = []
    t = 0.0
    jid = first_id
    for _ in range(n_batches):
        for _ in range(batch_size):
            jobs.append(Job(
                id=jid, submitted=t,
                length=stream.normal(mean_length, 0.3 * mean_length,
                                     floor=0.1 * mean_length)))
            jid += 1
        t += stream.exponential(inter_batch)
    return jobs
