"""Partitioned ring workload — the executor-conformance / E7 model.

A K-site grid partitioned one logical process per site: every site runs a
local Poisson job stream and forwards a fraction of completions to its ring
neighbour (cross-LP traffic).  The same model instance drives benchmark E7,
the executor conformance matrix test, and the CLI ``executors`` command, so
every executor — sequential, CMB, synchronous windows, and Time Warp — is
compared on identical work.

The model is **rollback-safe**: all mutable state (the completion log and
the service-time tally) lives in per-LP containers registered through
:meth:`~repro.core.parallel.LogicalProcess.register_state`, so the
optimistic executor can snapshot and restore it.  This is the contract
optimistic execution imposes on models (DESIGN.md §5d); the conservative
executors simply never call the providers.
"""

from __future__ import annotations

from typing import Optional

from ..core.monitor import Tally
from ..core.parallel import LogicalProcess

__all__ = ["PartitionedRing", "build_partitioned_ring"]


class PartitionedRing:
    """The built model: LPs plus deterministic result accessors."""

    def __init__(self, lps: list[LogicalProcess],
                 logs: dict[str, list], tallies: dict[str, Tally]) -> None:
        self.lps = lps
        self._logs = logs
        self._tallies = tallies

    def results(self) -> list[tuple[float, str, int]]:
        """All committed completions, merged in deterministic order."""
        merged: list[tuple[float, str, int]] = []
        for log in self._logs.values():
            merged.extend(log)
        merged.sort()
        return merged

    def monitor_stats(self) -> dict[str, tuple[int, float, float, float]]:
        """Per-site service-time summary: (count, mean, min, max)."""
        out = {}
        for name, t in sorted(self._tallies.items()):
            out[name] = (t.count, round(t.mean, 9) if t.count else 0.0,
                         t.minimum if t.count else 0.0,
                         t.maximum if t.count else 0.0)
        return out


def build_partitioned_ring(k: int = 4, lookahead: float = 1.0,
                           seed: int = 0, jobs_per_site: int = 150,
                           horizon: float = 400.0, forward_every: int = 5,
                           queue: str = "heap") -> PartitionedRing:
    """Build the K-site partitioned ring.

    Parameters mirror benchmark E7: *jobs_per_site* local arrivals per site
    over roughly *horizon* time units, one in *forward_every* completions
    forwarded to the ring neighbour (payload ``jid * 1000``), channel
    *lookahead* bounding the conservative executors' blocking.  *seed*
    perturbs every site's RNG streams so distinct seeds give distinct—but
    per-seed deterministic—trajectories.
    """
    lps = [LogicalProcess(f"site-{i}", seed=seed * 10_007 + i, queue=queue)
           for i in range(k)]
    for i, lp in enumerate(lps):
        lp.connect(lps[(i + 1) % k], lookahead)
    logs: dict[str, list] = {}
    tallies: dict[str, Tally] = {}

    def wire(lp: LogicalProcess, idx: int) -> None:
        arr = lp.sim.stream("arr")
        svc = lp.sim.stream("svc")
        log: list[tuple[float, str, int]] = []
        tally = Tally(f"svc:{lp.name}", keep_samples=False)
        logs[lp.name] = log
        tallies[lp.name] = tally

        # Snapshot/restore providers: `get` returns fresh copies, `set`
        # rebuilds in place (the handlers close over `log` and `tally`).
        def get_state():
            return (list(log), (tally._n, tally._mean, tally._m2,
                                tally._sum, tally._min, tally._max))

        def set_state(blob):
            entries, moments = blob
            log[:] = entries
            (tally._n, tally._mean, tally._m2,
             tally._sum, tally._min, tally._max) = moments

        lp.register_state(get_state, set_state)

        def complete(jid: int, d: float) -> None:
            log.append((round(lp.sim.now, 9), lp.name, jid))
            tally.record(d)
            if jid % forward_every == 0:
                lp.send(f"site-{(idx + 1) % k}", "job", jid * 1000)

        def arrive(n: int) -> None:
            d = svc.exponential(0.4)
            lp.sim.schedule(d, complete, n, d)
            if n < jobs_per_site:
                lp.sim.schedule(
                    arr.exponential(horizon / jobs_per_site / 2),
                    arrive, n + 1)

        def on_job(lp_: LogicalProcess, msg) -> None:
            d = svc.exponential(0.4)
            lp_.sim.schedule(d, complete, msg.payload, d)

        lp.on_message("job", on_job)
        lp.sim.schedule(0.0, arrive, 1)

    for i, lp in enumerate(lps):
        wire(lp, i)
    return PartitionedRing(lps, logs, tallies)
