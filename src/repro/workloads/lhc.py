"""LHC-like tiered workload: the MONARC / Legrand-2005 study's input.

The paper reports that MONARC 2 "was already used to evaluate the specific
behavior of the LHC experiments ... The experiment tested the behavior of
the Tier architecture envisioned by the two largest LHC experiments, CMS
and ATLAS.  The obtained results indicated the role of using a data
replication agent ... and showed that the existing capacity of 2.5 Gbps was
not sufficient and, in fact, not far afterwards the link was upgraded to a
current 30 Gbps."

We cannot use CERN's production traces (proprietary), so this module
generates the synthetic equivalent that exercises the same arithmetic:

* **production** — each experiment writes fixed-size RAW+ESD files at a
  sustained byte rate at T0.  Defaults approximate the 2005-era planning
  numbers: CMS ≈ 100 MB/s, ATLAS ≈ 80 MB/s sustained during a run, 2 GB
  files.  Combined ≈ 1.44 Gbps *per T1 replica stream*, which is why one
  2.5 Gbps link shared by several T1s cannot keep up — the study's point.
* **analysis** — T1/T2 jobs that pick produced files with Zipf popularity
  and reprocess them (compute length proportional to file size).

Both are plain data (lists of tuples / jobs), consumed by
:class:`repro.simulators.monarc.MonarcModel` and benchmark E5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.rng import Stream
from ..middleware.jobs import Job
from ..network.transfer import FileSpec

__all__ = ["ExperimentSpec", "production_schedule", "analysis_jobs",
           "CMS_2005", "ATLAS_2005"]

MB = 1e6
GB = 1e9


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One experiment's sustained data production profile."""

    name: str
    rate_bytes_per_s: float
    file_size: float

    def __post_init__(self) -> None:
        if self.rate_bytes_per_s <= 0 or self.file_size <= 0:
            raise ConfigurationError(
                f"experiment {self.name!r}: rate and file size must be > 0")

    @property
    def file_interval(self) -> float:
        """Mean seconds between completed files."""
        return self.file_size / self.rate_bytes_per_s


#: 2005-era planning numbers (order-of-magnitude faithful).
CMS_2005 = ExperimentSpec("CMS", rate_bytes_per_s=100 * MB, file_size=2 * GB)
ATLAS_2005 = ExperimentSpec("ATLAS", rate_bytes_per_s=80 * MB, file_size=2 * GB)


def production_schedule(stream: Stream, experiments: list[ExperimentSpec],
                        horizon: float, jitter: float = 0.1,
                        ) -> list[tuple[float, FileSpec]]:
    """Per-experiment file completion times over [0, horizon).

    Files complete every ``file_interval`` seconds ± exponential jitter
    (detector dead-time, run boundaries).  Returns a time-sorted list of
    ``(completion_time, FileSpec)``.
    """
    if horizon <= 0:
        raise ConfigurationError("horizon must be > 0")
    if not experiments:
        raise ConfigurationError("need at least one experiment")
    if not 0 <= jitter < 1:
        raise ConfigurationError("jitter must be in [0,1)")
    out: list[tuple[float, FileSpec]] = []
    for exp in experiments:
        t = 0.0
        seq = 0
        while True:
            gap = exp.file_interval * (1 - jitter) \
                + stream.exponential(exp.file_interval * jitter) if jitter > 0 \
                else exp.file_interval
            t += gap
            if t >= horizon:
                break
            out.append((t, FileSpec(f"{exp.name}-raw-{seq:06d}", exp.file_size)))
            seq += 1
    out.sort(key=lambda pair: (pair[0], pair[1].name))
    return out


def analysis_jobs(stream: Stream, produced: list[FileSpec], n_jobs: int,
                  mi_per_byte: float = 1e-4, zipf_s: float = 1.1,
                  horizon: float = 0.0, first_id: int = 0) -> list[Job]:
    """T1/T2 reprocessing jobs over the produced files.

    Each job reads one file (Zipf-popular: fresh hot datasets dominate) and
    computes ``size * mi_per_byte`` MI.  Submission times are uniform over
    [0, horizon] (0 = all at once).
    """
    if n_jobs < 0:
        raise ConfigurationError("n_jobs must be >= 0")
    if not produced and n_jobs > 0:
        raise ConfigurationError("no produced files to analyse")
    if mi_per_byte <= 0:
        raise ConfigurationError("mi_per_byte must be > 0")
    sample = stream.zipf_sampler(len(produced), zipf_s) if produced else None
    jobs = []
    for i in range(n_jobs):
        f = produced[sample()]
        jobs.append(Job(
            id=first_id + i,
            length=max(f.size * mi_per_byte, 1.0),
            input_files=(f,),
            submitted=stream.uniform(0.0, horizon) if horizon > 0 else 0.0))
    return jobs
