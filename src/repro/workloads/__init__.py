"""Workload generators: arrivals, task farms, DAGs, file access, LHC loads.

The *user applications* layer of the taxonomy — everything here produces
plain data (times, jobs, DAGs, file schedules) that the middleware and
simulator models consume, keeping workload definition independent of model
execution (the *input data generator* classification of Section 3).
"""

from .access import (
    ACCESS_PATTERNS,
    gaussian_walk_requests,
    random_requests,
    sequential_requests,
    unitary_walk_requests,
    zipf_requests,
)
from .arrivals import heavy_tail_arrivals, mmpp_arrivals, poisson_arrivals
from .dags import chain_dag, fork_join_dag, layered_dag
from .faultchurn import FaultChurnModel, build_fault_churn
from .flowchurn import FlowChurnModel, build_flow_churn
from .lhc import (
    ATLAS_2005,
    CMS_2005,
    ExperimentSpec,
    analysis_jobs,
    production_schedule,
)
from .partitioned import PartitionedRing, build_partitioned_ring
from .taskfarm import batch_arrival_farm, task_farm
from .traces import JOB_SUBMIT_KIND, jobs_from_trace, jobs_to_trace

__all__ = [
    "poisson_arrivals",
    "mmpp_arrivals",
    "heavy_tail_arrivals",
    "task_farm",
    "batch_arrival_farm",
    "PartitionedRing",
    "build_partitioned_ring",
    "FlowChurnModel",
    "build_flow_churn",
    "FaultChurnModel",
    "build_fault_churn",
    "layered_dag",
    "fork_join_dag",
    "chain_dag",
    "ACCESS_PATTERNS",
    "sequential_requests",
    "random_requests",
    "unitary_walk_requests",
    "gaussian_walk_requests",
    "zipf_requests",
    "ExperimentSpec",
    "CMS_2005",
    "ATLAS_2005",
    "production_schedule",
    "analysis_jobs",
    "jobs_to_trace",
    "jobs_from_trace",
    "JOB_SUBMIT_KIND",
]
