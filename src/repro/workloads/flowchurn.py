"""Flow-churn workload: many disjoint site pairs plus one shared backbone.

The E8 bandwidth-sharing scenario (``benchmarks/bench_flow_sharing.py`` and
``python -m repro flows``): *pairs* isolated source→sink links each run a
chain of back-to-back transfers, staggered so their admits/finishes
interleave in time, while a handful of long-lived flows share one backbone
link.  Under the naive max-min engine every one of those pair-local events
recomputes **all** active flows and cancels+reschedules **every**
completion event; the incremental engine touches only the two-node
component that actually changed.  The model is fully deterministic — no
RNG — so incremental and reference runs are directly comparable.
"""

from __future__ import annotations

from time import perf_counter

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..network.flow import FlowNetwork
from ..network.topology import Topology

__all__ = ["FlowChurnModel", "build_flow_churn"]


class FlowChurnModel:
    """Deterministic disjoint-pairs + shared-backbone flow workload.

    Parameters
    ----------
    pairs:
        Number of isolated ``s<i> -> d<i>`` links, each running its own
        transfer chain.
    transfers_per_pair:
        Chain length per pair (each next transfer starts when the previous
        completes, so every completion is also an admission event).
    backbone_flows:
        Long-lived flows sharing the single ``bbA -> bbB`` link — the one
        genuinely coupled component.
    incremental:
        Forwarded to :class:`~repro.network.flow.FlowNetwork` — False runs
        the full progressive-filling reference (the churn baseline).
    """

    def __init__(self, pairs: int = 50, transfers_per_pair: int = 10,
                 backbone_flows: int = 4, pair_bandwidth: float = 1e6,
                 backbone_bandwidth: float = 4e6, transfer_bytes: float = 1e6,
                 backbone_bytes: float = 1.2e7, stagger: float = 0.137,
                 incremental: bool = True, verify: bool = False,
                 queue: str = "heap") -> None:
        if pairs < 1 or transfers_per_pair < 1:
            raise ConfigurationError("need at least one pair and one transfer")
        if backbone_flows < 0:
            raise ConfigurationError("backbone_flows must be >= 0")
        self.pairs = pairs
        self.transfers_per_pair = transfers_per_pair
        self.transfer_bytes = float(transfer_bytes)
        topo = Topology()
        for i in range(pairs):
            topo.add_link(f"s{i}", f"d{i}", pair_bandwidth, latency=0.001)
        if backbone_flows:
            topo.add_link("bbA", "bbB", backbone_bandwidth, latency=0.002)
        self.topology = topo
        self.sim = Simulator(queue=queue)
        self.net = FlowNetwork(self.sim, topo, efficiency=1.0,
                               incremental=incremental, verify=verify)
        self.handles = []
        for i in range(pairs):
            self.sim.schedule(i * stagger, self._start_chain, i,
                              transfers_per_pair, label="chain_start")
        for _ in range(backbone_flows):
            h = self.net.transfer("bbA", "bbB", float(backbone_bytes))
            self.handles.append(h)
        self.wall_seconds = float("nan")

    def _start_chain(self, pair: int, remaining: int) -> None:
        h = self.net.transfer(f"s{pair}", f"d{pair}", self.transfer_bytes)
        self.handles.append(h)
        if remaining > 1:
            h._subscribe(lambda _r: self._start_chain(pair, remaining - 1))

    def run(self) -> "FlowChurnModel":
        """Drain the simulation, timing the wall clock; chainable."""
        t0 = perf_counter()
        self.sim.run()
        self.wall_seconds = perf_counter() - t0
        return self

    def completion_times(self) -> list[float]:
        """Finish times in flow-id order (the cross-engine checksum)."""
        return [h.finished for h in sorted(self.handles, key=lambda h: h.id)]

    def stats(self) -> dict:
        """Wall clock, event count, and sharing counters as a flat dict."""
        out = {"wall_seconds": self.wall_seconds,
               "events": self.sim.events_executed,
               "flows": len(self.handles)}
        out.update(self.net.sharing.as_dict())
        return out


def build_flow_churn(**kwargs) -> FlowChurnModel:
    """Convenience constructor mirroring ``build_partitioned_ring``."""
    return FlowChurnModel(**kwargs)
