"""Fault-churn workload: scripted periodic outages with an analytic twin.

The differential cross-check for the fault path (the PR-4 template: a
deterministic workload whose injected and analytically-equivalent runs must
agree).  Each machine runs a back-to-back chain of equal jobs under one of
two configurations:

``inject=True``
    Full-rating machines crashed and repaired on a *scripted* square wave:
    up for ``period - downtime`` seconds, down for ``downtime``, forever
    (phase-staggered per machine).  Checkpointing machines keep finished
    work across evictions.
``inject=False``
    No outages; every machine's rating is derated by the duty cycle
    ``(period - downtime) / period`` instead.

Both configurations deliver work at the same long-run rate, so per-machine
makespans must agree within one outage's worth of phase:
``|makespan_inject - makespan_static| <= downtime / duty``.  The injected
run exercises eviction, checkpoint residue, and the zero-residue
completion guard; the static run is pure arithmetic — any bug in the
failure path shows up as a differential gap.

A flapping link rides along: a chain of transfers crosses a link that is
cut and restored on the same square wave, so every abort → backoff → retry
transition runs deterministically (``retries`` is an exact integer to
assert on, not a distribution).
"""

from __future__ import annotations

import math
from time import perf_counter

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..faults.graph import FaultGraph
from ..hosts.cpu import SpaceSharedMachine
from ..network.flow import FlowNetwork
from ..network.topology import Topology
from ..network.transfer import FileSpec, FileTransferService

__all__ = ["FaultChurnModel", "build_fault_churn"]


class FaultChurnModel:
    """Deterministic compute + transfer workload under scripted outages.

    Parameters
    ----------
    machines / jobs_per_machine / job_length / rating:
        The compute side: each machine runs its chain to completion.
    period / downtime:
        The outage square wave; ``downtime`` must leave a duty cycle of at
        least one half (the differential bound's validity range).
    transfers / transfer_bytes / link_bandwidth:
        The flapping-link side (only active with ``inject=True``); the
        static twin moves the same bytes over an uncut link.
    inject:
        True = real outages at full capacity; False = the derated twin.
    """

    def __init__(self, machines: int = 4, jobs_per_machine: int = 6,
                 job_length: float = 4000.0, rating: float = 100.0,
                 period: float = 10.0, downtime: float = 2.0,
                 transfers: int = 8, transfer_bytes: float = 3e5,
                 link_bandwidth: float = 1e5,
                 inject: bool = True, queue: str = "heap") -> None:
        if machines < 1 or jobs_per_machine < 1:
            raise ConfigurationError("need at least one machine and one job")
        if not 0 < downtime < period:
            raise ConfigurationError("need 0 < downtime < period")
        duty = (period - downtime) / period
        if duty < 0.5:
            raise ConfigurationError(
                "duty cycle below 1/2 voids the differential bound "
                f"(period={period}, downtime={downtime})")
        self.machines = machines
        self.jobs_per_machine = jobs_per_machine
        self.job_length = float(job_length)
        self.rating = float(rating)
        self.period = float(period)
        self.outage = float(downtime)
        self.duty = duty
        self.transfers = transfers
        self.transfer_bytes = float(transfer_bytes)
        self.inject = inject
        self.sim = Simulator(queue=queue)

        # -- compute side ----------------------------------------------------
        effective = rating if inject else rating * duty
        self._machines = [
            SpaceSharedMachine(self.sim, pes=1, rating=effective,
                               name=f"churn-m{i}",
                               restart_policy="checkpoint")
            for i in range(machines)]
        self._last_finish = [math.nan] * machines
        for i in range(machines):
            self._submit_chain(i, jobs_per_machine)

        # -- transfer side ---------------------------------------------------
        topo = Topology()
        topo.add_link("src", "dst", link_bandwidth, latency=0.001)
        self.topology = topo
        self.net = FlowNetwork(self.sim, topo, efficiency=1.0)
        self.service = FileTransferService(
            self.sim, self.net, max_attempts=50, retry_backoff=0.25)
        self.graph = FaultGraph(self.sim, topo, self.net)
        self.graph.add_link("link:src->dst", "src", "dst")
        self._transfers_done = 0
        if transfers > 0:
            self._fetch_next(transfers)

        # -- the scripted square wave ---------------------------------------
        if inject:
            # Enough cycles to cover the analytic makespan with slack; the
            # wave stops once all work is done (guarded in _wave).
            horizon = 2.0 * (self.analytic_makespan() + transfers *
                             transfer_bytes / (link_bandwidth * duty))
            self._cycles = max(1, int(horizon / period) + 1)
            for i in range(machines):
                name = self.graph.add_host(f"host:churn-m{i}",
                                           self._machines[i])
                phase = (i * 0.317) % (period - downtime)
                self.sim.schedule(phase + (period - downtime),
                                  self._wave, name, phase, self._cycles,
                                  label="outage_wave")
            self.sim.schedule(period - downtime, self._wave,
                              "link:src->dst", 0.0, self._cycles,
                              label="outage_wave")
        self.wall_seconds = float("nan")

    # -- drivers -------------------------------------------------------------

    def _submit_chain(self, machine: int, remaining: int) -> None:
        run = self._machines[machine].submit(self.job_length)
        if remaining > 1:
            run._subscribe(
                lambda _r: self._submit_chain(machine, remaining - 1))
        else:
            run._subscribe(
                lambda r, m=machine: self._chain_done(m, r.finished))

    def _chain_done(self, machine: int, finished: float) -> None:
        self._last_finish[machine] = finished

    def _fetch_next(self, remaining: int) -> None:
        ticket = self.service.fetch(
            FileSpec(f"blob{remaining}", self.transfer_bytes), "src", "dst")
        ticket._subscribe(lambda t, n=remaining: self._fetched(t, n))

    def _fetched(self, ticket, remaining: int) -> None:
        if not ticket.failed:
            self._transfers_done += 1
        if remaining > 1:
            self._fetch_next(remaining - 1)

    def _wave(self, name: str, phase: float, cycles_left: int) -> None:
        """One square-wave outage: fail now, repair after ``outage``."""
        if self._all_done():
            return  # stop generating churn once the workload drained
        self.graph.fail(name, repair_eta=self.sim.now + self.outage)
        self.sim.schedule(self.outage, self._wave_repair, name, phase,
                          cycles_left - 1, label="outage_repair")

    def _wave_repair(self, name: str, phase: float, cycles_left: int) -> None:
        self.graph.repair(name)
        if cycles_left > 0 and not self._all_done():
            self.sim.schedule(self.period - self.outage, self._wave, name,
                              phase, cycles_left, label="outage_wave")

    def _all_done(self) -> bool:
        jobs_done = all(not math.isnan(t) for t in self._last_finish)
        xfers_done = self._transfers_done >= self.transfers
        return jobs_done and xfers_done

    # -- results -------------------------------------------------------------

    def run(self) -> "FaultChurnModel":
        """Drain the simulation, timing the wall clock; chainable."""
        t0 = perf_counter()
        self.sim.run()
        self.wall_seconds = perf_counter() - t0
        return self

    def makespans(self) -> list[float]:
        """Per-machine finish time of the last chained job."""
        return list(self._last_finish)

    def analytic_makespan(self) -> float:
        """Static-twin prediction: total work at the duty-derated rate."""
        total = self.jobs_per_machine * self.job_length
        return total / (self.rating * self.duty)

    def differential_gap(self) -> float:
        """Largest |measured − analytic| makespan over the machines."""
        predict = self.analytic_makespan()
        return max(abs(m - predict) for m in self.makespans())

    def differential_bound(self) -> float:
        """The phase bound: one outage of lost work at the derated rate."""
        return self.outage / self.duty + 1e-6

    def stats(self) -> dict:
        """Deterministic counters + wall clock as a flat dict."""
        return {
            "wall_seconds": self.wall_seconds,
            "events": self.sim.events_executed,
            "makespan_max": max(self.makespans()),
            "analytic_makespan": self.analytic_makespan(),
            "differential_gap": self.differential_gap(),
            "differential_bound": self.differential_bound(),
            "evictions": sum(m.evictions for m in self._machines),
            "completed_jobs": sum(m.completed for m in self._machines),
            "transfers_done": self._transfers_done,
            "transfer_retries": self.service.retries,
            "flow_aborts": self.net.aborted,
        }


def build_fault_churn(**kwargs) -> FaultChurnModel:
    """Convenience constructor mirroring ``build_flow_churn``."""
    return FaultChurnModel(**kwargs)
