"""File-access patterns: OptorSim's four request sequences plus Zipf draws.

OptorSim characterizes replication strategies by how a job walks its file
set; the original evaluation used exactly these access patterns:

* **sequential** — files in catalog order;
* **random** — uniform over the file set;
* **unitary random walk** — next file is ±1 from the previous index;
* **gaussian random walk** — next index offset drawn from a Gaussian.

:func:`zipf_requests` adds the popularity-skewed stream (a few hot files
dominating) that makes replication pay at all — the distribution modern
data-grid studies default to.

Each generator yields file *indices*; callers map them onto their
:class:`~repro.network.transfer.FileSpec` list.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from ..core.rng import Stream

__all__ = [
    "sequential_requests",
    "random_requests",
    "unitary_walk_requests",
    "gaussian_walk_requests",
    "zipf_requests",
    "ACCESS_PATTERNS",
]


def sequential_requests(stream: Stream, n_files: int, n_requests: int,
                        start: int = 0) -> list[int]:
    """0,1,2,...,wrap — the streaming-analysis access order."""
    _validate(n_files, n_requests)
    return [(start + i) % n_files for i in range(n_requests)]


def random_requests(stream: Stream, n_files: int, n_requests: int) -> list[int]:
    """Uniform i.i.d. requests."""
    _validate(n_files, n_requests)
    return [stream.randint(0, n_files - 1) for _ in range(n_requests)]


def unitary_walk_requests(stream: Stream, n_files: int, n_requests: int,
                          start: int | None = None) -> list[int]:
    """±1 random walk over the file indices (reflecting at the edges)."""
    _validate(n_files, n_requests)
    pos = n_files // 2 if start is None else start
    out = []
    for _ in range(n_requests):
        pos += 1 if stream.bernoulli(0.5) else -1
        pos = max(0, min(n_files - 1, pos))
        out.append(pos)
    return out


def gaussian_walk_requests(stream: Stream, n_files: int, n_requests: int,
                           sigma_frac: float = 0.05,
                           start: int | None = None) -> list[int]:
    """Gaussian-step random walk: steps ~ N(0, sigma_frac * n_files)."""
    _validate(n_files, n_requests)
    if sigma_frac <= 0:
        raise ConfigurationError("sigma_frac must be > 0")
    pos = float(n_files // 2 if start is None else start)
    sigma = sigma_frac * n_files
    out = []
    for _ in range(n_requests):
        pos += stream.normal(0.0, sigma)
        pos = max(0.0, min(float(n_files - 1), pos))
        out.append(int(round(pos)))
    return out


def zipf_requests(stream: Stream, n_files: int, n_requests: int,
                  s: float = 1.0) -> list[int]:
    """Zipf(s)-popular requests: index 0 is the hottest file."""
    _validate(n_files, n_requests)
    sample = stream.zipf_sampler(n_files, s)
    return [sample() for _ in range(n_requests)]


def _validate(n_files: int, n_requests: int) -> None:
    if n_files < 1:
        raise ConfigurationError(f"n_files must be >= 1, got {n_files}")
    if n_requests < 0:
        raise ConfigurationError(f"n_requests must be >= 0, got {n_requests}")


#: Registry keyed by the names OptorSim's config files use.
ACCESS_PATTERNS = {
    "sequential": sequential_requests,
    "random": random_requests,
    "unitary": unitary_walk_requests,
    "gaussian": gaussian_walk_requests,
    "zipf": zipf_requests,
}
