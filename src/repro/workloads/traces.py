"""Monitored workloads: jobs to/from the monitoring trace format.

The taxonomy's *input data* axis: "simulators can be ... classified as
including input data generators or as accepting data sets collected by
monitoring.  For example, MONARC 2 accepts both types of input (the
monitoring data format is the one produced by MonALISA)".

This module closes that loop for job workloads: :func:`jobs_to_trace`
serializes any job list into the framework's monitoring format (one
``job_submit`` record per job, resource demands as attributes), and
:func:`jobs_from_trace` reconstructs an equivalent workload from such a
file — whether it came from a previous simulation, another tool, or a real
monitoring system.  Round-tripping is exact (tested), so a generator-built
workload and its monitored re-import drive byte-identical simulations.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..core.errors import TraceFormatError
from ..core.trace import TraceRecord
from ..middleware.jobs import Job
from ..network.transfer import FileSpec

__all__ = ["jobs_to_trace", "jobs_from_trace", "JOB_SUBMIT_KIND"]

JOB_SUBMIT_KIND = "job_submit"


def jobs_to_trace(jobs: Iterable[Job], source: str = "workload",
                  ) -> list[TraceRecord]:
    """One ``job_submit`` record per job, time-ordered.

    The record's ``value`` is the compute length (MI); inputs, output size,
    and economy constraints ride in the attribute map.
    """
    records = []
    for job in sorted(jobs, key=lambda j: (j.submitted, j.id)):
        attrs = {"job_id": str(job.id)}
        if job.input_files:
            attrs["inputs"] = ";".join(
                f"{f.name}:{f.size!r}" for f in job.input_files)
        if job.output_size > 0:
            attrs["output_size"] = repr(job.output_size)
        if math.isfinite(job.deadline):
            attrs["deadline"] = repr(job.deadline)
        if math.isfinite(job.budget):
            attrs["budget"] = repr(job.budget)
        records.append(TraceRecord(job.submitted, source, JOB_SUBMIT_KIND,
                                   job.length, attrs))
    return records


def jobs_from_trace(records: Iterable[TraceRecord]) -> list[Job]:
    """Rebuild a job list from ``job_submit`` records (others are ignored).

    Malformed attribute payloads raise :class:`TraceFormatError` — a
    monitoring import that silently drops half its fields is worse than one
    that fails loudly.
    """
    jobs = []
    for rec in records:
        if rec.kind != JOB_SUBMIT_KIND:
            continue
        try:
            jid = int(rec.attrs["job_id"])
        except (KeyError, ValueError) as exc:
            raise TraceFormatError(
                f"job_submit at t={rec.time} lacks a valid job_id: {exc}") from exc
        inputs: tuple[FileSpec, ...] = ()
        if "inputs" in rec.attrs and rec.attrs["inputs"]:
            try:
                parts = []
                for chunk in rec.attrs["inputs"].split(";"):
                    name, _, size = chunk.rpartition(":")
                    parts.append(FileSpec(name, float(size)))
                inputs = tuple(parts)
            except ValueError as exc:
                raise TraceFormatError(
                    f"job {jid}: bad inputs attribute "
                    f"{rec.attrs['inputs']!r}") from exc
        try:
            output = float(rec.attrs.get("output_size", "0.0"))
            deadline = float(rec.attrs.get("deadline", "inf"))
            budget = float(rec.attrs.get("budget", "inf"))
        except ValueError as exc:
            raise TraceFormatError(f"job {jid}: bad numeric attribute: {exc}") from exc
        jobs.append(Job(id=jid, length=rec.value, input_files=inputs,
                        output_size=output, submitted=rec.time,
                        deadline=deadline, budget=budget))
    return jobs
