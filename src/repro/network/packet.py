"""Packet-level network model: store-and-forward with finite queues.

The expensive end of the taxonomy's *granularity* axis: every packet is
individually serialized onto each link of its route ("model in detail the
flow of each packet through the network, a time consuming operation that
leads to better output results").  Benchmark ``bench_network_granularity``
quantifies the cost against :mod:`repro.network.flow` on the same workload.

Per-hop behaviour:

* each directed link owns an output queue (finite ``queue_packets`` slots);
* a packet occupies the link for ``size / bandwidth`` (transmission delay),
  then arrives at the next hop after ``latency`` (propagation);
* packets arriving to a full queue are **dropped** — visible to UDP-style
  transports, retried by the TCP-style transport in
  :mod:`repro.network.protocols`.

Messages are segmented into MTU-sized packets; a :class:`PacketTransfer`
completes when the *last* packet of the message reaches the destination,
or fails (completes with ``success=False``) when every packet was dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Waitable
from .topology import LinkSpec, Topology

__all__ = ["Packet", "PacketTransfer", "PacketNetwork"]

_DEFAULT_MTU = 1500.0


@dataclass(slots=True)
class Packet:
    """One segment of a message traversing the network."""

    transfer_id: int
    index: int
    size: float
    route: list[str]
    hop: int = 0
    dropped: bool = False


class PacketTransfer(Waitable):
    """Handle for one segmented message.  Completes with itself."""

    _counter = 0

    def __init__(self, src: str, dst: str, size: float, npackets: int,
                 started: float) -> None:
        super().__init__()
        PacketTransfer._counter += 1
        self.id = PacketTransfer._counter
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.npackets = npackets
        self.started = started
        self.finished: Optional[float] = None
        self.delivered = 0
        self.dropped = 0

    @property
    def success(self) -> bool:
        """True when every packet arrived."""
        return self.delivered == self.npackets

    @property
    def duration(self) -> float:
        """Wall time from start to last packet (NaN in flight)."""
        return (self.finished - self.started) if self.finished is not None else float("nan")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PacketTransfer #{self.id} {self.src}->{self.dst} "
                f"{self.delivered}/{self.npackets} delivered>")


@dataclass
class _LinkPort:
    """Output port state for one directed link."""

    spec: LinkSpec
    queue_limit: int
    busy: bool = False
    queue: list[tuple[Packet, "PacketTransfer"]] = field(default_factory=list)
    forwarded: int = 0
    dropped: int = 0


class PacketNetwork:
    """Store-and-forward packet simulation over a :class:`Topology`.

    Parameters
    ----------
    mtu:
        Packet payload size in bytes; messages are split into
        ``ceil(size / mtu)`` packets.
    queue_packets:
        Output-queue capacity per link, in packets (drop-tail beyond it).
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 mtu: float = _DEFAULT_MTU, queue_packets: int = 128) -> None:
        if mtu <= 0:
            raise ConfigurationError(f"mtu must be > 0, got {mtu}")
        if queue_packets < 1:
            raise ConfigurationError(f"queue_packets must be >= 1, got {queue_packets}")
        self.sim = sim
        self.topology = topology
        self.mtu = float(mtu)
        self.queue_packets = queue_packets
        self._ports: dict[tuple[str, str], _LinkPort] = {}
        self.monitor = Monitor("packet-network")

    # -- public API -------------------------------------------------------------

    def transfer(self, src: str, dst: str, size: float) -> PacketTransfer:
        """Send *size* bytes as individual packets; returns the handle."""
        if size < 0:
            raise ConfigurationError(f"transfer size must be >= 0, got {size}")
        route = self.topology.route(src, dst)
        npackets = max(1, math.ceil(size / self.mtu)) if size > 0 else 1
        handle = PacketTransfer(src, dst, size, npackets, self.sim.now)
        if len(route) == 1:
            # Local delivery: all packets arrive instantly.
            handle.delivered = npackets
            handle.finished = self.sim.now
            self.sim.schedule(0.0, handle._complete, handle, label="pkt_local")
            return handle
        remaining = size
        for i in range(npackets):
            psize = min(self.mtu, remaining) if size > 0 else 0.0
            remaining -= psize
            pkt = Packet(handle.id, i, max(psize, 1.0), list(route))
            self._enqueue(pkt, handle)
        return handle

    def port(self, src: str, dst: str) -> _LinkPort:
        """Port state for the directed link (diagnostics / tests)."""
        key = (src, dst)
        p = self._ports.get(key)
        if p is None:
            spec = self.topology.link(src, dst)
            p = _LinkPort(spec, self.queue_packets)
            self._ports[key] = p
        return p

    @property
    def total_drops(self) -> int:
        """Packets dropped across all ports since construction."""
        return sum(p.dropped for p in self._ports.values())

    # -- per-hop machinery ----------------------------------------------------------

    def _enqueue(self, pkt: Packet, handle: PacketTransfer) -> None:
        """Place *pkt* on the output port of its current hop."""
        here, nxt = pkt.route[pkt.hop], pkt.route[pkt.hop + 1]
        port = self.port(here, nxt)
        if len(port.queue) >= port.queue_limit:
            port.dropped += 1
            pkt.dropped = True
            self._account_drop(handle)
            return
        port.queue.append((pkt, handle))
        if not port.busy:
            self._transmit_next(port)

    def _transmit_next(self, port: _LinkPort) -> None:
        if not port.queue:
            port.busy = False
            return
        port.busy = True
        pkt, handle = port.queue.pop(0)
        tx = pkt.size / port.spec.bandwidth
        # Transmission holds the port; propagation overlaps with the next
        # packet's transmission (standard store-and-forward pipelining).
        self.sim.schedule(tx, self._tx_done, port, pkt, handle, label="pkt_tx")

    def _tx_done(self, port: _LinkPort, pkt: Packet, handle: PacketTransfer) -> None:
        port.forwarded += 1
        self.sim.schedule(port.spec.latency, self._arrive, pkt, handle,
                          label="pkt_hop")
        self._transmit_next(port)

    def _arrive(self, pkt: Packet, handle: PacketTransfer) -> None:
        pkt.hop += 1
        if pkt.hop == len(pkt.route) - 1:
            handle.delivered += 1
            self._maybe_finish(handle)
        else:
            self._enqueue(pkt, handle)

    def _account_drop(self, handle: PacketTransfer) -> None:
        handle.dropped += 1
        self.monitor.counter("drops").increment(self.sim.now)
        self._maybe_finish(handle)

    def _maybe_finish(self, handle: PacketTransfer) -> None:
        if handle.delivered + handle.dropped == handle.npackets:
            handle.finished = self.sim.now
            self.monitor.tally("transfer_time").record(handle.duration)
            handle._complete(handle)
