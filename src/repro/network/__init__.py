"""Network substrate: topologies, flow & packet models, protocols, transfers.

Two granularities behind one transport interface (the taxonomy's network
*granularity* axis): :class:`FlowNetwork` (fast, end-to-end max-min fair)
and :class:`PacketNetwork` (slow, per-packet store-and-forward).  Protocol
wrappers (:class:`TcpTransport`, :class:`UdpTransport`,
:class:`ReliablePacketTransport`) and the queued
:class:`FileTransferService` sit on top.
"""

from .flow import FlowHandle, FlowNetwork
from .packet import Packet, PacketNetwork, PacketTransfer
from .protocols import ReliablePacketTransport, TcpTransport, UdpTransport
from .topology import (
    GBPS,
    MBPS,
    LinkSpec,
    Topology,
    dumbbell,
    eu_datagrid,
    ring,
    star,
    tier_tree,
)
from .transfer import FileSpec, FileTransferService

__all__ = [
    "GBPS",
    "MBPS",
    "LinkSpec",
    "Topology",
    "star",
    "ring",
    "dumbbell",
    "tier_tree",
    "eu_datagrid",
    "FlowNetwork",
    "FlowHandle",
    "PacketNetwork",
    "Packet",
    "PacketTransfer",
    "TcpTransport",
    "UdpTransport",
    "ReliablePacketTransport",
    "FileSpec",
    "FileTransferService",
]
