"""Flow-level network model with max-min fair bandwidth sharing.

Taxonomy *granularity of the simulation*: "the simulation of the network can
model in detail the flow of each packet through the network, a time
consuming operation that leads to better output results, or it can model
only the flows of packets going from one end to another."  This module is
the fast end-to-end option — the granularity SimGrid and OptorSim chose.

Model
-----
Each active transfer is a *flow* with a fixed route and a remaining byte
count.  At any instant, link capacity is divided among crossing flows by
**max-min fairness** computed with the classic progressive-filling
algorithm: repeatedly find the most-constrained link (smallest fair share
``free_capacity / unfrozen_flows``), freeze its flows at that share, remove
the consumed capacity, and continue.  Whenever a flow starts or finishes
the allocation is recomputed and every affected completion event is
rescheduled — an O(F·L) update that is the model's classic cost/accuracy
trade-off.

A flow's data starts moving after the route's propagation latency; the
returned :class:`FlowHandle` completes when the last byte arrives.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.events import Event
from ..core.monitor import Monitor
from ..core.process import Waitable
from .topology import LinkSpec, Topology

__all__ = ["FlowHandle", "FlowNetwork"]


class FlowHandle(Waitable):
    """One end-to-end transfer in flight.  Completes with the handle itself."""

    _counter = 0

    def __init__(self, src: str, dst: str, size: float, started: float,
                 rate_cap: float = math.inf) -> None:
        super().__init__()
        FlowHandle._counter += 1
        self.id = FlowHandle._counter
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.started = started
        self.finished: Optional[float] = None
        self.remaining = float(size)
        self.rate = 0.0
        self.rate_cap = float(rate_cap)
        self.links: list[LinkSpec] = []
        self._completion: Optional[Event] = None
        self._last_update = started

    @property
    def duration(self) -> float:
        """Transfer time (NaN while in flight)."""
        return (self.finished - self.started) if self.finished is not None else float("nan")

    @property
    def throughput(self) -> float:
        """Achieved end-to-end throughput (bytes/s; NaN while in flight)."""
        d = self.duration
        return self.size / d if d and not math.isnan(d) and d > 0 else float("nan")

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.finished is not None else f"{self.remaining:.3g}B left"
        return f"<Flow #{self.id} {self.src}->{self.dst} {state}>"


class FlowNetwork:
    """Event-driven max-min fair flow network over a :class:`Topology`.

    Parameters
    ----------
    sim, topology:
        The owning simulator and the link graph.
    efficiency:
        Fraction of nominal link capacity actually usable (protocol
        overhead); 0.92 by default, mirroring SimGrid's TCP correction.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 efficiency: float = 0.92) -> None:
        if not 0 < efficiency <= 1:
            raise ConfigurationError(f"efficiency must be in (0,1], got {efficiency}")
        self.sim = sim
        self.topology = topology
        self.efficiency = efficiency
        self._active: list[FlowHandle] = []
        self.monitor = Monitor("flow-network")
        self._active_level = self.monitor.level("active_flows", start_time=sim.now)
        self.completed = 0

    # -- public API ---------------------------------------------------------------

    def transfer(self, src: str, dst: str, size: float,
                 rate_cap: float = math.inf) -> FlowHandle:
        """Start moving *size* bytes from *src* to *dst*.

        Returns a :class:`FlowHandle` to ``yield`` on (process style) or to
        subscribe to.  ``rate_cap`` bounds the flow's share (used by the
        TCP-window protocol layer).  Zero-byte transfers complete after the
        path latency alone.
        """
        if size < 0:
            raise ConfigurationError(f"transfer size must be >= 0, got {size}")
        handle = FlowHandle(src, dst, size, self.sim.now, rate_cap=rate_cap)
        handle.links = self.topology.route_links(src, dst)
        latency = self.topology.path_latency(src, dst)
        if size == 0 or not handle.links:
            # Same-host copy or empty payload: latency-only.
            self.sim.schedule(latency, self._finish, handle, label="flow_done")
            return handle
        self.sim.schedule(latency, self._admit, handle, label="flow_start")
        return handle

    @property
    def active_flows(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._active)

    def link_utilization(self, spec: LinkSpec) -> float:
        """Instantaneous utilization of one link by active flows."""
        used = sum(f.rate for f in self._active if spec in f.links)
        return used / (spec.bandwidth * self.efficiency)

    # -- internals ------------------------------------------------------------------

    def _admit(self, handle: FlowHandle) -> None:
        handle._last_update = self.sim.now
        self._active.append(handle)
        self._active_level.set(self.sim.now, len(self._active))
        self._reallocate()

    def _finish(self, handle: FlowHandle) -> None:
        handle.remaining = 0.0
        handle.rate = 0.0
        handle.finished = self.sim.now
        if handle in self._active:
            self._active.remove(handle)
            self._active_level.set(self.sim.now, len(self._active))
        self.completed += 1
        self.monitor.tally("transfer_time").record(handle.duration)
        self.monitor.tally("throughput").record(handle.throughput)
        handle._complete(handle)
        self._reallocate()

    def _settle(self, handle: FlowHandle) -> None:
        """Account bytes moved at the current rate since the last update."""
        dt = self.sim.now - handle._last_update
        if dt > 0:
            handle.remaining = max(0.0, handle.remaining - handle.rate * dt)
        handle._last_update = self.sim.now

    def _reallocate(self) -> None:
        """Recompute max-min shares and reschedule completion events."""
        for f in self._active:
            self._settle(f)
        rates = self._max_min_rates()
        for f in self._active:
            new_rate = rates[f.id]
            f.rate = new_rate
            if f._completion is not None:
                f._completion.cancel()
                f._completion = None
            if new_rate > 0:
                eta = f.remaining / new_rate
                f._completion = self.sim.schedule(
                    eta, self._finish, f, label="flow_done")
            # rate == 0 can only happen transiently with rate caps of 0;
            # such flows sit idle until a reallocation frees capacity.

    def _max_min_rates(self) -> dict[int, float]:
        """Progressive filling over the currently active flows."""
        if not self._active:
            return {}
        free: dict[LinkSpec, float] = {}
        crossing: dict[LinkSpec, list[FlowHandle]] = {}
        for f in self._active:
            for link in f.links:
                if link not in free:
                    free[link] = link.bandwidth * self.efficiency
                    crossing[link] = []
                crossing[link].append(f)
        rates: dict[int, float] = {}
        unfrozen = set(f.id for f in self._active)
        # Flows capped below their fair share freeze at the cap first.
        flows_by_id = {f.id: f for f in self._active}
        while unfrozen:
            # Fair share each link could offer its unfrozen flows; track the
            # single most-constrained link (the iteration's bottleneck).
            best_share = math.inf
            best_link: Optional[LinkSpec] = None
            for link, flows in crossing.items():
                n_live = sum(1 for f in flows if f.id in unfrozen)
                if n_live == 0:
                    continue
                share = free[link] / n_live
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                # Remaining flows cross no constrained link (can only happen
                # with rate caps); give them their caps.
                for fid in unfrozen:
                    rates[fid] = flows_by_id[fid].rate_cap
                break
            # Flows capped below the bottleneck share freeze at their cap
            # first — they consume less than a fair share everywhere.
            capped = [fid for fid in unfrozen
                      if flows_by_id[fid].rate_cap < best_share]
            if capped:
                for fid in capped:
                    rate = flows_by_id[fid].rate_cap
                    rates[fid] = rate
                    unfrozen.discard(fid)
                    for link in flows_by_id[fid].links:
                        free[link] = max(0.0, free[link] - rate)
                continue
            # Freeze exactly the bottleneck link's flows at its fair share.
            for f in crossing[best_link]:
                if f.id in unfrozen:
                    rates[f.id] = best_share
                    unfrozen.discard(f.id)
                    for link in f.links:
                        free[link] = max(0.0, free[link] - best_share)
        return rates
