"""Flow-level network model with incremental max-min fair bandwidth sharing.

Taxonomy *granularity of the simulation*: "the simulation of the network can
model in detail the flow of each packet through the network, a time
consuming operation that leads to better output results, or it can model
only the flows of packets going from one end to another."  This module is
the fast end-to-end option — the granularity SimGrid and OptorSim chose.

Model
-----
Each active transfer is a *flow* with a fixed route and a remaining byte
count.  At any instant, link capacity is divided among crossing flows by
**max-min fairness** computed with the classic progressive-filling
algorithm: repeatedly find the most-constrained link (smallest fair share
``free_capacity / unfrozen_flows``), freeze its flows at that share, remove
the consumed capacity, and continue.

Incremental maintenance
-----------------------
The naive formulation recomputes *every* flow's rate and cancels+reschedules
*every* completion event on each admit/finish — O(F·L) work and O(F) event
churn per network event, the classic cost SimGrid's lazy/partial updates
were built to avoid.  This engine instead:

* keeps a persistent link → crossing-flows index, updated O(route length)
  on admit/finish, instead of rebuilding it per recompute;
* recomputes shares only for the **connected component** of flows that
  share a link (transitively) with the changed flow — progressive filling
  decomposes exactly across components, so disjoint components' rates and
  completion events are left untouched;
* **preserves** the completion event of any flow whose recomputed rate is
  unchanged within a relative epsilon (``RESCHEDULE_EPS``) — no dead
  records enter the event list for rate-stable flows;
* **coalesces** all admits/finishes at one timestamp into a single
  recompute, scheduled at the same time in the :data:`Priority.LOW` band so
  it runs after every same-time network event.

``incremental=False`` retains the full progressive-filling engine (global
recompute, full reschedule, no coalescing) as the verification reference
and churn baseline; ``verify=True`` cross-checks every incremental update
against it.  Per-network counters in :attr:`FlowNetwork.sharing` (and, when
a :mod:`repro.obs` session is attached, run telemetry) account for the
saved work.

A flow's data starts moving after the route's propagation latency; the
returned :class:`FlowHandle` completes when the last byte arrives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, RoutingError
from ..core.events import Event, Priority
from ..core.monitor import Monitor
from ..core.process import Waitable
from .topology import LinkSpec, Topology

__all__ = ["FlowHandle", "FlowNetwork", "SharingStats"]

#: absolute backstop for the starvation guard when the relative floor
#: underflows to zero (subnormal link capacities).
_MIN_SHARE = math.ulp(0.0)


class FlowHandle(Waitable):
    """One end-to-end transfer in flight.  Completes with the handle itself."""

    _counter = 0

    def __init__(self, src: str, dst: str, size: float, started: float,
                 rate_cap: float = math.inf) -> None:
        super().__init__()
        FlowHandle._counter += 1
        self.id = FlowHandle._counter
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.started = started
        self.finished: Optional[float] = None
        self.remaining = float(size)
        self.rate = 0.0
        self.rate_cap = float(rate_cap)
        self.links: list[LinkSpec] = []
        #: True when the transfer was aborted (a link on its route failed,
        #: or no route existed); ``remaining`` then keeps the undelivered
        #: byte count and ``error`` says why.  Subscribers must check this
        #: — an aborted handle still completes (exactly once), with itself.
        self.failed = False
        self.error: Optional[str] = None
        self._completion: Optional[Event] = None
        self._last_update = started

    @property
    def duration(self) -> float:
        """Transfer time (NaN while in flight)."""
        return (self.finished - self.started) if self.finished is not None else float("nan")

    @property
    def throughput(self) -> float:
        """Achieved end-to-end throughput (bytes/s; NaN while in flight)."""
        d = self.duration
        return self.size / d if d and not math.isnan(d) and d > 0 else float("nan")

    def __repr__(self) -> str:  # pragma: no cover
        if self.failed:
            state = f"aborted ({self.error})"
        elif self.finished is not None:
            state = "done"
        else:
            state = f"{self.remaining:.3g}B left"
        return f"<Flow #{self.id} {self.src}->{self.dst} {state}>"


@dataclass
class SharingStats:
    """Reallocation accounting for one :class:`FlowNetwork`.

    ``preserved``/``rescheduled`` partition the completion events of every
    recomputed flow; flows outside the recomputed component appear in
    neither (their events were never touched at all).
    """

    recomputes: int = 0          #: progressive-filling passes actually run
    coalesced: int = 0           #: admits/finishes absorbed by a pending pass
    flows_touched: int = 0       #: flows whose rates were recomputed (summed)
    rescheduled: int = 0         #: completion events cancelled + rescheduled
    preserved: int = 0           #: completion events kept (rate unchanged)

    def as_dict(self) -> dict:
        """Flat dict (CSV/JSON-friendly)."""
        return {"recomputes": self.recomputes, "coalesced": self.coalesced,
                "flows_touched": self.flows_touched,
                "rescheduled": self.rescheduled, "preserved": self.preserved}


class FlowNetwork:
    """Event-driven max-min fair flow network over a :class:`Topology`.

    Parameters
    ----------
    sim, topology:
        The owning simulator and the link graph.
    efficiency:
        Fraction of nominal link capacity actually usable (protocol
        overhead); 0.92 by default, mirroring SimGrid's TCP correction.
    incremental:
        When True (default) use the component-scoped incremental engine.
        When False, run the retained full progressive-filling reference:
        every admit/finish immediately recomputes all flows and
        cancels+reschedules every completion event (the churn baseline).
    verify:
        Debug mode: after every incremental update, recompute the full
        reference allocation and raise if any stored rate diverges beyond
        the epsilon policy.  Used by the differential fuzz tests.
    """

    #: Relative epsilon under which a recomputed rate counts as unchanged
    #: and the flow's completion event is preserved.  Chosen far below any
    #: modelled bandwidth change but above progressive-filling float noise,
    #: so drift against the full reference stays ≤ RESCHEDULE_EPS per flow.
    RESCHEDULE_EPS = 1e-12

    #: Starvation guard: a bottleneck share is floored at this fraction of
    #: the bottleneck link's usable capacity.  Float residue in the free
    #: capacity bookkeeping can otherwise drive a saturated link's share to
    #: exactly zero while an uncapped flow still crosses it — the flow
    #: would freeze at rate 0, never get a completion event, and hang
    #: forever (as would any process yielding on it).
    SHARE_FLOOR_EPS = 1e-12

    def __init__(self, sim: Simulator, topology: Topology,
                 efficiency: float = 0.92, incremental: bool = True,
                 verify: bool = False) -> None:
        if not 0 < efficiency <= 1:
            raise ConfigurationError(f"efficiency must be in (0,1], got {efficiency}")
        self.sim = sim
        self.topology = topology
        self.efficiency = efficiency
        self.incremental = incremental
        self.verify = verify
        #: active flows keyed by id — O(1) admit/finish bookkeeping.
        self._active: dict[int, FlowHandle] = {}
        #: persistent link → {flow id: flow} index over active flows;
        #: entries are pruned as soon as their last crossing flow finishes,
        #: so the index never outgrows the live flow set.
        self._crossing: dict[LinkSpec, dict[int, FlowHandle]] = {}
        #: flows admitted / links released since the last recompute — the
        #: seeds of the next component-scoped pass.
        self._dirty_flows: dict[int, FlowHandle] = {}
        self._dirty_links: set[LinkSpec] = set()
        self._flush_scheduled = False
        self.sharing = SharingStats()
        self.monitor = Monitor("flow-network")
        self._active_level = self.monitor.level("active_flows", start_time=sim.now)
        self.completed = 0
        self.aborted = 0

    # -- public API ---------------------------------------------------------------

    def transfer(self, src: str, dst: str, size: float,
                 rate_cap: float = math.inf) -> FlowHandle:
        """Start moving *size* bytes from *src* to *dst*.

        Returns a :class:`FlowHandle` to ``yield`` on (process style) or to
        subscribe to.  ``rate_cap`` bounds the flow's share (used by the
        TCP-window protocol layer).  Zero-byte transfers complete after the
        path latency alone.
        """
        if size < 0:
            raise ConfigurationError(f"transfer size must be >= 0, got {size}")
        handle = FlowHandle(src, dst, size, self.sim.now, rate_cap=rate_cap)
        try:
            handle.links = self.topology.route_links(src, dst)
        except RoutingError:
            # Link outages partitioned the pair: fail fast (deterministic
            # same-timestamp event) instead of raising into the caller —
            # retry loops subscribe to the handle like any other outcome.
            self.sim.schedule(0.0, self._abort, handle,
                              f"no route {src} -> {dst}", label="flow_abort")
            return handle
        latency = self.topology.path_latency(src, dst)
        if size == 0 or not handle.links:
            # Same-host copy or empty payload: latency-only, never admitted
            # — must not perturb the rates of flows actually on the wire.
            self.sim.schedule(latency, self._finish, handle, label="flow_done")
            return handle
        self.sim.schedule(latency, self._admit, handle, label="flow_start")
        return handle

    @property
    def active_flows(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._active)

    def flows(self) -> list[FlowHandle]:
        """The currently active flows (snapshot list)."""
        return list(self._active.values())

    def link_utilization(self, spec: LinkSpec) -> float:
        """Instantaneous utilization of one link by active flows."""
        used = sum(f.rate for f in self._crossing.get(spec, {}).values())
        return used / (spec.bandwidth * self.efficiency)

    def reference_rates(self) -> dict[int, float]:
        """Full progressive filling over every active flow.

        The retained reference implementation: tests and the differential
        fuzz harness compare the incremental engine's stored rates against
        this on demand (and continuously with ``verify=True``).
        """
        return self._max_min_rates(dict(self._active))

    def abort_link(self, spec: LinkSpec) -> list[FlowHandle]:
        """Abort every active flow crossing *spec* (the link went down).

        Routing state lives on the :class:`Topology` — callers mark the
        outage there first (``topology.fail_link``) so no new flow routes
        over the dead link, then call this to kill the in-flight ones.
        Returns the aborted handles (each completed with ``failed=True``).
        """
        victims = list(self._crossing.get(spec, {}).values())
        for f in victims:
            self._abort(f, f"link {spec.src}->{spec.dst} failed")
        return victims

    # -- internals ------------------------------------------------------------------

    def _abort(self, handle: FlowHandle, reason: str) -> None:
        """Terminate *handle* as failed: settle bytes, free its links,
        cancel its completion, and complete it with ``failed=True``."""
        if handle.finished is not None:
            return  # already finished or aborted — completion fires once
        admitted = self._active.pop(handle.id, None) is not None
        if admitted:
            self._settle(handle)
            for link in handle.links:
                crossing = self._crossing.get(link)
                if crossing is not None:
                    crossing.pop(handle.id, None)
                    if not crossing:
                        del self._crossing[link]
            self._active_level.set(self.sim.now, len(self._active))
        if handle._completion is not None:
            handle._completion.cancel()
            handle._completion = None
        handle.rate = 0.0
        handle.failed = True
        handle.error = reason
        handle.finished = self.sim.now
        self.aborted += 1
        self.monitor.counter("aborted_flows").increment(self.sim.now)
        obs = self.sim._obs
        if obs is not None:
            obs.on_flow_abort(handle)
        handle._complete(handle)
        if admitted:
            # the freed share goes back to the survivors on those links
            self._mark_dirty(links=handle.links)

    def _admit(self, handle: FlowHandle) -> None:
        # The route was up when the transfer started; a link may have died
        # during the propagation latency.  Admitting onto a dead link would
        # let bytes flow through an outage, so abort at the edge instead.
        for link in handle.links:
            if not self.topology.link_up(link.src, link.dst):
                self._abort(handle, f"link {link.src}->{link.dst} down")
                return
        handle._last_update = self.sim.now
        self._active[handle.id] = handle
        for link in handle.links:
            self._crossing.setdefault(link, {})[handle.id] = handle
        self._active_level.set(self.sim.now, len(self._active))
        self._mark_dirty(flow=handle)

    def _finish(self, handle: FlowHandle) -> None:
        if handle.finished is not None:
            return  # aborted in the same instant — completion fires once
        admitted = self._active.pop(handle.id, None) is not None
        handle.remaining = 0.0
        handle.rate = 0.0
        handle.finished = self.sim.now
        if handle._completion is not None:
            handle._completion = None
        if admitted:
            for link in handle.links:
                crossing = self._crossing.get(link)
                if crossing is not None:
                    crossing.pop(handle.id, None)
                    if not crossing:
                        del self._crossing[link]
            self._active_level.set(self.sim.now, len(self._active))
        self.completed += 1
        self.monitor.tally("transfer_time").record(handle.duration)
        if admitted:
            # Never-admitted (latency-only) handles moved no bytes over any
            # link; tallying their 0 B/s would deflate the throughput stat.
            self.monitor.tally("throughput").record(handle.throughput)
        handle._complete(handle)
        if admitted:
            # A flow that never held bandwidth cannot change anyone's share.
            self._mark_dirty(links=handle.links)

    def _settle(self, handle: FlowHandle) -> None:
        """Account bytes moved at the current rate since the last update."""
        dt = self.sim.now - handle._last_update
        if dt > 0:
            handle.remaining = max(0.0, handle.remaining - handle.rate * dt)
        handle._last_update = self.sim.now

    def _mark_dirty(self, flow: FlowHandle | None = None,
                    links: Iterable[LinkSpec] | None = None) -> None:
        """Record a topology-of-flows change and arrange one recompute.

        Incremental mode defers the recompute to a same-timestamp LOW-band
        event so every admit/finish at this instant lands in one pass; the
        reference mode recomputes immediately, exactly as the original
        engine did.
        """
        if not self.incremental:
            self._apply_rates(dict(self._active), preserve=False)
            return
        if flow is not None:
            self._dirty_flows[flow.id] = flow
        if links is not None:
            self._dirty_links.update(links)
        if self._flush_scheduled:
            self.sharing.coalesced += 1
            return
        self._flush_scheduled = True
        self.sim.schedule(0.0, self._flush, label="flow_realloc",
                          priority=Priority.LOW)

    def _flush(self) -> None:
        """Run the coalesced, component-scoped recompute."""
        self._flush_scheduled = False
        dirty_flows = self._dirty_flows
        seed_links = self._dirty_links
        self._dirty_flows = {}
        self._dirty_links = set()
        for f in dirty_flows.values():
            if f.id in self._active:
                seed_links.update(f.links)
        if not seed_links:
            return
        component = self._component(seed_links)
        if not component:
            return
        self._apply_rates(component, preserve=True)
        if self.verify:
            self._verify_against_reference()

    def _component(self, seed_links: Iterable[LinkSpec]) -> dict[int, FlowHandle]:
        """Flows transitively sharing a link with any seed link."""
        flows: dict[int, FlowHandle] = {}
        stack = [l for l in seed_links if l in self._crossing]
        seen = set(stack)
        while stack:
            link = stack.pop()
            for f in self._crossing[link].values():
                if f.id not in flows:
                    flows[f.id] = f
                    for l in f.links:
                        if l not in seen and l in self._crossing:
                            seen.add(l)
                            stack.append(l)
        return flows

    def _apply_rates(self, flows: dict[int, FlowHandle], preserve: bool) -> None:
        """Settle, recompute max-min shares, and (re)schedule completions.

        With *preserve*, a flow whose new rate matches its current rate
        within :data:`RESCHEDULE_EPS` (relative) keeps both its stored rate
        and its live completion event — the event's absolute time is still
        exact, since bytes keep draining at the unchanged rate.
        """
        if not flows:
            return
        for f in flows.values():
            self._settle(f)
        rates = self._max_min_rates(flows)
        stats = self.sharing
        stats.recomputes += 1
        stats.flows_touched += len(flows)
        rescheduled = preserved = 0
        eps = self.RESCHEDULE_EPS
        for f in flows.values():
            new_rate = rates[f.id]
            if (preserve and f._completion is not None
                    and not f._completion.cancelled
                    and abs(new_rate - f.rate)
                    <= eps * max(abs(new_rate), abs(f.rate))):
                preserved += 1
                continue
            f.rate = new_rate
            if f._completion is not None:
                f._completion.cancel()
                f._completion = None
            if new_rate > 0:
                eta = f.remaining / new_rate
                f._completion = self.sim.schedule(
                    eta, self._finish, f, label="flow_done")
                rescheduled += 1
            # rate == 0 can only happen with a rate cap of 0; such flows
            # sit idle until a reallocation frees capacity.
        stats.rescheduled += rescheduled
        stats.preserved += preserved
        obs = self.sim._obs
        if obs is not None:
            obs.on_reallocate(len(flows), rescheduled, preserved)

    def _verify_against_reference(self) -> None:
        """Assert stored rates match the full progressive-filling reference.

        The tolerance covers the two sanctioned divergence sources: an
        epsilon-preserved stale rate (≤ RESCHEDULE_EPS relative) and float
        tie-break noise between component-local and global filling order.
        """
        reference = self.reference_rates()
        for fid, want in reference.items():
            got = self._active[fid].rate
            if not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12):
                raise AssertionError(
                    f"incremental rate divergence: flow #{fid} has rate "
                    f"{got!r}, full reference says {want!r} "
                    f"(active={len(self._active)})")

    def _max_min_rates(self, flows: dict[int, FlowHandle]) -> dict[int, float]:
        """Progressive filling restricted to *flows*.

        Callers pass either one connected component (the incremental path —
        filling decomposes exactly across components, so the restriction is
        lossless) or every active flow (the full reference).
        """
        if not flows:
            return {}
        free: dict[LinkSpec, float] = {}
        capacity: dict[LinkSpec, float] = {}
        crossing: dict[LinkSpec, list[FlowHandle]] = {}
        for f in flows.values():
            for link in f.links:
                if link not in free:
                    cap = link.bandwidth * self.efficiency
                    free[link] = cap
                    capacity[link] = cap
                    crossing[link] = []
                crossing[link].append(f)
        rates: dict[int, float] = {}
        unfrozen = set(flows)
        # Flows capped at exactly 0 can never carry bytes; freeze them first
        # so the starvation guard below applies only to servable flows.
        for fid, f in flows.items():
            if f.rate_cap <= 0.0:
                rates[fid] = 0.0
                unfrozen.discard(fid)
        while unfrozen:
            # Fair share each link could offer its unfrozen flows; track the
            # single most-constrained link (the iteration's bottleneck).
            best_share = math.inf
            best_link: Optional[LinkSpec] = None
            for link, crossers in crossing.items():
                n_live = sum(1 for f in crossers if f.id in unfrozen)
                if n_live == 0:
                    continue
                share = free[link] / n_live
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                # Remaining flows cross no constrained link (can only happen
                # with rate caps); give them their caps.
                for fid in unfrozen:
                    rates[fid] = flows[fid].rate_cap
                break
            # Starvation guard: float residue in `free` after repeated
            # subtraction can reach exactly 0 (or epsilon dust) while
            # uncapped flows still cross the link; a zero share would
            # freeze them at rate 0 with no completion event — a permanent
            # hang.  Floor the share relative to the bottleneck's capacity
            # (overshoot is ≤ crossers · floor, far inside the efficiency
            # margin), with an absolute backstop for subnormal capacities.
            floor = self.SHARE_FLOOR_EPS * capacity[best_link]
            if best_share < floor or best_share <= 0.0:
                best_share = floor if floor > 0.0 else _MIN_SHARE
            # Flows capped below the bottleneck share freeze at their cap
            # first — they consume less than a fair share everywhere.
            capped = [fid for fid in unfrozen
                      if flows[fid].rate_cap < best_share]
            if capped:
                for fid in capped:
                    rate = flows[fid].rate_cap
                    rates[fid] = rate
                    unfrozen.discard(fid)
                    for link in flows[fid].links:
                        free[link] = max(0.0, free[link] - rate)
                continue
            # Freeze exactly the bottleneck link's flows at its fair share.
            for f in crossing[best_link]:
                if f.id in unfrozen:
                    rates[f.id] = best_share
                    unfrozen.discard(f.id)
                    for link in f.links:
                        free[link] = max(0.0, free[link] - best_share)
        # Post-condition of the guard: no servable flow ever starves.
        for fid, rate in rates.items():
            if rate <= 0.0 and flows[fid].rate_cap > 0.0:
                raise AssertionError(
                    f"max-min starvation: flow #{fid} (cap "
                    f"{flows[fid].rate_cap!r}) allocated rate {rate!r}")
        return rates
