"""File-transfer service: the FTP/NFS-like application protocol layer.

Bridges transports (flow or packet granularity) and the data-grid
middleware: a :class:`FileTransferService` moves named files between sites,
records per-file statistics, and enforces a per-route concurrent-transfer
limit (GridFTP server slots), queueing the excess — which is what turns raw
bandwidth into the transfer backlogs the MONARC study measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Waitable

__all__ = ["FileSpec", "FileTransferService"]


@dataclass(frozen=True, slots=True)
class FileSpec:
    """A named, sized file (logical file name + bytes)."""

    name: str
    size: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"file {self.name!r}: size must be >= 0")


class _TransferTicket(Waitable):
    """Completes when the file lands; carries queue + wire timings."""

    def __init__(self, file: FileSpec, src: str, dst: str, requested: float) -> None:
        super().__init__()
        self.file = file
        self.src = src
        self.dst = dst
        self.requested = requested
        self.started: Optional[float] = None
        self.finished: Optional[float] = None

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a transfer slot."""
        return (self.started - self.requested) if self.started is not None else float("nan")

    @property
    def total_time(self) -> float:
        """Request-to-completion time (queueing + wire)."""
        return (self.finished - self.requested) if self.finished is not None else float("nan")


class FileTransferService:
    """Queued file movement over any transport.

    Parameters
    ----------
    transport:
        Anything with ``transfer(src, dst, size) -> Waitable`` (all three
        protocol transports and both raw networks qualify).
    max_concurrent_per_route:
        Simultaneous transfers allowed per (src, dst) route; further
        requests wait FIFO — the "transfer server slots" knob.
    """

    def __init__(self, sim: Simulator, transport,
                 max_concurrent_per_route: int = 4) -> None:
        if max_concurrent_per_route < 1:
            raise ConfigurationError("max_concurrent_per_route must be >= 1")
        self.sim = sim
        self.transport = transport
        self.max_concurrent = max_concurrent_per_route
        #: per-route live-transfer counts and FIFO queues.  Both dicts are
        #: pruned as soon as a route goes idle, so route state is bounded
        #: by *concurrent* traffic, not by every (src, dst) pair ever seen.
        self._in_flight: dict[tuple[str, str], int] = {}
        self._backlog: dict[tuple[str, str], deque[_TransferTicket]] = {}
        self.monitor = Monitor("file-transfers")
        self.completed = 0
        #: ``src == dst`` requests served without touching the wire.  These
        #: count in ``completed`` and the monitor too, so hit ratios and
        #: mean delays reflect every request, not only remote ones.
        self.local_hits = 0

    def fetch(self, file: FileSpec, src: str, dst: str) -> _TransferTicket:
        """Request *file* to be copied ``src -> dst``; returns a ticket."""
        ticket = _TransferTicket(file, src, dst, self.sim.now)
        if src == dst:
            # already local — complete immediately (zero-cost hit)
            ticket.started = ticket.finished = self.sim.now
            self.local_hits += 1
            self.completed += 1
            self.monitor.tally("queue_delay").record(0.0)
            self.monitor.tally("total_time").record(0.0)
            self.sim.schedule(0.0, ticket._complete, ticket, label="xfer_local")
            return ticket
        key = (src, dst)
        if self._in_flight.get(key, 0) < self.max_concurrent:
            self._launch(key, ticket)
        else:
            self._backlog.setdefault(key, deque()).append(ticket)
        return ticket

    def backlog_size(self, src: str, dst: str) -> int:
        """Queued (not yet started) transfers on a route."""
        return len(self._backlog.get((src, dst), ()))

    @property
    def total_backlog(self) -> int:
        """Queued transfers summed over all routes."""
        return sum(len(q) for q in self._backlog.values())

    def _launch(self, key: tuple[str, str], ticket: _TransferTicket) -> None:
        self._in_flight[key] = self._in_flight.get(key, 0) + 1
        ticket.started = self.sim.now
        obs = self.sim._obs
        if obs is not None:
            obs.on_transfer_begin(ticket)
        handle = self.transport.transfer(ticket.src, ticket.dst, ticket.file.size)
        handle._subscribe(lambda _res: self._done(key, ticket))

    def _done(self, key: tuple[str, str], ticket: _TransferTicket) -> None:
        ticket.finished = self.sim.now
        obs = self.sim._obs
        if obs is not None:
            obs.on_transfer_end(ticket)
        self.completed += 1
        self.monitor.tally("queue_delay").record(ticket.queue_delay)
        self.monitor.tally("total_time").record(ticket.total_time)
        self._in_flight[key] -= 1
        queue = self._backlog.get(key)
        if queue:
            self._launch(key, queue.popleft())
        else:
            if queue is not None:
                del self._backlog[key]
            if not self._in_flight[key]:
                del self._in_flight[key]
        ticket._complete(ticket)
