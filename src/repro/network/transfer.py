"""File-transfer service: the FTP/NFS-like application protocol layer.

Bridges transports (flow or packet granularity) and the data-grid
middleware: a :class:`FileTransferService` moves named files between sites,
records per-file statistics, and enforces a per-route concurrent-transfer
limit (GridFTP server slots), queueing the excess — which is what turns raw
bandwidth into the transfer backlogs the MONARC study measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Waitable

__all__ = ["FileSpec", "FileTransferService"]


@dataclass(frozen=True, slots=True)
class FileSpec:
    """A named, sized file (logical file name + bytes)."""

    name: str
    size: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"file {self.name!r}: size must be >= 0")


class _TransferTicket(Waitable):
    """Completes when the file lands; carries queue + wire timings."""

    def __init__(self, file: FileSpec, src: str, dst: str, requested: float) -> None:
        super().__init__()
        self.file = file
        self.src = src
        self.dst = dst
        self.requested = requested
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: wire attempts so far (0 while queued; retries re-increment)
        self.attempts = 0
        #: True when every attempt aborted (link/site outage on the route);
        #: subscribers must check this before treating the file as landed.
        self.failed = False

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a transfer slot."""
        return (self.started - self.requested) if self.started is not None else float("nan")

    @property
    def total_time(self) -> float:
        """Request-to-completion time (queueing + wire)."""
        return (self.finished - self.requested) if self.finished is not None else float("nan")


class FileTransferService:
    """Queued file movement over any transport.

    Parameters
    ----------
    transport:
        Anything with ``transfer(src, dst, size) -> Waitable`` (all three
        protocol transports and both raw networks qualify).
    max_concurrent_per_route:
        Simultaneous transfers allowed per (src, dst) route; further
        requests wait FIFO — the "transfer server slots" knob.
    max_attempts:
        Total wire attempts per ticket when the transport reports a failed
        transfer (an aborted flow).  1 (the default) means no retry: the
        ticket completes with ``failed=True`` on the first abort.
    retry_backoff:
        Base delay before re-queueing a failed attempt; attempt *k* waits
        ``retry_backoff * 2**(k-1)`` — deterministic exponential backoff,
        so retry timing is byte-reproducible across runs.
    """

    def __init__(self, sim: Simulator, transport,
                 max_concurrent_per_route: int = 4,
                 max_attempts: int = 1, retry_backoff: float = 0.5) -> None:
        if max_concurrent_per_route < 1:
            raise ConfigurationError("max_concurrent_per_route must be >= 1")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")
        self.sim = sim
        self.transport = transport
        self.max_concurrent = max_concurrent_per_route
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        #: per-route live-transfer counts and FIFO queues.  Both dicts are
        #: pruned as soon as a route goes idle, so route state is bounded
        #: by *concurrent* traffic, not by every (src, dst) pair ever seen.
        self._in_flight: dict[tuple[str, str], int] = {}
        self._backlog: dict[tuple[str, str], deque[_TransferTicket]] = {}
        self.monitor = Monitor("file-transfers")
        self.completed = 0
        self.retries = 0
        self.failed = 0
        #: ``src == dst`` requests served without touching the wire.  These
        #: count in ``completed`` and the monitor too, so hit ratios and
        #: mean delays reflect every request, not only remote ones.
        self.local_hits = 0

    def fetch(self, file: FileSpec, src: str, dst: str) -> _TransferTicket:
        """Request *file* to be copied ``src -> dst``; returns a ticket."""
        ticket = _TransferTicket(file, src, dst, self.sim.now)
        if src == dst:
            # already local — complete immediately (zero-cost hit)
            ticket.started = ticket.finished = self.sim.now
            self.local_hits += 1
            self.completed += 1
            self.monitor.tally("queue_delay").record(0.0)
            self.monitor.tally("total_time").record(0.0)
            self.sim.schedule(0.0, ticket._complete, ticket, label="xfer_local")
            return ticket
        key = (src, dst)
        if self._in_flight.get(key, 0) < self.max_concurrent:
            self._launch(key, ticket)
        else:
            self._backlog.setdefault(key, deque()).append(ticket)
        return ticket

    def backlog_size(self, src: str, dst: str) -> int:
        """Queued (not yet started) transfers on a route."""
        return len(self._backlog.get((src, dst), ()))

    @property
    def total_backlog(self) -> int:
        """Queued transfers summed over all routes."""
        return sum(len(q) for q in self._backlog.values())

    def _launch(self, key: tuple[str, str], ticket: _TransferTicket) -> None:
        self._in_flight[key] = self._in_flight.get(key, 0) + 1
        if ticket.started is None:
            ticket.started = self.sim.now  # queue delay measures first start
        ticket.attempts += 1
        obs = self.sim._obs
        if obs is not None:
            obs.on_transfer_begin(ticket)
        handle = self.transport.transfer(ticket.src, ticket.dst, ticket.file.size)
        handle._subscribe(lambda result: self._done(key, ticket, result))

    def _done(self, key: tuple[str, str], ticket: _TransferTicket,
              result) -> None:
        # Transports that can abort (FlowNetwork under link outages) flag
        # the failure on their handle; anything else always succeeds.
        aborted = getattr(result, "failed", False)
        obs = self.sim._obs
        if obs is not None:
            obs.on_transfer_end(ticket)
        # Free the slot and pump the backlog first — a retry re-enters the
        # queue like any new request, so slot accounting stays exact.
        self._in_flight[key] -= 1
        queue = self._backlog.get(key)
        if queue:
            self._launch(key, queue.popleft())
        else:
            if queue is not None:
                del self._backlog[key]
            if not self._in_flight[key]:
                del self._in_flight[key]
        if aborted and ticket.attempts < self.max_attempts:
            self.retries += 1
            self.monitor.counter("retries").increment(self.sim.now)
            if obs is not None:
                obs.on_transfer_retry(ticket)
            delay = self.retry_backoff * (2 ** (ticket.attempts - 1))
            self.sim.schedule(delay, self._refetch, key, ticket,
                              label="xfer_retry")
            return
        ticket.finished = self.sim.now
        if aborted:
            ticket.failed = True
            self.failed += 1
            self.monitor.counter("failed").increment(self.sim.now)
        else:
            self.completed += 1
            self.monitor.tally("queue_delay").record(ticket.queue_delay)
            self.monitor.tally("total_time").record(ticket.total_time)
        ticket._complete(ticket)

    def _refetch(self, key: tuple[str, str], ticket: _TransferTicket) -> None:
        """Re-queue a backed-off retry through the normal slot machinery."""
        if self._in_flight.get(key, 0) < self.max_concurrent:
            self._launch(key, ticket)
        else:
            self._backlog.setdefault(key, deque()).append(ticket)
