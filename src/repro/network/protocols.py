"""Transport protocols over the two network granularities.

Taxonomy *infrastructure communication protocols*: "lower-level protocols
such as TCP, UDP, etc. as well as higher-level application protocols such
as FTP, NFS".  Three transports share one duck-typed interface —
``transfer(src, dst, size) -> Waitable`` handle with ``success`` and
``duration`` — so middleware (file transfer, replication) is written once:

:class:`TcpTransport`
    Flow-level with a per-connection window cap ``cwnd / RTT`` — the
    standard first-order TCP throughput model: a connection cannot exceed
    its window rate even on an empty fat pipe, which is exactly why the
    MONARC study's single-stream transfers underused the 2.5 Gbps link.
:class:`UdpTransport`
    Packet-level, fire-and-forget: drops reduce ``success``; no retries.
:class:`ReliablePacketTransport`
    Packet-level with retransmission of dropped packets after a timeout —
    TCP-ish reliability at packet granularity (expensive, accurate).
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.process import Waitable
from .flow import FlowHandle, FlowNetwork
from .packet import PacketNetwork, PacketTransfer
from .topology import Topology

__all__ = ["TcpTransport", "UdpTransport", "ReliablePacketTransport"]


class TcpTransport:
    """Window-capped flow transport (the surveyed simulators' default).

    Per-connection throughput is ``min(fair share, window / RTT)`` where RTT
    is twice the route latency.  ``parallel_streams`` models GridFTP-style
    striping: *n* streams behave as one flow with an *n*-times window.
    """

    def __init__(self, sim: Simulator, network: FlowNetwork,
                 window: float = 8.0 * 2 ** 20, parallel_streams: int = 1) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be > 0, got {window}")
        if parallel_streams < 1:
            raise ConfigurationError("parallel_streams must be >= 1")
        self.sim = sim
        self.network = network
        self.window = float(window)
        self.parallel_streams = parallel_streams
        #: per-route cap memo — transfer-heavy workloads revisit the same
        #: (src, dst) pairs constantly and the underlying path latency is
        #: a routed graph query.  Call :meth:`invalidate_caps` after
        #: mutating the topology mid-run.
        self._cap_cache: dict[tuple[str, str], float] = {}

    def rate_cap(self, src: str, dst: str) -> float:
        """The window-imposed throughput ceiling for this route."""
        key = (src, dst)
        cap = self._cap_cache.get(key)
        if cap is None:
            rtt = 2.0 * self.network.topology.path_latency(src, dst)
            cap = (math.inf if rtt <= 0
                   else self.parallel_streams * self.window / rtt)
            self._cap_cache[key] = cap
        return cap

    def invalidate_caps(self) -> None:
        """Drop cached route caps (after topology/latency changes)."""
        self._cap_cache.clear()

    def transfer(self, src: str, dst: str, size: float) -> FlowHandle:
        """Start a capped flow; the handle completes on the last byte."""
        return self.network.transfer(src, dst, size,
                                     rate_cap=self.rate_cap(src, dst))


class UdpTransport:
    """Unreliable datagram transport at packet granularity."""

    def __init__(self, sim: Simulator, network: PacketNetwork) -> None:
        self.sim = sim
        self.network = network

    def transfer(self, src: str, dst: str, size: float) -> PacketTransfer:
        """Send and forget; check ``handle.success`` for loss."""
        return self.network.transfer(src, dst, size)


class _ReliableHandle(Waitable):
    """Completes when all bytes are delivered, however many rounds it takes."""

    def __init__(self, src: str, dst: str, size: float, started: float) -> None:
        super().__init__()
        self.src = src
        self.dst = dst
        self.size = size
        self.started = started
        self.finished: Optional[float] = None
        self.rounds = 0
        self.retransmitted_bytes = 0.0

    @property
    def success(self) -> bool:
        """True when every byte was eventually delivered."""
        return self.finished is not None

    @property
    def duration(self) -> float:
        """Total time including retransmission rounds (NaN if unfinished)."""
        return (self.finished - self.started) if self.finished is not None else float("nan")


class ReliablePacketTransport:
    """Packet transport that retransmits dropped packets until delivered.

    Retransmission happens one RTO after a round completes with losses; the
    RTO backs off exponentially, capped at ``max_rounds`` (then the handle
    completes unsuccessfully — path persistently congested).
    """

    def __init__(self, sim: Simulator, network: PacketNetwork,
                 rto: float = 0.2, max_rounds: int = 50) -> None:
        if rto <= 0:
            raise ConfigurationError(f"rto must be > 0, got {rto}")
        self.sim = sim
        self.network = network
        self.rto = float(rto)
        self.max_rounds = max_rounds

    def transfer(self, src: str, dst: str, size: float) -> _ReliableHandle:
        handle = _ReliableHandle(src, dst, size, self.sim.now)
        self._send_round(handle, size, self.rto)
        return handle

    def _send_round(self, handle: _ReliableHandle, nbytes: float, rto: float) -> None:
        handle.rounds += 1
        if handle.rounds > 1:
            handle.retransmitted_bytes += nbytes
        inner = self.network.transfer(handle.src, handle.dst, nbytes)
        inner._subscribe(lambda result: self._round_done(handle, result, rto))

    def _round_done(self, handle: _ReliableHandle, inner: PacketTransfer,
                    rto: float) -> None:
        if inner.success:
            handle.finished = self.sim.now
            handle._complete(handle)
            return
        if handle.rounds >= self.max_rounds:
            handle._complete(handle)  # unsuccessful: finished stays None
            return
        lost_bytes = inner.dropped * self.network.mtu
        self.sim.schedule(rto, self._send_round, handle, lost_bytes,
                          min(rto * 2, 30.0), label="retransmit")
