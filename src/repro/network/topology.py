"""Network topology: nodes, links, routing.

Taxonomy *network characteristics*: "the network elements interconnecting
hosts within simulated distributed environments — routers, switches and
other devices".  A :class:`Topology` is a directed multigraph of named nodes
joined by :class:`LinkSpec` edges (bandwidth + latency), with shortest-path
routing (networkx) cached per source.

Factory helpers build the standard shapes the surveyed simulators assume:
a star (Bricks' central model), a tier tree (MONARC's T0/T1/T2), a dumbbell
(bottleneck studies), a ring, and an EU-DataGrid-like mesh (OptorSim).
Bandwidths are in **bytes per simulated second**, latencies in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from ..core.errors import ConfigurationError, RoutingError, TopologyError

__all__ = [
    "GBPS",
    "MBPS",
    "LinkSpec",
    "Topology",
    "star",
    "ring",
    "dumbbell",
    "tier_tree",
    "eu_datagrid",
]

#: 1 gigabit/s expressed in bytes/s — convenient for link definitions.
GBPS = 1e9 / 8
MBPS = 1e6 / 8


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """One directed link: capacity in bytes/s, propagation latency in s."""

    src: str
    dst: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"link {self.src}->{self.dst}: bandwidth must be > 0")
        if self.latency < 0:
            raise ConfigurationError(
                f"link {self.src}->{self.dst}: latency must be >= 0")


class Topology:
    """Named nodes + directed capacity/latency links + shortest-path routes.

    Routes minimize total latency (with hop count as tiebreak via a tiny
    per-hop epsilon); they are computed lazily per source and invalidated
    on mutation.
    """

    _HOP_EPS = 1e-9

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._route_cache: dict[str, dict[str, list[str]]] = {}
        #: directed edges currently out of service — routing hides them, so
        #: traffic reroutes around an outage when an alternate path exists
        #: and :meth:`route` raises RoutingError when the cut partitions
        #: the pair.
        self._down: set[tuple[str, str]] = set()

    # -- construction ----------------------------------------------------------

    def add_node(self, name: str, **attrs) -> None:
        """Add a node; re-adding an existing node updates its attributes."""
        self._g.add_node(name, **attrs)
        self._route_cache.clear()

    def add_link(self, src: str, dst: str, bandwidth: float,
                 latency: float = 0.0, symmetric: bool = True) -> None:
        """Add a link (both directions when *symmetric*); creates endpoints."""
        spec = LinkSpec(src, dst, bandwidth, latency)  # validates
        self._g.add_edge(src, dst, spec=spec)
        if symmetric:
            self._g.add_edge(dst, src, spec=LinkSpec(dst, src, bandwidth, latency))
        self._route_cache.clear()

    # -- link availability ------------------------------------------------------

    def fail_link(self, src: str, dst: str,
                  symmetric: bool = True) -> list[LinkSpec]:
        """Take the ``src -> dst`` link (and its reverse when *symmetric*)
        out of service.  Returns the specs that actually transitioned
        up→down, so callers can abort the flows crossing them.  Raises
        :class:`TopologyError` when the forward edge does not exist."""
        if not self._g.has_edge(src, dst):
            raise TopologyError(f"no direct link {src} -> {dst}")
        downed: list[LinkSpec] = []
        pairs = ((src, dst), (dst, src)) if symmetric else ((src, dst),)
        for a, b in pairs:
            if self._g.has_edge(a, b) and (a, b) not in self._down:
                self._down.add((a, b))
                downed.append(self._g.edges[a, b]["spec"])
        if downed:
            self._route_cache.clear()
        return downed

    def repair_link(self, src: str, dst: str,
                    symmetric: bool = True) -> list[LinkSpec]:
        """Return the link (and reverse when *symmetric*) to service.
        Returns the specs that actually transitioned down→up."""
        if not self._g.has_edge(src, dst):
            raise TopologyError(f"no direct link {src} -> {dst}")
        restored: list[LinkSpec] = []
        pairs = ((src, dst), (dst, src)) if symmetric else ((src, dst),)
        for a, b in pairs:
            if (a, b) in self._down:
                self._down.discard((a, b))
                restored.append(self._g.edges[a, b]["spec"])
        if restored:
            self._route_cache.clear()
        return restored

    def link_up(self, src: str, dst: str) -> bool:
        """True when the directed edge exists and is in service."""
        return self._g.has_edge(src, dst) and (src, dst) not in self._down

    @property
    def down_links(self) -> list[LinkSpec]:
        """Specs of every directed edge currently out of service."""
        return [self._g.edges[a, b]["spec"] for a, b in sorted(self._down)]

    # -- queries ------------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """All node names."""
        return list(self._g.nodes)

    @property
    def links(self) -> list[LinkSpec]:
        """All directed :class:`LinkSpec` edges."""
        return [data["spec"] for _, _, data in self._g.edges(data=True)]

    def has_node(self, name: str) -> bool:
        """True when *name* exists in the graph."""
        return self._g.has_node(name)

    def link(self, src: str, dst: str) -> LinkSpec:
        """The direct link ``src -> dst``; raises if absent."""
        try:
            return self._g.edges[src, dst]["spec"]
        except KeyError:
            raise TopologyError(f"no direct link {src} -> {dst}") from None

    def degree(self, name: str) -> int:
        """Outgoing link count of a node."""
        if not self._g.has_node(name):
            raise TopologyError(f"unknown node {name!r}")
        return self._g.out_degree(name)

    # -- routing ------------------------------------------------------------------

    def route(self, src: str, dst: str) -> list[str]:
        """Node sequence ``[src, ..., dst]`` minimizing latency (+hop eps)."""
        for n in (src, dst):
            if not self._g.has_node(n):
                raise TopologyError(f"unknown node {n!r}")
        if src == dst:
            return [src]
        per_src = self._route_cache.get(src)
        if per_src is None:
            # A weight of None hides the edge from dijkstra — out-of-service
            # links simply do not exist as far as routing is concerned.
            per_src = nx.single_source_dijkstra_path(
                self._g, src,
                weight=lambda u, v, d: (
                    None if (u, v) in self._down
                    else d["spec"].latency + self._HOP_EPS))
            self._route_cache[src] = per_src
        try:
            return per_src[dst]
        except KeyError:
            raise RoutingError(f"no route {src} -> {dst}") from None

    def route_links(self, src: str, dst: str) -> list[LinkSpec]:
        """The link sequence along :meth:`route` (empty when src == dst)."""
        path = self.route(src, dst)
        return [self._g.edges[a, b]["spec"] for a, b in zip(path, path[1:])]

    def path_latency(self, src: str, dst: str) -> float:
        """Total propagation latency along the route."""
        return sum(link.latency for link in self.route_links(src, dst))

    def bottleneck_bandwidth(self, src: str, dst: str) -> float:
        """Minimum link capacity along the route (inf for src == dst)."""
        links = self.route_links(src, dst)
        return min((l.bandwidth for l in links), default=float("inf"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Topology nodes={self._g.number_of_nodes()} links={self._g.number_of_edges()}>"


# -- canonical shapes --------------------------------------------------------------


def star(center: str, leaves: Sequence[str], bandwidth: float,
         latency: float = 0.01) -> Topology:
    """Bricks-style central model: every leaf talks through *center*."""
    if not leaves:
        raise ConfigurationError("star needs at least one leaf")
    topo = Topology()
    topo.add_node(center, kind="hub")
    for leaf in leaves:
        topo.add_node(leaf, kind="leaf")
        topo.add_link(leaf, center, bandwidth, latency)
    return topo


def ring(names: Sequence[str], bandwidth: float, latency: float = 0.01) -> Topology:
    """A bidirectional ring."""
    if len(names) < 3:
        raise ConfigurationError("ring needs at least three nodes")
    topo = Topology()
    for n in names:
        topo.add_node(n)
    for a, b in zip(names, list(names[1:]) + [names[0]]):
        topo.add_link(a, b, bandwidth, latency)
    return topo


def dumbbell(left: Sequence[str], right: Sequence[str], access_bw: float,
             bottleneck_bw: float, latency: float = 0.005) -> Topology:
    """Two clusters joined by one bottleneck link — congestion's fruit-fly."""
    if not left or not right:
        raise ConfigurationError("dumbbell needs nodes on both sides")
    topo = Topology()
    topo.add_node("Lhub", kind="router")
    topo.add_node("Rhub", kind="router")
    topo.add_link("Lhub", "Rhub", bottleneck_bw, latency)
    for n in left:
        topo.add_node(n)
        topo.add_link(n, "Lhub", access_bw, latency)
    for n in right:
        topo.add_node(n)
        topo.add_link(n, "Rhub", access_bw, latency)
    return topo


def tier_tree(tier_sizes: Sequence[int], bandwidths: Sequence[float],
              latency: float = 0.01, root: str = "T0") -> Topology:
    """MONARC-style tier model: T0 at the root, T1 children, T2 below...

    ``tier_sizes[k]`` is the number of tier-(k+1) centres *per* tier-k parent;
    ``bandwidths[k]`` is the capacity of tier-k -> tier-(k+1) links.
    Node names: ``T0``, ``T1.0``, ``T1.1``, ``T2.0.0`` ...
    """
    if len(tier_sizes) != len(bandwidths):
        raise ConfigurationError("tier_sizes and bandwidths must align")
    topo = Topology()
    topo.add_node(root, tier=0)
    parents: list[tuple[str, tuple[int, ...]]] = [(root, ())]
    for level, (fanout, bw) in enumerate(zip(tier_sizes, bandwidths), start=1):
        children: list[tuple[str, tuple[int, ...]]] = []
        for parent_name, path in parents:
            for c in range(fanout):
                cpath = path + (c,)
                name = f"T{level}." + ".".join(map(str, cpath))
                topo.add_node(name, tier=level)
                topo.add_link(parent_name, name, bw, latency)
                children.append((name, cpath))
        parents = children
    return topo


def eu_datagrid(site_names: Iterable[str] | None = None,
                wan_bandwidth: float = 2.5 * GBPS,
                lan_bandwidth: float = 10 * GBPS,
                latency: float = 0.02) -> Topology:
    """OptorSim's simplified EU DataGrid: sites on a shared WAN backbone.

    Each site has a LAN access link onto a backbone router; CERN is the
    default data source with a fatter access pipe.
    """
    names = list(site_names) if site_names is not None else [
        "CERN", "RAL", "IN2P3", "CNAF", "NIKHEF", "FZK", "PIC", "NDGF",
    ]
    if not names:
        raise ConfigurationError("eu_datagrid needs at least one site")
    topo = Topology()
    topo.add_node("WAN", kind="backbone")
    for i, site in enumerate(names):
        topo.add_node(site, kind="site")
        bw = lan_bandwidth if i == 0 else wan_bandwidth
        topo.add_link(site, "WAN", bw, latency)
    return topo
