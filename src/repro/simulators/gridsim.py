"""GridSim rebuilt: economy-driven brokering of task-farming applications.

Per the paper: "GridSim is a simulator developed by researchers from the
Gridbus project to investigate effective resource allocation techniques
based on computational economy ...  It provides a comprehensive facility
for creating different classes of heterogeneous resources ... (both time
and space shared) ...  GridSim focuses on Grid economy, where the
scheduling involves the notions of producers (resource owners), consumers
(end-users) and brokers discovering and allocating resources to users ...
mainly used to study cost-time optimization algorithms for scheduling task
farming applications on heterogeneous Grids, considering economy based
distributed resource management, dealing with deadline and budget
constraints."  Its design allows *several* brokers (vs SimGrid1's one).

:class:`GridSimModel` wires priced heterogeneous resources (time- or
space-shared — the GridSim machine taxonomy), one or more
:class:`~repro.middleware.economy.EconomyBroker` instances (multi-user
economy), and gridlet farms, exposing the deadline × budget sweep of
benchmark E10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..hosts.cpu import SpaceSharedMachine, TimeSharedMachine
from ..hosts.site import Grid, Site
from ..middleware.economy import EconomyBroker, ResourceOffer
from ..middleware.jobs import Job
from ..network.topology import Topology
from ..workloads.taskfarm import task_farm

__all__ = ["GridResourceSpec", "GridSimModel"]


@dataclass(frozen=True, slots=True)
class GridResourceSpec:
    """One priced Grid resource (GridSim's ``GridResource``)."""

    name: str
    rating: float          # MIPS per PE
    pes: int
    price_per_mi: float    # G$ per MI
    time_shared: bool = False

    def __post_init__(self) -> None:
        if self.rating <= 0 or self.pes < 1 or self.price_per_mi < 0:
            raise ConfigurationError(f"bad resource spec {self.name!r}")


#: A small heterogeneous testbed echoing the Nimrod-G / GridSim papers:
#: fast resources are expensive, slow ones cheap.
DEFAULT_RESOURCES = (
    GridResourceSpec("R0-cheap-slow", rating=200.0, pes=4, price_per_mi=1.0),
    GridResourceSpec("R1-mid", rating=500.0, pes=4, price_per_mi=3.0),
    GridResourceSpec("R2-fast", rating=1000.0, pes=2, price_per_mi=6.0),
    GridResourceSpec("R3-premium", rating=2000.0, pes=2, price_per_mi=12.0,
                     time_shared=True),
)


class GridSimModel:
    """Priced resources + economy brokers + gridlet farms."""

    def __init__(self, sim: Simulator,
                 resources: tuple[GridResourceSpec, ...] = DEFAULT_RESOURCES,
                 bandwidth: float = 1e8) -> None:
        if not resources:
            raise ConfigurationError("need at least one resource")
        self.sim = sim
        self.resources = resources
        topo = Topology()
        topo.add_node("gis-hub")
        sites = []
        for spec in resources:
            topo.add_link(spec.name, "gis-hub", bandwidth, 0.005)
            mk = TimeSharedMachine if spec.time_shared else SpaceSharedMachine
            sites.append(Site(sim, spec.name, machines=[
                mk(sim, pes=spec.pes, rating=spec.rating,
                   name=f"{spec.name}-m")]))
        self.grid = Grid(sim, topo, sites)
        self.offers = [ResourceOffer(s.name, s.price_per_mi) for s in resources]
        self.brokers: list[EconomyBroker] = []

    def new_broker(self, deadline: float, budget: float,
                   strategy: str = "time") -> EconomyBroker:
        """A user's broker (GridSim supports several concurrently)."""
        broker = EconomyBroker(self.sim, self.grid, self.offers,
                               deadline=deadline, budget=budget,
                               strategy=strategy)
        self.brokers.append(broker)
        return broker

    def farm(self, n: int, mean_length: float = 1000.0,
             deadline: float = float("inf"), budget: float = float("inf"),
             first_id: int = 0, seed_name: str = "farm") -> list[Job]:
        """A gridlet farm (heterogeneous lengths, GridSim's app class)."""
        return task_farm(self.sim.stream(seed_name), n,
                         mean_length=mean_length, deadline=deadline,
                         budget=budget, first_id=first_id)

    def run_dbc(self, n_gridlets: int, deadline: float, budget: float,
                strategy: str, mean_length: float = 1000.0) -> dict[str, float]:
        """One deadline-budget-constrained experiment; returns the summary."""
        broker = self.new_broker(deadline, budget, strategy)
        jobs = self.farm(n_gridlets, mean_length=mean_length,
                         deadline=deadline, budget=budget,
                         first_id=1000 * len(self.brokers))
        broker.submit_all(jobs)
        self.sim.run()
        return broker.summary()
