"""Bricks rebuilt: the central-model client/server scheduling simulator.

Per the paper: "Bricks was among the first simulation projects developed to
investigate different resource scheduling issues ... allows the simulation
of various behaviors: resource scheduling algorithms, programming modules
for scheduling, network topology of clients and servers in global computing
systems, and processing schemes for networks and servers ... Bricks uses a
model which the authors call the 'central model'.  In this simulation model
it is assumed that all the jobs are processed at a single site."  Its later
versions added disk/replica management; its scheduling unit monitors
servers and networks and *predicts* their availability (NWS-style).

:class:`BricksModel` composes: clients on a star topology generating jobs
with input/output payloads; time-shared servers carrying random background
load (the "global computing" environment); and a pluggable scheduling unit
(random / round-robin / load-aware / predictive — benchmark E11's axis).
The original's fixed component set is mirrored by ``runtime_components =
False`` in the taxonomy record: this model's topology is fixed at
construction, exactly the limitation the paper calls out for Bricks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Process
from ..hosts.cpu import TimeSharedMachine
from ..hosts.load import NetworkCrossTraffic, RandomBurstLoad
from ..hosts.site import Grid, Site
from ..network.topology import Topology
from ..network.flow import FlowNetwork

__all__ = ["BricksJob", "BricksModel", "BRICKS_SCHEDULERS"]

BRICKS_SCHEDULERS = ("random", "round-robin", "load-aware", "predictive")


@dataclass(slots=True)
class BricksJob:
    """A client request: ship input, compute, ship output back."""

    id: int
    client: str
    length: float
    input_bytes: float
    output_bytes: float
    created: float
    server: str = ""
    finished: float = math.nan

    @property
    def response_time(self) -> float:
        """Client-observed time from creation to result arrival."""
        return self.finished - self.created


class BricksModel:
    """The central model: clients → scheduling unit → servers.

    Parameters
    ----------
    n_clients, n_servers:
        Star leaves; all traffic crosses the hub (the "central" part).
    scheduler:
        One of :data:`BRICKS_SCHEDULERS`.
    background:
        If set, every server carries random burst load with this peak
        (the monitored/predicted environment Bricks models).
    """

    def __init__(self, sim: Simulator, n_clients: int = 8, n_servers: int = 4,
                 rating: float = 1000.0, pes: int = 4,
                 bandwidth: float = 1e8, scheduler: str = "predictive",
                 background: float | None = 0.6,
                 network_background_bytes: float | None = None,
                 job_rate: float = 1.0, mean_length: float = 2000.0,
                 mean_input: float = 1e6, mean_output: float = 1e5) -> None:
        if scheduler not in BRICKS_SCHEDULERS:
            raise ConfigurationError(
                f"unknown Bricks scheduler {scheduler!r}; "
                f"choose from {BRICKS_SCHEDULERS}")
        if n_clients < 1 or n_servers < 1:
            raise ConfigurationError("need at least one client and one server")
        self.sim = sim
        self.scheduler = scheduler
        self.job_rate = job_rate
        self.mean_length = mean_length
        self.mean_input = mean_input
        self.mean_output = mean_output
        self.clients = [f"client-{i}" for i in range(n_clients)]
        self.servers = [f"server-{i}" for i in range(n_servers)]
        topo = Topology()
        topo.add_node("hub", kind="hub")
        for n in self.clients + self.servers:
            topo.add_link(n, "hub", bandwidth, 0.005)
        sites = [Site(sim, c) for c in self.clients]
        self.machines: dict[str, TimeSharedMachine] = {}
        for s in self.servers:
            m = TimeSharedMachine(sim, pes=pes, rating=rating, name=f"{s}-cpu")
            self.machines[s] = m
            sites.append(Site(sim, s, machines=[m]))
        self.grid = Grid(sim, topo, sites)
        self.network: FlowNetwork = self.grid.network
        self.background = background
        self.network_background_bytes = network_background_bytes
        self.bg_injectors: list[RandomBurstLoad] = []
        self.cross_traffic: NetworkCrossTraffic | None = None
        self.monitor = Monitor("bricks")
        self._rr = 0
        self.completed: list[BricksJob] = []
        self._job_seq = 0

    # -- the scheduling unit -----------------------------------------------------

    def pick_server(self, job: BricksJob) -> str:
        """The Bricks scheduling unit: monitoring + optional prediction."""
        if self.scheduler == "random":
            return self.sim.stream("sched").choice(self.servers)
        if self.scheduler == "round-robin":
            s = self.servers[self._rr % len(self.servers)]
            self._rr += 1
            return s
        if self.scheduler == "load-aware":
            # ServerMonitor: current job count only (no speed correction)
            return min(self.servers,
                       key=lambda s: (self.machines[s].running, s))
        # predictive: NWS-style — predicted completion given current load
        # AND current background (the ServerPredictor + NetworkPredictor)
        return min(self.servers, key=lambda s: (
            self.machines[s].estimated_completion(job.length), s))

    # -- workload -------------------------------------------------------------------

    def start(self, horizon: float) -> None:
        """Launch job sources (and background bursts) until *horizon*.

        Background injectors get a 2x horizon so load keeps varying while
        the tail of the workload drains, but the event chain stays finite
        (an unbounded injector would keep ``run()`` from ever terminating).
        """
        if self.background is not None and not self.bg_injectors:
            for s in self.servers:
                self.bg_injectors.append(RandomBurstLoad(
                    self.sim, self.machines[s], self.sim.stream(f"bg-{s}"),
                    mean_gap=40.0, mean_burst=25.0, peak=self.background,
                    horizon=2.0 * horizon))
        if self.network_background_bytes is not None and self.cross_traffic is None:
            # the "processing schemes for networks" half of Bricks' model:
            # competing traffic the NetworkMonitor would be observing
            self.cross_traffic = NetworkCrossTraffic(
                self.sim, self.network, self.sim.stream("bricks-xt"),
                endpoints=self.clients + self.servers,
                mean_gap=5.0, mean_bytes=self.network_background_bytes,
                horizon=2.0 * horizon)
        for c in self.clients:
            Process(self.sim, self._client_body, c, horizon,
                    name=f"source-{c}")

    def _client_body(self, client: str, horizon: float):
        arr = self.sim.stream(f"arr-{client}")
        work = self.sim.stream(f"work-{client}")
        while self.sim.now < horizon:
            yield arr.exponential(1.0 / self.job_rate)
            if self.sim.now >= horizon:
                return
            self._job_seq += 1
            job = BricksJob(
                id=self._job_seq, client=client,
                length=work.exponential(self.mean_length),
                input_bytes=work.exponential(self.mean_input),
                output_bytes=work.exponential(self.mean_output),
                created=self.sim.now)
            Process(self.sim, self._job_body, job, name=f"job-{job.id}")

    def _job_body(self, job: BricksJob):
        job.server = self.pick_server(job)
        # ship input client -> server (crosses the hub)
        if job.input_bytes > 0:
            yield self.network.transfer(job.client, job.server, job.input_bytes)
        # process on the (possibly loaded) time-shared server
        run = self.machines[job.server].submit(job)
        yield run
        # ship result back
        if job.output_bytes > 0:
            yield self.network.transfer(job.server, job.client, job.output_bytes)
        job.finished = self.sim.now
        self.completed.append(job)
        self.monitor.tally("response_time").record(job.response_time)
        self.monitor.counter(f"jobs@{job.server}").increment(self.sim.now)

    # -- results ------------------------------------------------------------------

    @property
    def mean_response_time(self) -> float:
        """Mean response time over completed jobs — the E11 metric."""
        return self.monitor.tally("response_time").mean

    def run(self, horizon: float) -> "BricksModel":
        """Convenience: start sources, run to quiescence, return self."""
        self.start(horizon)
        self.sim.run()
        return self
