"""ChicagoSim rebuilt: data-location scheduling with push replication.

Per the paper: "ChicagoSim ... is a modular and extensible discrete event
Data Grid simulator built on top of the C-based simulation language Parsec.
It is designed to investigate scheduling strategies in conjunction with
data location.  Its architecture includes a configurable number of
schedulers rather than one Resource Broker ...  It also allows for data
replication but with a 'push' model in which, when a site contains a
popular data file, it will replicate it to remote sites ...  A distributed
system in ChicagoSim is modeled as a collection of sites.  Each site has a
certain number of processors of equal capacity and limited storage."

:class:`ChicagoSimModel` reproduces the Ranganathan/Foster evaluation grid:
a set of equal-capacity sites with bounded storage; **external schedulers**
(one per submitting user, configurable count — not a single broker)
choosing a site per job by one of the data-location policies; a local FCFS
scheduler per site; and a **dataset scheduler** running the push strategy.
Benchmark E8 crosses job-placement policy × data strategy, the paper's own
experimental design.
"""

from __future__ import annotations

import math

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..hosts.cpu import SpaceSharedMachine
from ..hosts.site import Grid, Site
from ..hosts.storage import Disk
from ..middleware.broker import GridRunner
from ..middleware.catalog import ReplicaCatalog
from ..middleware.jobs import Job
from ..middleware.replication import NoReplication, PushReplication
from ..middleware.scheduling import (
    DataPresentScheduler,
    LeastLoadedScheduler,
    LocalScheduler,
    RandomScheduler,
    TaskScheduler,
)
from ..network.topology import Topology
from ..network.transfer import FileSpec
from ..workloads.access import zipf_requests

__all__ = ["ChicagoSimModel", "JOB_POLICIES", "DATA_POLICIES"]

JOB_POLICIES = ("random", "least-loaded", "data-present", "local")
DATA_POLICIES = ("none", "push")


class ChicagoSimModel:
    """Sites of equal processors + limited storage; schedulers × data policy.

    Parameters
    ----------
    n_sites, pes, rating:
        "Each site has a certain number of processors of equal capacity".
    storage:
        Per-site storage bound (bytes) — the "limited storage".
    n_schedulers:
        Number of external schedulers (users); jobs round-robin across
        them, each applies the same policy independently.
    job_policy, data_policy:
        The two evaluation axes.
    """

    def __init__(self, sim: Simulator, n_sites: int = 5, pes: int = 4,
                 rating: float = 1000.0, storage: float = 2e10,
                 n_datasets: int = 30, dataset_size: float = 1e9,
                 n_schedulers: int = 3, job_policy: str = "data-present",
                 data_policy: str = "push", bandwidth: float = 1e8,
                 push_threshold: int = 3, push_fanout: int = 2) -> None:
        if job_policy not in JOB_POLICIES:
            raise ConfigurationError(
                f"unknown job policy {job_policy!r}; choose from {JOB_POLICIES}")
        if data_policy not in DATA_POLICIES:
            raise ConfigurationError(
                f"unknown data policy {data_policy!r}; choose from {DATA_POLICIES}")
        if n_schedulers < 1:
            raise ConfigurationError("n_schedulers must be >= 1")
        self.sim = sim
        self.job_policy = job_policy
        self.data_policy = data_policy
        names = [f"site-{i}" for i in range(n_sites)]
        topo = Topology()
        topo.add_node("net")
        sites = []
        for n in names:
            topo.add_link(n, "net", bandwidth, 0.002)
            sites.append(Site(
                sim, n,
                machines=[SpaceSharedMachine(sim, pes=pes, rating=rating,
                                             name=f"{n}-cpu")],
                disk=Disk(sim, storage, name=f"{n}-store")))
        self.grid = Grid(sim, topo, sites)
        self.catalog = ReplicaCatalog(self.grid)
        # Datasets start scattered round-robin across sites (the paper's
        # initial placement), never evicted at their home (master copies).
        self.datasets = [FileSpec(f"ds-{i:03d}", dataset_size)
                         for i in range(n_datasets)]
        for i, ds in enumerate(self.datasets):
            home = self.grid.site(names[i % n_sites])
            home.store_file(ds)
            self.catalog.register(ds, home.name)
        if data_policy == "push":
            self.strategy = PushReplication(
                sim, self.grid, self.catalog, threshold=push_threshold,
                fanout=push_fanout)
        else:
            self.strategy = NoReplication(sim, self.grid, self.catalog)
        self.schedulers = [self._make_policy(job_policy, k)
                           for k in range(n_schedulers)]
        self.runners = [GridRunner(sim, self.grid, scheduler=s,
                                   catalog=self.catalog,
                                   replication=self.strategy)
                        for s in self.schedulers]

    def _make_policy(self, policy: str, k: int) -> TaskScheduler:
        if policy == "random":
            return RandomScheduler(self.sim.stream(f"extsched-{k}"))
        if policy == "least-loaded":
            return LeastLoadedScheduler()
        if policy == "data-present":
            return DataPresentScheduler()
        return LocalScheduler(f"site-{k % len(self.grid.sites)}")

    # -- workload ------------------------------------------------------------------

    def submit_jobs(self, n_jobs: int, mean_length: float = 2000.0,
                    inter_arrival: float = 5.0, zipf_s: float = 1.0) -> list[Job]:
        """Zipf-popular single-dataset jobs, spread over the schedulers."""
        arr = self.sim.stream("chi-arrivals")
        lengths = self.sim.stream("chi-lengths")
        picks = zipf_requests(self.sim.stream("chi-popularity"),
                              len(self.datasets), n_jobs, s=zipf_s)
        jobs = []
        t = 0.0
        for i in range(n_jobs):
            jobs.append(Job(
                id=i, submitted=t,
                length=lengths.normal(mean_length, 0.3 * mean_length,
                                      floor=0.1 * mean_length),
                input_files=(self.datasets[picks[i]],)))
            t += arr.exponential(inter_arrival)
        # round-robin across the external schedulers
        for k, runner in enumerate(self.runners):
            runner.submit_all(jobs[k::len(self.runners)])
        return jobs

    # -- results ------------------------------------------------------------------

    @property
    def completed(self) -> list[Job]:
        """Completed jobs across all external schedulers."""
        return [j for r in self.runners for j in r.completed]

    @property
    def mean_turnaround(self) -> float:
        """Mean turnaround over all completed jobs."""
        vals = [j.turnaround for j in self.completed]
        return sum(vals) / len(vals) if vals else math.nan

    def remote_fraction(self) -> float:
        """Fraction of input reads that crossed the network."""
        fetched = sum(r.monitor.counter("remote_fetches").count
                      for r in self.runners)
        total = sum(r.monitor.counter("input_reads").count
                    for r in self.runners)
        return fetched / total if total else math.nan

    def run(self, n_jobs: int = 100, **kw) -> "ChicagoSimModel":
        self.submit_jobs(n_jobs, **kw)
        self.sim.run()
        return self
