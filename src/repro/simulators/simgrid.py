"""SimGrid rebuilt: agents, channels, and scheduling-algorithm evaluation.

Per the paper: "SimGrid is a simulation toolkit that provides core
functionalities for the evaluation of scheduling algorithms in distributed
applications in a heterogeneous, computational distributed environment ...
SimGrid describes scheduling algorithms in terms of agent entities that
make scheduling decisions.  These agents interact by sending and receiving
events via communication channels.  SimGrid can be used to simulate compile
time and running scheduling algorithms."  The paper also notes SimGrid
"does not provide any of the system support facilities" (no middleware
stack of its own) and that multi-broker Agents arrived only with SimGrid2.

Two layers here:

* the **agent API** (:class:`Agent`, :class:`SGTask`, channels as typed
  mailboxes) — SimGrid1's MSG-flavoured programming model on our kernel;
* the **scheduling evaluation harness**
  (:meth:`SimGridModel.run_compile_time`, :meth:`SimGridModel.run_runtime`)
  — the compile-time (HEFT plan, all decisions pre-execution) vs runtime
  (ready-task dispatch under current load) comparison of benchmark E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.process import Process, ProcessBody
from ..core.resources import Store
from ..hosts.cpu import Machine, SpaceSharedMachine
from ..hosts.load import RandomBurstLoad
from ..hosts.site import Grid, Site
from ..middleware.broker import DagRunner
from ..middleware.jobs import Dag
from ..middleware.scheduling import (
    HeftScheduler,
    PredictiveScheduler,
    SchedulingContext,
)
from ..network.flow import FlowNetwork
from ..network.topology import Topology

__all__ = ["SGTask", "Agent", "SimGridModel"]


@dataclass(slots=True)
class SGTask:
    """MSG-style task: some computation (MI) and some payload (bytes)."""

    name: str
    compute: float = 0.0
    data: float = 0.0
    sender: str = ""

    def __post_init__(self) -> None:
        if self.compute < 0 or self.data < 0:
            raise ConfigurationError(f"task {self.name!r}: negative cost")


class Agent:
    """A SimGrid agent: a process bound to a host, talking via channels.

    ``body(agent)`` is a generator; inside it, use ``yield agent.execute(t)``
    to burn a task's compute on the local machine, ``agent.send(dst, task,
    channel)`` / ``yield agent.recv(channel)`` to communicate (the transfer
    charges the network for ``task.data`` bytes first).
    """

    def __init__(self, model: "SimGridModel", name: str, host: str,
                 body: Callable[["Agent"], ProcessBody]) -> None:
        self.model = model
        self.name = name
        self.host = host
        self._mailboxes: dict[int, Store] = {}
        self.process = Process(model.sim, body, self, name=f"agent-{name}")

    def _mailbox(self, channel: int) -> Store:
        mb = self._mailboxes.get(channel)
        if mb is None:
            mb = Store(self.model.sim, name=f"{self.name}-ch{channel}")
            self._mailboxes[channel] = mb
        return mb

    def execute(self, task: SGTask):
        """Waitable: run the task's computation on this agent's host."""
        if task.compute <= 0:
            raise ConfigurationError(f"task {task.name!r} has no computation")
        return self.model.machine(self.host).submit(task.compute)

    def send(self, dst: str, task: SGTask, channel: int = 0) -> None:
        """Fire-and-forget: payload crosses the network, then is mailboxed."""
        task.sender = self.name
        target = self.model.agent(dst)

        def deliver(_h=None) -> None:
            target._mailbox(channel).put(task)

        if task.data > 0 and self.host != target.host:
            h = self.model.network.transfer(self.host, target.host, task.data)
            h._subscribe(deliver)
        else:
            self.model.sim.schedule(0.0, deliver, label=f"msg:{task.name}")

    def recv(self, channel: int = 0):
        """Waitable: the next task arriving on *channel*."""
        return self._mailbox(channel).get()


class SimGridModel:
    """Heterogeneous platform + agent registry + scheduling harness.

    Parameters
    ----------
    host_ratings:
        MIPS of each host (one space-shared single-PE machine per host —
        SimGrid1's timeshared-host abstraction simplified to its
        scheduling-relevant core).
    bandwidth, latency:
        Uniform full-mesh interconnect.
    background_peak:
        If set, every host carries random burst load — the "running
        scheduling algorithms" environment where compile-time plans rot.
    """

    def __init__(self, sim: Simulator, host_ratings: dict[str, float],
                 bandwidth: float = 1e8, latency: float = 0.005,
                 pes: int = 1, background_peak: float | None = None,
                 background_horizon: float = 10_000.0) -> None:
        if not host_ratings:
            raise ConfigurationError("need at least one host")
        self.sim = sim
        topo = Topology()
        names = sorted(host_ratings)
        for n in names:
            topo.add_node(n)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                topo.add_link(a, b, bandwidth, latency)
        self._machines: dict[str, Machine] = {}
        sites = []
        for n in names:
            m = SpaceSharedMachine(sim, pes=pes, rating=host_ratings[n],
                                   name=f"{n}-cpu")
            self._machines[n] = m
            sites.append(Site(sim, n, machines=[m]))
        self.grid = Grid(sim, topo, sites)
        self.network: FlowNetwork = self.grid.network
        self._agents: dict[str, Agent] = {}
        self.bg_injectors = []
        if background_peak is not None:
            # bounded horizon: an unbounded injector would keep run() from
            # ever draining the event queue
            for n in names:
                self.bg_injectors.append(RandomBurstLoad(
                    sim, self._machines[n], sim.stream(f"sg-bg-{n}"),
                    mean_gap=30.0, mean_burst=20.0, peak=background_peak,
                    horizon=background_horizon))

    def machine(self, host: str) -> Machine:
        """The machine backing *host* (ConfigurationError if unknown)."""
        try:
            return self._machines[host]
        except KeyError:
            raise ConfigurationError(f"unknown host {host!r}") from None

    # -- agent layer ---------------------------------------------------------------

    def spawn(self, name: str, host: str,
              body: Callable[[Agent], ProcessBody]) -> Agent:
        """Create and start an agent on *host*."""
        if name in self._agents:
            raise ConfigurationError(f"duplicate agent name {name!r}")
        self.machine(host)  # validates host
        agent = Agent(self, name, host, body)
        self._agents[name] = agent
        return agent

    def agent(self, name: str) -> Agent:
        """A spawned agent by name (ConfigurationError if unknown)."""
        try:
            return self._agents[name]
        except KeyError:
            raise ConfigurationError(f"unknown agent {name!r}") from None

    # -- scheduling harness ------------------------------------------------------------

    def run_compile_time(self, dag: Dag) -> float:
        """HEFT-plan the DAG, execute it, return the makespan."""
        ctx = SchedulingContext(self.grid)
        plan = HeftScheduler().plan(dag, ctx)
        runner = DagRunner(self.sim, self.grid, dag, plan=plan)
        runner.start()
        self.sim.run()
        return runner.makespan

    def run_runtime(self, dag: Dag) -> float:
        """Dispatch each ready task to the best-predicted host *now*."""
        runner = DagRunner(self.sim, self.grid, dag,
                           scheduler=PredictiveScheduler())
        runner.start()
        self.sim.run()
        return runner.makespan

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimGridModel hosts={len(self._machines)} agents={len(self._agents)}>"
