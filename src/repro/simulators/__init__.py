"""The six surveyed simulators, rebuilt as models on the common kernel.

Each module reproduces the design the paper attributes to the original
instrument (see each module's docstring for the exact quoted description):

=====================  ===========================================================
module                 original & focus
=====================  ===========================================================
:mod:`.bricks`         Bricks — central model, scheduling with monitoring+prediction
:mod:`.optorsim`       OptorSim — EU DataGrid, pull-replication optimizers
:mod:`.simgrid`        SimGrid — agents/channels, compile-time vs runtime scheduling
:mod:`.gridsim`        GridSim — computational economy, deadline/budget brokering
:mod:`.chicagosim`     ChicagoSim — data-location scheduling, push replication
:mod:`.monarc`         MONARC 2 — tier model, activities, data replication agent
=====================  ===========================================================
"""

from .bricks import BRICKS_SCHEDULERS, BricksJob, BricksModel
from .chicagosim import DATA_POLICIES, JOB_POLICIES, ChicagoSimModel
from .gridsim import DEFAULT_RESOURCES, GridResourceSpec, GridSimModel
from .monarc import MonarcModel, RegionalCentre, StudyResult
from .optorsim import OPTIMIZERS, OptorJob, OptorSimModel
from .simgrid import Agent, SGTask, SimGridModel

__all__ = [
    "BricksModel",
    "BricksJob",
    "BRICKS_SCHEDULERS",
    "OptorSimModel",
    "OptorJob",
    "OPTIMIZERS",
    "SimGridModel",
    "Agent",
    "SGTask",
    "GridSimModel",
    "GridResourceSpec",
    "DEFAULT_RESOURCES",
    "ChicagoSimModel",
    "JOB_POLICIES",
    "DATA_POLICIES",
    "MonarcModel",
    "RegionalCentre",
    "StudyResult",
]
