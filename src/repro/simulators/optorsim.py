"""OptorSim rebuilt: replication optimization on an EU-DataGrid-style grid.

Per the paper: "OptorSim is a Data Grid simulator ... developed by a team
of researchers working on WorkPackage 2 of the European DataGrid project,
which was responsible for replica management and optimization ...  The
objective of OptorSim is to investigate the stability and transient
behavior of replication optimization methods ...  Given a Grid topology and
resources, a set of jobs to be executed and an optimization strategy as
input, OptorSim runs a number of Grid jobs on the simulated Grid" using a
**pull** model of replication.

:class:`OptorSimModel` reproduces the evaluation loop: sites with a
Computing Element (CE) and Storage Element (SE) around a WAN; master files
seeded at CERN; jobs walk their fileset with one of OptorSim's four access
patterns (sequential / random / unitary walk / Gaussian walk, plus Zipf);
each access either hits the local SE or pulls from the best replica, with
the optimizer (:mod:`repro.middleware.replication` pull strategies)
deciding what to keep.  The headline metric is mean job time per optimizer
— benchmark E8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Process
from ..hosts.cpu import SpaceSharedMachine
from ..hosts.site import Grid, Site
from ..hosts.storage import Disk
from ..middleware.catalog import ReplicaCatalog
from ..middleware.replication import (
    EconomicReplication,
    LfuReplication,
    LruReplication,
    NoReplication,
    ReplicationStrategy,
)
from ..network.topology import GBPS, eu_datagrid
from ..network.transfer import FileSpec
from ..workloads.access import ACCESS_PATTERNS

__all__ = ["OptorJob", "OptorSimModel", "OPTIMIZERS", "BROKER_POLICIES"]

#: Pull-optimizer registry, keyed as OptorSim's papers name them.
OPTIMIZERS = {
    "none": NoReplication,
    "lru": LruReplication,
    "lfu": LfuReplication,
    "economic": EconomicReplication,
}

#: Resource-broker site-selection policies from the OptorSim evaluations:
#: random placement, shortest CE queue, and minimal *access cost* (the sum
#: of estimated transfer times for the job's files from their best replicas).
BROKER_POLICIES = ("random", "queue-length", "access-cost")


@dataclass(slots=True)
class OptorJob:
    """One data-intensive grid job: a walk over file indices."""

    id: int
    site: str
    file_indices: list[float] | list[int]
    compute_per_file: float
    created: float
    finished: float = math.nan
    remote_reads: int = 0
    local_reads: int = 0

    @property
    def duration(self) -> float:
        """Job wall time from creation to completion."""
        return self.finished - self.created


class OptorSimModel:
    """The OptorSim evaluation harness.

    Parameters
    ----------
    optimizer:
        One of :data:`OPTIMIZERS`.
    access_pattern:
        One of :data:`~repro.workloads.access.ACCESS_PATTERNS`.
    n_files, file_size:
        The master dataset, seeded at the first site (CERN) whose SE is
        protected from eviction (the master store never loses data).
    se_capacity:
        Per-worker-site SE size in bytes; the replication pressure knob.
    """

    def __init__(self, sim: Simulator, optimizer: str = "lru",
                 access_pattern: str = "zipf", n_sites: int = 6,
                 n_files: int = 40, file_size: float = 1e9,
                 se_capacity: float = 1e10, files_per_job: int = 8,
                 compute_per_file: float = 500.0, pes: int = 2,
                 rating: float = 1000.0, wan_bandwidth: float = 2.5 * GBPS,
                 disk_rate: float = 1e9, broker: str = "random") -> None:
        if optimizer not in OPTIMIZERS:
            raise ConfigurationError(
                f"unknown optimizer {optimizer!r}; choose from {sorted(OPTIMIZERS)}")
        if access_pattern not in ACCESS_PATTERNS:
            raise ConfigurationError(
                f"unknown access pattern {access_pattern!r}")
        if broker not in BROKER_POLICIES:
            raise ConfigurationError(
                f"unknown broker policy {broker!r}; choose from {BROKER_POLICIES}")
        if n_sites < 1 or n_files < 1 or files_per_job < 1:
            raise ConfigurationError("n_sites, n_files, files_per_job must be >= 1")
        self.sim = sim
        self.optimizer_name = optimizer
        self.access_pattern = access_pattern
        self.broker = broker
        self.files_per_job = files_per_job
        self.compute_per_file = compute_per_file
        site_names = ["CERN"] + [f"site-{i}" for i in range(n_sites)]
        # SE disks are RAID-class (default 1 GB/s): a local hit must beat a
        # WAN fetch or no replication strategy could ever pay off.
        topo = eu_datagrid(site_names, wan_bandwidth=wan_bandwidth)
        sites = [Site(sim, "CERN", disk=Disk(sim, 1e15, name="CERN-SE",
                                             read_rate=disk_rate,
                                             write_rate=disk_rate))]
        self.worker_names = site_names[1:]
        self.machines = {}
        for name in self.worker_names:
            m = SpaceSharedMachine(sim, pes=pes, rating=rating, name=f"{name}-CE")
            self.machines[name] = m
            sites.append(Site(sim, name, machines=[m],
                              disk=Disk(sim, se_capacity, name=f"{name}-SE",
                                        read_rate=disk_rate,
                                        write_rate=disk_rate)))
        self.grid = Grid(sim, topo, sites)
        self.catalog = ReplicaCatalog(self.grid)
        self.files = [FileSpec(f"lfn-{i:04d}", file_size) for i in range(n_files)]
        for f in self.files:
            self.grid.site("CERN").store_file(f)
            self.catalog.register(f, "CERN")
        self.strategy: ReplicationStrategy = OPTIMIZERS[optimizer](
            sim, self.grid, self.catalog, protected={"CERN"})
        self.monitor = Monitor("optorsim")
        self.completed: list[OptorJob] = []
        #: jobs dispatched to a site and not yet finished (staging included)
        self._outstanding: dict[str, int] = {n: 0 for n in self.worker_names}

    # -- workload ---------------------------------------------------------------

    def select_site(self, indices) -> str:
        """The Resource Broker: place a job per the configured policy."""
        if self.broker == "random":
            return self.sim.stream("optor-placement").choice(self.worker_names)
        if self.broker == "queue-length":
            # outstanding work at the site, staging included — the CE queue
            # alone is blind to jobs still waiting on their files
            return min(self.worker_names,
                       key=lambda n: (self._outstanding[n], n))
        # access-cost: estimated total staging time for the job's fileset
        topo = self.grid.topology

        def cost(site: str) -> tuple[float, str]:
            total = 0.0
            for idx in indices:
                f = self.files[int(idx)]
                if self.grid.site(site).has_file(f.name):
                    continue
                src = self.catalog.best_replica(f.name, site)
                total += (f.size / topo.bottleneck_bandwidth(src, site)
                          + topo.path_latency(src, site))
            return (total, site)

        return min(self.worker_names, key=cost)

    def submit_jobs(self, n_jobs: int, inter_arrival: float = 10.0) -> None:
        """Poisson-submit *n_jobs*, placed by the broker policy."""
        arr = self.sim.stream("optor-arrivals")
        pattern_stream = self.sim.stream("optor-pattern")
        pattern_fn = ACCESS_PATTERNS[self.access_pattern]
        t = 0.0
        for i in range(n_jobs):
            indices = pattern_fn(pattern_stream, len(self.files),
                                 self.files_per_job)
            job = OptorJob(id=i, site="", file_indices=indices,
                           compute_per_file=self.compute_per_file, created=t)
            self.sim.schedule_at(t, self._place_and_start, job)
            t += arr.exponential(inter_arrival)

    def _place_and_start(self, job: OptorJob) -> None:
        # Placement happens at submission time so queue-length and
        # access-cost policies see the *current* grid state.
        job.site = self.select_site(job.file_indices)
        self._outstanding[job.site] += 1
        Process(self.sim, self._job_body, job)

    def _job_body(self, job: OptorJob):
        job.created = self.sim.now
        site = self.grid.site(job.site)
        for idx in job.file_indices:
            f = self.files[int(idx)]
            self.strategy.on_access(f.name, job.site)
            if site.has_file(f.name):
                job.local_reads += 1
                site.disk.touch(f.name)
                yield site.disk.read(f.name)
            else:
                job.remote_reads += 1
                src = self.catalog.best_replica(f.name, job.site)
                yield self.grid.transfers.fetch(f, src, job.site)
                self.monitor.counter("remote_fetches").increment(self.sim.now)
                self.monitor.tally("remote_bytes").record(f.size)
                self.strategy.on_fetch(f, src, job.site)
            # process this file's share of the job
            yield self.machines[job.site].submit(job.compute_per_file)
        job.finished = self.sim.now
        self._outstanding[job.site] -= 1
        self.completed.append(job)
        self.monitor.tally("job_time").record(job.duration)

    # -- results -------------------------------------------------------------------

    @property
    def mean_job_time(self) -> float:
        """Mean completed-job duration — the headline E8 metric."""
        return self.monitor.tally("job_time").mean

    def remote_fraction(self) -> float:
        """Fraction of file reads that crossed the WAN."""
        remote = sum(j.remote_reads for j in self.completed)
        total = sum(j.remote_reads + j.local_reads for j in self.completed)
        return remote / total if total else math.nan

    def run(self, n_jobs: int = 100, inter_arrival: float = 10.0) -> "OptorSimModel":
        """Convenience: submit, run to quiescence, return self."""
        self.submit_jobs(n_jobs, inter_arrival)
        self.sim.run()
        return self
