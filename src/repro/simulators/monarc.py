"""MONARC 2 rebuilt: the process-oriented tier-model simulator.

Per the paper: "Its simulation model is based on the characteristics of the
LHC physics experiments, and is organized in the form of a hierarchy of
different sites that are grouped into levels called tiers ...  MONARC 2 is
built based on a process oriented approach for discrete event simulation
... Threaded objects or 'Active Objects' ... allow a natural way to map the
specific behavior of distributed data processing into the simulation
program ...  The largest [component] is the regional center, which contains
a farm of processing nodes (CPU units), database servers and mass storage
units, as well as one or more local and wide area networks.  Another set of
components model the behavior of the applications ... the 'Users' or
'Activity' objects which are used to generate data processing jobs based on
different scenarios.  The job is another basic component ... scheduled for
execution on a CPU unit by a 'Job Scheduler' object."

Everything here is built in that style: regional centres are resource
bundles; **Activities are processes** (:class:`~repro.core.process.Process`
generators) that produce files or jobs; the **data replication agent**
(:class:`~repro.middleware.replication.DataReplicationAgent`) streams T0
output to the T1 centres.  The model's signature experiment — the
Legrand 2005 T0/T1 study behind benchmark E5 — is packaged as
:meth:`MonarcModel.run_t0_t1_study`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Process
from ..hosts.cpu import SpaceSharedMachine
from ..hosts.site import Grid, Site
from ..hosts.storage import Disk, MassStorage
from ..middleware.catalog import ReplicaCatalog
from ..middleware.replication import DataReplicationAgent
from ..network.topology import GBPS, Topology
from ..workloads.lhc import ATLAS_2005, CMS_2005, ExperimentSpec, production_schedule

__all__ = ["RegionalCentre", "MonarcModel", "StudyResult"]


@dataclass(slots=True)
class RegionalCentre:
    """One tier centre: CPU farm + database disk + mass storage."""

    site: Site
    tier: int

    @property
    def name(self) -> str:
        """The centre's site name (``T0``, ``T1.0``...)."""
        return self.site.name


@dataclass(slots=True)
class StudyResult:
    """Outcome of one T0/T1 replication study configuration."""

    uplink_gbps: float
    agent_enabled: bool
    produced_files: int
    replicated_files: int
    final_backlog_files: int
    peak_backlog_files: int
    mean_transfer_time: float
    backlog_series: list[tuple[float, float]]

    @property
    def diverged(self) -> bool:
        """Backlog still growing at the end — capacity insufficient."""
        return self.final_backlog_files > 0.5 * self.peak_backlog_files \
            and self.peak_backlog_files > 10


class MonarcModel:
    """Tier-model grid with activities, a job scheduler, and the agent.

    Topology matches the real CERN layout the study assumed: T0 reaches
    the WAN through **one shared uplink** (the 2.5 Gbps under test); each
    T1 has an ample private access link, so the uplink is the only
    possible bottleneck.
    """

    def __init__(self, sim: Simulator, n_tier1: int = 3,
                 uplink_gbps: float = 2.5, t1_link_gbps: float = 10.0,
                 t0_pes: int = 64, t1_pes: int = 32, rating: float = 1000.0,
                 agent_enabled: bool = True, agent_streams: int = 8,
                 n_tier2_per_t1: int = 0, t2_link_gbps: float = 1.0,
                 t2_pes: int = 8) -> None:
        if n_tier1 < 1:
            raise ConfigurationError("need at least one Tier-1 centre")
        if n_tier2_per_t1 < 0:
            raise ConfigurationError("n_tier2_per_t1 must be >= 0")
        if uplink_gbps <= 0 or t1_link_gbps <= 0 or t2_link_gbps <= 0:
            raise ConfigurationError("link capacities must be > 0")
        self.sim = sim
        self.agent_enabled = agent_enabled
        topo = Topology()
        topo.add_node("WAN", kind="backbone")
        topo.add_link("T0", "WAN", uplink_gbps * GBPS, 0.005)
        t1_names = [f"T1.{i}" for i in range(n_tier1)]
        for n in t1_names:
            topo.add_link(n, "WAN", t1_link_gbps * GBPS, 0.01)
        # T2 centres hang off their T1 parent directly (the tier hierarchy:
        # a T2 reaches T0 only *through* its region's T1).
        tier_specs: list[tuple[str, int, int]] = \
            [("T0", 0, t0_pes)] + [(n, 1, t1_pes) for n in t1_names]
        self.t2_names: list[str] = []
        for parent in t1_names:
            for k in range(n_tier2_per_t1):
                name = f"T2.{parent.split('.')[1]}.{k}"
                topo.add_link(name, parent, t2_link_gbps * GBPS, 0.005)
                tier_specs.append((name, 2, t2_pes))
                self.t2_names.append(name)
        self.centres: dict[str, RegionalCentre] = {}
        sites = []
        for name, tier, pes in tier_specs:
            site = Site(
                self.sim, name, tier=tier,
                machines=[SpaceSharedMachine(sim, pes=pes, rating=rating,
                                             name=f"{name}-farm")],
                disk=Disk(sim, 1e16, read_rate=1e9, write_rate=1e9,
                          name=f"{name}-db"))
            sites.append(site)
            self.centres[name] = RegionalCentre(site, tier)
        self.tape = MassStorage(sim, name="T0-mss")
        self.grid = Grid(sim, topo, sites, max_concurrent_transfers=agent_streams)
        self.catalog = ReplicaCatalog(self.grid)
        self.t1_names = t1_names
        self.agent: DataReplicationAgent | None = None
        if agent_enabled:
            self.agent = DataReplicationAgent(
                sim, self.grid, self.catalog, source="T0", targets=t1_names,
                max_in_flight=agent_streams)
        self.monitor = Monitor("monarc")
        self.produced = []
        self._pull_backlogs: dict[str, int] = {n: 0 for n in t1_names}

    # -- activities (active objects) ------------------------------------------------

    def production_activity(self, experiments: list[ExperimentSpec],
                            horizon: float) -> None:
        """The T0 'Activity': write RAW files, archive, announce to the agent."""
        schedule = production_schedule(
            self.sim.stream("monarc-production"), experiments, horizon)

        def activity():
            for t, f in schedule:
                yield max(0.0, t - self.sim.now)
                self.centres["T0"].site.store_file(f)
                self.tape.store(f)  # archival copy
                self.catalog.register(f, "T0")
                self.produced.append(f)
                self.monitor.counter("files_produced").increment(self.sim.now)
                if self.agent is not None:
                    self.agent.announce(f)
                else:
                    # pull mode: every T1 must fetch on its own
                    for n in self.t1_names:
                        self._pull_backlogs[n] += 1
                        ticket = self.grid.transfers.fetch(f, "T0", n)
                        ticket._subscribe(
                            lambda _t, f=f, n=n: self._pulled(f, n))

        Process(self.sim, activity, name="production-activity")

    def _pulled(self, f, n: str) -> None:
        self._pull_backlogs[n] -= 1
        disk = self.centres[n].site.disk
        if not disk.has(f.name):
            disk.store(f)
            self.catalog.register(f, n)

    def analysis_activity(self, centre: str, n_jobs: int,
                          mi_per_byte: float = 1e-5,
                          think_time: float = 50.0) -> None:
        """A T1 'Users' object: analysis jobs over whatever data is local."""
        if centre not in self.centres:
            raise ConfigurationError(f"unknown centre {centre!r}")

        def activity():
            stream = self.sim.stream(f"analysis-{centre}")
            site = self.centres[centre].site
            done = 0
            dry_polls = 0
            while done < n_jobs:
                yield stream.exponential(think_time)
                if not self.produced:
                    # production has not started yet: poll again (bounded,
                    # so an analysis-only configuration still terminates)
                    dry_polls += 1
                    if dry_polls > 1000:
                        return
                    continue
                done += 1
                f = self.produced[stream.zipf(len(self.produced), 1.1)]
                if not site.has_file(f.name):
                    src = self.catalog.best_replica(f.name, centre)
                    yield self.grid.transfers.fetch(f, src, centre)
                    self.monitor.counter("analysis_remote_reads").increment(self.sim.now)
                else:
                    yield site.disk.read(f.name)
                job_run = yield site.submit(max(f.size * mi_per_byte, 1.0))
                self.monitor.tally("analysis_turnaround").record(job_run.turnaround)

        Process(self.sim, activity, name=f"analysis-{centre}")

    # -- instrumentation --------------------------------------------------------------

    def replication_backlog(self) -> int:
        """Files produced but not yet landed at every T1."""
        if self.agent is not None:
            return self.agent.total_backlog + sum(
                self.agent._in_flight.values())  # noqa: SLF001
        return sum(self._pull_backlogs.values())

    def sample_backlog(self, period: float, horizon: float) -> list[tuple[float, float]]:
        """Arrange periodic backlog sampling; returns the live series list."""
        series: list[tuple[float, float]] = []

        def sampler():
            while self.sim.now < horizon:
                series.append((self.sim.now, float(self.replication_backlog())))
                yield period
            series.append((self.sim.now, float(self.replication_backlog())))

        Process(self.sim, sampler, name="backlog-sampler")
        return series

    # -- the signature experiment -------------------------------------------------------

    def run_t0_t1_study(self, horizon: float = 3600.0,
                        experiments: list[ExperimentSpec] | None = None,
                        sample_period: float = 60.0) -> StudyResult:
        """The Legrand-2005 study: produce for *horizon*, replicate, measure."""
        exps = experiments if experiments is not None else [CMS_2005, ATLAS_2005]
        series = self.sample_backlog(sample_period, horizon)
        self.production_activity(exps, horizon)
        self.sim.run()
        replicated = (self.agent.shipped if self.agent is not None
                      else self.grid.transfers.completed)
        xfer = self.grid.transfers.monitor.tally("total_time")
        backlogs = [b for _, b in series]
        uplink = self.grid.topology.link("T0", "WAN").bandwidth / GBPS
        return StudyResult(
            uplink_gbps=uplink,
            agent_enabled=self.agent_enabled,
            produced_files=len(self.produced),
            replicated_files=replicated,
            final_backlog_files=int(backlogs[-1]) if backlogs else 0,
            peak_backlog_files=int(max(backlogs)) if backlogs else 0,
            mean_transfer_time=xfer.mean,
            backlog_series=series,
        )
