"""Cross-run statistics — means, variance, Student-t CIs, MSER-5 truncation.

One simulated trajectory is an anecdote; the paper's Section-5 validation
trend (and every MTTR/availability table in the dependability follow-up)
rests on *ensembles*.  This module reduces a set of independent replications
to the statistics that give theory comparisons teeth:

* :func:`summarize` — per-metric mean, unbiased variance, and a Student-t
  confidence interval across runs (replications are independent by seed
  construction, so the plain t interval is exact-model-correct, unlike
  within-run batch means which only approximate independence);
* :func:`mser5` — White's MSER-5 warm-up truncation: delete the initial
  transient that biases steady-state estimators, chosen as the truncation
  point minimizing the standard error of the remaining batch means;
* :func:`coverage_verdict` — does the CI contain the analytic value?  The
  campaign upgrade of ``repro validate``'s point-tolerance check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.errors import ConfigurationError

__all__ = ["MetricSummary", "summarize", "summarize_points", "mser5",
           "t_quantile", "coverage_verdict"]


def t_quantile(p: float, df: int) -> float:
    """Student-t quantile t_{p,df} (scipy-backed, like Monitor CIs)."""
    if df < 1:
        raise ConfigurationError(f"t quantile needs df >= 1, got {df}")
    from scipy import stats  # local import keeps module import cheap

    return float(stats.t.ppf(p, df))


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Cross-run reduction of one metric over n independent replications."""

    metric: str
    n: int
    mean: float
    variance: float
    level: float
    halfwidth: float

    @property
    def std(self) -> float:
        """Cross-run sample standard deviation."""
        return math.sqrt(self.variance) if self.variance >= 0 else math.nan

    @property
    def lo(self) -> float:
        """Lower CI bound."""
        return self.mean - self.halfwidth

    @property
    def hi(self) -> float:
        """Upper CI bound."""
        return self.mean + self.halfwidth

    def contains(self, value: float) -> bool:
        """Is *value* inside the confidence interval?"""
        return self.lo <= value <= self.hi

    def to_dict(self) -> dict:
        """Plain picklable dict (JSON/report-friendly)."""
        return {"metric": self.metric, "n": self.n, "mean": self.mean,
                "variance": self.variance, "level": self.level,
                "halfwidth": self.halfwidth, "lo": self.lo, "hi": self.hi}


def _summary(metric: str, values: Sequence[float],
             level: float) -> MetricSummary:
    n = len(values)
    if n == 0:
        return MetricSummary(metric, 0, math.nan, math.nan, level, math.inf)
    mean = sum(values) / n
    if n == 1:
        return MetricSummary(metric, 1, mean, math.nan, level, math.inf)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_quantile(0.5 + level / 2.0, n - 1) * math.sqrt(var / n)
    return MetricSummary(metric, n, mean, var, level, half)


def summarize(records: Iterable, metrics: Sequence[str] | None = None,
              level: float = 0.95) -> dict[str, MetricSummary]:
    """Reduce successful run records to per-metric cross-run summaries.

    *records* are campaign :class:`~repro.campaign.runner.RunRecord` objects
    (or anything with ``.status`` and ``.metrics``); failed runs are
    excluded.  With ``metrics=None`` every numeric key present in the first
    successful record is summarized.
    """
    if not 0 < level < 1:
        raise ConfigurationError(f"CI level must be in (0,1), got {level}")
    ok = [r for r in records if getattr(r, "status", "ok") == "ok"]
    if not ok:
        return {}
    if metrics is None:
        metrics = [k for k, v in ok[0].metrics.items()
                   if isinstance(v, (int, float)) and not isinstance(v, bool)]
    out: dict[str, MetricSummary] = {}
    for m in metrics:
        values = [float(r.metrics[m]) for r in ok if m in r.metrics]
        out[m] = _summary(m, values, level)
    return out


def summarize_points(records: Iterable, metrics: Sequence[str] | None = None,
                     level: float = 0.95) -> dict[int, dict[str, MetricSummary]]:
    """Per-grid-point summaries: {point index: {metric: summary}}."""
    by_point: dict[int, list] = {}
    for r in records:
        by_point.setdefault(r.point, []).append(r)
    return {p: summarize(rs, metrics, level)
            for p, rs in sorted(by_point.items())}


def mser5(series: Sequence[float], batch: int = 5) -> int:
    """MSER-5 warm-up truncation point (index into *series*).

    Averages the series into batches of *batch* observations, then picks
    the truncation d* minimizing ``var(z[d:]) / (n-d)²``-style standard
    error of the remaining batch means (White's MSER statistic).  The
    search is capped at half the batches — the standard guard against the
    statistic's endpoint degeneracy — and returns ``d* × batch`` raw
    observations to delete.
    """
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    n_batches = len(series) // batch
    if n_batches < 4:
        return 0
    z = [sum(series[i * batch:(i + 1) * batch]) / batch
         for i in range(n_batches)]
    # Prefix sums make each candidate truncation O(1): mser(d) =
    # sum((z_i - mean_d)^2 for i >= d) / (n - d)^2.
    best_d, best_stat = 0, math.inf
    total = sum(z)
    total_sq = sum(v * v for v in z)
    removed = 0.0
    removed_sq = 0.0
    for d in range(n_batches // 2):
        m = n_batches - d
        s = total - removed
        sq = total_sq - removed_sq
        mean = s / m
        stat = max(0.0, sq - m * mean * mean) / (m * m)
        if stat < best_stat:
            best_stat = stat
            best_d = d
        removed += z[d]
        removed_sq += z[d] * z[d]
    return best_d * batch


def coverage_verdict(summaries: Mapping[str, MetricSummary],
                     theory) -> dict[str, dict]:
    """CI-contains-theory verdict per metric.

    *theory* is an analytic model exposing the metric names as attributes
    (``MM1``/``MMc``: L, Lq, W, Wq, rho) or a plain mapping.  Metrics with
    no analytic counterpart are skipped.
    """
    out: dict[str, dict] = {}
    for name, summ in summaries.items():
        attr = "rho" if name == "utilization" else name
        if isinstance(theory, Mapping):
            value = theory.get(name, theory.get(attr))
        else:
            value = getattr(theory, attr, None)
        # bool is an int subclass: a True/False theory entry would silently
        # become a nonsense 0/1 coverage check, so reject it explicitly.
        if (value is None or isinstance(value, bool)
                or not isinstance(value, (int, float))):
            continue
        out[name] = {"theory": float(value), "lo": summ.lo, "hi": summ.hi,
                     "mean": summ.mean, "n": summ.n,
                     "contains": summ.contains(float(value))}
    return out
