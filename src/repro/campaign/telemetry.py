"""Campaign-level telemetry — fold per-run observability into a fleet view.

Every run ships its :meth:`Telemetry.snapshot` dict and its metrics
registry dump back with its :class:`~repro.campaign.runner.RunRecord`;
the parent folds them here, adding the accounting only it can see (worker
deaths, stall flags, retries).  The result answers the operator questions
a bare ``k/N`` progress line cannot: how fast is each worker really going,
which grid point is the expensive one, where did the wall-clock go, and
which runs are the outliers worth a look.

Aggregation uses only the *final* record of each run index — a run that
timed out once and then succeeded contributes exactly one record (its
successful one) to the rollups, while the earlier attempt shows up in
``timeouts``/``retries_used``/``worker_deaths`` instead.  That is what
keeps the per-worker run counts summing to ``len(records)`` with no
double counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..obs.metrics import Registry
from .spec import describe_params

__all__ = ["CampaignTelemetry", "aggregate_telemetry"]


def _rate_stats(rates: list[float]) -> dict[str, float]:
    if not rates:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {"min": min(rates), "mean": sum(rates) / len(rates),
            "max": max(rates)}


@dataclass
class CampaignTelemetry:
    """Cross-run observability rollups for one campaign execution.

    Attributes
    ----------
    per_worker:
        ``worker id -> rollup dict`` (runs/ok/failed/timeout, events, wall
        seconds, events-per-second stats) from each run's final record.
        Parent-side records (serial runs, give-ups) live under worker -1.
    per_point:
        ``grid point -> rollup dict`` with a human label and the same
        rate statistics, for spotting the expensive corner of the grid.
    slowest:
        The longest-running final records, longest first.
    metrics:
        One :class:`~repro.obs.metrics.Registry` holding every run's
        shipped registry dump merged together (counters/histograms add).
    worker_deaths / stalls / timeouts / retries_used:
        Campaign-level incident counters from the parent's bookkeeping.
    """

    per_worker: dict[int, dict] = field(default_factory=dict)
    per_point: dict[int, dict] = field(default_factory=dict)
    slowest: list[dict] = field(default_factory=list)
    metrics: Registry = field(default_factory=Registry)
    events: int = 0
    wall_seconds: float = 0.0
    worker_deaths: int = 0
    stalls: int = 0
    timeouts: int = 0
    retries_used: int = 0

    def report(self) -> str:
        """The ``repro campaign --report`` table (plain text)."""
        lines = ["campaign telemetry", "=================="]
        lines.append(
            f"events={self.events:,} wall={self.wall_seconds:.2f}s "
            f"timeouts={self.timeouts} retries={self.retries_used} "
            f"worker_deaths={self.worker_deaths} stalls={self.stalls}")
        if self.per_worker:
            lines.append("")
            lines.append(f"{'worker':>6} {'runs':>5} {'ok':>4} {'fail':>4} "
                         f"{'tout':>4} {'events':>10} {'wall_s':>8} "
                         f"{'eps(mean)':>10}")
            for wid in sorted(self.per_worker):
                w = self.per_worker[wid]
                label = "serial" if wid == -1 else str(wid)
                lines.append(
                    f"{label:>6} {w['runs']:>5} {w['ok']:>4} "
                    f"{w['failed']:>4} {w['timeout']:>4} "
                    f"{w['events']:>10,} {w['wall_seconds']:>8.2f} "
                    f"{w['eps']['mean']:>10,.0f}")
        if self.per_point:
            lines.append("")
            lines.append(f"{'point':>5} {'runs':>5} {'ok':>4} "
                         f"{'wall_s':>8} {'eps(mean)':>10}  label")
            for point in sorted(self.per_point):
                p = self.per_point[point]
                lines.append(
                    f"{point:>5} {p['runs']:>5} {p['ok']:>4} "
                    f"{p['wall_seconds']:>8.2f} {p['eps']['mean']:>10,.0f}"
                    f"  {p['label']}")
        if self.slowest:
            lines.append("")
            lines.append("slowest runs:")
            for s in self.slowest:
                lines.append(
                    f"  run {s['index']} ({s['scenario']} point {s['point']}"
                    f" rep {s['replication']}): {s['wall_seconds']:.3f}s "
                    f"[{s['status']}] worker {s['worker']}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CampaignTelemetry workers={len(self.per_worker)} "
                f"points={len(self.per_point)} events={self.events:,}>")


def aggregate_telemetry(records: Sequence[Any], wall_seconds: float = 0.0,
                        timeouts: int = 0, retries_used: int = 0,
                        worker_deaths: int = 0, stalls: int = 0,
                        slowest_n: int = 5) -> CampaignTelemetry:
    """Build a :class:`CampaignTelemetry` from final run records."""
    agg = CampaignTelemetry(wall_seconds=wall_seconds, timeouts=timeouts,
                            retries_used=retries_used,
                            worker_deaths=worker_deaths, stalls=stalls)
    worker_rates: dict[int, list[float]] = {}
    point_rates: dict[int, list[float]] = {}
    for rec in records:
        tele = rec.telemetry or {}
        events = int(tele.get("events", 0))
        eps = float(tele.get("events_per_sec", 0.0))
        agg.events += events

        w = agg.per_worker.setdefault(
            rec.worker, {"runs": 0, "ok": 0, "failed": 0, "timeout": 0,
                         "events": 0, "wall_seconds": 0.0})
        w["runs"] += 1
        w[rec.status if rec.status in ("ok", "failed", "timeout")
          else "failed"] += 1
        w["events"] += events
        w["wall_seconds"] += rec.wall_seconds
        if eps > 0:
            worker_rates.setdefault(rec.worker, []).append(eps)

        p = agg.per_point.setdefault(
            rec.point, {"runs": 0, "ok": 0, "events": 0, "wall_seconds": 0.0,
                        "label": describe_params(rec.params)})
        p["runs"] += 1
        p["ok"] += 1 if rec.status == "ok" else 0
        p["events"] += events
        p["wall_seconds"] += rec.wall_seconds
        if eps > 0:
            point_rates.setdefault(rec.point, []).append(eps)

        if rec.obs_metrics:
            agg.metrics.merge(rec.obs_metrics)

    for wid, w in agg.per_worker.items():
        w["eps"] = _rate_stats(worker_rates.get(wid, []))
    for point, p in agg.per_point.items():
        p["eps"] = _rate_stats(point_rates.get(point, []))
    ranked = sorted(records, key=lambda r: -r.wall_seconds)[:slowest_n]
    agg.slowest = [{"index": r.index, "scenario": r.scenario,
                    "point": r.point, "replication": r.replication,
                    "wall_seconds": r.wall_seconds, "status": r.status,
                    "worker": r.worker}
                   for r in ranked]
    return agg
