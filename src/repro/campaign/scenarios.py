"""Campaign scenario registry — named, picklable-by-name run functions.

A scenario is a function ``(params: dict, seed: int) -> (metrics, telemetry)``
where *metrics* is a plain dict of deterministic numbers (same seed + params
⇒ byte-identical values, regardless of which process ran it) and *telemetry*
is a plain dict of wall-clock-dependent observability data (events/sec,
wall seconds) that is reported but never compared.

Workers receive only the scenario *name* and look the function up in this
registry after import, so nothing callable ever crosses the process
boundary — the worker→parent protocol stays plain tuples of builtins.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.errors import ConfigurationError
from ..core.rng import StreamFactory

__all__ = ["SCENARIOS", "register_scenario", "run_scenario", "theory_for",
           "configure_run_observation", "clear_run_observation"]

ScenarioFn = Callable[[dict, int], tuple[dict, dict]]

SCENARIOS: dict[str, ScenarioFn] = {}


def register_scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Decorator registering a scenario under *name*."""
    def deco(fn: ScenarioFn) -> ScenarioFn:
        SCENARIOS[name] = fn
        return fn
    return deco


def run_scenario(name: str, params: Mapping[str, Any],
                 seed: int) -> tuple[dict, dict]:
    """Execute one registered scenario; returns (metrics, telemetry)."""
    fn = SCENARIOS.get(name)
    if fn is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)}")
    return fn(dict(params), int(seed))


#: Process-local observation config applied to every scenario run in this
#: process.  The campaign runner (parent for serial runs, each worker for
#: pooled ones) sets it per run; nothing here ever crosses a pipe, so the
#: entries may be live objects (a Registry, a FlightRecorder, callables).
_RUN_OBS: dict[str, Any] = {}


def configure_run_observation(heartbeat: float | None = None, sink=None,
                              beat_hook=None, registry=None,
                              recorder=None) -> None:
    """Install the observation wiring scenario runs should attach.

    ``registry``/``recorder`` enable the metrics and flight-recorder
    facets; ``heartbeat``/``sink`` drive telemetry progress lines; and
    ``beat_hook`` receives every heartbeat's snapshot dict (the campaign
    worker uses it to ship live "beat" frames to the parent).
    """
    _RUN_OBS.clear()
    _RUN_OBS.update(heartbeat=heartbeat, sink=sink, beat_hook=beat_hook,
                    registry=registry, recorder=recorder)


def clear_run_observation() -> None:
    """Drop the per-run observation wiring (runs go back to bare telemetry)."""
    _RUN_OBS.clear()


def _build_observation():
    """The Observation a scenario run should attach (honours ``_RUN_OBS``)."""
    from ..obs import Observation

    cfg = _RUN_OBS
    obs = Observation(trace=False, profile=False, telemetry=True,
                      heartbeat=cfg.get("heartbeat"), sink=cfg.get("sink"),
                      metrics=cfg.get("registry") or False,
                      recorder=cfg.get("recorder"))
    hook = cfg.get("beat_hook")
    if hook is not None and obs.telemetry is not None:
        obs.telemetry.beat_hook = hook
    return obs


def _observed_queue_run(simulate, kwargs: dict, warmup: Any,
                        n_jobs: int) -> tuple[dict, dict]:
    """Shared tail for the queueing scenarios: run, truncate, package."""
    from .stats import mser5

    obs = _build_observation()
    if warmup == "mser5":
        stats = simulate(n_jobs=n_jobs, warmup=0, seed=kwargs.pop("seed"),
                         obs=obs, keep_series=True, **kwargs)
        cut = mser5(stats.W_series)
        series = stats.W_series[cut:]
        metrics = stats.to_dict()
        # Replace the fixed-warmup W with the MSER-5 truncated mean; the
        # untruncated value stays visible for the truncation-effect column.
        metrics["W_raw"] = metrics["W"]
        metrics["W"] = (sum(series) / len(series)) if series else metrics["W"]
        metrics["mser5_cut"] = int(cut)
    else:
        stats = simulate(n_jobs=n_jobs, warmup=int(warmup),
                         seed=kwargs.pop("seed"), obs=obs, **kwargs)
        metrics = stats.to_dict()
    sim = obs.bindings[0].sim if obs.bindings else None
    telemetry = obs.telemetry.snapshot(sim) if obs.telemetry is not None else {}
    return metrics, telemetry


@register_scenario("mm1")
def mm1_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """M/M/1 run: params rho (required), mu, jobs, warmup (int or 'mser5')."""
    from ..validation import simulate_mm1

    rho = float(params.get("rho", 0.6))
    mu = float(params.get("mu", 1.0))
    if not 0 < rho < 1:
        raise ConfigurationError(f"mm1 rho must be in (0,1), got {rho}")
    jobs = int(params.get("jobs", 20_000))
    warmup = params.get("warmup", max(1, jobs // 10))
    return _observed_queue_run(
        simulate_mm1, {"lam": rho * mu, "mu": mu, "seed": seed},
        warmup, jobs)


@register_scenario("mmc")
def mmc_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """M/M/c run: params rho (per-server), c, mu, jobs, warmup."""
    from ..validation import simulate_mmc

    rho = float(params.get("rho", 0.6))
    c = int(params.get("c", 2))
    mu = float(params.get("mu", 1.0))
    if not 0 < rho < 1 or c < 1:
        raise ConfigurationError(f"mmc needs rho in (0,1) and c >= 1")
    jobs = int(params.get("jobs", 20_000))
    warmup = params.get("warmup", max(1, jobs // 10))
    metrics, telemetry = _observed_queue_run(
        simulate_mmc, {"lam": rho * c * mu, "mu": mu, "c": c, "seed": seed},
        warmup, jobs)
    metrics["servers"] = c
    return metrics, telemetry


@register_scenario("provision")
def provision_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """Server-provisioning study — the evolutionary-search demo scenario.

    Genome parameters: ``servers`` (replica count) and ``policy``:

    * ``pooled`` — one M/M/c station with *servers* servers sharing a queue;
    * ``split`` — *servers* independent M/M/1 queues with the arrivals
      randomly split (simulated as one representative queue at rate λ/c —
      the queues are i.i.d. so the per-customer mean sojourn is identical).

    Queueing theory says pooling dominates splitting at equal capacity, so
    a correct search discovers ``policy=pooled`` with a moderate server
    count when the objective charges a per-replica cost, e.g.
    ``W + 0.15 * servers``.
    """
    from ..validation import simulate_mm1, simulate_mmc

    lam = float(params.get("lam", 3.0))
    mu = float(params.get("mu", 1.0))
    c = int(params.get("servers", 4))
    policy = str(params.get("policy", "pooled"))
    jobs = int(params.get("jobs", 8_000))
    warmup = params.get("warmup", max(1, jobs // 10))
    if c < 1:
        raise ConfigurationError(f"servers must be >= 1, got {c}")
    if lam >= c * mu:
        # Infeasible genome (offered load exceeds capacity): return a large
        # finite penalty instead of raising, so the search can explore past
        # the feasibility boundary without killing runs.
        return ({"W": 1e9, "Wq": 1e9, "L": 1e9, "Lq": 1e9,
                 "utilization": 1.0, "servers": c, "feasible": 0}, {})
    if policy == "pooled":
        metrics, telemetry = _observed_queue_run(
            simulate_mmc, {"lam": lam, "mu": mu, "c": c, "seed": seed},
            warmup, jobs)
    elif policy == "split":
        metrics, telemetry = _observed_queue_run(
            simulate_mm1, {"lam": lam / c, "mu": mu, "seed": seed},
            warmup, jobs)
    else:
        raise ConfigurationError(f"unknown policy {policy!r}")
    metrics["servers"] = c
    metrics["feasible"] = 1
    return metrics, telemetry


@register_scenario("quadratic")
def quadratic_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """Noisy parabola — a fast synthetic objective for search smoke tests.

    ``y = (x - target)² + noise·N(0,1)``; the optimum is known, so tests
    can assert the evolutionary loop actually converges.
    """
    x = float(params.get("x", 0.0))
    target = float(params.get("target", 3.0))
    noise = float(params.get("noise", 0.1))
    stream = StreamFactory(seed).stream("quadratic")
    y = (x - target) ** 2 + noise * stream.normal(0.0, 1.0)
    return ({"y": float(y), "x": x}, {})


def theory_for(scenario: str, params: Mapping[str, Any]):
    """The analytic model matching a queueing scenario point (or None).

    Returns an object with L/Lq/W/Wq/rho properties for ``mm1`` and
    ``mmc`` points — what the CI-contains-theory verdict compares against.
    """
    from ..validation import MM1, MMc

    p = dict(params)
    mu = float(p.get("mu", 1.0))
    if scenario == "mm1":
        rho = float(p.get("rho", 0.6))
        return MM1(rho * mu, mu)
    if scenario == "mmc":
        c = int(p.get("c", 2))
        rho = float(p.get("rho", 0.6))
        return MMc(rho * c * mu, mu, c)
    return None
