"""Campaign scenario registry — named, picklable-by-name run functions.

A scenario is a function ``(params: dict, seed: int) -> (metrics, telemetry)``
where *metrics* is a plain dict of deterministic numbers (same seed + params
⇒ byte-identical values, regardless of which process ran it) and *telemetry*
is a plain dict of wall-clock-dependent observability data (events/sec,
wall seconds) that is reported but never compared.

Workers receive only the scenario *name* and look the function up in this
registry after import, so nothing callable ever crosses the process
boundary — the worker→parent protocol stays plain tuples of builtins.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.errors import ConfigurationError
from ..core.rng import StreamFactory

__all__ = ["SCENARIOS", "register_scenario", "run_scenario", "theory_for",
           "configure_run_observation", "clear_run_observation"]

ScenarioFn = Callable[[dict, int], tuple[dict, dict]]

SCENARIOS: dict[str, ScenarioFn] = {}


def register_scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Decorator registering a scenario under *name*."""
    def deco(fn: ScenarioFn) -> ScenarioFn:
        SCENARIOS[name] = fn
        return fn
    return deco


def run_scenario(name: str, params: Mapping[str, Any],
                 seed: int) -> tuple[dict, dict]:
    """Execute one registered scenario; returns (metrics, telemetry)."""
    fn = SCENARIOS.get(name)
    if fn is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)}")
    return fn(dict(params), int(seed))


#: Process-local observation config applied to every scenario run in this
#: process.  The campaign runner (parent for serial runs, each worker for
#: pooled ones) sets it per run; nothing here ever crosses a pipe, so the
#: entries may be live objects (a Registry, a FlightRecorder, callables).
_RUN_OBS: dict[str, Any] = {}


def configure_run_observation(heartbeat: float | None = None, sink=None,
                              beat_hook=None, registry=None,
                              recorder=None) -> None:
    """Install the observation wiring scenario runs should attach.

    ``registry``/``recorder`` enable the metrics and flight-recorder
    facets; ``heartbeat``/``sink`` drive telemetry progress lines; and
    ``beat_hook`` receives every heartbeat's snapshot dict (the campaign
    worker uses it to ship live "beat" frames to the parent).
    """
    _RUN_OBS.clear()
    _RUN_OBS.update(heartbeat=heartbeat, sink=sink, beat_hook=beat_hook,
                    registry=registry, recorder=recorder)


def clear_run_observation() -> None:
    """Drop the per-run observation wiring (runs go back to bare telemetry)."""
    _RUN_OBS.clear()


def _build_observation():
    """The Observation a scenario run should attach (honours ``_RUN_OBS``)."""
    from ..obs import Observation

    cfg = _RUN_OBS
    obs = Observation(trace=False, profile=False, telemetry=True,
                      heartbeat=cfg.get("heartbeat"), sink=cfg.get("sink"),
                      metrics=cfg.get("registry") or False,
                      recorder=cfg.get("recorder"))
    hook = cfg.get("beat_hook")
    if hook is not None and obs.telemetry is not None:
        obs.telemetry.beat_hook = hook
    return obs


def _observed_queue_run(simulate, kwargs: dict, warmup: Any,
                        n_jobs: int) -> tuple[dict, dict]:
    """Shared tail for the queueing scenarios: run, truncate, package."""
    from .stats import mser5

    obs = _build_observation()
    if warmup == "mser5":
        stats = simulate(n_jobs=n_jobs, warmup=0, seed=kwargs.pop("seed"),
                         obs=obs, keep_series=True, **kwargs)
        cut = mser5(stats.W_series)
        series = stats.W_series[cut:]
        metrics = stats.to_dict()
        # Replace the fixed-warmup W with the MSER-5 truncated mean; the
        # untruncated value stays visible for the truncation-effect column.
        metrics["W_raw"] = metrics["W"]
        metrics["W"] = (sum(series) / len(series)) if series else metrics["W"]
        metrics["mser5_cut"] = int(cut)
    else:
        stats = simulate(n_jobs=n_jobs, warmup=int(warmup),
                         seed=kwargs.pop("seed"), obs=obs, **kwargs)
        metrics = stats.to_dict()
    sim = obs.bindings[0].sim if obs.bindings else None
    telemetry = obs.telemetry.snapshot(sim) if obs.telemetry is not None else {}
    return metrics, telemetry


@register_scenario("mm1")
def mm1_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """M/M/1 run: params rho (required), mu, jobs, warmup (int or 'mser5')."""
    from ..validation import simulate_mm1

    rho = float(params.get("rho", 0.6))
    mu = float(params.get("mu", 1.0))
    if not 0 < rho < 1:
        raise ConfigurationError(f"mm1 rho must be in (0,1), got {rho}")
    jobs = int(params.get("jobs", 20_000))
    warmup = params.get("warmup", max(1, jobs // 10))
    return _observed_queue_run(
        simulate_mm1, {"lam": rho * mu, "mu": mu, "seed": seed},
        warmup, jobs)


@register_scenario("mmc")
def mmc_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """M/M/c run: params rho (per-server), c, mu, jobs, warmup."""
    from ..validation import simulate_mmc

    rho = float(params.get("rho", 0.6))
    c = int(params.get("c", 2))
    mu = float(params.get("mu", 1.0))
    if not 0 < rho < 1 or c < 1:
        raise ConfigurationError(f"mmc needs rho in (0,1) and c >= 1")
    jobs = int(params.get("jobs", 20_000))
    warmup = params.get("warmup", max(1, jobs // 10))
    metrics, telemetry = _observed_queue_run(
        simulate_mmc, {"lam": rho * c * mu, "mu": mu, "c": c, "seed": seed},
        warmup, jobs)
    metrics["servers"] = c
    return metrics, telemetry


@register_scenario("provision")
def provision_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """Server-provisioning study — the evolutionary-search demo scenario.

    Genome parameters: ``servers`` (replica count) and ``policy``:

    * ``pooled`` — one M/M/c station with *servers* servers sharing a queue;
    * ``split`` — *servers* independent M/M/1 queues with the arrivals
      randomly split (simulated as one representative queue at rate λ/c —
      the queues are i.i.d. so the per-customer mean sojourn is identical).

    Queueing theory says pooling dominates splitting at equal capacity, so
    a correct search discovers ``policy=pooled`` with a moderate server
    count when the objective charges a per-replica cost, e.g.
    ``W + 0.15 * servers``.
    """
    from ..validation import simulate_mm1, simulate_mmc

    lam = float(params.get("lam", 3.0))
    mu = float(params.get("mu", 1.0))
    c = int(params.get("servers", 4))
    policy = str(params.get("policy", "pooled"))
    jobs = int(params.get("jobs", 8_000))
    warmup = params.get("warmup", max(1, jobs // 10))
    if c < 1:
        raise ConfigurationError(f"servers must be >= 1, got {c}")
    if lam >= c * mu:
        # Infeasible genome (offered load exceeds capacity): return a large
        # finite penalty instead of raising, so the search can explore past
        # the feasibility boundary without killing runs.
        return ({"W": 1e9, "Wq": 1e9, "L": 1e9, "Lq": 1e9,
                 "utilization": 1.0, "servers": c, "feasible": 0}, {})
    if policy == "pooled":
        metrics, telemetry = _observed_queue_run(
            simulate_mmc, {"lam": lam, "mu": mu, "c": c, "seed": seed},
            warmup, jobs)
    elif policy == "split":
        metrics, telemetry = _observed_queue_run(
            simulate_mm1, {"lam": lam / c, "mu": mu, "seed": seed},
            warmup, jobs)
    else:
        raise ConfigurationError(f"unknown policy {policy!r}")
    metrics["servers"] = c
    metrics["feasible"] = 1
    return metrics, telemetry


@register_scenario("quadratic")
def quadratic_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """Noisy parabola — a fast synthetic objective for search smoke tests.

    ``y = (x - target)² + noise·N(0,1)``; the optimum is known, so tests
    can assert the evolutionary loop actually converges.
    """
    x = float(params.get("x", 0.0))
    target = float(params.get("target", 3.0))
    noise = float(params.get("noise", 0.1))
    stream = StreamFactory(seed).stream("quadratic")
    y = (x - target) ** 2 + noise * stream.normal(0.0, 1.0)
    return ({"y": float(y), "x": x}, {})


@register_scenario("dependability")
def dependability_scenario(params: dict, seed: int) -> tuple[dict, dict]:
    """Correlated-fault campaign: a star grid under site outage cycles.

    ``sites`` leaf sites (one checkpointing machine each) hang off a hub;
    a :class:`~repro.faults.CorrelatedFaultInjector` cycles each *site*
    component through Exp(mtbf)/Exp(mttr) outages, so one drawn failure
    takes down the site's machine **and** its access link together.  Job
    chains run on every machine; file-fetch chains cross every access
    link, so outages evict work and abort in-flight transfers (which the
    transfer service retries with deterministic backoff).

    Params: sites, mtbf, mttr, horizon, job_length (MI), rating,
    file_bytes, bandwidth, fetch_gap, attempts.  The measured
    ``availability`` converges on ``mtbf / (mtbf + mttr)`` — the analytic
    value ``theory_for`` exposes for the CI-contains-theory verdict.
    """
    import math

    from ..core.engine import Simulator
    from ..faults import CorrelatedFaultInjector, FaultGraph
    from ..hosts.cpu import SpaceSharedMachine
    from ..hosts.site import Grid, Site
    from ..network.topology import star
    from ..network.transfer import FileSpec

    n_sites = int(params.get("sites", 4))
    mtbf = float(params.get("mtbf", 50.0))
    mttr = float(params.get("mttr", 10.0))
    horizon = float(params.get("horizon", 2000.0))
    job_length = float(params.get("job_length", 500.0))
    rating = float(params.get("rating", 100.0))
    file_bytes = float(params.get("file_bytes", 2e6))
    bandwidth = float(params.get("bandwidth", 1e6))
    fetch_gap = float(params.get("fetch_gap", 5.0))
    attempts = int(params.get("attempts", 8))
    if n_sites < 1:
        raise ConfigurationError(f"sites must be >= 1, got {n_sites}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")

    sim = Simulator(seed=seed)
    obs = _build_observation()
    obs.attach(sim, track="dependability")

    leaves = [f"site{i}" for i in range(n_sites)]
    topo = star("hub", leaves, bandwidth, latency=0.01)
    sites = [Site(sim, "hub")]
    for name in leaves:
        sites.append(Site(sim, name, machines=[
            SpaceSharedMachine(sim, pes=1, rating=rating,
                               name=f"{name}-cpu",
                               restart_policy="checkpoint")]))
    grid = Grid(sim, topo, sites, transfer_attempts=attempts,
                transfer_backoff=1.0)
    graph = FaultGraph.from_grid(grid)
    targets = [f"site:{n}" for n in leaves]
    injector = CorrelatedFaultInjector(
        sim, graph, sim.streams.spawn("faults"), targets=targets,
        mtbf=mtbf, mttr=mttr, horizon=horizon)

    machines = [grid.site(n).machines[0] for n in leaves]

    def submit_chain(machine) -> None:
        run = machine.submit(job_length)
        run._subscribe(lambda _r, m=machine: submit_chain(m))

    def fetch_chain(leaf: str, k: int) -> None:
        ticket = grid.transfers.fetch(
            FileSpec(f"{leaf}-f{k}", file_bytes), "hub", leaf)
        ticket._subscribe(
            lambda _t, l=leaf, nk=k + 1: sim.schedule(
                fetch_gap, fetch_chain, l, nk, label="fetch_chain"))

    for m in machines:
        submit_chain(m)
    for name in leaves:
        fetch_chain(name, 0)

    sim.run(until=horizon)

    mttr_mean = graph.mttr_observed
    if math.isnan(mttr_mean):
        mttr_mean = 0.0
    metrics = {
        "availability": injector.availability,
        "availability_min": min(graph.availability(t) for t in targets),
        "crashes": injector.crashes,
        "mttr_mean": mttr_mean,
        "jobs_completed": sum(m.completed for m in machines),
        "jobs_evicted": sum(m.evictions for m in machines),
        "transfers_completed": grid.transfers.completed,
        "transfer_retries": grid.transfers.retries,
        "transfers_failed": grid.transfers.failed,
        "flow_aborts": grid.network.aborted,
    }
    telemetry = (obs.telemetry.snapshot(sim)
                 if obs.telemetry is not None else {})
    return metrics, telemetry


def theory_for(scenario: str, params: Mapping[str, Any]):
    """The analytic model matching a queueing scenario point (or None).

    Returns an object with L/Lq/W/Wq/rho properties for ``mm1`` and
    ``mmc`` points — what the CI-contains-theory verdict compares against.
    """
    from ..validation import MM1, MMc

    p = dict(params)
    mu = float(p.get("mu", 1.0))
    if scenario == "mm1":
        rho = float(p.get("rho", 0.6))
        return MM1(rho * mu, mu)
    if scenario == "mmc":
        c = int(p.get("c", 2))
        rho = float(p.get("rho", 0.6))
        return MMc(rho * c * mu, mu, c)
    if scenario == "dependability":
        # Exponential UP/DOWN renewal: steady-state availability.  The
        # time-average bias over a finite horizon is O(tau/horizon) with
        # tau = mtbf*mttr/(mtbf+mttr) — negligible against the CI width.
        mtbf = float(p.get("mtbf", 50.0))
        mttr = float(p.get("mttr", 10.0))
        return {"availability": mtbf / (mtbf + mttr)}
    return None
