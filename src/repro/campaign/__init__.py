"""repro.campaign — Monte Carlo ensembles, cross-run statistics, and search.

The paper's Section-5 trends (validation, scalability, distributed
execution) all demand *ensembles*, not single trajectories.  This package
turns one scenario into a campaign:

* **spec** (:mod:`repro.campaign.spec`) — seed ranges × parameter grids
  expanded into a deterministic run matrix, with per-replication RNG
  universes spawned from one root seed (common random numbers across grid
  points by construction);
* **runner** (:mod:`repro.campaign.runner`) — a process-pool executor with
  an explicit worker protocol: chunked dispatch, per-run timeout/retry,
  and results reassembled in matrix order so parallel output is
  byte-identical to serial;
* **stats** (:mod:`repro.campaign.stats`) — cross-run means, variances,
  Student-t confidence intervals, MSER-5 warm-up truncation, and
  CI-contains-theory verdicts feeding :mod:`repro.validation`;
* **telemetry** (:mod:`repro.campaign.telemetry`) — fleet rollups of the
  per-run observability every record ships home: per-worker and per-point
  rates, merged metrics registries, slowest runs, incident counters;
* **search** (:mod:`repro.campaign.search`) — an evolutionary loop
  (tournament selection + crossover + mutation) over scenario parameters,
  scored by a metric expression.

Surface: ``python -m repro campaign`` and ``repro validate --runs N``.
"""

from .scenarios import (SCENARIOS, clear_run_observation,
                        configure_run_observation, register_scenario,
                        run_scenario, theory_for)
from .search import (Axis, EvolutionResult, evaluate_objective, evolve,
                     parse_space)
from .spec import CampaignSpec, RunSpec, describe_params, point_key
from .runner import CampaignResult, RunRecord, run_campaign, run_specs
from .stats import (MetricSummary, coverage_verdict, mser5, summarize,
                    summarize_points, t_quantile)
from .telemetry import CampaignTelemetry, aggregate_telemetry

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "point_key",
    "describe_params",
    "CampaignTelemetry",
    "aggregate_telemetry",
    "configure_run_observation",
    "clear_run_observation",
    "CampaignResult",
    "RunRecord",
    "run_campaign",
    "run_specs",
    "SCENARIOS",
    "register_scenario",
    "run_scenario",
    "theory_for",
    "MetricSummary",
    "summarize",
    "summarize_points",
    "mser5",
    "t_quantile",
    "coverage_verdict",
    "Axis",
    "parse_space",
    "evaluate_objective",
    "evolve",
    "EvolutionResult",
]
