"""Evolutionary scenario search — tournament selection + mutation.

The campaign engine answers "what are the statistics of this scenario?";
this module answers "which scenario is *best*?".  The loop is the classic
generational GA shape (the LifeFInances ``genetic.py`` pattern): a
population of genomes (parameter assignments over a declared search
space), fitness from simulation, tournament selection, uniform crossover,
per-gene mutation, and elitism.

Design points that matter for a *simulation* GA:

* **Fitness is an ensemble statistic.**  Each genome is evaluated over
  ``replications`` independent runs and scored by the mean of a metric
  expression (e.g. ``"W + 0.15 * servers"``) — one noisy run must not
  decide a tournament.
* **Common random numbers.**  Every genome in every generation reuses the
  same replication seeds (spec-layer discipline), so fitness differences
  are parameter effects, not seed luck.
* **Deterministic evolution.**  All randomness comes from named streams of
  a factory spawned from the root seed; the same root seed reproduces the
  entire search — population by population — regardless of worker count,
  because workers only compute fitness, never draw evolution randomness.
* **Fitness caching.**  With CRN, a genome's fitness is a pure function of
  its parameters; revisited genomes are looked up, not re-simulated.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.rng import StreamFactory
from .spec import CampaignSpec, RunSpec, point_key
from .runner import CampaignResult, run_specs

__all__ = ["Axis", "parse_space", "evaluate_objective", "EvolutionResult",
           "evolve"]

_SAFE_FUNCS = {"abs": abs, "min": min, "max": max, "sqrt": math.sqrt,
               "log": math.log, "exp": math.exp, "inf": math.inf}


def evaluate_objective(expression: str, metrics: Mapping[str, Any]) -> float:
    """Evaluate a metric expression over one run's metrics dict.

    The expression sees metric names as variables plus a small math
    vocabulary (abs, min, max, sqrt, log, exp, inf); builtins are blocked.
    """
    try:
        value = eval(expression, {"__builtins__": {}},
                     {**_SAFE_FUNCS, **dict(metrics)})
    except Exception as exc:
        raise ConfigurationError(
            f"objective {expression!r} failed on metrics "
            f"{sorted(metrics)}: {exc}") from exc
    return float(value)


@dataclass(frozen=True)
class Axis:
    """One evolvable parameter: numeric range or categorical choices."""

    name: str
    lo: float | None = None
    hi: float | None = None
    integer: bool = False
    choices: tuple | None = None

    def __post_init__(self) -> None:
        if self.choices is None:
            if self.lo is None or self.hi is None or self.lo >= self.hi:
                raise ConfigurationError(
                    f"axis {self.name!r} needs lo < hi or choices")
        elif not self.choices:
            raise ConfigurationError(f"axis {self.name!r} has no choices")

    def sample(self, stream) -> Any:
        """Draw a uniform random value for this gene."""
        if self.choices is not None:
            return self.choices[stream.randint(0, len(self.choices) - 1)]
        if self.integer:
            return stream.randint(int(self.lo), int(self.hi))
        return stream.uniform(self.lo, self.hi)

    def mutate(self, value: Any, stream) -> Any:
        """Perturb *value*: resample categoricals, nudge numerics ~span/5."""
        if self.choices is not None:
            return self.sample(stream)
        span = self.hi - self.lo
        x = float(value) + stream.normal(0.0, span / 5.0)
        x = min(self.hi, max(self.lo, x))
        return int(round(x)) if self.integer else x

    @classmethod
    def parse(cls, name: str, text: str) -> "Axis":
        """Parse ``lo:hi`` (always a continuous float axis), ``lo:hi:int``
        (integer axis — the suffix is required, whole-number bounds alone
        never imply one), or ``a,b,c`` categorical choices."""
        if ":" in text:
            parts = text.split(":")
            if len(parts) == 3 and parts[2] == "int":
                return cls(name, lo=float(parts[0]), hi=float(parts[1]),
                           integer=True)
            if len(parts) == 2:
                return cls(name, lo=float(parts[0]), hi=float(parts[1]))
            raise ConfigurationError(f"cannot parse axis {name}={text!r}")
        return cls(name, choices=tuple(_coerce(v) for v in text.split(",")))


def _coerce(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_space(entries: Sequence[str]) -> list[Axis]:
    """Parse ``name=spec`` CLI strings into a search space."""
    axes = []
    for entry in entries:
        if "=" not in entry:
            raise ConfigurationError(f"space entry {entry!r} is not name=spec")
        name, _, text = entry.partition("=")
        axes.append(Axis.parse(name.strip(), text.strip()))
    return axes


@dataclass
class EvolutionResult:
    """Best genome plus the full per-generation history."""

    best_genome: dict
    best_fitness: float
    history: list[dict]            #: per generation: best/mean fitness, genome
    evaluations: int               #: simulated genome evaluations (cache misses)
    campaign: CampaignResult | None = None  #: last generation's raw records

    def report(self) -> str:
        """Human-readable best-genome report."""
        lines = [f"best fitness {self.best_fitness:.6g} after "
                 f"{len(self.history)} generations "
                 f"({self.evaluations} simulated evaluations)"]
        for k, v in sorted(self.best_genome.items()):
            lines.append(f"  {k} = {v}")
        return "\n".join(lines)


def evolve(scenario: str, space: Sequence[Axis], objective: str,
           mode: str = "min", population: int = 12, generations: int = 8,
           replications: int = 3, base: Mapping[str, Any] | None = None,
           root_seed: int = 0, workers: int = 1, tournament: int = 3,
           mutation_rate: float = 0.3, crossover_rate: float = 0.7,
           elite: int = 1, timeout: float | None = None,
           progress: Callable[[str], None] | None = None) -> EvolutionResult:
    """Run the generational GA; returns the best genome found.

    Fitness of a genome = mean of *objective* over ``replications``
    campaign runs of *scenario* with the genome's parameters (merged over
    *base*).  ``mode`` is ``min`` or ``max``.
    """
    if mode not in ("min", "max"):
        raise ConfigurationError(f"mode must be min or max, got {mode!r}")
    if population < 2 or generations < 1:
        raise ConfigurationError("need population >= 2 and generations >= 1")
    if not space:
        raise ConfigurationError("search space is empty")
    if not 1 <= tournament <= population:
        raise ConfigurationError(
            f"tournament size must be in [1, population], got {tournament}")
    sign = 1.0 if mode == "min" else -1.0
    rng = StreamFactory(root_seed).spawn("evolve")
    init_s = rng.stream("init")
    select_s = rng.stream("select")
    cross_s = rng.stream("crossover")
    mutate_s = rng.stream("mutate")

    pop: list[dict] = [{ax.name: ax.sample(init_s) for ax in space}
                       for _ in range(population)]
    cache: dict[str, float] = {}
    history: list[dict] = []
    evaluations = 0
    last_campaign: CampaignResult | None = None

    for gen in range(generations):
        fresh = []
        seen_keys = set()
        for g in pop:
            key = point_key(g)
            if key not in cache and key not in seen_keys:
                seen_keys.add(key)
                fresh.append(g)
        if fresh:
            # One campaign evaluates every new genome this generation; the
            # grid is the genome list itself (axis "genome" = index), so
            # replication seeds are shared across genomes (CRN).
            seeds = CampaignSpec(scenario, replications=replications,
                                 root_seed=root_seed).replication_seeds()
            runs = []
            for point, genome in enumerate(fresh):
                params = dict(base or {})
                params.update(genome)
                frozen = tuple(sorted(params.items()))
                for rep, seed in enumerate(seeds):
                    runs.append(RunSpec(index=len(runs), scenario=scenario,
                                        params=frozen, point=point,
                                        replication=rep, seed=seed))
            result = run_specs(runs, workers=workers, timeout=timeout)
            last_campaign = result
            evaluations += len(fresh)
            for point, genome in enumerate(fresh):
                recs = [r for r in result.records if r.point == point]
                scores = [sign * evaluate_objective(objective, r.metrics)
                          for r in recs if r.status == "ok"]
                cache[point_key(genome)] = (sum(scores) / len(scores)
                                            if scores else math.inf)
        fitness = [cache[point_key(g)] for g in pop]
        order = sorted(range(population), key=lambda i: fitness[i])
        best_i = order[0]
        history.append({
            "generation": gen,
            "best_fitness": sign * fitness[best_i],
            "mean_fitness": sign * (sum(fitness) / population)
            if all(math.isfinite(f) for f in fitness) else math.nan,
            "best_genome": dict(pop[best_i]),
        })
        if progress is not None:
            progress(f"[evolve] gen {gen}: best "
                     f"{history[-1]['best_fitness']:.6g} "
                     f"({evaluations} evals)")
        if gen == generations - 1:
            break

        def pick() -> dict:
            contestants = [select_s.randint(0, population - 1)
                           for _ in range(tournament)]
            return pop[min(contestants, key=lambda i: fitness[i])]

        next_pop = [dict(pop[i]) for i in order[:elite]]
        while len(next_pop) < population:
            a, b = pick(), pick()
            child = {}
            do_cross = cross_s.bernoulli(crossover_rate)
            for ax in space:
                src = (b if do_cross and cross_s.bernoulli(0.5) else a)
                child[ax.name] = src[ax.name]
                if mutate_s.bernoulli(mutation_rate):
                    child[ax.name] = ax.mutate(child[ax.name], mutate_s)
            next_pop.append(child)
        pop = next_pop

    best_key = min(cache, key=cache.get)
    best_fit = cache[best_key]
    best_params = json.loads(best_key)
    best_genome = {ax.name: best_params[ax.name] for ax in space
                   if ax.name in best_params}
    return EvolutionResult(best_genome=best_genome,
                           best_fitness=sign * best_fit,
                           history=history, evaluations=evaluations,
                           campaign=last_campaign)
