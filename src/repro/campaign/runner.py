"""Process-pool campaign runner — fan runs across cores, deterministically.

The one shape of multi-core parallelism CPython gives a discrete-event
simulator for free is *run-level*: independent replications share nothing,
so each can own a whole process.  This runner implements that with an
explicit worker protocol rather than ``multiprocessing.Pool`` because the
campaign needs three things Pool does not give cleanly:

* **per-run timeout + retry** — a hung run is killed (its worker is
  terminated and respawned) and retried up to ``retries`` times, without
  poisoning the rest of the campaign;
* **chunked dispatch with backpressure** — at most ``workers × chunksize``
  runs are enqueued ahead, so a million-cell matrix never materializes in
  the task queue;
* **deterministic results** — records are reassembled by run index, so the
  output is byte-identical whatever order workers finish in (and identical
  to a serial run, since every run's RNG seed is baked into its
  :class:`~repro.campaign.spec.RunSpec` before dispatch).

Worker protocol (all messages are tuples of picklable builtins)::

    parent -> tasks  : (index, scenario, params, point, rep, seed, attempt)
    parent -> tasks  : None                          # shutdown sentinel
    worker -> results: ("start", worker_id, index, attempt)
    worker -> results: ("done",  worker_id, index, attempt, record_dict)

The parent clocks a run from its ``start`` message; a run that exceeds
``timeout`` wall seconds gets its worker terminated (the worker is mid-
scenario, not holding a queue lock) and a fresh worker spawned in its
place.  Stale ``done`` messages from a terminated attempt are dropped by
matching on ``(index, attempt)``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import traceback
from collections import deque
from queue import Empty
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Sequence

from ..core.errors import ConfigurationError
from .scenarios import run_scenario
from .spec import CampaignSpec, RunSpec
from .stats import MetricSummary, summarize, summarize_points

__all__ = ["RunRecord", "CampaignResult", "run_campaign", "run_specs"]


@dataclass(slots=True)
class RunRecord:
    """Outcome of one run — plain picklable data, no live references."""

    index: int
    scenario: str
    params: tuple
    point: int
    replication: int
    seed: int
    status: str = "ok"          #: ok | failed | timeout
    attempts: int = 1
    worker: int = -1            #: worker id, -1 for in-process (serial)
    wall_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def params_dict(self) -> dict[str, Any]:
        """The parameter assignment as a plain dict."""
        return dict(self.params)

    def canonical(self) -> dict:
        """The deterministic identity of this run: everything that must be
        byte-identical between serial and parallel execution (wall times,
        worker ids, and retry counts are excluded by construction)."""
        return {"index": self.index, "scenario": self.scenario,
                "params": list(self.params), "point": self.point,
                "replication": self.replication, "seed": self.seed,
                "status": self.status, "metrics": self.metrics}


def _task_tuple(spec: RunSpec, attempt: int) -> tuple:
    return (spec.index, spec.scenario, spec.params, spec.point,
            spec.replication, spec.seed, attempt)


def _execute(task: tuple, worker: int) -> RunRecord:
    """Run one task tuple to a finished record (shared serial/worker path)."""
    index, scenario, params, point, rep, seed, attempt = task
    rec = RunRecord(index=index, scenario=scenario, params=params,
                    point=point, replication=rep, seed=seed,
                    attempts=attempt, worker=worker)
    t0 = perf_counter()
    try:
        metrics, telemetry = run_scenario(scenario, dict(params), seed)
        rec.metrics = dict(metrics)
        rec.telemetry = dict(telemetry)
    except Exception:
        rec.status = "failed"
        rec.error = traceback.format_exc(limit=20)
    rec.wall_seconds = perf_counter() - t0
    return rec


def _worker_main(worker_id: int, tasks, results) -> None:  # pragma: no cover
    # Covered via subprocesses; coverage tooling does not see this frame.
    while True:
        task = tasks.get()
        if task is None:
            break
        results.put(("start", worker_id, task[0], task[6]))
        rec = _execute(task, worker_id)
        results.put(("done", worker_id, task[0], task[6], rec))


@dataclass
class CampaignResult:
    """All run records (in matrix order) plus campaign-level accounting."""

    records: list[RunRecord]
    workers: int
    wall_seconds: float
    timeouts: int = 0
    retries_used: int = 0

    @property
    def n_ok(self) -> int:
        """Runs that completed successfully."""
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def failures(self) -> list[RunRecord]:
        """Records that did not finish with status ``ok``."""
        return [r for r in self.records if r.status != "ok"]

    def summaries(self, metrics: Sequence[str] | None = None,
                  level: float = 0.95) -> dict[str, MetricSummary]:
        """Cross-run statistics pooled over the whole campaign."""
        return summarize(self.records, metrics, level)

    def point_summaries(self, metrics: Sequence[str] | None = None,
                        level: float = 0.95
                        ) -> dict[int, dict[str, MetricSummary]]:
        """Cross-run statistics per grid point."""
        return summarize_points(self.records, metrics, level)

    def metrics_bytes(self) -> bytes:
        """Canonical bytes of the deterministic record content.

        Equal bytes ⇔ identical per-seed results; the E10 benchmark gate
        compares serial vs parallel executions with this.
        """
        return json.dumps([r.canonical() for r in self.records],
                          sort_keys=True,
                          separators=(",", ":")).encode("utf-8")


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 chunksize: int | None = None, mp_context: str | None = None,
                 progress: Callable[[str], None] | None = None
                 ) -> CampaignResult:
    """Expand *spec* and execute its run matrix (see :func:`run_specs`)."""
    return run_specs(spec.expand(), workers=workers, timeout=timeout,
                     retries=retries, chunksize=chunksize,
                     mp_context=mp_context, progress=progress)


def run_specs(runs: Sequence[RunSpec], workers: int = 1,
              timeout: float | None = None, retries: int = 1,
              chunksize: int | None = None, mp_context: str | None = None,
              progress: Callable[[str], None] | None = None
              ) -> CampaignResult:
    """Execute an explicit list of runs; records come back in run order.

    ``workers <= 1`` runs everything in-process (no pool, no pickling) —
    that is both the speedup baseline and the determinism reference.
    Per-run ``timeout`` applies only under the pool (a serial run cannot
    be preempted); ``retries`` is the number of *extra* attempts granted
    to a run that failed, timed out, or lost its worker.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    t0 = perf_counter()
    if workers <= 1 or len(runs) <= 1:
        records = [_execute(_task_tuple(s, 1), -1) for s in runs]
        return CampaignResult(records=records, workers=1,
                              wall_seconds=perf_counter() - t0)
    return _run_pool(runs, workers, timeout, retries, chunksize,
                     mp_context, progress, t0)


def _run_pool(runs: Sequence[RunSpec], workers: int, timeout: float | None,
              retries: int, chunksize: int | None, mp_context: str | None,
              progress: Callable[[str], None] | None,
              t0: float) -> CampaignResult:
    if mp_context is None:
        # fork shares the already-imported interpreter (cheap, inherits
        # test-registered scenarios); fall back to spawn where unavailable.
        mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(mp_context)
    workers = min(workers, len(runs))
    window = workers * (chunksize if chunksize else
                        max(2, min(32, len(runs) // workers or 1)))

    tasks = ctx.Queue()
    results = ctx.Queue()
    pool: dict[int, Any] = {}
    running: dict[int, tuple[int, int, float]] = {}  # wid -> (idx, att, t)
    next_wid = 0

    def spawn_worker() -> None:
        nonlocal next_wid
        wid = next_wid
        next_wid += 1
        proc = ctx.Process(target=_worker_main, args=(wid, tasks, results),
                           daemon=True, name=f"campaign-w{wid}")
        proc.start()
        pool[wid] = proc

    pending = deque(_task_tuple(s, 1) for s in runs)
    attempts = {s.index: 1 for s in runs}
    done: dict[int, RunRecord] = {}
    by_index = {s.index: s for s in runs}
    timeouts = 0
    retries_used = 0
    in_flight = [0]  # enqueued-but-unfinished runs (the dispatch window)

    def dispatch() -> None:
        while pending and in_flight[0] < window:
            tasks.put(pending.popleft())
            in_flight[0] += 1

    def give_up(idx: int, status: str, err: str) -> None:
        s = by_index[idx]
        done[idx] = RunRecord(index=idx, scenario=s.scenario, params=s.params,
                              point=s.point, replication=s.replication,
                              seed=s.seed, status=status,
                              attempts=attempts[idx], error=err)

    def reap_or_retry(idx: int, status: str, err: str) -> None:
        nonlocal retries_used
        if attempts[idx] <= retries:
            attempts[idx] += 1
            retries_used += 1
            pending.append(_task_tuple(by_index[idx], attempts[idx]))
            in_flight[0] -= 1
            dispatch()
        else:
            in_flight[0] -= 1
            give_up(idx, status, err)

    try:
        for _ in range(workers):
            spawn_worker()
        dispatch()
        while len(done) < len(runs):
            try:
                msg = results.get(timeout=0.05)
            except Empty:  # no result yet — poll timers and worker liveness
                msg = None
            if msg is not None:
                kind, wid, idx, att = msg[0], msg[1], msg[2], msg[3]
                if att != attempts.get(idx) or idx in done:
                    continue  # stale message from a superseded attempt
                if kind == "start":
                    running[wid] = (idx, att, perf_counter())
                elif kind == "done":
                    running.pop(wid, None)
                    rec = msg[4]
                    if rec.status == "failed" and attempts[idx] <= retries:
                        reap_or_retry(idx, "failed", rec.error or "")
                    else:
                        in_flight[0] -= 1
                        done[idx] = rec
                        dispatch()
                    if progress is not None and len(done) % 25 == 0:
                        progress(f"[campaign] {len(done)}/{len(runs)} runs "
                                 f"done ({timeouts} timeouts)")
                continue
            now = perf_counter()
            if timeout is not None:
                for wid, (idx, att, started) in list(running.items()):
                    if now - started > timeout:
                        timeouts += 1
                        proc = pool.pop(wid)
                        proc.terminate()
                        proc.join(timeout=5.0)
                        running.pop(wid, None)
                        spawn_worker()
                        reap_or_retry(idx, "timeout",
                                      f"run exceeded {timeout}s wall timeout")
            for wid, proc in list(pool.items()):
                if not proc.is_alive():
                    pool.pop(wid)
                    crashed = running.pop(wid, None)
                    spawn_worker()
                    if crashed is not None:
                        idx = crashed[0]
                        reap_or_retry(idx, "failed",
                                      f"worker died (exitcode "
                                      f"{proc.exitcode})")
    finally:
        for _ in pool:
            tasks.put(None)
        deadline = perf_counter() + 5.0
        for proc in pool.values():
            proc.join(timeout=max(0.0, deadline - perf_counter()))
        for proc in pool.values():
            if proc.is_alive():
                proc.terminate()
        tasks.close()
        results.close()

    records = [done[s.index] for s in runs]
    return CampaignResult(records=records, workers=workers,
                          wall_seconds=perf_counter() - t0,
                          timeouts=timeouts, retries_used=retries_used)
