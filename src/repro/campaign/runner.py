"""Process-pool campaign runner — fan runs across cores, deterministically.

The one shape of multi-core parallelism CPython gives a discrete-event
simulator for free is *run-level*: independent replications share nothing,
so each can own a whole process.  This runner implements that with an
explicit worker protocol rather than ``multiprocessing.Pool`` because the
campaign needs three things Pool does not give cleanly:

* **per-run timeout + retry** — a hung run is killed (its worker is
  terminated and respawned) and retried up to ``retries`` times, without
  poisoning the rest of the campaign;
* **bounded dispatch with backpressure** — at most ``chunksize`` runs are
  queued ahead per worker, so a million-cell matrix never materializes in
  the pipes;
* **deterministic results** — records are reassembled by run index, so the
  output is byte-identical whatever order workers finish in (and identical
  to a serial run, since every run's RNG seed is baked into its
  :class:`~repro.campaign.spec.RunSpec` before dispatch).

Every worker owns a private pair of pipes (parent→worker tasks,
worker→parent results) — there is no shared queue.  That isolation is
what makes ``terminate()`` safe: a worker killed mid-message can only
corrupt its own pipes, which the parent discards with it, never a lock
or buffer other workers depend on.  Worker protocol (all messages are
tuples of picklable builtins)::

    parent -> worker : (index, scenario, params, point, rep, seed, attempt)
    parent -> worker : None                          # shutdown sentinel
    worker -> parent : ("start", index, attempt)
    worker -> parent : ("beat",  index, attempt, snapshot)   # heartbeat
    worker -> parent : ("done",  index, attempt, record)

The parent remembers, in dispatch order, every task it sent to each
worker, so nothing is ever lost: a run that exceeds ``timeout`` wall
seconds (clocked from its ``start`` message) gets its worker terminated
and is retried or recorded as ``timeout``; tasks queued behind it that
never started are re-dispatched without consuming an attempt; a worker
that dies silently — even before sending ``start`` — is detected by the
liveness sweep and its in-flight task retried.  Before terminating a
timed-out worker the parent drains that worker's result pipe once more,
so a run completing at the last instant is recorded, not killed.

Observability rides the same protocol.  Each run executes with a fresh
metrics :class:`~repro.obs.metrics.Registry` and a flight-recorder ring;
the registry dump and the run's telemetry snapshot come back inside the
``done`` record, and ``beat`` frames (when ``heartbeat`` is set) carry
live rate snapshots plus the recorder's tail — so the parent can flag a
stalled worker well before its hard timeout and can write a *partial*
post-mortem for a worker that died too hard to dump its own.  A worker
killed by the parent's ``terminate()`` dumps its full ring itself via
the SIGTERM handler installed at worker start (``recorder_dir`` names
where these JSONL artifacts land).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from time import perf_counter
from typing import Any, Callable, Sequence

from ..core.errors import ConfigurationError
from ..obs.metrics import Registry
from ..obs.recorder import (FlightRecorder, arm_postmortem,
                            disarm_postmortem, install_term_handler)
from .scenarios import (clear_run_observation, configure_run_observation,
                        run_scenario)
from .spec import CampaignSpec, RunSpec
from .stats import MetricSummary, summarize, summarize_points
from .telemetry import CampaignTelemetry, aggregate_telemetry

__all__ = ["RunRecord", "CampaignResult", "run_campaign", "run_specs"]

#: default flight-recorder ring capacity (last N firings kept per run)
DEFAULT_RECORDER_EVENTS = 256


@dataclass(slots=True)
class RunRecord:
    """Outcome of one run — plain picklable data, no live references."""

    index: int
    scenario: str
    params: tuple
    point: int
    replication: int
    seed: int
    status: str = "ok"          #: ok | failed | timeout
    attempts: int = 1
    worker: int = -1            #: worker id, -1 for in-process (serial)
    wall_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)
    #: per-run metrics registry dump (``Registry.dump()`` — plain builtins);
    #: wall-clock dependent, so excluded from :meth:`canonical`.
    obs_metrics: list = field(default_factory=list)
    #: flight-recorder post-mortem JSONL, when this run left one behind
    recorder_path: str | None = None
    error: str | None = None

    @property
    def params_dict(self) -> dict[str, Any]:
        """The parameter assignment as a plain dict."""
        return dict(self.params)

    def canonical(self) -> dict:
        """The deterministic identity of this run: everything that must be
        byte-identical between serial and parallel execution (wall times,
        worker ids, and retry counts are excluded by construction)."""
        return {"index": self.index, "scenario": self.scenario,
                "params": list(self.params), "point": self.point,
                "replication": self.replication, "seed": self.seed,
                "status": self.status, "metrics": self.metrics}


def _task_tuple(spec: RunSpec, attempt: int) -> tuple:
    return (spec.index, spec.scenario, spec.params, spec.point,
            spec.replication, spec.seed, attempt)


def _flight_path(recorder_dir: str | None, index: int, attempt: int,
                 partial: bool = False) -> str | None:
    """Where run *index* attempt *attempt* dumps its flight recorder."""
    if recorder_dir is None:
        return None
    stem = f"flight_run{index:05d}_a{attempt}"
    if partial:
        stem += ".partial"
    return os.path.join(recorder_dir, stem + ".jsonl")


def _execute(task: tuple, worker: int, heartbeat: float | None = None,
             recorder_dir: str | None = None,
             recorder_events: int = DEFAULT_RECORDER_EVENTS,
             beat_send: Callable[[tuple], None] | None = None) -> RunRecord:
    """Run one task tuple to a finished record (shared serial/worker path)."""
    index, scenario, params, point, rep, seed, attempt = task
    rec = RunRecord(index=index, scenario=scenario, params=params,
                    point=point, replication=rep, seed=seed,
                    attempts=attempt, worker=worker)
    registry = Registry()
    recorder = FlightRecorder(recorder_events)
    dump_path = _flight_path(recorder_dir, index, attempt)
    extra = {"run_index": index, "attempt": attempt, "scenario": scenario,
             "worker": worker}
    if dump_path is not None:
        # Armed for the whole run: if this process is terminated mid-run,
        # the SIGTERM handler dumps the ring to dump_path on the way out.
        arm_postmortem(recorder, dump_path, extra)
    beat_hook = None
    if beat_send is not None:
        def beat_hook(snap: dict) -> None:
            tail = recorder.snapshot()[-8:]
            payload = dict(snap)
            payload["recorder_tail"] = tail
            payload["last_handler"] = tail[-1]["handler"] if tail else None
            try:
                beat_send(("beat", index, attempt, payload))
            except OSError:
                pass  # parent went away; the run still finishes locally
    configure_run_observation(heartbeat=heartbeat, beat_hook=beat_hook,
                              registry=registry, recorder=recorder)
    t0 = perf_counter()
    try:
        metrics, telemetry = run_scenario(scenario, dict(params), seed)
        rec.metrics = dict(metrics)
        rec.telemetry = dict(telemetry)
    except Exception:
        rec.status = "failed"
        rec.error = traceback.format_exc(limit=20)
        if dump_path is not None:
            try:
                rec.recorder_path = recorder.dump(dump_path, "exception",
                                                  extra)
            except OSError:
                pass
    finally:
        clear_run_observation()
        if dump_path is not None:
            disarm_postmortem()
    rec.obs_metrics = registry.dump()
    rec.wall_seconds = perf_counter() - t0
    return rec


def _worker_main(worker_id: int, task_r, res_w, heartbeat: float | None = None,
                 recorder_dir: str | None = None,
                 recorder_events: int = DEFAULT_RECORDER_EVENTS
                 ) -> None:  # pragma: no cover
    # Covered via subprocesses; coverage tooling does not see this frame.
    install_term_handler()
    while True:
        try:
            task = task_r.recv()
        except EOFError:
            break
        if task is None:
            break
        res_w.send(("start", task[0], task[6]))
        rec = _execute(task, worker_id, heartbeat=heartbeat,
                       recorder_dir=recorder_dir,
                       recorder_events=recorder_events,
                       beat_send=res_w.send)
        res_w.send(("done", task[0], task[6], rec))


@dataclass
class _Worker:
    """Parent-side view of one worker process and its private pipes."""

    proc: Any
    task_w: Any                 #: send end of the parent→worker task pipe
    res_r: Any                  #: recv end of the worker→parent result pipe
    #: dispatched-but-unfinished ``[index, attempt, started]`` entries in
    #: send order; ``started`` is None until the ``start`` message arrives.
    queue: deque = field(default_factory=deque)
    #: latest heartbeat frame ``(index, attempt, payload)`` from this worker
    beat: tuple | None = None
    #: wall stamp of the last start/beat/done frame (stall detection)
    progress_t: float = 0.0


@dataclass
class CampaignResult:
    """All run records (in matrix order) plus campaign-level accounting."""

    records: list[RunRecord]
    workers: int
    wall_seconds: float
    timeouts: int = 0
    retries_used: int = 0
    worker_deaths: int = 0
    stalls: int = 0
    #: fleet rollups (per-worker/per-point rates, merged metrics registry)
    telemetry: CampaignTelemetry | None = None

    @property
    def n_ok(self) -> int:
        """Runs that completed successfully."""
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def failures(self) -> list[RunRecord]:
        """Records that did not finish with status ``ok``."""
        return [r for r in self.records if r.status != "ok"]

    def summaries(self, metrics: Sequence[str] | None = None,
                  level: float = 0.95) -> dict[str, MetricSummary]:
        """Cross-run statistics pooled over the whole campaign."""
        return summarize(self.records, metrics, level)

    def point_summaries(self, metrics: Sequence[str] | None = None,
                        level: float = 0.95
                        ) -> dict[int, dict[str, MetricSummary]]:
        """Cross-run statistics per grid point."""
        return summarize_points(self.records, metrics, level)

    def metrics_bytes(self) -> bytes:
        """Canonical bytes of the deterministic record content.

        Equal bytes ⇔ identical per-seed results; the E10 benchmark gate
        compares serial vs parallel executions with this.
        """
        return json.dumps([r.canonical() for r in self.records],
                          sort_keys=True,
                          separators=(",", ":")).encode("utf-8")


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 chunksize: int | None = None, mp_context: str | None = None,
                 progress: Callable[[str], None] | None = None,
                 heartbeat: float | None = None,
                 stall_after: float | None = None,
                 recorder_dir: str | None = None,
                 recorder_events: int = DEFAULT_RECORDER_EVENTS
                 ) -> CampaignResult:
    """Expand *spec* and execute its run matrix (see :func:`run_specs`)."""
    return run_specs(spec.expand(), workers=workers, timeout=timeout,
                     retries=retries, chunksize=chunksize,
                     mp_context=mp_context, progress=progress,
                     heartbeat=heartbeat, stall_after=stall_after,
                     recorder_dir=recorder_dir,
                     recorder_events=recorder_events)


def run_specs(runs: Sequence[RunSpec], workers: int = 1,
              timeout: float | None = None, retries: int = 1,
              chunksize: int | None = None, mp_context: str | None = None,
              progress: Callable[[str], None] | None = None,
              heartbeat: float | None = None,
              stall_after: float | None = None,
              recorder_dir: str | None = None,
              recorder_events: int = DEFAULT_RECORDER_EVENTS
              ) -> CampaignResult:
    """Execute an explicit list of runs; records come back in run order.

    ``workers <= 1`` runs everything in-process (no pool, no pickling) —
    that is both the speedup baseline and the determinism reference.
    Per-run ``timeout`` applies only under the pool (a serial run cannot
    be preempted); ``retries`` is the number of *extra* attempts granted
    to a run that failed, timed out, or lost its worker; ``chunksize``
    bounds how many runs may be queued ahead at each worker.

    Observability knobs: ``heartbeat`` makes each run emit telemetry
    progress lines every that many wall seconds *and* (under the pool)
    ship live "beat" frames to the parent; ``stall_after`` flags — via
    ``progress`` — a worker whose current run has shown no start/beat
    progress for that long (defaults to ``max(5·heartbeat, 1.0)`` when a
    heartbeat is set, otherwise off); ``recorder_dir`` enables flight-
    recorder post-mortem JSONL dumps for runs that raise, time out, or
    lose their worker, ``recorder_events`` sizing the ring.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    if recorder_dir is not None:
        os.makedirs(recorder_dir, exist_ok=True)
    t0 = perf_counter()
    if workers <= 1 or len(runs) <= 1:
        records = [_execute(_task_tuple(s, 1), -1, heartbeat=heartbeat,
                            recorder_dir=recorder_dir,
                            recorder_events=recorder_events)
                   for s in runs]
        result = CampaignResult(records=records, workers=1,
                                wall_seconds=perf_counter() - t0)
        result.telemetry = aggregate_telemetry(
            records, wall_seconds=result.wall_seconds)
        return result
    return _run_pool(runs, workers, timeout, retries, chunksize,
                     mp_context, progress, t0, heartbeat, stall_after,
                     recorder_dir, recorder_events)


def _write_partial_dump(path: str, payload: dict, reason: str,
                        extra: dict) -> str | None:
    """Write a parent-side partial flight dump from a worker's last beat.

    The ring's tail travelled inside the heartbeat frame, so even a worker
    that died without any chance to clean up (``SIGKILL``, ``os._exit``)
    leaves an artifact naming its last known handler.
    """
    tail = payload.get("recorder_tail") or []
    header = {"record": "flight-recorder", "reason": reason, "partial": True,
              "events": len(tail),
              "last_handler": payload.get("last_handler")}
    header.update(extra)
    try:
        with open(path, "w") as fp:
            fp.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in tail:
                fp.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError:
        return None
    return path


def _run_pool(runs: Sequence[RunSpec], workers: int, timeout: float | None,
              retries: int, chunksize: int | None, mp_context: str | None,
              progress: Callable[[str], None] | None,
              t0: float, heartbeat: float | None = None,
              stall_after: float | None = None,
              recorder_dir: str | None = None,
              recorder_events: int = DEFAULT_RECORDER_EVENTS
              ) -> CampaignResult:
    if mp_context is None:
        # fork shares the already-imported interpreter (cheap, inherits
        # test-registered scenarios); fall back to spawn where unavailable.
        mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(mp_context)
    workers = min(workers, len(runs))
    depth = (chunksize if chunksize else
             max(2, min(32, len(runs) // workers or 1)))
    if stall_after is None and heartbeat is not None:
        stall_after = max(5.0 * heartbeat, 1.0)

    pool: dict[int, _Worker] = {}
    next_wid = 0

    def spawn_worker() -> None:
        nonlocal next_wid
        wid = next_wid
        next_wid += 1
        task_r, task_w = ctx.Pipe(duplex=False)
        res_r, res_w = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(wid, task_r, res_w, heartbeat,
                                 recorder_dir, recorder_events),
                           daemon=True, name=f"campaign-w{wid}")
        proc.start()
        # Close the worker-side ends in the parent so the worker's death
        # is the only thing keeping them open (recv then raises EOFError).
        task_r.close()
        res_w.close()
        pool[wid] = _Worker(proc, task_w, res_r, progress_t=perf_counter())

    pending = deque(_task_tuple(s, 1) for s in runs)
    attempts = {s.index: 1 for s in runs}
    done: dict[int, RunRecord] = {}
    by_index = {s.index: s for s in runs}
    timeouts = 0
    retries_used = 0
    worker_deaths = 0
    stalls = 0
    stall_flagged: set[tuple[int, int]] = set()  # (index, attempt) pairs
    reported = [0]  # len(done) at the last progress emission

    def emit_progress() -> None:
        # Only on a newly added record — a retry does not grow done, and
        # re-announcing the same count would duplicate lines.
        if (progress is not None and len(done) != reported[0]
                and len(done) % 25 == 0):
            reported[0] = len(done)
            progress(f"[campaign] {len(done)}/{len(runs)} runs "
                     f"done ({timeouts} timeouts)")

    def dispatch() -> None:
        while pending:
            sent = False
            for w in sorted(pool.values(), key=lambda w: len(w.queue)):
                if not pending:
                    break
                if not w.proc.is_alive() or len(w.queue) >= depth:
                    continue
                task = pending[0]
                try:
                    w.task_w.send(task)
                except OSError:
                    continue  # dying worker; the liveness sweep reconciles it
                pending.popleft()
                w.queue.append([task[0], task[6], None])
                sent = True
            if not sent:
                return

    def give_up(idx: int, status: str, err: str, wid: int = -1) -> None:
        s = by_index[idx]
        rec = RunRecord(index=idx, scenario=s.scenario, params=s.params,
                        point=s.point, replication=s.replication,
                        seed=s.seed, status=status,
                        attempts=attempts[idx], worker=wid, error=err)
        # A terminated worker dumped its full ring via SIGTERM; a dead one
        # may have left a parent-written partial.  Either way, point at it.
        for partial in (False, True):
            path = _flight_path(recorder_dir, idx, attempts[idx], partial)
            if path is not None and os.path.exists(path):
                rec.recorder_path = path
                break
        done[idx] = rec
        emit_progress()

    def reap_or_retry(idx: int, status: str, err: str, wid: int = -1) -> None:
        nonlocal retries_used
        if attempts[idx] <= retries:
            attempts[idx] += 1
            retries_used += 1
            pending.append(_task_tuple(by_index[idx], attempts[idx]))
        else:
            give_up(idx, status, err, wid)
        # Unconditional: a terminal give-up frees a dispatch slot exactly
        # like a completion does — without this refill, a campaign whose
        # window filled with given-up runs would stall forever.
        dispatch()

    def handle(w: _Worker, msg: tuple) -> None:
        kind, idx, att = msg[0], msg[1], msg[2]
        head = w.queue[0] if w.queue else None
        if head is None or head[0] != idx or head[1] != att:
            return  # defensive: messages are FIFO per worker, so the
            # head is always the run in progress; anything else is stale
        w.progress_t = perf_counter()
        if kind == "start":
            head[2] = w.progress_t
        elif kind == "beat":
            w.beat = (idx, att, msg[3])
        elif kind == "done":
            w.queue.popleft()
            rec = msg[3]
            if rec.status == "failed" and attempts[idx] <= retries:
                reap_or_retry(idx, "failed", rec.error or "")
            else:
                done[idx] = rec
                emit_progress()
                dispatch()

    def drain(w: _Worker) -> None:
        """Process every result already in *w*'s pipe without blocking."""
        while True:
            try:
                if not w.res_r.poll():
                    return
                msg = w.res_r.recv()
            except (EOFError, OSError):
                return  # dead worker / partial message; sweeps reconcile
            handle(w, msg)

    def retire(wid: int) -> None:
        """Drop a worker's pipes and re-dispatch its unstarted backlog.

        Tasks queued behind the head never ran, so they go back to the
        *front* of pending with their attempt count untouched; the head
        (if any) is the caller's to reap or retry.
        """
        w = pool.pop(wid)
        for conn in (w.task_w, w.res_r):
            try:
                conn.close()
            except OSError:
                pass
        backlog = list(w.queue)[1:]
        for idx, att, _ in reversed(backlog):
            pending.appendleft(_task_tuple(by_index[idx], att))

    try:
        for _ in range(workers):
            spawn_worker()
        dispatch()
        while len(done) < len(runs):
            conns = {w.res_r: w for w in pool.values()}
            for conn in _wait_ready(list(conns), timeout=0.05):
                drain(conns[conn])
            now = perf_counter()
            if timeout is not None:
                for wid, w in list(pool.items()):
                    head = w.queue[0] if w.queue else None
                    if (head is None or head[2] is None
                            or now - head[2] <= timeout):
                        continue
                    # Close the completed-at-the-last-instant race: a
                    # 'done' already in the pipe beats the kill.
                    drain(w)
                    if not w.queue or w.queue[0] is not head:
                        continue
                    timeouts += 1
                    w.proc.terminate()
                    w.proc.join(timeout=5.0)
                    retire(wid)
                    spawn_worker()
                    reap_or_retry(head[0], "timeout",
                                  f"run exceeded {timeout}s wall timeout",
                                  wid)
            if stall_after is not None:
                for wid, w in pool.items():
                    head = w.queue[0] if w.queue else None
                    if head is None or head[2] is None:
                        continue  # nothing started: dispatch idle, not stall
                    key = (head[0], head[1])
                    if key in stall_flagged:
                        continue
                    quiet = now - max(w.progress_t, head[2])
                    if quiet <= stall_after:
                        continue
                    stall_flagged.add(key)
                    stalls += 1
                    last = ""
                    if w.beat is not None and w.beat[:2] == key:
                        handler = w.beat[2].get("last_handler")
                        if handler:
                            last = f", last handler {handler}"
                    if progress is not None:
                        progress(f"[campaign] worker {wid} stalled on run "
                                 f"{head[0]} (attempt {head[1]}): no "
                                 f"progress for {quiet:.1f}s{last}")
            for wid, w in list(pool.items()):
                if w.proc.is_alive():
                    continue
                drain(w)  # results sent before the crash still count
                exitcode = w.proc.exitcode
                head = w.queue[0] if w.queue else None
                retire(wid)
                spawn_worker()
                worker_deaths += 1
                if head is not None:
                    if recorder_dir is not None and w.beat is not None \
                            and w.beat[:2] == (head[0], head[1]):
                        # The worker died too hard to dump its own ring;
                        # reconstruct a partial from its last beat frame.
                        _write_partial_dump(
                            _flight_path(recorder_dir, head[0], head[1],
                                         partial=True),
                            w.beat[2],
                            f"worker died (exitcode {exitcode})",
                            {"run_index": head[0], "attempt": head[1],
                             "worker": wid})
                    reap_or_retry(head[0], "failed",
                                  f"worker died (exitcode {exitcode})", wid)
                else:
                    dispatch()
    finally:
        for w in pool.values():
            try:
                w.task_w.send(None)
            except OSError:
                pass
        deadline = perf_counter() + 5.0
        for w in pool.values():
            w.proc.join(timeout=max(0.0, deadline - perf_counter()))
        for w in pool.values():
            if w.proc.is_alive():
                w.proc.terminate()
        for w in pool.values():
            for conn in (w.task_w, w.res_r):
                try:
                    conn.close()
                except OSError:
                    pass

    records = [done[s.index] for s in runs]
    result = CampaignResult(records=records, workers=workers,
                            wall_seconds=perf_counter() - t0,
                            timeouts=timeouts, retries_used=retries_used,
                            worker_deaths=worker_deaths, stalls=stalls)
    result.telemetry = aggregate_telemetry(
        records, wall_seconds=result.wall_seconds, timeouts=timeouts,
        retries_used=retries_used, worker_deaths=worker_deaths,
        stalls=stalls)
    return result
