"""Campaign specs — expand a scenario into a deterministic run matrix.

A campaign is *seed ranges × parameter grids*: every grid point (one
combination of parameter values) is replicated ``replications`` times, and
every replication gets its own RNG universe derived from the campaign's
root seed via :meth:`repro.core.rng.StreamFactory.spawn`.

Two deliberate properties of the seed derivation:

* **Reconstructible anywhere.**  A run's seed is a pure function of
  ``(root_seed, replication)``, so a worker process rebuilds the exact
  stream universe from two plain integers — nothing live crosses the
  process boundary.
* **Common random numbers across grid points.**  Replication *r* uses the
  same spawned seed at *every* grid point, so comparing two parameter
  settings (two scheduler policies, two replica counts) pairs their runs
  on identical randomness — the classic variance-reduction discipline the
  RNG module is built around.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.rng import StreamFactory

__all__ = ["RunSpec", "CampaignSpec", "point_key", "describe_params"]


def point_key(params: Mapping[str, Any]) -> str:
    """Canonical string identity of one grid point (sorted-key JSON)."""
    return json.dumps(dict(params), sort_keys=True, default=str)


def describe_params(params: Mapping[str, Any] | Sequence[tuple],
                    limit: int = 48) -> str:
    """Compact human label for a parameter assignment (``rho=0.6 c=2``).

    Used by progress lines and the campaign telemetry report, where the
    sorted-JSON :func:`point_key` is too noisy for a table cell.
    """
    items = sorted(dict(params).items())
    text = " ".join(f"{k}={v}" for k, v in items) or "(defaults)"
    return text if len(text) <= limit else text[:limit - 1] + "…"


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One cell of the run matrix — everything a worker needs, all picklable."""

    index: int          #: position in the expanded matrix (result order)
    scenario: str       #: registry name resolved inside the worker
    params: tuple       #: sorted (name, value) pairs — hashable & picklable
    point: int          #: grid-point index within the campaign
    replication: int    #: replication index within the point
    seed: int           #: spawned root seed for this run's StreamFactory

    @property
    def params_dict(self) -> dict[str, Any]:
        """The parameter assignment as a plain dict."""
        return dict(self.params)

    @property
    def spawn_key(self) -> str:
        """The spawn key this run's seed was derived with."""
        return f"rep:{self.replication}"


class CampaignSpec:
    """Scenario + base parameters + grid axes + replication count.

    ``grid`` maps parameter names to the values to sweep; the run matrix is
    the cartesian product of the axes (in the given axis order) times
    ``replications`` seeds.  ``base`` parameters apply to every point and
    are overridden by grid axes of the same name.
    """

    def __init__(self, scenario: str, base: Mapping[str, Any] | None = None,
                 grid: Mapping[str, Sequence[Any]] | None = None,
                 replications: int = 1, root_seed: int = 0) -> None:
        if replications < 1:
            raise ConfigurationError(
                f"replications must be >= 1, got {replications}")
        self.scenario = str(scenario)
        self.base = dict(base or {})
        self.grid = {str(k): list(v) for k, v in (grid or {}).items()}
        for name, values in self.grid.items():
            if not values:
                raise ConfigurationError(f"grid axis {name!r} is empty")
        self.replications = int(replications)
        self.root_seed = int(root_seed)

    def points(self) -> list[dict[str, Any]]:
        """All grid points as parameter dicts (base merged in), in order."""
        if not self.grid:
            return [dict(self.base)]
        names = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[n] for n in names)):
            p = dict(self.base)
            p.update(zip(names, combo))
            out.append(p)
        return out

    def replication_seeds(self) -> list[int]:
        """The spawned root seed of each replication (shared across points)."""
        root = StreamFactory(self.root_seed)
        return [root.spawn(f"rep:{r}").seed for r in range(self.replications)]

    def expand(self) -> list[RunSpec]:
        """The full run matrix: points × replications, deterministic order."""
        seeds = self.replication_seeds()
        runs: list[RunSpec] = []
        for point, params in enumerate(self.points()):
            frozen = tuple(sorted(params.items()))
            for rep, seed in enumerate(seeds):
                runs.append(RunSpec(index=len(runs), scenario=self.scenario,
                                    params=frozen, point=point,
                                    replication=rep, seed=seed))
        return runs

    def __len__(self) -> int:
        n_points = 1
        for values in self.grid.values():
            n_points *= len(values)
        return n_points * self.replications

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CampaignSpec {self.scenario!r} points="
                f"{len(self.points())} x{self.replications} "
                f"seed={self.root_seed}>")
