"""Output analysis: comparing simulation runs (the taxonomy's top UI tier).

The taxonomy's *visual output analyzer* axis distinguishes tools that only
plot from tools offering "analysis of the original output results of the
simulation, with possible comparison between different sets of results,
often from different simulation runs".  This module is that second
category, headless: run-to-run statistical comparison with proper
hypothesis tests, series reduction, and report rendering.

Typical use — is scheduler A really better than scheduler B, or is the
difference seed noise?::

    a = [run("predictive", seed).mean_response_time for seed in range(10)]
    b = [run("random", seed).mean_response_time for seed in range(10)]
    verdict = compare_samples("predictive", a, "random", b)
    print(verdict.render())
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .core.errors import ValidationError
from .core.monitor import Monitor, ascii_plot

__all__ = ["SampleComparison", "compare_samples", "compare_monitors",
           "reduce_series", "welch_t"]


def welch_t(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Welch's unequal-variance t-test; returns (t statistic, p value)."""
    xa, xb = np.asarray(a, float), np.asarray(b, float)
    if len(xa) < 2 or len(xb) < 2:
        raise ValidationError("need >= 2 samples per group for a t-test")
    from scipy import stats

    t, p = stats.ttest_ind(xa, xb, equal_var=False)
    return float(t), float(p)


@dataclass(frozen=True)
class SampleComparison:
    """Outcome of one two-sample comparison."""

    name_a: str
    name_b: str
    mean_a: float
    mean_b: float
    diff: float
    rel_diff: float
    t_stat: float
    p_value: float
    significant: bool

    @property
    def winner(self) -> str:
        """The smaller-mean side when significant, else 'tie'."""
        if not self.significant:
            return "tie"
        return self.name_a if self.mean_a < self.mean_b else self.name_b

    def render(self) -> str:
        """One-line human-readable verdict."""
        verdict = (f"{self.winner} is lower (p={self.p_value:.4f})"
                   if self.significant else
                   f"no significant difference (p={self.p_value:.4f})")
        return (f"{self.name_a}: {self.mean_a:.6g}  vs  "
                f"{self.name_b}: {self.mean_b:.6g}  "
                f"(Δ={self.diff:+.6g}, {self.rel_diff:+.2%}) — {verdict}")


def compare_samples(name_a: str, a: Sequence[float], name_b: str,
                    b: Sequence[float], alpha: float = 0.05) -> SampleComparison:
    """Welch-test two replication sets (e.g. per-seed means of two policies)."""
    if not 0 < alpha < 1:
        raise ValidationError("alpha must be in (0,1)")
    t, p = welch_t(a, b)
    ma, mb = float(np.mean(a)), float(np.mean(b))
    base = abs(mb) if mb else (abs(ma) or 1.0)
    return SampleComparison(name_a, name_b, ma, mb, ma - mb,
                            (ma - mb) / base, t, p, p < alpha)


def compare_monitors(a: Monitor, b: Monitor,
                     label_a: str = "A", label_b: str = "B") -> list[str]:
    """Line-by-line comparison of two monitors' shared collectors.

    Returns rendered lines — one per tally/level/counter present in both —
    with the relative change from *a* to *b*.  Collectors present in only
    one monitor are listed as such (a model change, worth noticing).
    """
    lines = [f"monitor comparison: {label_a} vs {label_b}"]
    sa, sb = a.summary(), b.summary()
    for key in sorted(set(sa) | set(sb)):
        if key not in sa:
            lines.append(f"  {key:<36} only in {label_b}")
            continue
        if key not in sb:
            lines.append(f"  {key:<36} only in {label_a}")
            continue
        for stat in sa[key]:
            va = sa[key][stat]
            vb = sb[key].get(stat, math.nan)
            if isinstance(va, float) and isinstance(vb, float) \
                    and not (math.isnan(va) or math.isnan(vb)):
                rel = (vb - va) / abs(va) if va else math.inf
                rel_s = f"{rel:+.1%}" if math.isfinite(rel) else "n/a"
                lines.append(f"  {key + '.' + stat:<36} "
                             f"{va:>12.6g} -> {vb:>12.6g}  ({rel_s})")
    return lines


def reduce_series(series: Sequence[tuple[float, float]], buckets: int = 20,
                  ) -> list[tuple[float, float]]:
    """Downsample a (time, value) step series to ~buckets points (bucket means).

    Simulation series can hold millions of points; plots and diffs only
    need the envelope.  Bucket boundaries are uniform in time; empty
    buckets inherit the previous value (step semantics).
    """
    if buckets < 1:
        raise ValidationError("buckets must be >= 1")
    pts = list(series)
    if len(pts) <= buckets:
        return pts
    t0, t1 = pts[0][0], pts[-1][0]
    if t1 <= t0:
        return [pts[-1]]
    width = (t1 - t0) / buckets
    out: list[tuple[float, float]] = []
    acc: list[float] = []
    edge = t0 + width
    last = pts[0][1]
    for t, v in pts:
        while t > edge and len(out) < buckets - 1:
            out.append((edge - width / 2, sum(acc) / len(acc) if acc else last))
            if acc:
                last = acc[-1]
            acc = []
            edge += width
        acc.append(v)
    out.append((t1 - width / 2, sum(acc) / len(acc) if acc else last))
    return out


def plot_series(series: Sequence[tuple[float, float]], label: str = "",
                width: int = 60, height: int = 15) -> str:
    """ASCII plot of a (time, value) series, downsampled to fit."""
    pts = reduce_series(series, buckets=width)
    return ascii_plot([t for t, _ in pts], [v for _, v in pts],
                      width=width, height=height, label=label)
