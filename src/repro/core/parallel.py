"""Distributed simulation: logical processes with conservative synchronization.

The taxonomy replaces Sulistio's serial/parallel split with
**centralized vs distributed** execution, and observes (citing Misra 1986
and Fujimoto 1993) that "despite over two decades of research, the
technology of distributed simulations has not significantly impressed the
general simulation community" — the overheads rarely pay off.  This module
lets benchmark E7 measure *why*, on real protocols:

* the model is partitioned into :class:`LogicalProcess` (LP) instances, each
  owning a private :class:`~repro.core.engine.Simulator` clock;
* LPs exchange timestamped messages over :class:`Channel` objects whose
  **lookahead** (minimum propagation delay — e.g. WAN link latency between
  simulated sites) bounds how far clocks may drift;
* three executors run the same partitioned model:

  :class:`SequentialExecutor`
      The centralized reference — globally lowest-timestamp-first, exactly
      one clock.  Any conservative executor must match its results.
  :class:`CMBExecutor`
      Chandy–Misra–Bryant null-message protocol (Misra 1986).  Counts the
      null messages; small lookahead ⇒ null-message storms, the classic
      failure mode.
  :class:`WindowExecutor`
      Synchronous-window ("YAWNS"-style) conservative execution: per epoch,
      all events in ``[W, W + lookahead)`` are independent and may run
      concurrently — optionally on a real thread pool, which also
      demonstrates the GIL-bound ceiling of threaded Python DES.

The optimistic half of the axis — Jefferson's Time Warp, with rollback,
anti-messages, and GVT-keyed fossil collection — lives in
:mod:`repro.core.optimistic` (:class:`~repro.core.optimistic.OptimisticExecutor`)
and builds on the :meth:`LogicalProcess.snapshot` / :meth:`LogicalProcess.restore`
state-saving protocol defined here.

All executors are deterministic: cross-LP message merge order is fixed by
``(receive time, source name, send sequence)``.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional, Sequence

from .engine import Simulator
from .errors import ConfigurationError, SchedulingError
from .events import Event, Priority

__all__ = [
    "Message",
    "Channel",
    "LogicalProcess",
    "ExecutionStats",
    "SequentialExecutor",
    "CMBExecutor",
    "WindowExecutor",
]


def _clone_event(ev: Event) -> Event:
    """A fresh, live :class:`Event` record with the same schedule identity.

    Clones share ``fn``/``args`` with the original (model state reached
    through them is saved separately, via the LP's registered state
    providers) but own their liveness: cancelling or firing the original
    after the snapshot cannot corrupt the saved copy, and vice versa.
    """
    return Event(ev.time, ev.seq, ev.fn, ev.args,
                 dict(ev.kwargs) if ev.kwargs else None,
                 priority=ev.priority, label=ev.label)


def _validate_horizon(lps: Sequence["LogicalProcess"], until: float) -> None:
    """Reject horizons no executor can terminate against.

    ``until`` must not be NaN, and an *infinite* horizon is only meaningful
    when the model actually has channels: with zero channels every executor
    degenerates to "run each partition to exhaustion", which never returns
    for self-regenerating models and gives no epoch/round structure to
    measure.  Raising beats silently spinning forever.
    """
    if math.isnan(until):
        raise ConfigurationError("executor horizon `until` must not be NaN")
    if math.isinf(until) and until > 0:
        if not any(lp.outputs for lp in lps):
            raise ConfigurationError(
                "infinite horizon with zero channels: executors derive their "
                "progress bounds from channel lookahead, so a channel-free "
                "model under until=inf would run each partition forever; "
                "pass a finite `until` (or run the partition simulators "
                "directly)")


@dataclass(frozen=True, slots=True)
class Message:
    """A timestamped inter-LP message.  ``null=True`` marks CMB null messages."""

    recv_time: float
    kind: str
    payload: Any
    src: str
    seq: int
    null: bool = False

    @property
    def order_key(self) -> tuple[float, str, int]:
        """Deterministic delivery order: (time, source, sequence)."""
        return (self.recv_time, self.src, self.seq)


class Channel:
    """Directed FIFO link between two LPs with a strictly positive lookahead.

    ``clock`` is the channel's guarantee: the source promises never to send
    a message with receive-time below it.  Real messages and null messages
    both advance it.
    """

    def __init__(self, src: "LogicalProcess", dst: "LogicalProcess",
                 lookahead: float) -> None:
        if lookahead <= 0:
            raise ConfigurationError(
                f"lookahead must be > 0 for conservative sync, got {lookahead}")
        self.src = src
        self.dst = dst
        self.lookahead = float(lookahead)
        self.clock = 0.0
        self.pending: list[Message] = []
        self.messages_sent = 0
        self.nulls_sent = 0
        # Guards `pending` against the threaded WindowExecutor, where the
        # source appends while the destination drains.
        self._lock = threading.Lock()

    def send(self, msg: Message) -> None:
        """Accept a message, enforcing the channel-clock promise."""
        if msg.recv_time < self.clock - 1e-12 and not msg.null:
            raise SchedulingError(
                f"channel {self.src.name}->{self.dst.name}: message at "
                f"{msg.recv_time} violates channel clock {self.clock}")
        if msg.null:
            self.nulls_sent += 1
            self.clock = max(self.clock, msg.recv_time)
        else:
            self.messages_sent += 1
            self.clock = max(self.clock, msg.recv_time)
            with self._lock:
                self.pending.append(msg)

    def take_ready(self, up_to: float) -> list[Message]:
        """Atomically remove and return messages with recv_time <= up_to."""
        with self._lock:
            ready = [m for m in self.pending if m.recv_time <= up_to + 1e-12]
            if ready:
                self.pending = [m for m in self.pending
                                if m.recv_time > up_to + 1e-12]
        return ready

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Channel {self.src.name}->{self.dst.name} la={self.lookahead} "
                f"clock={self.clock:.6g}>")


class LogicalProcess:
    """One partition of a distributed simulation model.

    Owns a private :class:`Simulator`; model code schedules local events on
    ``lp.sim`` and communicates with other partitions only via
    :meth:`send`.  Message arrival invokes the handler registered with
    :meth:`on_message` *at the receive time on the local clock*.
    """

    def __init__(self, name: str, queue: str = "heap", seed: int = 0) -> None:
        self.name = name
        self.sim = Simulator(queue=queue, seed=seed)
        self.outputs: dict[str, Channel] = {}
        self.inputs: dict[str, Channel] = {}
        self._handlers: dict[str, Callable[["LogicalProcess", Message], None]] = {}
        self._send_seq = 0
        self.events_executed_total = 0
        #: Time Warp hook (:class:`repro.core.optimistic.OptimisticExecutor`),
        #: installed for the duration of an optimistic run.  Null-object
        #: protocol like ``sim._obs``: conservative executors never set it.
        self._tw = None
        #: ``(get, set)`` pairs registered by :meth:`register_state`.
        self._state_providers: list[tuple[Callable[[], Any],
                                          Callable[[Any], None]]] = []

    def connect(self, dst: "LogicalProcess", lookahead: float) -> Channel:
        """Create (or return) the channel ``self -> dst``."""
        ch = self.outputs.get(dst.name)
        if ch is None:
            ch = Channel(self, dst, lookahead)
            self.outputs[dst.name] = ch
            dst.inputs[self.name] = ch
        return ch

    def on_message(self, kind: str,
                   handler: Callable[["LogicalProcess", Message], None]) -> "LogicalProcess":
        """Register the callback for incoming messages of *kind*; chainable."""
        self._handlers[kind] = handler
        return self

    def send(self, dst_name: str, kind: str, payload: Any = None,
             extra_delay: float = 0.0) -> Message:
        """Send to the LP named *dst_name*; arrives after lookahead+extra."""
        ch = self.outputs.get(dst_name)
        if ch is None:
            raise ConfigurationError(f"LP {self.name!r} has no channel to {dst_name!r}")
        if extra_delay < 0:
            raise ConfigurationError(f"extra_delay must be >= 0, got {extra_delay}")
        self._send_seq += 1
        msg = Message(self.sim.now + ch.lookahead + extra_delay, kind, payload,
                      self.name, self._send_seq)
        tw = self._tw
        if tw is not None:
            # Optimistic run: the Time Warp executor transports the message
            # (logging it for anti-message cancellation, suppressing
            # re-sends during coast-forward) and calls the obs hooks itself.
            tw.on_send(self, ch, msg)
            return msg
        obs = self.sim._obs
        if obs is not None:
            # The tracer remembers which local firing produced this message
            # so the destination LP's dispatch span gets it as causal parent.
            obs.on_message_send(msg)
        ch.send(msg)
        return msg

    # -- optimistic state saving ------------------------------------------------

    def register_state(self, get: Callable[[], Any],
                       set: Callable[[Any], None]) -> "LogicalProcess":
        """Register a model state provider for Time Warp rollback; chainable.

        *get* must return a **fresh copy** of the provider's state (picklable
        or plainly copyable — a ``dict(...)``/``list(...)`` of value types is
        the idiom); *set* must install such a blob without mutating it in
        place (``log[:] = blob`` rather than ``log = blob``), because one
        saved blob may be restored multiple times.

        Kernel-owned state (clock, event list, RNG streams, send sequence)
        is saved automatically by :meth:`snapshot`; only state the model
        mutates from its handlers needs a provider.  Conservative executors
        never call the providers.
        """
        self._state_providers.append((get, set))
        return self

    def snapshot(self) -> dict:
        """Capture the LP's full rollback state (Time Warp checkpoint).

        Saves the local clock, the scheduling sequence counter, the send
        sequence, clones of every live pending event, the exact state of
        every RNG stream drawn so far, and one blob per registered state
        provider.  The snapshot is independent of future execution: firing
        or cancelling events after the call cannot corrupt it.
        """
        sim = self.sim
        queue = sim._queue
        live = queue.drain()
        for ev in live:
            queue.push(ev)
        return {
            "now": sim._now,
            "seq": sim._seq,
            "send_seq": self._send_seq,
            "events": [_clone_event(ev) for ev in live],
            "rng": {name: st._gen.bit_generator.state
                    for name, st in sim.streams._streams.items()},
            "model": [get() for get, _ in self._state_providers],
        }

    def restore(self, snap: dict) -> None:
        """Roll the LP back to a :meth:`snapshot` (idempotent per snapshot).

        Rebuilds the event list from clones of the saved events, restores
        clock/sequence counters, rewinds every RNG stream (streams first
        created *after* the snapshot are discarded so re-execution recreates
        them from their deterministic name-derived seed), and hands each
        provider its saved blob.  The raw ``events_executed`` counter is
        *not* rewound — it deliberately counts rolled-back work.
        """
        sim = self.sim
        fresh = type(sim._queue)()
        for ev in snap["events"]:
            fresh.push(_clone_event(ev))
        sim._queue = fresh
        sim._now = snap["now"]
        sim._seq = snap["seq"]
        self._send_seq = snap["send_seq"]
        streams = sim.streams._streams
        saved_rng = snap["rng"]
        for name in [n for n in streams if n not in saved_rng]:
            del streams[name]
        for name, state in saved_rng.items():
            sim.streams.stream(name)._gen.bit_generator.state = state
        for (_, set_state), blob in zip(self._state_providers, snap["model"]):
            set_state(blob)

    def send_null(self, lower_bound: float) -> None:
        """Promise all neighbours no message below ``lower_bound + lookahead``."""
        for ch in self.outputs.values():
            ts = lower_bound + ch.lookahead
            if ts > ch.clock:
                self._send_seq += 1
                ch.send(Message(ts, "__null__", None, self.name, self._send_seq,
                                null=True))

    # -- executor plumbing ------------------------------------------------------

    def deliver_pending(self, up_to: float) -> int:
        """Move channel messages with recv_time <= up_to into the local queue.

        Messages from *all* input channels are merged and sorted by
        ``order_key`` before scheduling, so same-timestamp deliveries are
        ordered identically under every executor.
        """
        ready: list[Message] = []
        for ch in self.inputs.values():
            ready.extend(ch.take_ready(up_to))
        ready.sort(key=lambda m: m.order_key)
        obs = self.sim._obs
        if obs is None:
            for msg in ready:
                self.sim.schedule_at(
                    max(msg.recv_time, self.sim.now), self._dispatch, msg,
                    priority=Priority.HIGH, label=f"recv:{msg.kind}")
        else:
            for msg in ready:
                ev = self.sim.schedule_at(
                    max(msg.recv_time, self.sim.now), self._dispatch, msg,
                    priority=Priority.HIGH, label=f"recv:{msg.kind}")
                # Graft the sender's firing span onto the dispatch event —
                # the cross-LP leg of the causal chain.
                obs.on_message_recv(msg, ev)
        return len(ready)

    def _dispatch(self, msg: Message) -> None:
        handler = self._handlers.get(msg.kind)
        if handler is None:
            raise ConfigurationError(
                f"LP {self.name!r}: no handler for message kind {msg.kind!r}")
        handler(self, msg)

    def input_floor(self) -> float:
        """Min over input channels of their clock (inf when no inputs)."""
        if not self.inputs:
            return math.inf
        return min(ch.clock for ch in self.inputs.values())

    def next_event_time(self) -> float:
        """Earliest pending work: local queue or undelivered channel message."""
        t = self.sim.peek_time()
        for ch in self.inputs.values():
            for msg in ch.pending:
                t = min(t, msg.recv_time)
        return t

    def advance(self, horizon: float) -> int:
        """Deliver + execute everything with time <= horizon.  Returns count.

        Executes on the kernel's fused single-touch dispatch
        (:meth:`~repro.core.queues.base.EventQueue.pop_if_le` inside
        ``sim.run``); the ``peek_time`` guard is a true non-mutating O(1)
        head read, so an idle LP costs one comparison per round.
        """
        before = self.sim.events_executed
        self.deliver_pending(horizon)
        # Delivering may schedule new local events; loop until quiescent
        # below the horizon (handler sends go to *other* LPs, so one
        # deliver/run round per level suffices; loop guards self-sends).
        while self.sim.peek_time() <= horizon:
            self.sim.run(until=horizon)
            if self.deliver_pending(horizon) == 0:
                break
        executed = self.sim.events_executed - before
        self.events_executed_total += executed
        return executed

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LP {self.name!r} t={self.sim.now:.6g}>"


@dataclass(slots=True)
class ExecutionStats:
    """What an executor did — the E7 comparison record."""

    executor: str
    lps: int
    events: int = 0
    null_messages: int = 0
    real_messages: int = 0
    epochs: int = 0
    wall_seconds: float = 0.0
    #: mean events per epoch per LP — the available-parallelism metric
    parallelism: float = 0.0
    #: Time Warp accounting: conservative executors never roll back, so
    #: ``committed_events == events`` and ``efficiency == 1.0`` for them.
    rollbacks: int = 0
    rolled_back_events: int = 0
    anti_messages: int = 0
    committed_events: int = 0
    #: committed / executed — the optimism-waste ratio
    efficiency: float = 1.0


def _collect_stats(name: str, lps: Sequence[LogicalProcess],
                   epochs: int) -> ExecutionStats:
    nulls = sum(ch.nulls_sent for lp in lps for ch in lp.outputs.values())
    real = sum(ch.messages_sent for lp in lps for ch in lp.outputs.values())
    events = sum(lp.events_executed_total for lp in lps)
    stats = ExecutionStats(name, len(lps), events=events, null_messages=nulls,
                           real_messages=real, epochs=epochs,
                           committed_events=events)
    if epochs > 0 and lps:
        stats.parallelism = events / epochs / len(lps)
    return stats


class SequentialExecutor:
    """Centralized reference: always run the globally earliest LP next."""

    name = "sequential"

    def run(self, lps: Sequence[LogicalProcess], until: float) -> ExecutionStats:
        _validate_horizon(lps, until)
        wall0 = perf_counter()
        steps = 0
        while True:
            best: Optional[LogicalProcess] = None
            best_t = math.inf
            for lp in lps:
                t = lp.next_event_time()
                if t < best_t:
                    best_t = t
                    best = lp
            if best is None or best_t > until:
                break
            # Execute exactly the earliest timestamp cluster on that LP.
            best.advance(best_t)
            steps += 1
        for lp in lps:
            lp.advance(until)  # drain anything at the horizon boundary
        stats = _collect_stats(self.name, lps, steps)
        stats.wall_seconds = perf_counter() - wall0
        return stats


class CMBExecutor:
    """Chandy–Misra–Bryant conservative execution with null messages.

    Each round, every LP executes up to its input floor (the safe bound),
    then advertises its new lower bound on future sends via null messages.
    Rounds repeat until no LP has work at or below *until*.  The null-message
    count — the protocol's famous overhead — scales inversely with lookahead.
    """

    name = "cmb"

    def __init__(self, max_rounds: int = 10_000_000) -> None:
        self.max_rounds = max_rounds

    def run(self, lps: Sequence[LogicalProcess], until: float) -> ExecutionStats:
        _validate_horizon(lps, until)
        wall0 = perf_counter()
        rounds = 0
        for _ in range(self.max_rounds):
            rounds += 1
            progressed = False
            for lp in lps:
                # Strictly below the input floor is provably safe: channel
                # clocks only promise nothing *below* them, so an event at
                # exactly the floor could still be preempted by a message.
                floor = lp.input_floor()
                safe = min(floor - 1e-9 if math.isfinite(floor) else floor, until)
                # Fused check-and-execute: advance() is a no-op returning 0
                # when nothing is pending at or below `safe`, so the old
                # separate next_event_time() pre-scan is redundant work.
                if lp.advance(safe) > 0:
                    progressed = True
                # Null message: the LP's future sends happen no earlier than
                # max(local clock, min(next local event, input floor)).
                lower = min(max(lp.sim.now, min(lp.next_event_time(), floor)),
                            until)
                lp.send_null(lower)
            done = all(lp.next_event_time() > until for lp in lps)
            if done:
                break
            if not progressed:
                # Clocks must advance through nulls alone; if even the floors
                # are stuck the configuration has a zero-lookahead cycle.
                floors = [min(lp.input_floor(), lp.next_event_time()) for lp in lps]
                if all(f > until for f in floors):
                    break
        else:  # pragma: no cover - guarded by max_rounds
            raise SchedulingError("CMB executor exceeded max_rounds; "
                                  "likely zero-lookahead cycle")
        for lp in lps:
            lp.advance(until)
        stats = _collect_stats(self.name, lps, rounds)
        stats.wall_seconds = perf_counter() - wall0
        return stats


class WindowExecutor:
    """Synchronous conservative windows; optional thread-pool parallelism.

    Epoch protocol: let ``W`` be the globally earliest pending timestamp and
    ``L`` the minimum lookahead over all channels.  Every event in
    ``[W, W+L)`` is causally independent across LPs (any cross-LP influence
    needs >= L of propagation), so all LPs may process that window
    concurrently, then exchange messages at a barrier.
    """

    name = "window"

    def __init__(self, threads: int | None = None) -> None:
        #: None = run LPs in-line (no pool); N = real ThreadPoolExecutor(N).
        self.threads = threads

    def run(self, lps: Sequence[LogicalProcess], until: float) -> ExecutionStats:
        _validate_horizon(lps, until)
        wall0 = perf_counter()
        lookaheads = [ch.lookahead for lp in lps for ch in lp.outputs.values()]
        min_la = min(lookaheads) if lookaheads else math.inf
        epochs = 0
        pool = ThreadPoolExecutor(self.threads) if self.threads else None
        try:
            while True:
                w = min((lp.next_event_time() for lp in lps), default=math.inf)
                if w > until:
                    break
                horizon = min(until, w + min_la * 0.999999) if math.isfinite(min_la) else until
                epochs += 1
                if pool is not None:
                    list(pool.map(lambda lp: lp.advance(horizon), lps))
                else:
                    for lp in lps:
                        lp.advance(horizon)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        for lp in lps:
            lp.advance(until)
        stats = _collect_stats(self.name, lps, epochs)
        stats.wall_seconds = perf_counter() - wall0
        return stats
