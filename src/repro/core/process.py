"""Process-oriented simulation: "active objects" on top of the event kernel.

MONARC 2 is described by the paper as "built based on a process oriented
approach for discrete event simulation, which is well suited to describe
concurrent running programs ... Threaded objects or 'Active Objects'
(having an execution thread, program counter, stack...) allow a natural way
to map the specific behavior of distributed data processing into the
simulation program."

Instead of OS threads (MONARC's Java mechanism), a :class:`Process` here is
a Python *generator*: the program counter and stack the paper mentions come
for free from the generator frame, and there are no real threads to
schedule — every context switch compiles down to one kernel event.  This is
also the taxonomy's *mapping of simulation jobs on physical threads*
optimization taken to its limit (thousands of simulated concurrent programs
on one OS thread); :mod:`repro.core.mapping` quantifies the alternatives.

A process body ``yield``\\ s what it wants to wait for:

====================  =====================================================
yielded value         meaning
====================  =====================================================
``float | int``       hold (sleep) that many time units
:class:`Signal`       wait until some other entity fires the signal
:class:`Process`      join — resume when that process terminates
:class:`AnyOf`        resume when the first of several waitables completes
:class:`AllOf`        resume when all of several waitables complete
``Waitable``          anything implementing the subscribe protocol
                      (resource request tokens do this)
====================  =====================================================

The value sent back into the generator is the waitable's result (a signal's
payload, a joined process's return value...).  Interrupting a process throws
:class:`~repro.core.errors.InterruptError` at its current wait point.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterable, Optional

from .engine import Simulator
from .errors import InterruptError, ProcessError
from .events import Event, Priority

__all__ = ["Waitable", "Signal", "Process", "AnyOf", "AllOf", "spawn", "timer"]

ProcessBody = Generator[Any, Any, Any]


class Waitable:
    """Subscribe protocol: anything a process may ``yield``.

    Subclasses call :meth:`_complete` exactly once; subscribed processes are
    then resumed with the result.  Late subscribers to an already-completed
    waitable resume immediately — this removes a whole class of races where
    a process checks-then-waits.
    """

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """True once the waitable has completed."""
        return self._done

    @property
    def result(self) -> Any:
        """The completion value (None until done)."""
        return self._result

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        if self._done:
            callback(self._result)
        else:
            self._callbacks.append(callback)

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _complete(self, result: Any = None) -> None:
        if self._done:
            return
        self._done = True
        self._result = result
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(result)

    # Subclasses with cancellation semantics override.
    def _abandon(self, callback: Callable[[Any], None]) -> None:
        """Called when a waiting process stops caring (interrupt/AnyOf)."""
        self._unsubscribe(callback)


class Signal(Waitable):
    """A broadcast condition processes can wait on.

    Unlike a plain :class:`Waitable`, a signal can :meth:`fire` repeatedly —
    each firing wakes the *current* waiters with the payload; processes that
    wait afterwards block until the next firing.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name
        self.fire_count = 0

    def fire(self, payload: Any = None) -> int:
        """Wake all currently waiting processes; returns how many woke."""
        self.fire_count += 1
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(payload)
        return len(callbacks)

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        # Signals are level-less: never auto-complete, always queue.
        self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name!r} waiters={len(self._callbacks)}>"


class AnyOf(Waitable):
    """Completes with ``(index, result)`` of the first child to complete."""

    def __init__(self, waitables: Iterable[Waitable]) -> None:
        super().__init__()
        self.children = list(waitables)
        if not self.children:
            raise ProcessError("AnyOf needs at least one waitable")
        self._child_cbs: list[tuple[Waitable, Callable]] = []
        for i, w in enumerate(self.children):
            cb = self._make_cb(i)
            self._child_cbs.append((w, cb))
            w._subscribe(cb)

    def _make_cb(self, index: int) -> Callable[[Any], None]:
        def cb(result: Any) -> None:
            if not self._done:
                # Detach from the losers so they don't hold dead references.
                for w, other_cb in self._child_cbs:
                    if other_cb is not cb:
                        w._abandon(other_cb)
                self._complete((index, result))
        return cb


class AllOf(Waitable):
    """Completes with the list of all children's results, in child order."""

    def __init__(self, waitables: Iterable[Waitable]) -> None:
        super().__init__()
        self.children = list(waitables)
        if not self.children:
            raise ProcessError("AllOf needs at least one waitable")
        self._pending = len(self.children)
        self._results: list[Any] = [None] * len(self.children)
        for i, w in enumerate(self.children):
            w._subscribe(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Any], None]:
        def cb(result: Any) -> None:
            self._results[index] = result
            self._pending -= 1
            if self._pending == 0:
                self._complete(list(self._results))
        return cb


class _State(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"
    HOLDING = "holding"
    DONE = "done"
    FAILED = "failed"


class Process(Waitable):
    """An active object: a generator driven by the event kernel.

    Completes (as a :class:`Waitable`) with the generator's return value, so
    processes can ``yield`` other processes to join them.

    Parameters
    ----------
    sim:
        The owning simulator.
    body:
        A *started generator* or a generator function plus ``args``.
    name:
        Diagnostic label; appears in kernel event labels.
    """

    _counter = 0

    def __init__(self, sim: Simulator, body: Callable[..., ProcessBody] | ProcessBody,
                 *args: Any, name: str = "", **kwargs: Any) -> None:
        super().__init__()
        self.sim = sim
        if callable(body):
            gen = body(*args, **kwargs)
        else:
            gen = body
        if not hasattr(gen, "send"):
            raise ProcessError(f"process body must be a generator, got {type(gen)!r}")
        self._gen: ProcessBody = gen
        Process._counter += 1
        self.name = name or f"process-{Process._counter}"
        self.state = _State.READY
        self.error: Optional[BaseException] = None
        self._hold_event: Optional[Event] = None
        self._waiting_on: Optional[Waitable] = None
        self._wait_cb: Optional[Callable[[Any], None]] = None
        # First step happens as a kernel event at the current time, so
        # construction never runs model code re-entrantly.
        sim.schedule(0.0, self._step, None, False,
                     priority=Priority.HIGH, label=f"start:{self.name}")
        obs = sim._obs
        if obs is not None:
            obs.on_process(self, "spawn")

    # -- lifecycle --------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the process terminates or fails."""
        return self.state not in (_State.DONE, _State.FAILED)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at its wait point.

        No-op on a finished process.  A process holding or waiting is woken
        immediately (its timer/subscription is torn down); a READY process
        is interrupted before its first statement runs.
        """
        if not self.alive:
            return
        if self._hold_event is not None:
            self._hold_event.cancel()
            self._hold_event = None
        if self._waiting_on is not None and self._wait_cb is not None:
            self._waiting_on._abandon(self._wait_cb)
            self._waiting_on = None
            self._wait_cb = None
        self.sim.schedule(0.0, self._step, cause, True,
                          priority=Priority.HIGH, label=f"interrupt:{self.name}")

    # -- engine plumbing -----------------------------------------------------------

    def _step(self, value: Any, is_interrupt: bool) -> None:
        """Advance the generator one segment (kernel event callback)."""
        if not self.alive:
            return
        self._hold_event = None
        self._waiting_on = None
        self._wait_cb = None
        self.state = _State.RUNNING
        try:
            if is_interrupt:
                yielded = self._gen.throw(InterruptError(value))
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.state = _State.DONE
            obs = self.sim._obs
            if obs is not None:
                obs.on_process(self, "done")
            self._complete(stop.value)
            return
        except InterruptError as exc:
            # The body let the interrupt escape: treat as clean termination
            # with the interrupt cause as the result.
            self.state = _State.DONE
            obs = self.sim._obs
            if obs is not None:
                obs.on_process(self, "done")
            self._complete(exc.cause)
            return
        except Exception as exc:
            self.state = _State.FAILED
            self.error = exc
            obs = self.sim._obs
            if obs is not None:
                obs.on_process(self, "failed")
            raise ProcessError(f"process {self.name!r} crashed: {exc!r}") from exc
        self._arm(yielded)

    def _arm(self, yielded: Any) -> None:
        """Install the wait described by the yielded value."""
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self.state = _State.FAILED
                raise ProcessError(f"process {self.name!r} held negative time {yielded}")
            self.state = _State.HOLDING
            self._hold_event = self.sim.schedule(
                float(yielded), self._step, None, False,
                label=f"hold:{self.name}")
            return
        if isinstance(yielded, Waitable):
            self.state = _State.WAITING
            self._waiting_on = yielded

            def cb(result: Any, _self=self) -> None:
                # Resume via the kernel so wakeups interleave deterministically.
                _self._waiting_on = None
                _self._wait_cb = None
                _self.sim.schedule(0.0, _self._step, result, False,
                                   priority=Priority.HIGH,
                                   label=f"wake:{_self.name}")

            self._wait_cb = cb
            yielded._subscribe(cb)
            return
        self.state = _State.FAILED
        raise ProcessError(
            f"process {self.name!r} yielded unsupported {type(yielded).__name__!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name!r} state={self.state.value}>"


def spawn(sim: Simulator, body: Callable[..., ProcessBody] | ProcessBody,
          *args: Any, name: str = "", **kwargs: Any) -> Process:
    """Convenience constructor: ``spawn(sim, body, ...)`` == ``Process(...)``."""
    return Process(sim, body, *args, name=name, **kwargs)


def timer(sim: Simulator, delay: float, payload: Any = None) -> Waitable:
    """A waitable that completes *delay* time units from now.

    The building block for timeouts: race any operation against a timer
    with :class:`AnyOf` ::

        idx, result = yield AnyOf([transfer_handle, timer(sim, 30.0)])
        if idx == 1:
            ...  # timed out

    (A bare ``yield delay`` sleeps unconditionally; a timer can lose the
    race and be ignored.)
    """
    if delay < 0:
        raise ProcessError(f"timer delay must be >= 0, got {delay}")
    token = Waitable()
    sim.schedule(delay, token._complete, payload, label="timer")
    return token
