"""Entity-to-execution-context mapping policies.

Taxonomy axis: "the mapping of the simulation jobs on the underlying threads
or processes.  Reusing threads, using advanced mapping schemes in which
multiple jobs can be simulated running in the same thread context ... can
yield higher simulation performances."

In this kernel there are no OS threads to map onto — a *context* is a Python
generator frame (a :class:`~repro.core.process.Process`) or a bare event
callback.  The policies below execute the *same* logical workload (a stream
of jobs through a ``capacity``-server station) under three mappings:

:class:`DedicatedContextPolicy`
    One process per job — MONARC's thread-per-active-object style.  Maximum
    modeling convenience, maximum context overhead (a generator frame and
    several kernel events per job).
:class:`SharedContextPolicy`
    Zero processes: the whole station is a handful of event callbacks over
    shared state — the classic hand-optimized event-oriented style.
:class:`PooledContextPolicy`
    ``capacity`` long-lived worker processes pull jobs from a
    :class:`~repro.core.resources.Store` — thread-pool reuse.

All three produce **identical job completion times** (asserted in tests —
they model the same FIFO station); they differ only in kernel events and
allocations, which is precisely the overhead benchmark E6 ablates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from .engine import Simulator
from .process import Process
from .resources import Resource, Store

__all__ = [
    "JobSpec",
    "MappingResult",
    "MappingPolicy",
    "DedicatedContextPolicy",
    "SharedContextPolicy",
    "PooledContextPolicy",
    "MAPPING_POLICIES",
]


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One unit of work: arrives at *arrival*, needs *duration* of service."""

    arrival: float
    duration: float
    id: int = 0


@dataclass(slots=True)
class MappingResult:
    """Outcome of running a workload under one mapping policy."""

    policy: str
    completions: dict[int, float] = field(default_factory=dict)
    kernel_events: int = 0

    @property
    def makespan(self) -> float:
        """Latest completion time across all jobs."""
        return max(self.completions.values()) if self.completions else 0.0


class MappingPolicy(abc.ABC):
    """Executes a job stream through a ``capacity``-server FIFO station."""

    name = "abstract"

    @abc.abstractmethod
    def execute(self, sim: Simulator, jobs: Sequence[JobSpec], capacity: int) -> MappingResult:
        """Run *jobs* to completion on *sim*; returns completion times."""

    def run(self, jobs: Sequence[JobSpec], capacity: int = 1,
            queue: str = "heap") -> MappingResult:
        """Convenience wrapper: fresh simulator, run to quiescence."""
        sim = Simulator(queue=queue)
        result = self.execute(sim, jobs, capacity)
        sim.run()
        result.kernel_events = sim.events_executed
        return result


class DedicatedContextPolicy(MappingPolicy):
    """One generator frame ("thread") per job."""

    name = "dedicated"

    def execute(self, sim: Simulator, jobs: Sequence[JobSpec], capacity: int) -> MappingResult:
        result = MappingResult(self.name)
        station = Resource(sim, capacity=capacity, name="station")

        def job_body(spec: JobSpec):
            req = yield station.request(owner=spec)
            yield spec.duration
            station.release(req)
            result.completions[spec.id] = sim.now

        def launch(spec: JobSpec) -> None:
            Process(sim, job_body, spec, name=f"job-{spec.id}")

        for spec in jobs:
            sim.schedule_at(spec.arrival, launch, spec, label="arrival")
        return result


class SharedContextPolicy(MappingPolicy):
    """All jobs share one callback-driven context (no process objects)."""

    name = "shared"

    def execute(self, sim: Simulator, jobs: Sequence[JobSpec], capacity: int) -> MappingResult:
        result = MappingResult(self.name)
        waiting: list[JobSpec] = []
        busy = [0]  # one-slot mutable cell shared by the closures

        def finish(spec: JobSpec) -> None:
            result.completions[spec.id] = sim.now
            busy[0] -= 1
            if waiting:
                start(waiting.pop(0))

        def start(spec: JobSpec) -> None:
            busy[0] += 1
            sim.schedule(spec.duration, finish, spec, label="service_end")

        def arrive(spec: JobSpec) -> None:
            if busy[0] < capacity:
                start(spec)
            else:
                waiting.append(spec)

        for spec in jobs:
            sim.schedule_at(spec.arrival, arrive, spec, label="arrival")
        return result


class PooledContextPolicy(MappingPolicy):
    """A fixed pool of ``capacity`` worker processes pulls jobs from a store."""

    name = "pooled"

    def execute(self, sim: Simulator, jobs: Sequence[JobSpec], capacity: int) -> MappingResult:
        result = MappingResult(self.name)
        inbox = Store(sim, name="job-queue")
        total = len(jobs)

        def worker():
            # Workers loop forever; once all jobs are done they block on an
            # empty store, which holds no kernel events, so the run drains.
            while True:
                spec = yield inbox.get()
                yield spec.duration
                result.completions[spec.id] = sim.now
                if len(result.completions) >= total:
                    return

        for w in range(capacity):
            Process(sim, worker, name=f"worker-{w}")
        for spec in jobs:
            sim.schedule_at(spec.arrival, inbox.put, spec, label="arrival")
        return result


#: Registry used by benchmarks and the taxonomy classifier.
MAPPING_POLICIES: dict[str, type[MappingPolicy]] = {
    p.name: p for p in (DedicatedContextPolicy, SharedContextPolicy, PooledContextPolicy)
}
