"""The event-driven simulation kernel.

This is the *event-driven DES* of the taxonomy's mechanics axis: simulation
time advances by irregular increments, jumping directly to the next
scheduled event ("more efficient than a time-driven DES since it does not
step through regular time intervals when no event occurs" — benchmarked in
E3 against :mod:`repro.core.timedriven`).

Design points, each mapped to a taxonomy category:

* **engine optimization / event list** — the future-event set is a pluggable
  :class:`~repro.core.queues.base.EventQueue`; pick the structure per run
  (``Simulator(queue="calendar")``).
* **behavior** — the kernel itself is strictly deterministic; stochastic
  models draw from :class:`~repro.core.rng.StreamFactory` streams owned by
  the simulator, so one integer seed pins the whole trajectory.
* **input data** — an attached :class:`~repro.core.trace.TraceRecorder`
  captures the executed event stream, enabling trace-driven replay.
* **observability** — dispatch is tiered by what is attached: nothing
  (one attribute check — the null-object fast path), metrics only
  (:meth:`Simulator._run_metrics_lite`, which batches instrument updates
  in locals and samples durations), or any richer facet (the generic
  observed loop, which times every firing).  Budgets are gated by the
  ``e11_obs_fleet`` benchmark section.
"""

from __future__ import annotations

import math
from time import perf_counter_ns
from typing import Any, Callable, Optional

from .errors import SchedulingError, StopSimulation
from .events import Event, Priority
from .monitor import Monitor
from .queues import EventQueue, make_queue
from .rng import Stream, StreamFactory

__all__ = ["Simulator"]


class Simulator:
    """Sequential event-driven discrete-event simulator.

    Parameters
    ----------
    queue:
        Event-list structure: an :class:`EventQueue` instance or a registry
        name (``"linear" | "heap" | "splay" | "calendar" | "ladder" |
        "adaptive"``).
    seed:
        Root seed for all random streams drawn via :meth:`stream`.
    start_time:
        Initial simulation clock value.

    Examples
    --------
    >>> sim = Simulator(seed=42)
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (5.0, ['hello'])
    """

    def __init__(
        self,
        queue: EventQueue | str = "heap",
        seed: int = 0,
        start_time: float = 0.0,
    ) -> None:
        self._queue: EventQueue = make_queue(queue) if isinstance(queue, str) else queue
        self._now = float(start_time)
        self._seq = 0
        self._running = False
        self._stopped = False
        self._stop_reason = ""
        self._events_executed = 0
        self.streams = StreamFactory(seed)
        self.monitor = Monitor("simulation")
        #: optional hooks called as ``hook(event)`` just before each firing —
        #: used by trace recording and by debugging instrumentation.
        self.pre_event_hooks: list[Callable[[Event], None]] = []
        #: observability binding (:class:`repro.obs.session.ObsBinding`),
        #: installed by ``Observation.attach``.  Null-object protocol: the
        #: engine's only disabled-path cost is ``is not None`` checks — one
        #: per ``schedule_at`` and one per ``run()``/``step()`` entry.
        self._obs = None

    # -- clock & identity ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Raw future-event count (may include cancelled records)."""
        return len(self._queue)

    @property
    def stop_reason(self) -> str:
        """Why the last run ended ('' if it simply drained the queue)."""
        return self._stop_reason

    def stream(self, name: str) -> Stream:
        """Named independent random stream (see :class:`StreamFactory`)."""
        return self.streams.stream(name)

    # -- scheduling ---------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run *delay* time units from now.

        Returns the :class:`Event`, whose :meth:`~Event.cancel` method is the
        way to tear down timers.
        """
        return self.schedule_at(self._now + delay, fn, *args,
                                priority=priority, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at absolute simulation *time* (>= now)."""
        if math.isnan(time):
            raise SchedulingError("cannot schedule event at NaN time")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event in the past (t={time} < now={self._now})"
            )
        ev = Event(time, self._next_seq(), fn, args, kwargs,
                   priority=priority, label=label)
        self._queue.push(ev)
        obs = self._obs
        if obs is not None:
            obs.on_schedule(ev, self._now)
        return ev

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- execution ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Execute events until the queue drains, *until* passes, or stop.

        The dispatch loop touches the event list exactly **once** per firing
        via :meth:`~repro.core.queues.base.EventQueue.pop_if_le` — delete-min
        and the horizon check are fused, so structures whose find-min is a
        sweep (calendar, ladder) pay for it once instead of twice.

        Parameters
        ----------
        until:
            Inclusive time horizon: events at ``t <= until`` fire; the clock
            is then advanced to *until* itself (so time-average statistics
            cover the full horizon even if the last event fired earlier).
        max_events:
            Safety valve for runaway models; raises after this many firings
            *within this call* (each ``run()`` gets a fresh budget).
        """
        if self._obs is not None:
            return self._run_observed(until, max_events)
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        horizon = math.inf if until is None else until
        pop_if_le = self._queue.pop_if_le
        hooks = self.pre_event_hooks
        fired = 0
        try:
            if max_events is None:
                # Fast path: no budget accounting.  The callback is invoked
                # directly — pop_if_le never returns a cancelled event, so
                # Event.fire()'s liveness check (and its extra call frame)
                # is redundant here.  `hooks` aliases the live list, so
                # hooks registered mid-run still take effect.  Firings are
                # counted in a local and published in the finally block:
                # `events_executed` is a between-runs statistic, not a
                # mid-event one.
                while not self._stopped:
                    ev = pop_if_le(horizon)
                    if ev is None:
                        break
                    self._now = ev.time
                    fired += 1
                    if hooks:
                        for hook in hooks:
                            hook(ev)
                    try:
                        ev.fn(*ev.args, **ev.kwargs)
                    except StopSimulation as sig:
                        self._stopped = True
                        self._stop_reason = sig.reason or "StopSimulation"
            else:
                budget = int(max_events)
                while not self._stopped:
                    ev = pop_if_le(horizon)
                    if ev is None:
                        break
                    self._now = ev.time
                    fired += 1
                    if hooks:
                        for hook in hooks:
                            hook(ev)
                    try:
                        ev.fn(*ev.args, **ev.kwargs)
                    except StopSimulation as sig:
                        self._stopped = True
                        self._stop_reason = sig.reason or "StopSimulation"
                    if fired >= budget:
                        raise SchedulingError(
                            f"max_events budget of {max_events} exhausted at t={self._now}"
                        )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._events_executed += fired
            self._running = False

    def _run_observed(self, until: float | None, max_events: int | None) -> None:
        """The dispatch loop with observability instrumentation.

        Kept as a separate method so the unobserved :meth:`run` loop stays
        byte-for-byte the measured fast path.  Semantics are identical —
        same fused ``pop_if_le`` protocol, same horizon and budget rules,
        same hook ordering — plus a ``perf_counter_ns`` stamp around each
        firing feeding the tracer/profiler/telemetry via the binding.
        """
        obs = self._obs
        if (obs.tracer is None and obs.profiler is None
                and obs.telemetry is None and obs.recorder is None
                and obs._m_fired is not None
                and obs._m_handler_ns.bounds is None):
            return self._run_metrics_lite(until, max_events)
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else int(max_events)
        pop_if_le = self._queue.pop_if_le
        hooks = self.pre_event_hooks
        fired = 0
        try:
            while not self._stopped:
                ev = pop_if_le(horizon)
                if ev is None:
                    break
                self._now = ev.time
                fired += 1
                if hooks:
                    for hook in hooks:
                        hook(ev)
                t0 = obs.begin_fire(ev)
                try:
                    ev.fn(*ev.args, **ev.kwargs)
                except StopSimulation as sig:
                    self._stopped = True
                    self._stop_reason = sig.reason or "StopSimulation"
                finally:
                    obs.end_fire(ev, t0)
                if fired >= budget:
                    raise SchedulingError(
                        f"max_events budget of {max_events} exhausted at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._events_executed += fired
            self._running = False

    def _run_metrics_lite(self, until: float | None,
                          max_events: int | None) -> None:
        """The dispatch loop when *only* the metrics facet is attached.

        Per-event binding calls would cost more than the two instrument
        updates they carry, so this loop accumulates the fired count, the
        summed handler nanoseconds, and the pow-2 duration buckets in
        locals and folds them into the registry instruments once, on exit
        (the finally block also runs on StopSimulation and raised
        handlers, so no firing is ever lost).  The duration histogram
        *samples* every 16th firing here — the clock pair dominates the
        loop's added cost — while the fired counter stays exact; a run
        with telemetry, tracing, or a recorder attached times every
        firing via the generic loop above instead.  Registry state is
        authoritative at quiescence, not mid-``run()`` — exactly when the
        campaign runner dumps it.  The e11 benchmark gates this path at
        ≤10% overhead over the unobserved loop.
        """
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = ""
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else int(max_events)
        pop_if_le = self._queue.pop_if_le
        hooks = self.pre_event_hooks
        obs = self._obs
        clock = perf_counter_ns
        # 64 pow-2 buckets; a nanosecond duration's bit length can never
        # exceed 63 (that would be a 292-year handler), so no clamp needed.
        counts = [0] * len(obs._m_handler_ns.counts)
        dur_sum = 0
        fired = 0
        try:
            while not self._stopped:
                ev = pop_if_le(horizon)
                if ev is None:
                    break
                self._now = ev.time
                fired += 1
                if hooks:
                    for hook in hooks:
                        hook(ev)
                if fired & 15:
                    # Untimed firing (15 of every 16): the clock pair and
                    # bucket fold cost more than everything else this loop
                    # adds, so the duration histogram samples each 16th
                    # firing instead of paying that on every event.
                    try:
                        ev.fn(*ev.args, **ev.kwargs)
                    except StopSimulation as sig:
                        self._stopped = True
                        self._stop_reason = sig.reason or "StopSimulation"
                else:
                    t0 = clock()
                    try:
                        ev.fn(*ev.args, **ev.kwargs)
                    except StopSimulation as sig:
                        self._stopped = True
                        self._stop_reason = sig.reason or "StopSimulation"
                    dur = clock() - t0
                    dur_sum += dur
                    counts[dur.bit_length()] += 1
                if fired >= budget:
                    raise SchedulingError(
                        f"max_events budget of {max_events} exhausted at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._events_executed += fired
            self._running = False
            if fired:
                obs._m_fired.value += float(fired)
                h = obs._m_handler_ns
                # A handler that raised clean out of run() misses its
                # bucket; count from the buckets keeps the histogram
                # internally consistent, the counter still sees `fired`.
                h.count += sum(counts)
                h.sum += float(dur_sum)
                hist_counts = h.counts
                for i, n in enumerate(counts):
                    if n:
                        hist_counts[i] += n

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self._events_executed += 1
        if self.pre_event_hooks:
            for hook in self.pre_event_hooks:
                hook(ev)
        obs = self._obs
        if obs is None:
            try:
                ev.fire()
            except StopSimulation as sig:
                self._stopped = True
                self._stop_reason = sig.reason or "StopSimulation"
            return True
        t0 = obs.begin_fire(ev)
        try:
            ev.fire()
        except StopSimulation as sig:
            self._stopped = True
            self._stop_reason = sig.reason or "StopSimulation"
        finally:
            obs.end_fire(ev, t0)
        return True

    def stop(self, reason: str = "") -> None:
        """Request the run loop to end after the current event."""
        self._stopped = True
        self._stop_reason = reason or "stop() called"

    def peek_time(self) -> float:
        """Time of the next live event, or +inf when idle."""
        ev = self._queue.peek()
        return ev.time if ev is not None else math.inf

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Simulator t={self._now:.6g} pending={len(self._queue)} "
                f"executed={self._events_executed}>")
